// rdfalign — the command-line front end of the snapshot store + aligner.
//
//   rdfalign build <input> <output.snap>    text RDF -> binary snapshot
//   rdfalign info <file>                    snapshot/delta/archive/update dump
//   rdfalign align <a> <b>                  align two graphs, print report
//   rdfalign diff <base> <next> <out>       align and write a binary delta
//   rdfalign patch <base> <delta> <out>     replay a delta onto a base
//   rdfalign archive <out> <v1> <v2> ...    build + save a version archive
//   rdfalign gen <out-prefix>               synthetic version chain (CI/demo)
//   rdfalign updates <base> <next> <out>    write a streaming update fragment
//   rdfalign client <endpoint> <command>    run a command on rdfalignd
//   rdfalign stream <endpoint> ...          streaming session on rdfalignd
//
// This file is a transport adapter only: every verb is implemented in
// src/service/verbs.{h,cc} as request/response functions shared with the
// rdfalignd daemon, and `rdfalign client` forwards the identical argv to
// a running daemon (same output, same exit code — but loads hit the
// daemon's resident snapshot cache). See docs/service.md.

#include <cstdio>
#include <string>
#include <vector>

#include "service/client.h"
#include "service/graph_source.h"
#include "service/verbs.h"

int main(int argc, char** argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);

  if (!tokens.empty() && tokens[0] == "client") {
    return rdfalign::service::RunClientCommand(tokens);
  }
  if (!tokens.empty() && tokens[0] == "stream") {
    return rdfalign::service::RunStreamCommand(tokens);
  }

  rdfalign::service::DirectGraphSource source;
  rdfalign::service::VerbResult result =
      rdfalign::service::ExecuteVerb(tokens, &source, false);
  if (!result.output.empty()) std::fputs(result.output.c_str(), stdout);
  if (!result.error.empty()) {
    std::fprintf(stderr, "%s\n", result.error.c_str());
  }
  if (result.usage_error) {
    std::fputs(rdfalign::service::UsageText(), stderr);
  }
  return result.exit_code;
}
