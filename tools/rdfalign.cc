// rdfalign — the command-line front end of the snapshot store + aligner.
//
//   rdfalign build <input> <output.snap>    text RDF -> binary snapshot
//   rdfalign info <snapshot>                header / section / stats dump
//   rdfalign align <a> <b>                  align two graphs, print report
//   rdfalign gen <out-prefix>               synthetic version chain (CI/demo)
//
// `align` accepts snapshots or RDF text files interchangeably (sniffed by
// magic); snapshots load with zero parsing, which is the point — build
// once, align many times. See docs/store.md and the README workflow.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "gen/category_gen.h"
#include "parser/ntriples_parser.h"
#include "parser/ntriples_writer.h"
#include "parser/turtle_parser.h"
#include "rdf/statistics.h"
#include "store/snapshot.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: rdfalign <command> [args]\n"
      "\n"
      "commands:\n"
      "  build <input> <output.snap> [--format=auto|ntriples|turtle]\n"
      "      parse an RDF text file and write a binary snapshot\n"
      "  info <snapshot> [--json]\n"
      "      print snapshot header, sections, and statistics\n"
      "  align <a> <b> [--method=M] [--threads=N] [--mmap] [--json]\n"
      "      align two graphs (snapshot or RDF text each) and report\n"
      "      methods: trivial deblank hybrid hybrid-contextual overlap\n"
      "      (default hybrid; --threads=0 uses all hardware threads)\n"
      "  gen <out-prefix> [--scale=S] [--versions=K] [--seed=N]\n"
      "      generate a synthetic category-graph version chain as\n"
      "      <out-prefix>1.nt, <out-prefix>2.nt, ...\n");
  return 2;
}

/// `--name=value` / `--name` flags after the positional arguments.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          flags_[arg.substr(2)] = "";
        } else {
          flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  // Signed so that callers see "--versions=-1" as -1 and can reject it
  // with a range error, instead of a wrapped ~2^64 surprise. Malformed
  // values ("--threads=1o", "--seed=abc") are reported here and become
  // nullopt rather than silently parsing as a prefix or zero.
  std::optional<long long> GetInt(const std::string& name,
                                  long long fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    if (it->second.empty() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "rdfalign: --%s expects an integer, got '%s'\n",
                   name.c_str(), it->second.c_str());
      return std::nullopt;
    }
    return value;
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::atof(it->second.c_str());
  }

  /// Flags this command does not understand -> usage error.
  bool OnlyKnown(std::initializer_list<const char*> known) const {
    for (const auto& [name, value] : flags_) {
      bool ok = false;
      for (const char* k : known) ok = ok || name == k;
      if (!ok) {
        std::fprintf(stderr, "rdfalign: unknown flag --%s\n", name.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

bool HasSuffix(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Loads a graph from a snapshot or an RDF text file, sniffing the kind.
Result<TripleGraph> LoadAnyGraph(const std::string& path,
                                 std::shared_ptr<Dictionary> dict,
                                 bool use_mmap, std::string* kind) {
  if (store::LooksLikeSnapshot(path)) {
    *kind = use_mmap ? "snapshot(mmap)" : "snapshot";
    store::SnapshotLoadOptions options;
    options.use_mmap = use_mmap;
    return store::LoadSnapshot(path, std::move(dict), options);
  }
  if (HasSuffix(path, ".ttl")) {
    *kind = "turtle";
    return ParseTurtleFile(path, std::move(dict));
  }
  *kind = "ntriples";
  return ParseNTriplesFile(path, std::move(dict));
}

int CmdBuild(const Args& args) {
  if (args.positional().size() != 2 ||
      !args.OnlyKnown({"format"})) {
    return Usage();
  }
  const std::string& input = args.positional()[0];
  const std::string& output = args.positional()[1];
  const std::string format = args.GetString("format", "auto");

  WallTimer parse_timer;
  Result<TripleGraph> graph = Status::Internal("unreachable");
  if (format == "turtle" || (format == "auto" && HasSuffix(input, ".ttl"))) {
    graph = ParseTurtleFile(input, nullptr);
  } else if (format == "ntriples" || format == "auto") {
    graph = ParseNTriplesFile(input, nullptr);
  } else {
    std::fprintf(stderr, "rdfalign: unknown --format=%s\n", format.c_str());
    return 2;
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "rdfalign build: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const double parse_ms = parse_timer.ElapsedMillis();

  WallTimer write_timer;
  Status st = store::WriteSnapshot(*graph, output);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign build: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("built %s: %zu nodes, %zu triples (parse %.1f ms, write %.1f ms)\n",
              output.c_str(), graph->NumNodes(), graph->NumEdges(),
              parse_ms, write_timer.ElapsedMillis());
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional().size() != 1 || !args.OnlyKnown({"json"})) {
    return Usage();
  }
  const std::string& path = args.positional()[0];
  auto info = store::ReadSnapshotInfo(path);
  if (!info.ok()) {
    std::fprintf(stderr, "rdfalign info: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  if (args.Has("json")) {
    std::printf("{\n");
    std::printf("  \"path\": \"%s\",\n", path.c_str());
    std::printf("  \"version\": %u,\n", info->version);
    std::printf("  \"nodes\": %llu,\n",
                (unsigned long long)info->num_nodes);
    std::printf("  \"triples\": %llu,\n",
                (unsigned long long)info->num_triples);
    std::printf("  \"terms\": %llu,\n",
                (unsigned long long)info->num_terms);
    std::printf("  \"file_bytes\": %llu,\n",
                (unsigned long long)info->file_size);
    std::printf("  \"sections\": [\n");
    for (size_t i = 0; i < info->sections.size(); ++i) {
      const auto& s = info->sections[i];
      std::printf("    {\"name\": \"%s\", \"offset\": %llu, \"bytes\": %llu, "
                  "\"checksum\": \"%016llx\"}%s\n",
                  std::string(store::SectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum,
                  i + 1 < info->sections.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("rdfalign snapshot %s\n", path.c_str());
    std::printf("  format version : %u\n", info->version);
    std::printf("  nodes          : %llu\n",
                (unsigned long long)info->num_nodes);
    std::printf("  triples        : %llu\n",
                (unsigned long long)info->num_triples);
    std::printf("  dictionary     : %llu terms\n",
                (unsigned long long)info->num_terms);
    std::printf("  file size      : %llu bytes\n",
                (unsigned long long)info->file_size);
    std::printf("  sections:\n");
    for (const auto& s : info->sections) {
      std::printf("    %-12s offset=%-10llu bytes=%-10llu checksum=%016llx\n",
                  std::string(store::SectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum);
    }
  }
  return 0;
}

Result<AlignMethod> ParseMethod(const std::string& name) {
  if (name == "trivial") return AlignMethod::kTrivial;
  if (name == "deblank") return AlignMethod::kDeblank;
  if (name == "hybrid") return AlignMethod::kHybrid;
  if (name == "hybrid-contextual") return AlignMethod::kHybridContextual;
  if (name == "overlap") return AlignMethod::kOverlap;
  return Status::InvalidArgument("unknown alignment method: " + name);
}

int CmdAlign(const Args& args) {
  if (args.positional().size() != 2 ||
      !args.OnlyKnown({"method", "threads", "mmap", "json"})) {
    return Usage();
  }
  const std::string& path_a = args.positional()[0];
  const std::string& path_b = args.positional()[1];
  const bool use_mmap = args.Has("mmap");

  auto method = ParseMethod(args.GetString("method", "hybrid"));
  if (!method.ok()) {
    std::fprintf(stderr, "rdfalign align: %s\n",
                 method.status().ToString().c_str());
    return 2;
  }
  AlignerOptions options;
  options.method = *method;
  // Bound explicitly: an absurd count would be handed to the signing pool
  // (0 = all hardware threads is the engine's own convention).
  const std::optional<long long> threads = args.GetInt("threads", 1);
  if (!threads) return 2;
  if (*threads < 0 || *threads > 4096) {
    std::fprintf(stderr, "rdfalign align: --threads must be in [0, 4096]\n");
    return 2;
  }
  options.refinement.threads = static_cast<size_t>(*threads);
  options.overlap.propagate.refinement = options.refinement;

  // One shared dictionary puts both versions in a single label space.
  auto dict = std::make_shared<Dictionary>();
  std::string kind_a, kind_b;
  WallTimer load_a_timer;
  auto a = LoadAnyGraph(path_a, dict, use_mmap, &kind_a);
  if (!a.ok()) {
    std::fprintf(stderr, "rdfalign align: %s\n",
                 a.status().ToString().c_str());
    return 1;
  }
  const double load_a_ms = load_a_timer.ElapsedMillis();
  WallTimer load_b_timer;
  auto b = LoadAnyGraph(path_b, dict, use_mmap, &kind_b);
  if (!b.ok()) {
    std::fprintf(stderr, "rdfalign align: %s\n",
                 b.status().ToString().c_str());
    return 1;
  }
  const double load_b_ms = load_b_timer.ElapsedMillis();

  Aligner aligner(options);
  auto outcome = aligner.Align(*a, *b);
  if (!outcome.ok()) {
    std::fprintf(stderr, "rdfalign align: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  const auto& o = *outcome;
  if (args.Has("json")) {
    std::printf("{\n");
    std::printf("  \"method\": \"%s\",\n",
                std::string(AlignMethodToString(*method)).c_str());
    std::printf("  \"threads\": %zu,\n", options.refinement.threads);
    std::printf("  \"a\": {\"path\": \"%s\", \"kind\": \"%s\", "
                "\"nodes\": %zu, \"triples\": %zu, \"load_ms\": %.2f},\n",
                path_a.c_str(), kind_a.c_str(), a->NumNodes(), a->NumEdges(),
                load_a_ms);
    std::printf("  \"b\": {\"path\": \"%s\", \"kind\": \"%s\", "
                "\"nodes\": %zu, \"triples\": %zu, \"load_ms\": %.2f},\n",
                path_b.c_str(), kind_b.c_str(), b->NumNodes(), b->NumEdges(),
                load_b_ms);
    std::printf("  \"align_seconds\": %.4f,\n", o.seconds);
    std::printf("  \"phases\": {\"merge_ms\": %.2f, \"refine_ms\": %.2f, "
                "\"enrich_ms\": %.2f, \"overlap_index_ms\": %.2f, "
                "\"match_ms\": %.2f, \"stats_ms\": %.2f},\n",
                o.phases.merge_ms, o.phases.refine_ms, o.phases.enrich_ms,
                o.phases.overlap_index_ms, o.phases.match_ms,
                o.phases.stats_ms);
    std::printf("  \"aligned_edge_ratio\": %.6f,\n", o.edge_stats.Ratio());
    std::printf("  \"aligned_edges\": %zu,\n", o.edge_stats.aligned_edges);
    std::printf("  \"total_edges\": %zu,\n", o.edge_stats.total_edges);
    std::printf("  \"aligned_classes\": %zu,\n",
                o.node_stats.aligned_classes);
    std::printf("  \"unaligned_source_nodes\": %zu,\n",
                o.node_stats.unaligned_source_nodes);
    std::printf("  \"unaligned_target_nodes\": %zu,\n",
                o.node_stats.unaligned_target_nodes);
    std::printf("  \"refinement_iterations\": %zu,\n",
                o.refinement.iterations);
    std::printf("  \"final_classes\": %zu\n", o.refinement.final_classes);
    std::printf("}\n");
  } else {
    std::printf("alignment report (%s)\n",
                std::string(AlignMethodToString(*method)).c_str());
    std::printf("  a: %s [%s] %zu nodes, %zu triples, loaded in %.1f ms\n",
                path_a.c_str(), kind_a.c_str(), a->NumNodes(), a->NumEdges(),
                load_a_ms);
    std::printf("  b: %s [%s] %zu nodes, %zu triples, loaded in %.1f ms\n",
                path_b.c_str(), kind_b.c_str(), b->NumNodes(), b->NumEdges(),
                load_b_ms);
    std::printf("  threads            : %zu\n", options.refinement.threads);
    std::printf("  align time         : %.3f s\n", o.seconds);
    std::printf("  phases (ms)        : merge %.1f, refine %.1f, enrich %.1f,"
                " index %.1f, match %.1f, stats %.1f\n",
                o.phases.merge_ms, o.phases.refine_ms, o.phases.enrich_ms,
                o.phases.overlap_index_ms, o.phases.match_ms,
                o.phases.stats_ms);
    std::printf("  aligned edge ratio : %.4f (%zu / %zu)\n",
                o.edge_stats.Ratio(), o.edge_stats.aligned_edges,
                o.edge_stats.total_edges);
    std::printf("  aligned classes    : %zu\n", o.node_stats.aligned_classes);
    std::printf("  aligned nodes      : %zu source, %zu target\n",
                o.node_stats.aligned_source_nodes,
                o.node_stats.aligned_target_nodes);
    std::printf("  unaligned nodes    : %zu source, %zu target\n",
                o.node_stats.unaligned_source_nodes,
                o.node_stats.unaligned_target_nodes);
    if (o.refinement.iterations > 0) {
      std::printf("  refinement         : %zu iterations, %zu classes\n",
                  o.refinement.iterations, o.refinement.final_classes);
    }
  }
  return 0;
}

int CmdGen(const Args& args) {
  if (args.positional().size() != 1 ||
      !args.OnlyKnown({"scale", "versions", "seed"})) {
    return Usage();
  }
  const std::string& prefix = args.positional()[0];
  const std::optional<long long> versions = args.GetInt("versions", 2);
  if (!versions) return 2;
  if (*versions < 1 || *versions > 1000) {
    std::fprintf(stderr, "rdfalign gen: --versions must be in [1, 1000]\n");
    return 2;
  }
  const double scale = args.GetDouble("scale", 1.0);
  if (!(scale > 0.0) || scale > 1e6) {
    std::fprintf(stderr, "rdfalign gen: --scale must be in (0, 1e6]\n");
    return 2;
  }
  const std::optional<long long> seed = args.GetInt("seed", 5);
  if (!seed) return 2;
  if (*seed < 0) {
    std::fprintf(stderr, "rdfalign gen: --seed must be >= 0\n");
    return 2;
  }
  gen::CategoryOptions options = gen::CategoryOptions::FromScale(
      scale, static_cast<size_t>(*versions), static_cast<uint64_t>(*seed));

  gen::CategoryChain chain = gen::CategoryChain::Generate(options);
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    const std::string path = prefix + std::to_string(v + 1) + ".nt";
    Status st = WriteNTriplesFile(chain.Version(v), path);
    if (!st.ok()) {
      std::fprintf(stderr, "rdfalign gen: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %zu nodes, %zu triples\n", path.c_str(),
                chain.Version(v).NumNodes(), chain.Version(v).NumEdges());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "build") return CmdBuild(args);
  if (command == "info") return CmdInfo(args);
  if (command == "align") return CmdAlign(args);
  if (command == "gen") return CmdGen(args);
  std::fprintf(stderr, "rdfalign: unknown command '%s'\n", command.c_str());
  return Usage();
}
