// rdfalign — the command-line front end of the snapshot store + aligner.
//
//   rdfalign build <input> <output.snap>    text RDF -> binary snapshot
//   rdfalign info <file>                    snapshot / delta / archive dump
//   rdfalign align <a> <b>                  align two graphs, print report
//   rdfalign diff <base> <next> <out>       align and write a binary delta
//   rdfalign patch <base> <delta> <out>     replay a delta onto a base
//   rdfalign archive <out> <v1> <v2> ...    build + save a version archive
//   rdfalign gen <out-prefix>               synthetic version chain (CI/demo)
//
// `align`, `diff`, `patch`, and `archive` accept snapshots or RDF text
// files interchangeably (sniffed by magic); snapshots load with zero
// parsing, which is the point — build once, align many times. `patch`
// exits 2 when the delta does not apply to the given base. See
// docs/store.md and the README workflow.

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/archive.h"
#include "core/delta.h"
#include "gen/category_gen.h"
#include "parser/ntriples_parser.h"
#include "parser/ntriples_writer.h"
#include "parser/turtle_parser.h"
#include "rdf/statistics.h"
#include "store/archive_io.h"
#include "store/delta.h"
#include "store/snapshot.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: rdfalign <command> [args]\n"
      "\n"
      "commands:\n"
      "  build <input> <output.snap> [--format=auto|ntriples|turtle]\n"
      "       [--threads=N]\n"
      "      parse an RDF text file and write a binary snapshot\n"
      "  info <file> [--json]\n"
      "      print header, sections, and statistics of a snapshot,\n"
      "      delta, or archive file (sniffed by magic)\n"
      "  align <a> <b> [--method=M] [--threads=N] [--mmap] [--json]\n"
      "      align two graphs (snapshot or RDF text each) and report\n"
      "      methods: trivial deblank hybrid hybrid-contextual overlap\n"
      "      (default hybrid; --threads=0 uses all hardware threads)\n"
      "  diff <base> <next> <out.delta> [--method=M] [--threads=N]\n"
      "       [--mmap] [--json]\n"
      "      align two versions and write the incremental binary delta\n"
      "  patch <base> <delta> <out.snap> [--threads=N] [--mmap] [--json]\n"
      "      reconstruct the next version from base + delta and write it\n"
      "      as a snapshot (exit 2 when the delta does not fit the base)\n"
      "  archive <out.archive> <v1> <v2> ... [--method=M] [--threads=N]\n"
      "       [--mmap] [--json]\n"
      "      append versions into an interval archive and persist it as\n"
      "      a base snapshot plus a delta chain\n"
      "  gen <out-prefix> [--scale=S] [--versions=K] [--seed=N]\n"
      "      generate a synthetic category-graph version chain as\n"
      "      <out-prefix>1.nt, <out-prefix>2.nt, ...\n");
  return 2;
}

/// `--name=value` / `--name` flags after the positional arguments.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        size_t eq = arg.find('=');
        if (eq == std::string::npos) {
          flags_[arg.substr(2)] = "";
        } else {
          flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
        }
      } else {
        positional_.push_back(std::move(arg));
      }
    }
  }

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
  }

  // Signed so that callers see "--versions=-1" as -1 and can reject it
  // with a range error, instead of a wrapped ~2^64 surprise. Malformed
  // values ("--threads=1o", "--seed=abc") are reported here and become
  // nullopt rather than silently parsing as a prefix or zero.
  std::optional<long long> GetInt(const std::string& name,
                                  long long fallback) const {
    auto it = flags_.find(name);
    if (it == flags_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long value = std::strtoll(it->second.c_str(), &end, 10);
    if (it->second.empty() || *end != '\0' || errno == ERANGE) {
      std::fprintf(stderr, "rdfalign: --%s expects an integer, got '%s'\n",
                   name.c_str(), it->second.c_str());
      return std::nullopt;
    }
    return value;
  }

  double GetDouble(const std::string& name, double fallback) const {
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : std::atof(it->second.c_str());
  }

  /// Flags this command does not understand -> usage error.
  bool OnlyKnown(std::initializer_list<const char*> known) const {
    for (const auto& [name, value] : flags_) {
      bool ok = false;
      for (const char* k : known) ok = ok || name == k;
      if (!ok) {
        std::fprintf(stderr, "rdfalign: unknown flag --%s\n", name.c_str());
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

bool HasSuffix(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Parses --threads with the shared bound policy (0 = all hardware
/// threads, the pool's own convention); an absurd count is a usage error.
bool ParseThreadsFlag(const Args& args, const char* cmd, size_t* out) {
  const std::optional<long long> threads = args.GetInt("threads", 1);
  if (!threads) return false;
  if (*threads < 0 || *threads > 4096) {
    std::fprintf(stderr, "rdfalign %s: --threads must be in [0, 4096]\n",
                 cmd);
    return false;
  }
  *out = static_cast<size_t>(*threads);
  return true;
}

/// Loads a graph from a snapshot or an RDF text file, sniffing the kind.
/// `threads` feeds the post-parse sort/index build of the text paths
/// (snapshot loads are already zero-parse).
Result<TripleGraph> LoadAnyGraph(const std::string& path,
                                 std::shared_ptr<Dictionary> dict,
                                 bool use_mmap, size_t threads,
                                 std::string* kind) {
  if (store::LooksLikeSnapshot(path)) {
    *kind = use_mmap ? "snapshot(mmap)" : "snapshot";
    store::SnapshotLoadOptions options;
    options.use_mmap = use_mmap;
    return store::LoadSnapshot(path, std::move(dict), options);
  }
  if (HasSuffix(path, ".ttl")) {
    *kind = "turtle";
    return ParseTurtleFile(path, std::move(dict), threads);
  }
  *kind = "ntriples";
  return ParseNTriplesFile(path, std::move(dict), nullptr, threads);
}

int CmdBuild(const Args& args) {
  if (args.positional().size() != 2 ||
      !args.OnlyKnown({"format", "threads"})) {
    return Usage();
  }
  const std::string& input = args.positional()[0];
  const std::string& output = args.positional()[1];
  const std::string format = args.GetString("format", "auto");
  size_t threads = 1;
  if (!ParseThreadsFlag(args, "build", &threads)) return 2;
  const size_t workers = ResolveThreads(threads);

  WallTimer parse_timer;
  Result<TripleGraph> graph = Status::Internal("unreachable");
  if (format == "turtle" || (format == "auto" && HasSuffix(input, ".ttl"))) {
    graph = ParseTurtleFile(input, nullptr, workers);
  } else if (format == "ntriples" || format == "auto") {
    graph = ParseNTriplesFile(input, nullptr, nullptr, workers);
  } else {
    std::fprintf(stderr, "rdfalign: unknown --format=%s\n", format.c_str());
    return 2;
  }
  if (!graph.ok()) {
    std::fprintf(stderr, "rdfalign build: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const double parse_ms = parse_timer.ElapsedMillis();

  WallTimer write_timer;
  Status st = store::WriteSnapshot(*graph, output);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign build: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("built %s: %zu nodes, %zu triples (parse %.1f ms, "
              "write %.1f ms, %zu threads)\n",
              output.c_str(), graph->NumNodes(), graph->NumEdges(),
              parse_ms, write_timer.ElapsedMillis(), workers);
  return 0;
}

int InfoSnapshot(const std::string& path, bool json) {
  auto info = store::ReadSnapshotInfo(path);
  if (!info.ok()) {
    std::fprintf(stderr, "rdfalign info: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\n");
    std::printf("  \"path\": \"%s\",\n", path.c_str());
    std::printf("  \"version\": %u,\n", info->version);
    std::printf("  \"nodes\": %llu,\n",
                (unsigned long long)info->num_nodes);
    std::printf("  \"triples\": %llu,\n",
                (unsigned long long)info->num_triples);
    std::printf("  \"terms\": %llu,\n",
                (unsigned long long)info->num_terms);
    std::printf("  \"file_bytes\": %llu,\n",
                (unsigned long long)info->file_size);
    std::printf("  \"sections\": [\n");
    for (size_t i = 0; i < info->sections.size(); ++i) {
      const auto& s = info->sections[i];
      std::printf("    {\"name\": \"%s\", \"offset\": %llu, \"bytes\": %llu, "
                  "\"checksum\": \"%016llx\"}%s\n",
                  std::string(store::SectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum,
                  i + 1 < info->sections.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("rdfalign snapshot %s\n", path.c_str());
    std::printf("  format version : %u\n", info->version);
    std::printf("  nodes          : %llu\n",
                (unsigned long long)info->num_nodes);
    std::printf("  triples        : %llu\n",
                (unsigned long long)info->num_triples);
    std::printf("  dictionary     : %llu terms\n",
                (unsigned long long)info->num_terms);
    std::printf("  file size      : %llu bytes\n",
                (unsigned long long)info->file_size);
    std::printf("  sections:\n");
    for (const auto& s : info->sections) {
      std::printf("    %-12s offset=%-10llu bytes=%-10llu checksum=%016llx\n",
                  std::string(store::SectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum);
    }
  }
  return 0;
}

int InfoDelta(const std::string& path, bool json) {
  auto info = store::ReadDeltaInfo(path);
  if (!info.ok()) {
    std::fprintf(stderr, "rdfalign info: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\n");
    std::printf("  \"path\": \"%s\",\n", path.c_str());
    std::printf("  \"kind\": \"delta\",\n");
    std::printf("  \"version\": %u,\n", info->version);
    std::printf("  \"base\": {\"nodes\": %llu, \"triples\": %llu, "
                "\"terms\": %llu, \"fingerprint\": \"%016llx\"},\n",
                (unsigned long long)info->base_nodes,
                (unsigned long long)info->base_triples,
                (unsigned long long)info->base_terms,
                (unsigned long long)info->base_fingerprint);
    std::printf("  \"next\": {\"nodes\": %llu, \"triples\": %llu, "
                "\"terms\": %llu, \"new_terms\": %llu},\n",
                (unsigned long long)info->next_nodes,
                (unsigned long long)info->next_triples,
                (unsigned long long)info->next_terms,
                (unsigned long long)info->num_new_terms);
    std::printf("  \"file_bytes\": %llu,\n",
                (unsigned long long)info->file_size);
    std::printf("  \"sections\": [\n");
    for (size_t i = 0; i < info->sections.size(); ++i) {
      const auto& s = info->sections[i];
      std::printf("    {\"name\": \"%s\", \"offset\": %llu, \"bytes\": %llu, "
                  "\"checksum\": \"%016llx\"}%s\n",
                  std::string(store::DeltaSectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum,
                  i + 1 < info->sections.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("rdfalign delta %s\n", path.c_str());
    std::printf("  format version : %u\n", info->version);
    std::printf("  base           : %llu nodes, %llu triples, %llu terms\n",
                (unsigned long long)info->base_nodes,
                (unsigned long long)info->base_triples,
                (unsigned long long)info->base_terms);
    std::printf("  base fingerprint: %016llx\n",
                (unsigned long long)info->base_fingerprint);
    std::printf("  next           : %llu nodes, %llu triples, %llu terms "
                "(%llu new)\n",
                (unsigned long long)info->next_nodes,
                (unsigned long long)info->next_triples,
                (unsigned long long)info->next_terms,
                (unsigned long long)info->num_new_terms);
    std::printf("  file size      : %llu bytes\n",
                (unsigned long long)info->file_size);
    std::printf("  sections:\n");
    for (const auto& s : info->sections) {
      std::printf("    %-16s offset=%-10llu bytes=%-10llu checksum=%016llx\n",
                  std::string(store::DeltaSectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum);
    }
  }
  return 0;
}

int InfoArchive(const std::string& path, bool json) {
  auto info = store::ReadArchiveInfo(path);
  if (!info.ok()) {
    std::fprintf(stderr, "rdfalign info: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  if (json) {
    std::printf("{\n");
    std::printf("  \"path\": \"%s\",\n", path.c_str());
    std::printf("  \"kind\": \"archive\",\n");
    std::printf("  \"version\": %u,\n", info->version);
    std::printf("  \"versions\": %llu,\n",
                (unsigned long long)info->num_versions);
    std::printf("  \"file_bytes\": %llu,\n",
                (unsigned long long)info->file_size);
    std::printf("  \"sections\": [\n");
    for (size_t i = 0; i < info->sections.size(); ++i) {
      const auto& s = info->sections[i];
      std::printf("    {\"name\": \"%s\", \"offset\": %llu, \"bytes\": %llu, "
                  "\"checksum\": \"%016llx\"}%s\n",
                  std::string(store::ArchiveSectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum,
                  i + 1 < info->sections.size() ? "," : "");
    }
    std::printf("  ]\n}\n");
  } else {
    std::printf("rdfalign archive %s\n", path.c_str());
    std::printf("  format version : %u\n", info->version);
    std::printf("  versions       : %llu\n",
                (unsigned long long)info->num_versions);
    std::printf("  file size      : %llu bytes\n",
                (unsigned long long)info->file_size);
    std::printf("  sections:\n");
    for (const auto& s : info->sections) {
      std::printf("    %-13s offset=%-10llu bytes=%-10llu checksum=%016llx\n",
                  std::string(store::ArchiveSectionName(s.id)).c_str(),
                  (unsigned long long)s.offset, (unsigned long long)s.size,
                  (unsigned long long)s.checksum);
    }
  }
  return 0;
}

int CmdInfo(const Args& args) {
  if (args.positional().size() != 1 || !args.OnlyKnown({"json"})) {
    return Usage();
  }
  const std::string& path = args.positional()[0];
  const bool json = args.Has("json");
  if (store::LooksLikeDelta(path)) return InfoDelta(path, json);
  if (store::LooksLikeArchive(path)) return InfoArchive(path, json);
  // Snapshot, or the error path for files that are no store format at all.
  return InfoSnapshot(path, json);
}

Result<AlignMethod> ParseMethod(const std::string& name) {
  if (name == "trivial") return AlignMethod::kTrivial;
  if (name == "deblank") return AlignMethod::kDeblank;
  if (name == "hybrid") return AlignMethod::kHybrid;
  if (name == "hybrid-contextual") return AlignMethod::kHybridContextual;
  if (name == "overlap") return AlignMethod::kOverlap;
  return Status::InvalidArgument("unknown alignment method: " + name);
}

/// Parses --method / --threads into `options`, printing errors itself;
/// the caller exits 2 on false. Threads are bounded explicitly: an absurd
/// count would be handed to the signing pool (0 = all hardware threads is
/// the engine's own convention).
bool ParseAlignerFlags(const Args& args, const char* cmd,
                       AlignerOptions* options) {
  auto method = ParseMethod(args.GetString("method", "hybrid"));
  if (!method.ok()) {
    std::fprintf(stderr, "rdfalign %s: %s\n", cmd,
                 method.status().ToString().c_str());
    return false;
  }
  options->method = *method;
  size_t threads = 1;
  if (!ParseThreadsFlag(args, cmd, &threads)) return false;
  options->refinement.threads = threads;
  options->overlap.propagate.refinement = options->refinement;
  return true;
}

int CmdAlign(const Args& args) {
  if (args.positional().size() != 2 ||
      !args.OnlyKnown({"method", "threads", "mmap", "json"})) {
    return Usage();
  }
  const std::string& path_a = args.positional()[0];
  const std::string& path_b = args.positional()[1];
  const bool use_mmap = args.Has("mmap");

  AlignerOptions options;
  if (!ParseAlignerFlags(args, "align", &options)) return 2;
  const auto method = options.method;
  const size_t workers = ResolveThreads(options.refinement.threads);

  // One shared dictionary puts both versions in a single label space.
  auto dict = std::make_shared<Dictionary>();
  std::string kind_a, kind_b;
  WallTimer load_a_timer;
  auto a = LoadAnyGraph(path_a, dict, use_mmap, workers, &kind_a);
  if (!a.ok()) {
    std::fprintf(stderr, "rdfalign align: %s\n",
                 a.status().ToString().c_str());
    return 1;
  }
  const double load_a_ms = load_a_timer.ElapsedMillis();
  WallTimer load_b_timer;
  auto b = LoadAnyGraph(path_b, dict, use_mmap, workers, &kind_b);
  if (!b.ok()) {
    std::fprintf(stderr, "rdfalign align: %s\n",
                 b.status().ToString().c_str());
    return 1;
  }
  const double load_b_ms = load_b_timer.ElapsedMillis();

  Aligner aligner(options);
  auto outcome = aligner.Align(*a, *b);
  if (!outcome.ok()) {
    std::fprintf(stderr, "rdfalign align: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }

  const auto& o = *outcome;
  if (args.Has("json")) {
    std::printf("{\n");
    std::printf("  \"method\": \"%s\",\n",
                std::string(AlignMethodToString(method)).c_str());
    std::printf("  \"threads\": %zu,\n", workers);
    std::printf("  \"a\": {\"path\": \"%s\", \"kind\": \"%s\", "
                "\"nodes\": %zu, \"triples\": %zu, \"load_ms\": %.2f},\n",
                path_a.c_str(), kind_a.c_str(), a->NumNodes(), a->NumEdges(),
                load_a_ms);
    std::printf("  \"b\": {\"path\": \"%s\", \"kind\": \"%s\", "
                "\"nodes\": %zu, \"triples\": %zu, \"load_ms\": %.2f},\n",
                path_b.c_str(), kind_b.c_str(), b->NumNodes(), b->NumEdges(),
                load_b_ms);
    std::printf("  \"align_seconds\": %.4f,\n", o.seconds);
    std::printf("  \"phases\": {\"merge_ms\": %.2f, \"refine_ms\": %.2f, "
                "\"enrich_ms\": %.2f, \"overlap_index_ms\": %.2f, "
                "\"match_ms\": %.2f, \"stats_ms\": %.2f},\n",
                o.phases.merge_ms, o.phases.refine_ms, o.phases.enrich_ms,
                o.phases.overlap_index_ms, o.phases.match_ms,
                o.phases.stats_ms);
    std::printf("  \"aligned_edge_ratio\": %.6f,\n", o.edge_stats.Ratio());
    std::printf("  \"aligned_edges\": %zu,\n", o.edge_stats.aligned_edges);
    std::printf("  \"total_edges\": %zu,\n", o.edge_stats.total_edges);
    std::printf("  \"aligned_classes\": %zu,\n",
                o.node_stats.aligned_classes);
    std::printf("  \"unaligned_source_nodes\": %zu,\n",
                o.node_stats.unaligned_source_nodes);
    std::printf("  \"unaligned_target_nodes\": %zu,\n",
                o.node_stats.unaligned_target_nodes);
    std::printf("  \"refinement_iterations\": %zu,\n",
                o.refinement.iterations);
    std::printf("  \"final_classes\": %zu\n", o.refinement.final_classes);
    std::printf("}\n");
  } else {
    std::printf("alignment report (%s)\n",
                std::string(AlignMethodToString(method)).c_str());
    std::printf("  a: %s [%s] %zu nodes, %zu triples, loaded in %.1f ms\n",
                path_a.c_str(), kind_a.c_str(), a->NumNodes(), a->NumEdges(),
                load_a_ms);
    std::printf("  b: %s [%s] %zu nodes, %zu triples, loaded in %.1f ms\n",
                path_b.c_str(), kind_b.c_str(), b->NumNodes(), b->NumEdges(),
                load_b_ms);
    std::printf("  threads            : %zu\n", workers);
    std::printf("  align time         : %.3f s\n", o.seconds);
    std::printf("  phases (ms)        : merge %.1f, refine %.1f, enrich %.1f,"
                " index %.1f, match %.1f, stats %.1f\n",
                o.phases.merge_ms, o.phases.refine_ms, o.phases.enrich_ms,
                o.phases.overlap_index_ms, o.phases.match_ms,
                o.phases.stats_ms);
    std::printf("  aligned edge ratio : %.4f (%zu / %zu)\n",
                o.edge_stats.Ratio(), o.edge_stats.aligned_edges,
                o.edge_stats.total_edges);
    std::printf("  aligned classes    : %zu\n", o.node_stats.aligned_classes);
    std::printf("  aligned nodes      : %zu source, %zu target\n",
                o.node_stats.aligned_source_nodes,
                o.node_stats.aligned_target_nodes);
    std::printf("  unaligned nodes    : %zu source, %zu target\n",
                o.node_stats.unaligned_source_nodes,
                o.node_stats.unaligned_target_nodes);
    if (o.refinement.iterations > 0) {
      std::printf("  refinement         : %zu iterations, %zu classes\n",
                  o.refinement.iterations, o.refinement.final_classes);
    }
  }
  return 0;
}

int CmdDiff(const Args& args) {
  if (args.positional().size() != 3 ||
      !args.OnlyKnown({"method", "threads", "mmap", "json"})) {
    return Usage();
  }
  const std::string& path_base = args.positional()[0];
  const std::string& path_next = args.positional()[1];
  const std::string& path_out = args.positional()[2];
  const bool use_mmap = args.Has("mmap");
  AlignerOptions options;
  if (!ParseAlignerFlags(args, "diff", &options)) return 2;
  const size_t workers = ResolveThreads(options.refinement.threads);

  auto dict = std::make_shared<Dictionary>();
  std::string kind_base, kind_next;
  auto base =
      LoadAnyGraph(path_base, dict, use_mmap, workers, &kind_base);
  if (!base.ok()) {
    std::fprintf(stderr, "rdfalign diff: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  auto next =
      LoadAnyGraph(path_next, dict, use_mmap, workers, &kind_next);
  if (!next.ok()) {
    std::fprintf(stderr, "rdfalign diff: %s\n",
                 next.status().ToString().c_str());
    return 1;
  }

  WallTimer align_timer;
  auto cg = CombinedGraph::Build(*base, *next, workers);
  if (!cg.ok()) {
    std::fprintf(stderr, "rdfalign diff: %s\n",
                 cg.status().ToString().c_str());
    return 1;
  }
  Aligner aligner(options);
  AlignmentOutcome outcome = aligner.AlignCombined(*cg);
  const VersionNodeMap map = NodeMapFromPartition(*cg, outcome.partition);
  const double align_ms = align_timer.ElapsedMillis();

  WallTimer write_timer;
  store::DeltaWriteStats stats;
  Status st = store::WriteDelta(*base, *next, map, path_out, &stats);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign diff: %s\n", st.ToString().c_str());
    return 1;
  }
  const double write_ms = write_timer.ElapsedMillis();

  if (args.Has("json")) {
    std::printf("{\n");
    std::printf("  \"method\": \"%s\",\n",
                std::string(AlignMethodToString(options.method)).c_str());
    std::printf("  \"threads\": %zu,\n", workers);
    std::printf("  \"base\": {\"path\": \"%s\", \"kind\": \"%s\", "
                "\"nodes\": %zu, \"triples\": %zu},\n",
                path_base.c_str(), kind_base.c_str(), base->NumNodes(),
                base->NumEdges());
    std::printf("  \"next\": {\"path\": \"%s\", \"kind\": \"%s\", "
                "\"nodes\": %zu, \"triples\": %zu},\n",
                path_next.c_str(), kind_next.c_str(), next->NumNodes(),
                next->NumEdges());
    std::printf("  \"delta\": \"%s\",\n", path_out.c_str());
    std::printf("  \"kept_triples\": %llu,\n",
                (unsigned long long)stats.kept_triples);
    std::printf("  \"removed_triples\": %llu,\n",
                (unsigned long long)stats.removed_triples);
    std::printf("  \"added_triples\": %llu,\n",
                (unsigned long long)stats.added_triples);
    std::printf("  \"new_terms\": %llu,\n",
                (unsigned long long)stats.new_terms);
    std::printf("  \"mapped_nodes\": %llu,\n",
                (unsigned long long)stats.mapped_nodes);
    std::printf("  \"kept_runs\": %llu,\n",
                (unsigned long long)stats.kept_runs);
    std::printf("  \"delta_bytes\": %llu,\n",
                (unsigned long long)stats.file_bytes);
    std::printf("  \"align_ms\": %.2f,\n", align_ms);
    std::printf("  \"write_ms\": %.2f\n", write_ms);
    std::printf("}\n");
  } else {
    std::printf("wrote delta %s (%llu bytes)\n", path_out.c_str(),
                (unsigned long long)stats.file_bytes);
    std::printf("  base            : %s [%s] %zu nodes, %zu triples\n",
                path_base.c_str(), kind_base.c_str(), base->NumNodes(),
                base->NumEdges());
    std::printf("  next            : %s [%s] %zu nodes, %zu triples\n",
                path_next.c_str(), kind_next.c_str(), next->NumNodes(),
                next->NumEdges());
    std::printf("  change          : ~%llu kept (+%llu -%llu), "
                "%llu new terms\n",
                (unsigned long long)stats.kept_triples,
                (unsigned long long)stats.added_triples,
                (unsigned long long)stats.removed_triples,
                (unsigned long long)stats.new_terms);
    std::printf("  mapped nodes    : %llu / %zu (%llu kept runs)\n",
                (unsigned long long)stats.mapped_nodes, next->NumNodes(),
                (unsigned long long)stats.kept_runs);
    std::printf("  align %.1f ms, write %.1f ms\n", align_ms, write_ms);
  }
  return 0;
}

int CmdPatch(const Args& args) {
  if (args.positional().size() != 3 ||
      !args.OnlyKnown({"threads", "mmap", "json"})) {
    return Usage();
  }
  const std::string& path_base = args.positional()[0];
  const std::string& path_delta = args.positional()[1];
  const std::string& path_out = args.positional()[2];
  const bool use_mmap = args.Has("mmap");
  size_t threads = 1;
  if (!ParseThreadsFlag(args, "patch", &threads)) return 2;
  const size_t workers = ResolveThreads(threads);

  auto dict = std::make_shared<Dictionary>();
  std::string kind_base;
  WallTimer load_timer;
  auto base =
      LoadAnyGraph(path_base, dict, use_mmap, workers, &kind_base);
  if (!base.ok()) {
    std::fprintf(stderr, "rdfalign patch: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  const double load_ms = load_timer.ElapsedMillis();

  WallTimer apply_timer;
  store::DeltaApplyStats stats;
  store::DeltaApplyOptions apply_options;
  apply_options.threads = workers;
  auto next = store::ApplyDelta(*base, path_delta, dict, apply_options, &stats);
  if (!next.ok()) {
    std::fprintf(stderr, "rdfalign patch: %s\n",
                 next.status().ToString().c_str());
    // A delta that does not belong to this base (or is no delta at all)
    // is a usage error, distinct from I/O failures and corrupt files.
    return next.status().IsInvalidArgument() ? 2 : 1;
  }
  const double apply_ms = apply_timer.ElapsedMillis();

  WallTimer write_timer;
  Status st = store::WriteSnapshot(*next, path_out);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign patch: %s\n", st.ToString().c_str());
    return 1;
  }
  const double write_ms = write_timer.ElapsedMillis();

  if (args.Has("json")) {
    std::printf("{\n");
    std::printf("  \"threads\": %zu,\n", workers);
    std::printf("  \"base\": {\"path\": \"%s\", \"kind\": \"%s\", "
                "\"nodes\": %zu, \"triples\": %zu},\n",
                path_base.c_str(), kind_base.c_str(), base->NumNodes(),
                base->NumEdges());
    std::printf("  \"delta\": \"%s\",\n", path_delta.c_str());
    std::printf("  \"out\": \"%s\",\n", path_out.c_str());
    std::printf("  \"nodes\": %zu,\n", next->NumNodes());
    std::printf("  \"triples\": %zu,\n", next->NumEdges());
    std::printf("  \"kept_triples\": %llu,\n",
                (unsigned long long)stats.kept_triples);
    std::printf("  \"removed_triples\": %llu,\n",
                (unsigned long long)stats.removed_triples);
    std::printf("  \"added_triples\": %llu,\n",
                (unsigned long long)stats.added_triples);
    std::printf("  \"load_ms\": %.2f,\n", load_ms);
    std::printf("  \"apply_ms\": %.2f,\n", apply_ms);
    std::printf("  \"write_ms\": %.2f\n", write_ms);
    std::printf("}\n");
  } else {
    std::printf("patched %s + %s -> %s: %zu nodes, %zu triples "
                "(~%llu kept +%llu -%llu)\n",
                path_base.c_str(), path_delta.c_str(), path_out.c_str(),
                next->NumNodes(), next->NumEdges(),
                (unsigned long long)stats.kept_triples,
                (unsigned long long)stats.added_triples,
                (unsigned long long)stats.removed_triples);
    std::printf("  load %.1f ms, apply %.1f ms, write %.1f ms\n", load_ms,
                apply_ms, write_ms);
  }
  return 0;
}

int CmdArchive(const Args& args) {
  if (args.positional().size() < 2 ||
      !args.OnlyKnown({"method", "threads", "mmap", "json"})) {
    return Usage();
  }
  const std::string& path_out = args.positional()[0];
  const bool use_mmap = args.Has("mmap");
  AlignerOptions options;
  if (!ParseAlignerFlags(args, "archive", &options)) return 2;
  const size_t workers = ResolveThreads(options.refinement.threads);

  // One shared dictionary across the whole chain (the Append invariant).
  auto dict = std::make_shared<Dictionary>();
  VersionArchive archive(options);
  WallTimer append_timer;
  for (size_t v = 1; v < args.positional().size(); ++v) {
    const std::string& path = args.positional()[v];
    std::string kind;
    auto g = LoadAnyGraph(path, dict, use_mmap, workers, &kind);
    if (!g.ok()) {
      std::fprintf(stderr, "rdfalign archive: %s\n",
                   g.status().ToString().c_str());
      return 1;
    }
    auto appended = archive.Append(*g);
    if (!appended.ok()) {
      std::fprintf(stderr, "rdfalign archive: %s\n",
                   appended.status().ToString().c_str());
      return 1;
    }
  }
  const double append_ms = append_timer.ElapsedMillis();

  WallTimer save_timer;
  store::ArchiveSaveStats save_stats;
  Status st = store::SaveArchive(archive, path_out, &save_stats);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign archive: %s\n", st.ToString().c_str());
    return 1;
  }
  const double save_ms = save_timer.ElapsedMillis();
  const ArchiveStats stats = archive.Stats();

  if (args.Has("json")) {
    std::printf("{\n");
    std::printf("  \"archive\": \"%s\",\n", path_out.c_str());
    std::printf("  \"method\": \"%s\",\n",
                std::string(AlignMethodToString(options.method)).c_str());
    std::printf("  \"threads\": %zu,\n", workers);
    std::printf("  \"versions\": %zu,\n", stats.versions);
    std::printf("  \"entities\": %zu,\n", stats.entities);
    std::printf("  \"distinct_triples\": %zu,\n", stats.distinct_triples);
    std::printf("  \"interval_records\": %zu,\n", stats.interval_records);
    std::printf("  \"triple_version_pairs\": %zu,\n",
                stats.triple_version_pairs);
    std::printf("  \"compression_ratio\": %.4f,\n",
                stats.CompressionRatio());
    std::printf("  \"file_bytes\": %llu,\n",
                (unsigned long long)save_stats.file_bytes);
    std::printf("  \"base_bytes\": %llu,\n",
                (unsigned long long)save_stats.base_bytes);
    std::printf("  \"delta_bytes\": %llu,\n",
                (unsigned long long)save_stats.delta_bytes);
    std::printf("  \"append_ms\": %.2f,\n", append_ms);
    std::printf("  \"save_ms\": %.2f\n", save_ms);
    std::printf("}\n");
  } else {
    std::printf("archived %zu versions -> %s (%llu bytes)\n",
                stats.versions, path_out.c_str(),
                (unsigned long long)save_stats.file_bytes);
    std::printf("  entities            : %zu\n", stats.entities);
    std::printf("  interval records    : %zu (distinct triples %zu)\n",
                stats.interval_records, stats.distinct_triples);
    std::printf("  compression ratio   : %.2fx (%zu triple-version pairs)\n",
                stats.CompressionRatio(), stats.triple_version_pairs);
    std::printf("  base %llu bytes + deltas %llu bytes\n",
                (unsigned long long)save_stats.base_bytes,
                (unsigned long long)save_stats.delta_bytes);
    std::printf("  append %.1f ms, save %.1f ms\n", append_ms, save_ms);
  }
  return 0;
}

int CmdGen(const Args& args) {
  if (args.positional().size() != 1 ||
      !args.OnlyKnown({"scale", "versions", "seed"})) {
    return Usage();
  }
  const std::string& prefix = args.positional()[0];
  const std::optional<long long> versions = args.GetInt("versions", 2);
  if (!versions) return 2;
  if (*versions < 1 || *versions > 1000) {
    std::fprintf(stderr, "rdfalign gen: --versions must be in [1, 1000]\n");
    return 2;
  }
  const double scale = args.GetDouble("scale", 1.0);
  if (!(scale > 0.0) || scale > 1e6) {
    std::fprintf(stderr, "rdfalign gen: --scale must be in (0, 1e6]\n");
    return 2;
  }
  const std::optional<long long> seed = args.GetInt("seed", 5);
  if (!seed) return 2;
  if (*seed < 0) {
    std::fprintf(stderr, "rdfalign gen: --seed must be >= 0\n");
    return 2;
  }
  gen::CategoryOptions options = gen::CategoryOptions::FromScale(
      scale, static_cast<size_t>(*versions), static_cast<uint64_t>(*seed));

  gen::CategoryChain chain = gen::CategoryChain::Generate(options);
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    const std::string path = prefix + std::to_string(v + 1) + ".nt";
    Status st = WriteNTriplesFile(chain.Version(v), path);
    if (!st.ok()) {
      std::fprintf(stderr, "rdfalign gen: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %zu nodes, %zu triples\n", path.c_str(),
                chain.Version(v).NumNodes(), chain.Version(v).NumEdges());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Args args(argc, argv, 2);
  if (command == "build") return CmdBuild(args);
  if (command == "info") return CmdInfo(args);
  if (command == "align") return CmdAlign(args);
  if (command == "diff") return CmdDiff(args);
  if (command == "patch") return CmdPatch(args);
  if (command == "archive") return CmdArchive(args);
  if (command == "gen") return CmdGen(args);
  std::fprintf(stderr, "rdfalign: unknown command '%s'\n", command.c_str());
  return Usage();
}
