// rdfalignd — the resident alignment service.
//
//   rdfalignd [--port=N] [--host=A] [--workers=N] [--cache-mb=N]
//             [--drain-ms=N] [--io-timeout-ms=N] [--max-conns=N]
//             [--session-linger-ms=N]
//
// Serves every rdfalign verb over the length-prefixed TCP protocol of
// src/service/protocol.h, with all graph loads going through one shared
// LRU snapshot cache: the first request for a snapshot pays the load, all
// later requests (from any connection) hit the resident copy. Drive it
// with `rdfalign client <host:port|port> <command> [args]` — output and
// exit codes match the one-shot CLI exactly. SIGTERM/SIGINT shut down
// gracefully: the listener closes, then connected clients — including
// idle connections and open `stream` sessions — keep being served until
// they hang up or --drain-ms expires. See docs/service.md.

#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "service/flags.h"
#include "service/server.h"

using namespace rdfalign;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: rdfalignd [--port=N] [--host=A] [--workers=N] [--cache-mb=N]\n"
      "                 [--drain-ms=N] [--io-timeout-ms=N] [--max-conns=N]\n"
      "                 [--session-linger-ms=N]\n"
      "\n"
      "  --port=N      TCP port to listen on (default 7464; 0 = ephemeral)\n"
      "  --host=A      listen address (default 127.0.0.1)\n"
      "  --workers=N   concurrent connection handlers (default 4)\n"
      "  --cache-mb=N  snapshot cache capacity in MiB (default 1024)\n"
      "  --drain-ms=N  shutdown grace for connected clients (default "
      "30000)\n"
      "  --io-timeout-ms=N      per-frame read/write deadline; slow or\n"
      "                         stalled peers are evicted (default 0 = off)\n"
      "  --max-conns=N          connection cap; excess connections get a\n"
      "                         clean load-shed error (default 0 = "
      "unlimited)\n"
      "  --session-linger-ms=N  keep disconnected stream sessions\n"
      "                         resumable via `stream resume <token>` for\n"
      "                         this long (default 0 = off)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const service::Args args(argc, argv, 1);
  std::string error;
  if (!args.positional().empty() ||
      !args.OnlyKnown({"port", "host", "workers", "cache-mb", "drain-ms",
                       "io-timeout-ms", "max-conns", "session-linger-ms"},
                      &error)) {
    if (!error.empty()) std::fprintf(stderr, "%s\n", error.c_str());
    return Usage();
  }

  service::ServerOptions options;
  const std::optional<long long> port = args.GetInt("port", 7464, &error);
  if (!port || *port < 0 || *port > 65535) {
    std::fprintf(stderr, "rdfalignd: --port must be in [0, 65535]\n");
    return 2;
  }
  options.port = static_cast<int>(*port);
  options.host = args.GetString("host", "127.0.0.1");
  const std::optional<long long> workers = args.GetInt("workers", 4, &error);
  if (!workers || *workers < 1 || *workers > 1024) {
    std::fprintf(stderr, "rdfalignd: --workers must be in [1, 1024]\n");
    return 2;
  }
  options.worker_threads = static_cast<size_t>(*workers);
  const std::optional<long long> cache_mb =
      args.GetInt("cache-mb", 1024, &error);
  if (!cache_mb || *cache_mb < 1 || *cache_mb > (1 << 20)) {
    std::fprintf(stderr, "rdfalignd: --cache-mb must be in [1, 1048576]\n");
    return 2;
  }
  options.cache_bytes = static_cast<uint64_t>(*cache_mb) << 20;
  const std::optional<long long> drain_ms =
      args.GetInt("drain-ms", 30000, &error);
  if (!drain_ms || *drain_ms < 0 || *drain_ms > 600000) {
    std::fprintf(stderr, "rdfalignd: --drain-ms must be in [0, 600000]\n");
    return 2;
  }
  options.drain_ms = static_cast<uint64_t>(*drain_ms);
  const std::optional<long long> io_timeout_ms =
      args.GetInt("io-timeout-ms", 0, &error);
  if (!io_timeout_ms || *io_timeout_ms < 0 || *io_timeout_ms > 600000) {
    std::fprintf(stderr,
                 "rdfalignd: --io-timeout-ms must be in [0, 600000]\n");
    return 2;
  }
  options.io_timeout_ms = static_cast<uint64_t>(*io_timeout_ms);
  const std::optional<long long> max_conns =
      args.GetInt("max-conns", 0, &error);
  if (!max_conns || *max_conns < 0 || *max_conns > 65536) {
    std::fprintf(stderr, "rdfalignd: --max-conns must be in [0, 65536]\n");
    return 2;
  }
  options.max_conns = static_cast<size_t>(*max_conns);
  const std::optional<long long> session_linger_ms =
      args.GetInt("session-linger-ms", 0, &error);
  if (!session_linger_ms || *session_linger_ms < 0 ||
      *session_linger_ms > 3600000) {
    std::fprintf(stderr,
                 "rdfalignd: --session-linger-ms must be in [0, 3600000]\n");
    return 2;
  }
  options.session_linger_ms = static_cast<uint64_t>(*session_linger_ms);

  // Shutdown signals are consumed synchronously below; block them in
  // every thread the server spawns by blocking before Start().
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  service::Server server(options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalignd: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("rdfalignd: listening on %s:%d (workers %zu, cache %llu MiB)\n",
              options.host.c_str(), server.port(), options.worker_threads,
              (unsigned long long)(options.cache_bytes >> 20));
  std::fflush(stdout);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::printf("rdfalignd: received %s, shutting down\n",
              sig == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  server.Stop();
  return 0;
}
