// Figure 13: Alignments (GtoPdb) — per consecutive version pair, the
// deduplicated number of aligned nodes under Hybrid and Overlap, against
// the key-based ground truth (GtoPdb) and the total number of distinct
// nodes in both versions (Total).
//
// Paper shape: Overlap tracks the ground truth closely; Hybrid falls well
// short (changes propagate through the FK graph and spoil bisimulation
// colors); the gap between Total and GtoPdb is widest at the high-churn
// pair.

#include <unordered_set>

#include "bench/harness.h"
#include "core/alignment.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "gen/gtopdb_gen.h"
#include "util/hash.h"

using namespace rdfalign;

namespace {

// All series are over *entity* (non-literal) nodes, as in the paper:
// literals are aligned by plain label equality under every method and
// would swamp the comparison.

/// Classes holding non-literal nodes of both sides, deduplicated count.
size_t AlignedEntityClasses(const CombinedGraph& cg, const Partition& p) {
  const TripleGraph& g = cg.graph();
  std::vector<uint8_t> bits(p.NumColors(), 0);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsLiteral(n)) continue;
    bits[p.ColorOf(n)] |= cg.InSource(n) ? 1 : 2;
  }
  size_t count = 0;
  for (uint8_t b : bits) {
    if (b == 3) ++count;
  }
  return count;
}

/// Total = non-literal nodes of both versions with GT pairs and
/// label-shared URIs (rdf:type) counted once.
size_t TotalDistinctNodes(const CombinedGraph& cg,
                          const gen::GroundTruth& gt) {
  const TripleGraph& g = cg.graph();
  size_t total = 0;
  size_t dup = gt.NumPairs();
  std::unordered_set<uint64_t> target_labels;
  for (NodeId m = cg.n1(); m < g.NumNodes(); ++m) {
    if (g.IsLiteral(m)) continue;
    ++total;
    if (!g.IsBlank(m)) target_labels.insert(g.LexicalId(m));
  }
  for (NodeId n = 0; n < cg.n1(); ++n) {
    if (g.IsLiteral(n)) continue;
    ++total;
    if (gt.TargetOf(n) != kInvalidNode || g.IsBlank(n)) continue;
    if (target_labels.count(g.LexicalId(n)) > 0) ++dup;
  }
  return total - dup;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::GtoPdbOptions options;
  options.num_ligands = static_cast<size_t>(
      600 * flags.GetDouble("scale", 1.0));
  options.versions = flags.GetInt("versions", 10);
  options.seed = flags.GetInt("seed", 7);
  const double theta = flags.GetDouble("theta", 0.65);

  bench::Banner("Figure 13",
                "Alignments (GtoPdb): deduplicated aligned-node counts per "
                "consecutive version pair");
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);

  bench::TablePrinter table(
      {"pair", "Hybrid", "Overlap", "GtoPdb", "Total"});
  for (size_t v = 0; v + 1 < chain.versions.size(); ++v) {
    auto dict = std::make_shared<Dictionary>();
    auto g1 = gen::ExportGtoPdbVersion(chain.versions[v], v, dict);
    auto g2 = gen::ExportGtoPdbVersion(chain.versions[v + 1], v + 1, dict);
    auto cg = CombinedGraph::Build(*g1, *g2).value();
    gen::GroundTruth gt = gen::RelationalGroundTruth(
        chain.versions[v], *g1, v, chain.versions[v + 1], *g2, v + 1);

    Partition hybrid = HybridPartition(cg);
    size_t hybrid_count = AlignedEntityClasses(cg, hybrid);
    OverlapAlignOptions oopt;
    oopt.theta = theta;
    OverlapAlignResult overlap = OverlapAlign(cg, oopt, &hybrid);
    size_t overlap_count = AlignedEntityClasses(cg, overlap.xi.partition);

    table.Row({std::to_string(v + 1) + "-" + std::to_string(v + 2),
               bench::FmtInt(hybrid_count), bench::FmtInt(overlap_count),
               bench::FmtInt(gt.NumPairs()),
               bench::FmtInt(TotalDistinctNodes(cg, gt))});
  }
  std::printf("\n(paper: Overlap is significantly closer to GtoPdb than "
              "Hybrid on every pair)\n");
  return 0;
}
