// End-to-end bench of the rdfalignd service (ISSUE 7 acceptance): an
// in-process Server on an ephemeral port, driven over real TCP by the
// protocol Client, measuring what the resident snapshot cache buys.
//
// At each scale point two graph versions are generated and built into
// snapshots, then:
//
//   miss  : `cache clear` + `info <snap> --json` — every request pays a
//           cold load (file read, checksum verification, fingerprint);
//   hit   : the same request warm — the graph is served from residency;
//   mixed : N concurrent client connections each running a mixed verb
//           trace (info / align / diff / cache stats) against the shared
//           cache, for the requests/sec figure.
//
// Gates (exit nonzero on violation):
//   * every request succeeds with the CLI's exit code 0;
//   * a fixed serial request trace produces byte-identical response
//     bodies (timing lines scrubbed) against servers with 1, 2, 4, and 8
//     workers — the daemon must not change answers with its thread count;
//   * at the largest scale point >= 1.0, cache-hit p50 latency is at
//     least 5x faster than cache-miss p50 (at tiny smoke scales the TCP
//     round trip dominates both sides, so the ratio is only recorded).
//
// Emits BENCH_service.json; the checked-in copy at the repo root is the
// reference run, re-run at tiny scale by the service_bench_smoke ctest
// target.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "service/client.h"
#include "service/graph_source.h"
#include "service/server.h"
#include "service/verbs.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

struct PointResult {
  double scale_point = 0;
  size_t nodes = 0;
  size_t triples = 0;
  double miss_p50_ms = 0, miss_p95_ms = 0;
  double hit_p50_ms = 0, hit_p95_ms = 0;
  double hit_speedup_p50 = 0;
  double guarded_hit_p50_ms = 0, guarded_hit_p95_ms = 0;
  double guard_overhead_p50 = 0;
  size_t mixed_requests = 0;
  size_t mixed_clients = 0;
  double mixed_seconds = 0;
  double mixed_rps = 0;
  double mixed_p50_ms = 0, mixed_p95_ms = 0;
  uint64_t cache_hits = 0, cache_misses = 0;
  bool sweep_equal = false;
};

/// Drops the volatile (timing) lines from a response body so runs with
/// different worker counts compare byte-equal.
std::string ScrubTimings(const std::string& body) {
  static const std::regex volatile_line(
      "[^\n]*(_ms\"|seconds\"|loaded in |phases \\(ms\\)|parse |"
      "align time )[^\n]*\n");
  return std::regex_replace(body, volatile_line, "");
}

/// One timed request; records latency and checks exit code 0.
bool TimedCall(service::Client& client,
               const std::vector<std::string>& tokens,
               std::vector<double>* latencies_ms) {
  WallTimer timer;
  Result<service::ClientResponse> resp = client.Call(tokens);
  const double ms = timer.ElapsedMillis();
  if (!resp.ok()) {
    std::fprintf(stderr, "service_bench: %s failed: %s\n", tokens[0].c_str(),
                 resp.status().ToString().c_str());
    return false;
  }
  if (resp->exit_code != 0) {
    std::fprintf(stderr, "service_bench: %s exited %d: %s\n",
                 tokens[0].c_str(), resp->exit_code, resp->error.c_str());
    return false;
  }
  if (latencies_ms != nullptr) latencies_ms->push_back(ms);
  return true;
}

/// The fixed serial trace replayed against every worker count.
std::vector<std::vector<std::string>> SweepTrace(const std::string& v1,
                                                 const std::string& v2,
                                                 const std::string& delta) {
  return {
      {"info", v1, "--json"},
      {"info", v2, "--json"},
      {"align", v1, v2, "--method=trivial", "--json"},
      {"align", v1, v2, "--method=hybrid", "--json"},
      {"diff", v1, v2, delta, "--json"},
      {"info", delta, "--json"},
      {"align", v1, v2, "--method=hybrid"},
      {"cache", "stats", "--json"},
  };
}

/// Replays the trace serially against a fresh server with `workers`
/// worker threads; returns the scrubbed concatenation of all bodies.
bool RunSweepTrace(size_t workers, const std::string& v1,
                   const std::string& v2, const std::string& delta_prefix,
                   std::string* scrubbed) {
  service::ServerOptions options;
  options.port = 0;
  options.worker_threads = workers;
  service::Server server(options);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "service_bench: %s\n", st.ToString().c_str());
    return false;
  }
  Result<service::Client> client =
      service::Client::Connect("127.0.0.1", server.port());
  if (!client.ok()) return false;
  const std::string delta =
      delta_prefix + "_w" + std::to_string(workers) + ".delta";
  scrubbed->clear();
  for (const std::vector<std::string>& tokens :
       SweepTrace(v1, v2, delta)) {
    Result<service::ClientResponse> resp = client->Call(tokens);
    if (!resp.ok() || resp->exit_code != 0) {
      std::fprintf(stderr, "service_bench: sweep %s failed (workers=%zu)\n",
                   tokens[0].c_str(), workers);
      return false;
    }
    // The delta path differs per worker count; normalize it away along
    // with the timings.
    std::string body = ScrubTimings(resp->body);
    size_t pos;
    while ((pos = body.find(delta)) != std::string::npos) {
      body.replace(pos, delta.size(), "<delta>");
    }
    *scrubbed += body;
  }
  std::filesystem::remove(delta);
  // Hang up before Stop(): the graceful drain waits for connected
  // clients, so an open connection here would stall the sweep.
  client->Close();
  server.Stop();
  return true;
}

bool RunPoint(double scale_point, size_t clients, size_t requests,
              size_t samples, const std::string& dir, PointResult* out) {
  PointResult r;
  r.scale_point = scale_point;

  // Build the two versioned snapshots with the verb layer itself.
  const std::string prefix = dir + "/sv";
  service::DirectGraphSource direct;
  char scale_flag[64];
  std::snprintf(scale_flag, sizeof(scale_flag), "--scale=%g", scale_point);
  if (service::ExecuteVerb({"gen", prefix, scale_flag, "--versions=2"},
                           &direct, false)
          .exit_code != 0) {
    return false;
  }
  const std::string v1 = prefix + "1.snap";
  const std::string v2 = prefix + "2.snap";
  for (int i = 1; i <= 2; ++i) {
    const std::string nt = prefix + std::to_string(i) + ".nt";
    const std::string snap = prefix + std::to_string(i) + ".snap";
    if (service::ExecuteVerb({"build", nt, snap}, &direct, false)
            .exit_code != 0) {
      return false;
    }
  }
  {
    Result<service::AcquiredGraph> g =
        direct.Acquire(v1, service::CommonOptions(), false);
    if (!g.ok()) return false;
    r.nodes = g.value().loaded->graph.NumNodes();
    r.triples = g.value().loaded->graph.NumEdges();
  }

  service::ServerOptions options;
  options.port = 0;
  options.worker_threads = std::max<size_t>(clients, 2);
  service::Server server(options);
  if (!server.Start().ok()) return false;
  Result<service::Client> client =
      service::Client::Connect("127.0.0.1", server.port());
  if (!client.ok()) return false;

  // Cold loads: clear residency before every sample.
  std::vector<double> miss_ms, hit_ms;
  for (size_t i = 0; i < samples; ++i) {
    if (!TimedCall(*client, {"cache", "clear"}, nullptr)) return false;
    if (!TimedCall(*client, {"info", v1, "--json"}, &miss_ms)) return false;
  }
  // Warm hits: the first request re-loads, then everything is resident.
  if (!TimedCall(*client, {"info", v1, "--json"}, nullptr)) return false;
  for (size_t i = 0; i < samples; ++i) {
    if (!TimedCall(*client, {"info", v1, "--json"}, &hit_ms)) return false;
  }
  r.miss_p50_ms = Percentile(miss_ms, 0.50);
  r.miss_p95_ms = Percentile(miss_ms, 0.95);
  r.hit_p50_ms = Percentile(hit_ms, 0.50);
  r.hit_p95_ms = Percentile(hit_ms, 0.95);
  r.hit_speedup_p50 = r.hit_p50_ms > 0 ? r.miss_p50_ms / r.hit_p50_ms : 0;

  // Deadline/retry overhead on the happy path: the same warm-hit request
  // against a server with every robustness guard armed (per-frame
  // deadlines, connection cap, session linger) and a client carrying a
  // timeout plus a retry budget, sent through the idempotent-retry
  // wrapper. Nothing ever fires, so the ratio against hit_p50 is the
  // pure bookkeeping cost of the fault-tolerance layer (docs/robustness.md).
  {
    service::ServerOptions guarded_opts;
    guarded_opts.port = 0;
    guarded_opts.worker_threads = std::max<size_t>(clients, 2);
    guarded_opts.io_timeout_ms = 5000;
    guarded_opts.max_conns = 256;
    guarded_opts.session_linger_ms = 1000;
    service::Server guarded(guarded_opts);
    if (!guarded.Start().ok()) return false;
    service::ClientOptions copts;
    copts.timeout_ms = 5000;
    copts.retries = 2;
    Result<service::Client> gclient =
        service::Client::Connect("127.0.0.1", guarded.port(), copts);
    if (!gclient.ok()) return false;
    std::vector<double> guarded_ms;
    if (!TimedCall(*gclient, {"info", v1, "--json"}, nullptr)) return false;
    for (size_t i = 0; i < samples; ++i) {
      WallTimer timer;
      Result<service::ClientResponse> resp =
          gclient->CallIdempotent({"info", v1, "--json"});
      const double ms = timer.ElapsedMillis();
      if (!resp.ok() || resp->exit_code != 0) {
        std::fprintf(stderr, "service_bench: guarded info failed\n");
        return false;
      }
      guarded_ms.push_back(ms);
    }
    r.guarded_hit_p50_ms = Percentile(guarded_ms, 0.50);
    r.guarded_hit_p95_ms = Percentile(guarded_ms, 0.95);
    r.guard_overhead_p50 =
        r.hit_p50_ms > 0 ? r.guarded_hit_p50_ms / r.hit_p50_ms : 0;
    gclient->Close();
    guarded.Stop();
  }

  // Mixed concurrent traffic: every client connection interleaves cheap
  // info hits with full aligns, all against the shared cache.
  std::atomic<int> failures{0};
  std::vector<std::vector<double>> per_client_ms(clients);
  WallTimer mixed_timer;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      Result<service::Client> c =
          service::Client::Connect("127.0.0.1", server.port());
      if (!c.ok()) {
        failures.fetch_add(1);
        return;
      }
      const std::vector<std::vector<std::string>> trace = {
          {"info", v1, "--json"},
          {"info", v2, "--json"},
          {"align", v1, v2, "--method=trivial", "--json"},
          {"cache", "stats", "--json"},
      };
      for (size_t i = 0; i < requests; ++i) {
        const auto& tokens = trace[(t + i) % trace.size()];
        if (!TimedCall(*c, tokens, &per_client_ms[t])) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  r.mixed_seconds = mixed_timer.ElapsedSeconds();
  if (failures.load() != 0) return false;

  std::vector<double> mixed_ms;
  for (const std::vector<double>& v : per_client_ms) {
    mixed_ms.insert(mixed_ms.end(), v.begin(), v.end());
  }
  r.mixed_requests = mixed_ms.size();
  r.mixed_clients = clients;
  r.mixed_rps =
      r.mixed_seconds > 0 ? r.mixed_requests / r.mixed_seconds : 0;
  r.mixed_p50_ms = Percentile(mixed_ms, 0.50);
  r.mixed_p95_ms = Percentile(mixed_ms, 0.95);
  const service::SnapshotCacheStats stats = server.cache()->stats();
  r.cache_hits = stats.hits;
  r.cache_misses = stats.misses;
  client->Close();
  server.Stop();

  // Worker-count sweep: the daemon's answers must not depend on its
  // thread count.
  std::string reference;
  r.sweep_equal = true;
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    std::string scrubbed;
    if (!RunSweepTrace(workers, v1, v2, prefix, &scrubbed)) return false;
    if (reference.empty()) {
      reference = scrubbed;
    } else if (scrubbed != reference) {
      std::fprintf(stderr,
                   "service_bench: FAIL sweep(workers=%zu) body differs\n",
                   workers);
      r.sweep_equal = false;
    }
  }
  if (!r.sweep_equal) return false;

  for (int i = 1; i <= 2; ++i) {
    std::filesystem::remove(prefix + std::to_string(i) + ".nt");
    std::filesystem::remove(prefix + std::to_string(i) + ".snap");
  }
  *out = r;
  return true;
}

bool WriteJson(const std::string& path, const std::vector<PointResult>& points,
               double scale, size_t clients, size_t requests,
               size_t samples) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"service\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"clients\": %zu,\n", clients);
  std::fprintf(f, "  \"requests_per_client\": %zu,\n", requests);
  std::fprintf(f, "  \"latency_samples\": %zu,\n", samples);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f,
               "  \"provenance\": \"loopback TCP wall clock, client and "
               "server on the same box; hardware_threads records the "
               "recording box — on a 1-core box concurrent clients "
               "time-slice, so mixed_rps understates a real deployment\",\n");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale_point\": %g,\n", r.scale_point);
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"triples\": %zu,\n", r.triples);
    std::fprintf(f, "      \"miss_p50_ms\": %.3f,\n", r.miss_p50_ms);
    std::fprintf(f, "      \"miss_p95_ms\": %.3f,\n", r.miss_p95_ms);
    std::fprintf(f, "      \"hit_p50_ms\": %.3f,\n", r.hit_p50_ms);
    std::fprintf(f, "      \"hit_p95_ms\": %.3f,\n", r.hit_p95_ms);
    std::fprintf(f, "      \"hit_speedup_p50\": %.2f,\n", r.hit_speedup_p50);
    std::fprintf(f, "      \"guarded_hit_p50_ms\": %.3f,\n",
                 r.guarded_hit_p50_ms);
    std::fprintf(f, "      \"guarded_hit_p95_ms\": %.3f,\n",
                 r.guarded_hit_p95_ms);
    std::fprintf(f, "      \"guard_overhead_p50\": %.2f,\n",
                 r.guard_overhead_p50);
    std::fprintf(f, "      \"mixed_clients\": %zu,\n", r.mixed_clients);
    std::fprintf(f, "      \"mixed_requests\": %zu,\n", r.mixed_requests);
    std::fprintf(f, "      \"mixed_seconds\": %.3f,\n", r.mixed_seconds);
    std::fprintf(f, "      \"mixed_rps\": %.1f,\n", r.mixed_rps);
    std::fprintf(f, "      \"mixed_p50_ms\": %.3f,\n", r.mixed_p50_ms);
    std::fprintf(f, "      \"mixed_p95_ms\": %.3f,\n", r.mixed_p95_ms);
    std::fprintf(f, "      \"cache_hits\": %llu,\n",
                 (unsigned long long)r.cache_hits);
    std::fprintf(f, "      \"cache_misses\": %llu,\n",
                 (unsigned long long)r.cache_misses);
    std::fprintf(f, "      \"sweep_equal\": %s\n",
                 r.sweep_equal ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const size_t clients = flags.GetInt("clients", 4);
  const size_t requests = flags.GetInt("requests", 16);
  const size_t samples = flags.GetInt("samples", 9);
  const std::string out = flags.GetString("out", "BENCH_service.json");

  bench::Banner("service_bench",
                "rdfalignd over loopback TCP: cache miss vs hit latency, "
                "mixed concurrent verb traffic, worker-count response "
                "identity");

  const std::string dir =
      std::filesystem::temp_directory_path() / "rdfalign_service_bench";
  std::filesystem::create_directories(dir);

  // Three points up to --scale; the largest carries the speedup gate.
  std::vector<double> scale_points;
  for (double factor : {0.25, 0.5, 1.0}) {
    const double point = scale * factor;
    if (scale_points.empty() || point > scale_points.back()) {
      scale_points.push_back(point);
    }
  }

  bench::TablePrinter table({"scale", "triples", "miss_p50", "hit_p50",
                             "speedup", "guard", "rps", "sweep"});
  std::vector<PointResult> points;
  for (double point : scale_points) {
    PointResult r;
    if (!RunPoint(point, clients, requests, samples, dir, &r)) {
      std::fprintf(stderr, "service_bench: FAIL at scale %g\n", point);
      return 1;
    }
    table.Row({bench::Fmt("%.3g", r.scale_point), bench::FmtInt(r.triples),
               bench::Fmt("%.3f", r.miss_p50_ms),
               bench::Fmt("%.3f", r.hit_p50_ms),
               bench::Fmt("%.1fx", r.hit_speedup_p50),
               bench::Fmt("%.2fx", r.guard_overhead_p50),
               bench::Fmt("%.0f", r.mixed_rps),
               r.sweep_equal ? "yes" : "NO"});
    points.push_back(r);
  }

  // The acceptance gate: at a real scale the resident cache must be
  // worth at least 5x on p50 load latency. Tiny smoke scales only record
  // the ratio — the TCP round trip dominates micro-loads.
  const PointResult& largest = points.back();
  if (largest.scale_point >= 1.0 && largest.hit_speedup_p50 < 5.0) {
    std::fprintf(stderr,
                 "service_bench: FAIL hit p50 %.3f ms is only %.2fx faster "
                 "than miss p50 %.3f ms (gate: >= 5x)\n",
                 largest.hit_p50_ms, largest.hit_speedup_p50,
                 largest.miss_p50_ms);
    return 1;
  }

  if (!WriteJson(out, points, scale, clients, requests, samples)) return 1;
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
