// Figure 16: Evaluation time on a subset of DBpedia — wall-clock seconds of
// the Trivial, Hybrid, and Overlap alignments on six progressively growing
// category-graph versions (consecutive pairs aligned).
//
// Paper shape: times grow roughly proportionally to input size; Overlap
// costs a constant factor over Hybrid, which costs a factor over Trivial.
// (Absolute numbers are incomparable: the paper timed a single-threaded
// Python implementation on multi-million-node graphs.)

#include "bench/harness.h"
#include "core/alignment.h"
#include "core/deblank.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "gen/category_gen.h"
#include "rdf/statistics.h"
#include "util/timer.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::CategoryOptions options;
  const double scale = flags.GetDouble("scale", 1.0);
  options.initial_categories = static_cast<size_t>(2500 * scale);
  options.initial_articles = static_cast<size_t>(12000 * scale);
  options.versions = flags.GetInt("versions", 6);
  options.seed = flags.GetInt("seed", 5);

  bench::Banner("Figure 16",
                "Evaluation time on a DBpedia-like category graph: "
                "seconds per consecutive-pair alignment");
  gen::CategoryChain chain = gen::CategoryChain::Generate(options);

  bench::TablePrinter table({"version", "triples", "uris", "literals",
                             "trivial(s)", "hybrid(s)", "overlap(s)"});
  {
    GraphStatistics s = ComputeStatistics(chain.Version(0));
    table.Row({"1", bench::FmtInt(s.edges), bench::FmtInt(s.uris),
               bench::FmtInt(s.literals), "-", "-", "-"});
  }
  for (size_t v = 1; v < chain.NumVersions(); ++v) {
    auto cg = CombinedGraph::Build(chain.Version(v - 1), chain.Version(v))
                  .value();
    WallTimer t1;
    Partition trivial = TrivialPartition(cg.graph());
    double trivial_s = t1.ElapsedSeconds();

    WallTimer t2;
    Partition hybrid = HybridPartition(cg);
    double hybrid_s = t2.ElapsedSeconds();

    WallTimer t3;
    OverlapAlignResult overlap = OverlapAlign(cg, {}, &hybrid);
    double overlap_s = hybrid_s + t3.ElapsedSeconds();  // overlap runs on
                                                        // top of hybrid

    GraphStatistics s = ComputeStatistics(chain.Version(v));
    table.Row({bench::FmtInt(v + 1), bench::FmtInt(s.edges),
               bench::FmtInt(s.uris), bench::FmtInt(s.literals),
               bench::Fmt("%.3f", trivial_s), bench::Fmt("%.3f", hybrid_s),
               bench::Fmt("%.3f", overlap_s)});
    (void)trivial;
  }
  std::printf("\n(run with --scale=N to grow the workload; the trend stays "
              "~linear in input size)\n");
  return 0;
}
