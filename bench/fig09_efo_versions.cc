// Figure 9: EFO dataset versions — node and edge counts of ten versions.
//
// Paper shape: literals are >75% of every version's nodes; URIs track
// ~10% of nodes; blank counts fluctuate (7-15%) due to bisimilar
// duplication while *normalized* blank counts (duplicates merged by
// bisimulation) grow steadily.

#include "bench/harness.h"
#include "core/bisim.h"
#include "gen/efo_gen.h"
#include "rdf/statistics.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::EfoOptions options;
  options.initial_classes = static_cast<size_t>(
      300 * flags.GetDouble("scale", 1.0));
  options.versions = flags.GetInt("versions", 10);
  options.seed = flags.GetInt("seed", 11);

  bench::Banner("Figure 9", "EFO dataset versions: per-version counts "
                "(synthetic EFO-like chain; see DESIGN.md substitutions)");
  gen::EfoChain chain = gen::EfoChain::Generate(options);

  bench::TablePrinter table(
      {"version", "edges", "literals", "uris", "blanks", "lit%", "blank%",
       "norm-blanks"});
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    const TripleGraph& g = chain.Version(v);
    GraphStatistics s = ComputeStatistics(g);
    // Normalized blank count: blank classes of the maximal bisimulation
    // (bisimilar duplicates merged) — the paper's steadily-growing series.
    Partition bisim = BisimPartition(g);
    std::vector<uint8_t> seen(bisim.NumColors(), 0);
    size_t norm_blanks = 0;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsBlank(n) && !seen[bisim.ColorOf(n)]) {
        seen[bisim.ColorOf(n)] = 1;
        ++norm_blanks;
      }
    }
    table.Row({bench::FmtInt(v + 1), bench::FmtInt(s.edges),
               bench::FmtInt(s.literals), bench::FmtInt(s.uris),
               bench::FmtInt(s.blanks),
               bench::Fmt("%.1f", 100.0 * s.literals / s.nodes),
               bench::Fmt("%.1f", 100.0 * s.blanks / s.nodes),
               bench::FmtInt(norm_blanks)});
  }
  return 0;
}
