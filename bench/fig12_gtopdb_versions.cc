// Figure 12: GtoPdb dataset versions — edge/URI/literal counts of ten
// versions of the Direct-Mapped relational database.
//
// Paper shape: no blank nodes at all; literals slightly outnumber URIs;
// sizes grow version over version with a visible jump at the high-churn
// transition (paper: versions 3 to 4).

#include "bench/harness.h"
#include "gen/gtopdb_gen.h"
#include "rdf/statistics.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::GtoPdbOptions options;
  options.num_ligands = static_cast<size_t>(
      600 * flags.GetDouble("scale", 1.0));
  options.versions = flags.GetInt("versions", 10);
  options.seed = flags.GetInt("seed", 7);

  bench::Banner("Figure 12",
                "GtoPdb dataset versions (simulated relational DB exported "
                "via W3C Direct Mapping, per-version URI prefix)");
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);

  bench::TablePrinter table(
      {"version", "rows", "edges", "uris", "literals", "blanks"});
  for (size_t v = 0; v < chain.versions.size(); ++v) {
    auto dict = std::make_shared<Dictionary>();
    auto g = gen::ExportGtoPdbVersion(chain.versions[v], v, dict);
    if (!g.ok()) {
      std::fprintf(stderr, "export failed: %s\n",
                   g.status().ToString().c_str());
      return 1;
    }
    GraphStatistics s = ComputeStatistics(*g);
    table.Row({bench::FmtInt(v + 1),
               bench::FmtInt(chain.versions[v].TotalRows()),
               bench::FmtInt(s.edges), bench::FmtInt(s.uris),
               bench::FmtInt(s.literals), bench::FmtInt(s.blanks)});
  }
  return 0;
}
