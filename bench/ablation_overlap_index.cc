// Ablation: the overlap heuristic's candidate generation (Algorithm 1).
//
// Compares three candidate generators at several thresholds:
//   brute  — all |A|x|B| pairs screened by overlap (the baseline the
//            inverted index is designed to beat),
//   paper  — inverted index probing the ⌈kθ⌉ least frequent objects
//            (complete only for θ > 1/2),
//   sound  — the default: prefix max(⌈kθ⌉, k-⌈kθ⌉+1), complete at every θ.
//
// Reported: wall time, candidate pairs screened, matches found.

#include <functional>

#include "bench/harness.h"
#include "core/edit_distance.h"
#include "core/overlap.h"
#include "gen/textgen.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const size_t n = static_cast<size_t>(2000 * flags.GetDouble("scale", 1.0));
  Rng rng(flags.GetInt("seed", 3));

  // Build an evolving-literal workload: n multi-word strings, half typo'd.
  std::vector<NodeId> a_nodes, b_nodes;
  CharacterizingSets a_char, b_char;
  std::vector<std::string> a_text, b_text;
  std::unordered_map<std::string, uint64_t> words;
  auto charset = [&](const std::string& text) {
    std::vector<uint64_t> ids;
    for (const std::string& w : SplitWords(text)) {
      auto [it, ins] = words.emplace(w, words.size());
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };
  for (size_t i = 0; i < n; ++i) {
    std::string base = gen::RandomSentence(rng, 3, 8);
    std::string evolved =
        rng.Bernoulli(0.5) ? gen::ApplyTypo(base, rng) : base;
    a_nodes.push_back(static_cast<NodeId>(i));
    b_nodes.push_back(static_cast<NodeId>(n + i));
    a_text.push_back(base);
    b_text.push_back(evolved);
    a_char.push_back(charset(base));
    b_char.push_back(charset(evolved));
  }
  auto sigma = [&](size_t ai, size_t bi) {
    return NormalizedEditDistance(a_text[ai], b_text[bi]);
  };

  bench::Banner("Ablation: overlap candidate generation",
                "brute force vs paper prefix (⌈kθ⌉) vs sound prefix");
  bench::TablePrinter table({"theta", "variant", "time(ms)", "screened",
                             "matches"});
  for (double theta : {0.35, 0.5, 0.65, 0.8, 0.95}) {
    {
      WallTimer t;
      auto h = OverlapMatchBruteForce(a_nodes, b_nodes, a_char, b_char,
                                      theta, sigma);
      table.Row({bench::Fmt("%.2f", theta), "brute",
                 bench::Fmt("%.1f", t.ElapsedMillis()),
                 bench::FmtInt(a_nodes.size() * b_nodes.size()),
                 bench::FmtInt(h.NumEdges())});
    }
    for (bool paper : {true, false}) {
      OverlapMatchOptions opt;
      opt.paper_prefix = paper;
      OverlapMatchStats stats;
      WallTimer t;
      auto h = OverlapMatch(a_nodes, b_nodes, a_char, b_char, theta, sigma,
                            opt, &stats);
      table.Row({bench::Fmt("%.2f", theta), paper ? "paper" : "sound",
                 bench::Fmt("%.1f", t.ElapsedMillis()),
                 bench::FmtInt(stats.overlap_checked),
                 bench::FmtInt(h.NumEdges())});
    }
  }
  std::printf("\n(paper prefix may drop matches below θ=0.5; the sound "
              "prefix never does and still screens far fewer pairs than "
              "brute force)\n");
  return 0;
}
