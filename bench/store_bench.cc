// Load-vs-reparse A/B of the snapshot store (the ISSUE 3 acceptance bench).
//
// At each fig16-style scale point a category graph is generated and saved
// twice — as N-Triples text and as a binary snapshot — then ingested back
// three ways:
//
//   reparse : ParseNTriplesFile (streaming text parse, the pre-store path)
//   load    : LoadSnapshot, buffered read + checksum verification
//   mmap    : LoadSnapshot, mmap + zero-copy CSR adoption, checksums off
//             (structural validation still runs and touches the whole
//             file; mmap saves the copy, not the read — see
//             store/snapshot.h)
//
// Each method is timed over several runs (best-of, files warm in the page
// cache for every method alike) and the loaded graphs are checked equal to
// the reparsed one. Emits BENCH_store.json; the checked-in copy at the
// repo root is the reference run, and the store_bench_smoke ctest target
// re-runs this at a tiny scale.

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "gen/category_gen.h"
#include "parser/ntriples_parser.h"
#include "parser/ntriples_writer.h"
#include "store/snapshot.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

struct PointResult {
  double scale_point = 0;
  size_t nodes = 0;
  size_t edges = 0;
  size_t terms = 0;
  uint64_t nt_bytes = 0;
  uint64_t snap_bytes = 0;
  double reparse_ms = 0;
  double load_ms = 0;
  double mmap_ms = 0;
  bool equal = false;
};

/// Best-of-`runs` wall time of `fn` (returns false on failure).
template <typename Fn>
bool BestOf(size_t runs, double* best_ms, Fn&& fn) {
  *best_ms = 0;
  for (size_t r = 0; r < runs; ++r) {
    WallTimer t;
    if (!fn()) return false;
    double ms = t.ElapsedMillis();
    if (r == 0 || ms < *best_ms) *best_ms = ms;
  }
  return true;
}

bool RunPoint(double scale_point, uint64_t seed, size_t runs,
              const std::string& tmp_prefix, PointResult* out) {
  gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(scale_point, /*versions=*/1, seed));
  const TripleGraph& g = chain.Version(0);

  const std::string nt_path = tmp_prefix + ".nt";
  const std::string snap_path = tmp_prefix + ".snap";
  if (!WriteNTriplesFile(g, nt_path).ok() ||
      !store::WriteSnapshot(g, snap_path).ok()) {
    std::fprintf(stderr, "cannot write bench inputs under %s\n",
                 tmp_prefix.c_str());
    return false;
  }

  PointResult r;
  r.scale_point = scale_point;
  r.nodes = g.NumNodes();
  r.edges = g.NumEdges();
  r.terms = g.dict().size();
  r.nt_bytes = std::filesystem::file_size(nt_path);
  r.snap_bytes = std::filesystem::file_size(snap_path);

  // Warm the page cache so the first-timed method is not penalized.
  { auto warm = ParseNTriplesFile(nt_path, nullptr); (void)warm; }

  TripleGraph parsed, loaded, mapped;
  bool ok =
      BestOf(runs, &r.reparse_ms,
             [&] {
               auto res = ParseNTriplesFile(nt_path, nullptr);
               if (!res.ok()) return false;
               parsed = std::move(res).value();
               return true;
             }) &&
      BestOf(runs, &r.load_ms,
             [&] {
               auto res = store::LoadSnapshot(snap_path, nullptr);
               if (!res.ok()) return false;
               loaded = std::move(res).value();
               return true;
             }) &&
      BestOf(runs, &r.mmap_ms, [&] {
        store::SnapshotLoadOptions mm;
        mm.use_mmap = true;
        mm.verify_checksums = false;
        auto res = store::LoadSnapshot(snap_path, nullptr, mm);
        if (!res.ok()) return false;
        mapped = std::move(res).value();
        return true;
      });
  if (ok) {
    // The snapshot paths must reproduce the original graph exactly (ids
    // included). The text parser renumbers nodes in first-occurrence
    // order, so the reparse path is held to count equality only.
    r.equal = LabeledGraphsEqual(g, loaded) && LabeledGraphsEqual(g, mapped) &&
              parsed.NumNodes() == g.NumNodes() &&
              parsed.NumEdges() == g.NumEdges();
  }
  std::filesystem::remove(nt_path);
  std::filesystem::remove(snap_path);
  if (!ok) return false;
  *out = r;
  return true;
}

bool WriteJson(const std::string& path, const std::vector<PointResult>& points,
               double scale, uint64_t seed, size_t runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"store_load\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"seed\": %llu,\n", (unsigned long long)seed);
  std::fprintf(f, "  \"runs\": %zu,\n", runs);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale_point\": %g,\n", r.scale_point);
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"terms\": %zu,\n", r.terms);
    std::fprintf(f, "      \"nt_bytes\": %llu,\n",
                 (unsigned long long)r.nt_bytes);
    std::fprintf(f, "      \"snap_bytes\": %llu,\n",
                 (unsigned long long)r.snap_bytes);
    std::fprintf(f, "      \"reparse_ms\": %.2f,\n", r.reparse_ms);
    std::fprintf(f, "      \"load_ms\": %.2f,\n", r.load_ms);
    std::fprintf(f, "      \"mmap_ms\": %.2f,\n", r.mmap_ms);
    std::fprintf(f, "      \"speedup_load\": %.2f,\n",
                 r.load_ms > 0 ? r.reparse_ms / r.load_ms : 0.0);
    std::fprintf(f, "      \"speedup_mmap\": %.2f,\n",
                 r.mmap_ms > 0 ? r.reparse_ms / r.mmap_ms : 0.0);
    std::fprintf(f, "      \"equal\": %s\n", r.equal ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = flags.GetInt("seed", 5);
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 3));
  const std::string out = flags.GetString("out", "BENCH_store.json");

  bench::Banner("Snapshot store load A/B",
                "N-Triples reparse vs buffered snapshot load vs mmap "
                "zero-copy load");

  const std::string tmp_prefix =
      (std::filesystem::temp_directory_path() /
       ("rdfalign_store_bench_" + std::to_string(seed)))
          .string();

  // The fig16 ladder: quarter, full, and 4x scale (the 4x point matches
  // BENCH_refinement.json's workload size).
  std::vector<PointResult> points;
  for (double point : {0.25 * scale, 1.0 * scale, 4.0 * scale}) {
    PointResult r;
    if (!RunPoint(point, seed, runs, tmp_prefix, &r)) return 1;
    points.push_back(r);
  }

  bool all_equal = true;
  bench::TablePrinter table({"nodes", "edges", "nt(KB)", "snap(KB)",
                             "parse(ms)", "load(ms)", "mmap(ms)", "mmap-x",
                             "equal"});
  for (const PointResult& r : points) {
    table.Row({bench::FmtInt(r.nodes), bench::FmtInt(r.edges),
               bench::FmtInt(r.nt_bytes / 1024),
               bench::FmtInt(r.snap_bytes / 1024),
               bench::Fmt("%.1f", r.reparse_ms),
               bench::Fmt("%.1f", r.load_ms), bench::Fmt("%.1f", r.mmap_ms),
               bench::Fmt("%.1fx",
                          r.mmap_ms > 0 ? r.reparse_ms / r.mmap_ms : 0.0),
               r.equal ? "yes" : "NO"});
    all_equal = all_equal && r.equal;
  }
  const bool wrote = WriteJson(out, points, scale, seed, runs);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());
  return all_equal && wrote ? 0 : 1;
}
