// Load-vs-reparse A/B of the snapshot store (the ISSUE 3 acceptance
// bench), plus the delta-chain A/B of the incremental store (ISSUE 5).
//
// Snapshot part (--mode=snapshot or all): at each fig16-style scale point
// a category graph is generated and saved twice — as N-Triples text and
// as a binary snapshot — then ingested back three ways:
//
//   reparse : ParseNTriplesFile (streaming text parse, the pre-store path)
//   load    : LoadSnapshot, buffered read + checksum verification
//   mmap    : LoadSnapshot, mmap + zero-copy CSR adoption, checksums off
//             (structural validation still runs and touches the whole
//             file; mmap saves the copy, not the read — see
//             store/snapshot.h)
//
// Dict part (--mode=dict or all): the same graph saved with the raw
// version-1 dictionary layout (--no-dict-compress) and the front-coded
// version-2 default, comparing dictionary-section bytes, whole-file
// bytes, load time, and intern throughput — gated on both loads being
// bit-identical to the source graph and on each mode's save -> load ->
// resave reproducing its file byte for byte.
//
// Delta part (--mode=delta or all): a --versions-long category chain is
// materialized three ways — reparsing every version, loading one full
// snapshot per version, and loading the base snapshot then patch-replaying
// the delta chain (store/delta.h) — and the replayed graphs must be
// bit-identical (labels, triples, both CSR indexes) to the snapshot
// loads, or the bench exits nonzero. This re-checks the ISSUE 5
// acceptance invariant on every delta_bench_smoke / CI run.
//
// Each method is timed over several runs (best-of, files warm in the page
// cache for every method alike) and the loaded graphs are checked equal to
// the reparsed one. Emits BENCH_store.json; the checked-in copy at the
// repo root is the reference run, and the store_bench_smoke /
// delta_bench_smoke ctest targets re-run this at a tiny scale.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/aligner.h"
#include "core/delta.h"
#include "gen/category_gen.h"
#include "parser/ntriples_parser.h"
#include "parser/ntriples_writer.h"
#include "store/delta.h"
#include "store/snapshot.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

struct PointResult {
  double scale_point = 0;
  size_t nodes = 0;
  size_t edges = 0;
  size_t terms = 0;
  uint64_t nt_bytes = 0;
  uint64_t snap_bytes = 0;
  double reparse_ms = 0;
  double load_ms = 0;
  double mmap_ms = 0;
  bool equal = false;
};

/// Best-of-`runs` wall time of `fn` (returns false on failure).
template <typename Fn>
bool BestOf(size_t runs, double* best_ms, Fn&& fn) {
  *best_ms = 0;
  for (size_t r = 0; r < runs; ++r) {
    WallTimer t;
    if (!fn()) return false;
    double ms = t.ElapsedMillis();
    if (r == 0 || ms < *best_ms) *best_ms = ms;
  }
  return true;
}

bool RunPoint(double scale_point, uint64_t seed, size_t runs,
              const std::string& tmp_prefix, PointResult* out) {
  gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(scale_point, /*versions=*/1, seed));
  const TripleGraph& g = chain.Version(0);

  const std::string nt_path = tmp_prefix + ".nt";
  const std::string snap_path = tmp_prefix + ".snap";
  if (!WriteNTriplesFile(g, nt_path).ok() ||
      !store::WriteSnapshot(g, snap_path).ok()) {
    std::fprintf(stderr, "cannot write bench inputs under %s\n",
                 tmp_prefix.c_str());
    return false;
  }

  PointResult r;
  r.scale_point = scale_point;
  r.nodes = g.NumNodes();
  r.edges = g.NumEdges();
  r.terms = g.dict().size();
  r.nt_bytes = std::filesystem::file_size(nt_path);
  r.snap_bytes = std::filesystem::file_size(snap_path);

  // Warm the page cache so the first-timed method is not penalized.
  { auto warm = ParseNTriplesFile(nt_path, nullptr); (void)warm; }

  TripleGraph parsed, loaded, mapped;
  bool ok =
      BestOf(runs, &r.reparse_ms,
             [&] {
               auto res = ParseNTriplesFile(nt_path, nullptr);
               if (!res.ok()) return false;
               parsed = std::move(res).value();
               return true;
             }) &&
      BestOf(runs, &r.load_ms,
             [&] {
               auto res = store::LoadSnapshot(snap_path, nullptr);
               if (!res.ok()) return false;
               loaded = std::move(res).value();
               return true;
             }) &&
      BestOf(runs, &r.mmap_ms, [&] {
        store::SnapshotLoadOptions mm;
        mm.use_mmap = true;
        mm.verify_checksums = false;
        auto res = store::LoadSnapshot(snap_path, nullptr, mm);
        if (!res.ok()) return false;
        mapped = std::move(res).value();
        return true;
      });
  if (ok) {
    // The snapshot paths must reproduce the original graph exactly (ids
    // included). The text parser renumbers nodes in first-occurrence
    // order, so the reparse path is held to count equality only.
    r.equal = LabeledGraphsEqual(g, loaded) && LabeledGraphsEqual(g, mapped) &&
              parsed.NumNodes() == g.NumNodes() &&
              parsed.NumEdges() == g.NumEdges();
  }
  std::filesystem::remove(nt_path);
  std::filesystem::remove(snap_path);
  if (!ok) return false;
  *out = r;
  return true;
}

// ------------------------------------------------------------- dict A/B

struct DictPointResult {
  double scale_point = 0;
  size_t nodes = 0;
  size_t edges = 0;
  size_t terms = 0;
  uint64_t raw_file_bytes = 0;  ///< --no-dict-compress (version-1) snapshot
  uint64_t fc_file_bytes = 0;   ///< front-coded (version-2) snapshot
  uint64_t raw_dict_bytes = 0;  ///< term_offsets + term_blob sections
  uint64_t fc_dict_bytes = 0;   ///< + term_prefix_lens section
  double raw_load_ms = 0;
  double fc_load_ms = 0;
  double raw_intern_mtps = 0;  ///< interned terms / s, millions
  double fc_intern_mtps = 0;
  bool equal = false;      ///< both loads bit-identical to the source graph
  bool roundtrip = false;  ///< save -> load -> resave byte-identical, per mode
};

uint64_t DictSectionBytes(const store::SnapshotInfo& info) {
  uint64_t bytes = 0;
  for (const auto& s : info.sections) {
    if (s.id == store::SectionId::kTermOffsets ||
        s.id == store::SectionId::kTermBlob ||
        s.id == store::SectionId::kTermPrefixLens) {
      bytes += s.size;
    }
  }
  return bytes;
}

bool FilesIdentical(const std::string& a, const std::string& b) {
  std::error_code ec;
  if (std::filesystem::file_size(a, ec) != std::filesystem::file_size(b, ec)) {
    return false;
  }
  std::FILE* fa = std::fopen(a.c_str(), "rb");
  std::FILE* fb = std::fopen(b.c_str(), "rb");
  bool same = fa != nullptr && fb != nullptr;
  while (same) {
    char ba[4096], bb[4096];
    const size_t na = std::fread(ba, 1, sizeof(ba), fa);
    const size_t nb = std::fread(bb, 1, sizeof(bb), fb);
    same = na == nb && std::memcmp(ba, bb, na) == 0;
    if (na < sizeof(ba)) break;
  }
  if (fa != nullptr) std::fclose(fa);
  if (fb != nullptr) std::fclose(fb);
  return same;
}

/// One front-coded vs raw dictionary point: bytes on disk (whole file and
/// dictionary sections alone), load time, and intern throughput, gated on
/// both loads being bit-identical to the source graph and on each mode's
/// save -> load -> resave reproducing its bytes exactly.
bool RunDictPoint(double scale_point, uint64_t seed, size_t runs,
                  const std::string& tmp_prefix, DictPointResult* out) {
  gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(scale_point, /*versions=*/1, seed));
  const TripleGraph& g = chain.Version(0);

  const std::string raw_path = tmp_prefix + "_raw.snap";
  const std::string fc_path = tmp_prefix + "_fc.snap";
  const std::string resave_path = tmp_prefix + "_resave.snap";
  DictPointResult r;
  const bool point_ok = [&]() -> bool {
    store::StoreWriteOptions raw_opts;
    raw_opts.compress_dict = false;
    if (!store::WriteSnapshot(g, raw_path, raw_opts).ok() ||
        !store::WriteSnapshot(g, fc_path).ok()) {
      std::fprintf(stderr, "cannot write dict bench inputs under %s\n",
                   tmp_prefix.c_str());
      return false;
    }

    r.scale_point = scale_point;
    r.nodes = g.NumNodes();
    r.edges = g.NumEdges();
    r.terms = g.dict().size();
    r.raw_file_bytes = std::filesystem::file_size(raw_path);
    r.fc_file_bytes = std::filesystem::file_size(fc_path);
    auto raw_info = store::ReadSnapshotInfo(raw_path);
    auto fc_info = store::ReadSnapshotInfo(fc_path);
    if (!raw_info.ok() || !fc_info.ok()) return false;
    r.raw_dict_bytes = DictSectionBytes(*raw_info);
    r.fc_dict_bytes = DictSectionBytes(*fc_info);

    // Warm the page cache.
    { auto warm = store::LoadSnapshot(raw_path, nullptr); (void)warm; }

    TripleGraph raw_loaded, fc_loaded;
    uint64_t raw_interned = 0, fc_interned = 0;
    bool ok = BestOf(runs, &r.raw_load_ms,
                     [&] {
                       store::SnapshotLoadStats stats;
                       auto res =
                           store::LoadSnapshot(raw_path, nullptr, {}, &stats);
                       if (!res.ok()) return false;
                       raw_loaded = std::move(res).value();
                       raw_interned = stats.terms_interned;
                       return true;
                     }) &&
              BestOf(runs, &r.fc_load_ms, [&] {
                store::SnapshotLoadStats stats;
                auto res = store::LoadSnapshot(fc_path, nullptr, {}, &stats);
                if (!res.ok()) return false;
                fc_loaded = std::move(res).value();
                fc_interned = stats.terms_interned;
                return true;
              });
    if (!ok) {
      std::fprintf(stderr, "dict bench: a load failed\n");
      return false;
    }
    r.raw_intern_mtps =
        r.raw_load_ms > 0
            ? static_cast<double>(raw_interned) / (r.raw_load_ms * 1e3)
            : 0.0;
    r.fc_intern_mtps =
        r.fc_load_ms > 0
            ? static_cast<double>(fc_interned) / (r.fc_load_ms * 1e3)
            : 0.0;
    r.equal = GraphsBitDiffer(g, raw_loaded) == nullptr &&
              GraphsBitDiffer(g, fc_loaded) == nullptr;

    // Round-trip gates: resaving a freshly loaded snapshot under the same
    // options must reproduce the file byte for byte.
    r.roundtrip = store::WriteSnapshot(raw_loaded, resave_path, raw_opts).ok() &&
                  FilesIdentical(raw_path, resave_path) &&
                  store::WriteSnapshot(fc_loaded, resave_path).ok() &&
                  FilesIdentical(fc_path, resave_path);
    if (!r.equal || !r.roundtrip) {
      std::fprintf(stderr, "FAIL: dict point %g: equal=%d roundtrip=%d\n",
                   scale_point, r.equal, r.roundtrip);
    }
    return true;
  }();
  std::filesystem::remove(raw_path);
  std::filesystem::remove(fc_path);
  std::filesystem::remove(resave_path);
  if (!point_ok) return false;
  *out = r;
  return true;
}

struct DeltaPointResult {
  double scale_point = 0;
  size_t versions = 0;
  size_t nodes = 0;  ///< of the last version
  size_t edges = 0;
  uint64_t snap_total_bytes = 0;   ///< one full snapshot per version
  uint64_t delta_total_bytes = 0;  ///< base snapshot + delta chain
  double reparse_ms = 0;           ///< parse every version from N-Triples
  double snap_load_ms = 0;         ///< load every version's snapshot
  double replay_ms = 0;            ///< load base + patch-replay the chain
  bool equal = false;
  /// Replay timed per worker count; every count's chain must be
  /// bit-identical to the 1-thread replay.
  std::vector<std::pair<size_t, double>> replay_sweep;
  bool sweep_equal = true;
};

/// Bit-level graph equality (labels, triples, both CSR indexes) — the
/// delta acceptance invariant, shared with the test suite via
/// GraphsBitDiffer (rdf/graph.h).
bool GraphsBitIdentical(const TripleGraph& a, const TripleGraph& b) {
  return GraphsBitDiffer(a, b) == nullptr;
}

bool RunDeltaPoint(double scale_point, uint64_t seed, size_t runs,
                   size_t versions, const std::string& tmp_prefix,
                   DeltaPointResult* out) {
  gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(scale_point, versions, seed));
  const size_t v_count = chain.NumVersions();

  DeltaPointResult r;
  r.scale_point = scale_point;
  r.versions = v_count;
  r.nodes = chain.Version(v_count - 1).NumNodes();
  r.edges = chain.Version(v_count - 1).NumEdges();

  // The body runs inside a lambda so every exit — including mid-point
  // failures — reaches the temp-file cleanup below.
  std::vector<std::string> nt_paths, snap_paths, delta_paths;
  const bool point_ok = [&]() -> bool {
  // Inputs: per-version N-Triples + snapshots, and base + delta chain.
  for (size_t v = 0; v < v_count; ++v) {
    nt_paths.push_back(tmp_prefix + "_d" + std::to_string(v) + ".nt");
    snap_paths.push_back(tmp_prefix + "_d" + std::to_string(v) + ".snap");
    if (!WriteNTriplesFile(chain.Version(v), nt_paths[v]).ok() ||
        !store::WriteSnapshot(chain.Version(v), snap_paths[v]).ok()) {
      std::fprintf(stderr, "cannot write delta bench inputs under %s\n",
                   tmp_prefix.c_str());
      return false;
    }
    r.snap_total_bytes += std::filesystem::file_size(snap_paths[v]);
  }
  r.delta_total_bytes = std::filesystem::file_size(snap_paths[0]);
  Aligner aligner;  // hybrid, the `rdfalign diff` default
  for (size_t v = 1; v < v_count; ++v) {
    delta_paths.push_back(tmp_prefix + "_d" + std::to_string(v) + ".delta");
    auto cg = CombinedGraph::Build(chain.Version(v - 1), chain.Version(v));
    if (!cg.ok()) {
      std::fprintf(stderr, "delta bench: merging versions %zu/%zu: %s\n",
                   v - 1, v, cg.status().ToString().c_str());
      return false;
    }
    const VersionNodeMap map =
        NodeMapFromPartition(*cg, aligner.AlignCombined(*cg).partition);
    Status st = store::WriteDelta(chain.Version(v - 1), chain.Version(v),
                                  map, delta_paths[v - 1]);
    if (!st.ok()) {
      std::fprintf(stderr, "delta bench: writing delta %zu: %s\n", v,
                   st.ToString().c_str());
      return false;
    }
    r.delta_total_bytes += std::filesystem::file_size(delta_paths[v - 1]);
  }

  // Warm the page cache.
  { auto warm = ParseNTriplesFile(nt_paths[0], nullptr); (void)warm; }

  std::vector<TripleGraph> snap_loaded, replayed;
  bool ok =
      BestOf(runs, &r.reparse_ms,
             [&] {
               for (const std::string& p : nt_paths) {
                 auto res = ParseNTriplesFile(p, nullptr);
                 if (!res.ok()) return false;
               }
               return true;
             }) &&
      BestOf(runs, &r.snap_load_ms,
             [&] {
               snap_loaded.clear();
               for (const std::string& p : snap_paths) {
                 auto res = store::LoadSnapshot(p, nullptr);
                 if (!res.ok()) return false;
                 snap_loaded.push_back(std::move(res).value());
               }
               return true;
             }) &&
      BestOf(runs, &r.replay_ms, [&] {
        replayed.clear();
        auto dict = std::make_shared<Dictionary>();
        auto base = store::LoadSnapshot(snap_paths[0], dict);
        if (!base.ok()) return false;
        replayed.push_back(std::move(base).value());
        for (const std::string& p : delta_paths) {
          auto next = store::ApplyDelta(replayed.back(), p, dict);
          if (!next.ok()) return false;
          replayed.push_back(std::move(next).value());
        }
        return true;
      });
  if (!ok) {
    std::fprintf(stderr, "delta bench: a load/replay phase failed\n");
    return false;
  }
  // The acceptance gate: every patch-replayed version bit-identical to
  // the direct snapshot load of that version.
  r.equal = snap_loaded.size() == v_count && replayed.size() == v_count;
  for (size_t v = 0; r.equal && v < v_count; ++v) {
    r.equal = GraphsBitIdentical(snap_loaded[v], replayed[v]) &&
              GraphsBitIdentical(chain.Version(v), replayed[v]);
  }

  // Replay thread sweep: the checksum verify and CSR rebuild run on the
  // shared pool, and the replayed chain must not depend on the worker
  // count. (On a 1-core recording box the sweep is expected to stay flat.)
  for (size_t t : {1u, 2u, 4u, 8u}) {
    std::vector<TripleGraph> sweep_replayed;
    double ms = 0;
    ok = BestOf(runs, &ms, [&] {
      sweep_replayed.clear();
      auto dict = std::make_shared<Dictionary>();
      auto base = store::LoadSnapshot(snap_paths[0], dict);
      if (!base.ok()) return false;
      sweep_replayed.push_back(std::move(base).value());
      store::DeltaApplyOptions opts;
      opts.threads = t;
      for (const std::string& p : delta_paths) {
        auto next = store::ApplyDelta(sweep_replayed.back(), p, dict, opts);
        if (!next.ok()) return false;
        sweep_replayed.push_back(std::move(next).value());
      }
      return true;
    });
    if (!ok) {
      std::fprintf(stderr, "delta bench: replay sweep failed at threads=%zu\n",
                   t);
      return false;
    }
    r.replay_sweep.emplace_back(t, ms);
    for (size_t v = 0; v < sweep_replayed.size(); ++v) {
      if (!GraphsBitIdentical(sweep_replayed[v], replayed[v])) {
        std::fprintf(stderr,
                     "FAIL: threads=%zu replay diverged at version %zu\n", t,
                     v);
        r.sweep_equal = false;
      }
    }
  }
  return true;
  }();
  for (const std::string& p : nt_paths) std::filesystem::remove(p);
  for (const std::string& p : snap_paths) std::filesystem::remove(p);
  for (const std::string& p : delta_paths) std::filesystem::remove(p);
  if (!point_ok) return false;
  *out = r;
  return true;
}

bool WriteJson(const std::string& path, const std::vector<PointResult>& points,
               const std::vector<DictPointResult>& dict_points,
               const std::vector<DeltaPointResult>& delta_points,
               double scale, uint64_t seed, size_t runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"store_load\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"seed\": %llu,\n", (unsigned long long)seed);
  std::fprintf(f, "  \"runs\": %zu,\n", runs);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"provenance\": \"single-process wall clock; "
               "hardware_threads records the recording box — on a 1-core "
               "box the replay_threads_sweep is expected to stay flat\",\n");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale_point\": %g,\n", r.scale_point);
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"terms\": %zu,\n", r.terms);
    std::fprintf(f, "      \"nt_bytes\": %llu,\n",
                 (unsigned long long)r.nt_bytes);
    std::fprintf(f, "      \"snap_bytes\": %llu,\n",
                 (unsigned long long)r.snap_bytes);
    std::fprintf(f, "      \"reparse_ms\": %.2f,\n", r.reparse_ms);
    std::fprintf(f, "      \"load_ms\": %.2f,\n", r.load_ms);
    std::fprintf(f, "      \"mmap_ms\": %.2f,\n", r.mmap_ms);
    std::fprintf(f, "      \"speedup_load\": %.2f,\n",
                 r.load_ms > 0 ? r.reparse_ms / r.load_ms : 0.0);
    std::fprintf(f, "      \"speedup_mmap\": %.2f,\n",
                 r.mmap_ms > 0 ? r.reparse_ms / r.mmap_ms : 0.0);
    std::fprintf(f, "      \"equal\": %s\n", r.equal ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"dict_points\": [\n");
  for (size_t i = 0; i < dict_points.size(); ++i) {
    const DictPointResult& r = dict_points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale_point\": %g,\n", r.scale_point);
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"terms\": %zu,\n", r.terms);
    std::fprintf(f, "      \"raw_file_bytes\": %llu,\n",
                 (unsigned long long)r.raw_file_bytes);
    std::fprintf(f, "      \"fc_file_bytes\": %llu,\n",
                 (unsigned long long)r.fc_file_bytes);
    std::fprintf(f, "      \"raw_dict_bytes\": %llu,\n",
                 (unsigned long long)r.raw_dict_bytes);
    std::fprintf(f, "      \"fc_dict_bytes\": %llu,\n",
                 (unsigned long long)r.fc_dict_bytes);
    std::fprintf(f, "      \"dict_ratio\": %.2f,\n",
                 r.fc_dict_bytes > 0
                     ? static_cast<double>(r.raw_dict_bytes) /
                           static_cast<double>(r.fc_dict_bytes)
                     : 0.0);
    std::fprintf(f, "      \"raw_load_ms\": %.2f,\n", r.raw_load_ms);
    std::fprintf(f, "      \"fc_load_ms\": %.2f,\n", r.fc_load_ms);
    std::fprintf(f, "      \"raw_intern_mtps\": %.2f,\n", r.raw_intern_mtps);
    std::fprintf(f, "      \"fc_intern_mtps\": %.2f,\n", r.fc_intern_mtps);
    std::fprintf(f, "      \"roundtrip\": %s,\n",
                 r.roundtrip ? "true" : "false");
    std::fprintf(f, "      \"equal\": %s\n", r.equal ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < dict_points.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"delta_points\": [\n");
  for (size_t i = 0; i < delta_points.size(); ++i) {
    const DeltaPointResult& r = delta_points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale_point\": %g,\n", r.scale_point);
    std::fprintf(f, "      \"versions\": %zu,\n", r.versions);
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"snap_total_bytes\": %llu,\n",
                 (unsigned long long)r.snap_total_bytes);
    std::fprintf(f, "      \"delta_total_bytes\": %llu,\n",
                 (unsigned long long)r.delta_total_bytes);
    std::fprintf(f, "      \"bytes_ratio\": %.2f,\n",
                 r.delta_total_bytes > 0
                     ? static_cast<double>(r.snap_total_bytes) /
                           static_cast<double>(r.delta_total_bytes)
                     : 0.0);
    std::fprintf(f, "      \"reparse_ms\": %.2f,\n", r.reparse_ms);
    std::fprintf(f, "      \"snap_load_ms\": %.2f,\n", r.snap_load_ms);
    std::fprintf(f, "      \"replay_ms\": %.2f,\n", r.replay_ms);
    std::fprintf(f, "      \"speedup_replay_vs_reparse\": %.2f,\n",
                 r.replay_ms > 0 ? r.reparse_ms / r.replay_ms : 0.0);
    std::fprintf(f, "      \"replay_threads_sweep\": [");
    for (size_t s = 0; s < r.replay_sweep.size(); ++s) {
      std::fprintf(f, "%s{\"threads\": %zu, \"ms\": %.2f}",
                   s > 0 ? ", " : "", r.replay_sweep[s].first,
                   r.replay_sweep[s].second);
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "      \"sweep_equal\": %s,\n",
                 r.sweep_equal ? "true" : "false");
    std::fprintf(f, "      \"equal\": %s\n", r.equal ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < delta_points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = flags.GetInt("seed", 5);
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 3));
  const size_t versions = static_cast<size_t>(flags.GetInt("versions", 4));
  const std::string mode = flags.GetString("mode", "all");
  const std::string out = flags.GetString("out", "BENCH_store.json");
  if (mode != "all" && mode != "snapshot" && mode != "delta" &&
      mode != "dict") {
    std::fprintf(stderr, "--mode must be all, snapshot, delta, or dict\n");
    return 1;
  }
  // Range-checked like every rdfalign numeric flag; a negative value
  // wraps through the unsigned parse and lands above the cap.
  if (versions < 1 || versions > 1000) {
    std::fprintf(stderr, "--versions must be in [1, 1000]\n");
    return 1;
  }

  bench::Banner("Snapshot store load A/B",
                "N-Triples reparse vs buffered snapshot load vs mmap "
                "zero-copy load; delta-chain replay vs per-version "
                "snapshots vs reparse");

  const std::string tmp_prefix =
      (std::filesystem::temp_directory_path() /
       ("rdfalign_store_bench_" + std::to_string(seed)))
          .string();

  // The fig16 ladder: quarter, full, and 4x scale (the 4x point matches
  // BENCH_refinement.json's workload size).
  bool all_equal = true;
  std::vector<PointResult> points;
  std::vector<DictPointResult> dict_points;
  std::vector<DeltaPointResult> delta_points;
  if (mode == "all" || mode == "snapshot") {
    for (double point : {0.25 * scale, 1.0 * scale, 4.0 * scale}) {
      PointResult r;
      if (!RunPoint(point, seed, runs, tmp_prefix, &r)) return 1;
      points.push_back(r);
    }
    bench::TablePrinter table({"nodes", "edges", "nt(KB)", "snap(KB)",
                               "parse(ms)", "load(ms)", "mmap(ms)", "mmap-x",
                               "equal"});
    for (const PointResult& r : points) {
      table.Row({bench::FmtInt(r.nodes), bench::FmtInt(r.edges),
                 bench::FmtInt(r.nt_bytes / 1024),
                 bench::FmtInt(r.snap_bytes / 1024),
                 bench::Fmt("%.1f", r.reparse_ms),
                 bench::Fmt("%.1f", r.load_ms), bench::Fmt("%.1f", r.mmap_ms),
                 bench::Fmt("%.1fx",
                            r.mmap_ms > 0 ? r.reparse_ms / r.mmap_ms : 0.0),
                 r.equal ? "yes" : "NO"});
      all_equal = all_equal && r.equal;
    }
  }
  if (mode == "all" || mode == "dict") {
    for (double point : {0.25 * scale, 1.0 * scale, 4.0 * scale}) {
      DictPointResult r;
      if (!RunDictPoint(point, seed, runs, tmp_prefix, &r)) return 1;
      dict_points.push_back(r);
    }
    std::printf("\nfront-coded vs raw dictionary:\n");
    bench::TablePrinter table({"terms", "rawdict(KB)", "fcdict(KB)", "dict-x",
                               "rawload(ms)", "fcload(ms)", "fc-Mt/s",
                               "roundtrip", "equal"});
    for (const DictPointResult& r : dict_points) {
      table.Row({bench::FmtInt(r.terms),
                 bench::FmtInt(r.raw_dict_bytes / 1024),
                 bench::FmtInt(r.fc_dict_bytes / 1024),
                 bench::Fmt("%.1fx",
                            r.fc_dict_bytes > 0
                                ? static_cast<double>(r.raw_dict_bytes) /
                                      static_cast<double>(r.fc_dict_bytes)
                                : 0.0),
                 bench::Fmt("%.1f", r.raw_load_ms),
                 bench::Fmt("%.1f", r.fc_load_ms),
                 bench::Fmt("%.2f", r.fc_intern_mtps),
                 r.roundtrip ? "yes" : "NO", r.equal ? "yes" : "NO"});
      all_equal = all_equal && r.equal && r.roundtrip;
    }
  }
  if (mode == "all" || mode == "delta") {
    for (double point : {0.25 * scale, 1.0 * scale, 4.0 * scale}) {
      DeltaPointResult r;
      if (!RunDeltaPoint(point, seed, runs, versions, tmp_prefix, &r)) {
        return 1;
      }
      delta_points.push_back(r);
    }
    std::printf("\ndelta chains (%zu versions each):\n", versions);
    bench::TablePrinter table({"nodes", "edges", "snaps(KB)", "deltas(KB)",
                               "parse(ms)", "snaps(ms)", "replay(ms)",
                               "bytes-x", "equal"});
    for (const DeltaPointResult& r : delta_points) {
      table.Row(
          {bench::FmtInt(r.nodes), bench::FmtInt(r.edges),
           bench::FmtInt(r.snap_total_bytes / 1024),
           bench::FmtInt(r.delta_total_bytes / 1024),
           bench::Fmt("%.1f", r.reparse_ms),
           bench::Fmt("%.1f", r.snap_load_ms),
           bench::Fmt("%.1f", r.replay_ms),
           bench::Fmt("%.1fx",
                      r.delta_total_bytes > 0
                          ? static_cast<double>(r.snap_total_bytes) /
                                static_cast<double>(r.delta_total_bytes)
                          : 0.0),
           r.equal && r.sweep_equal ? "yes" : "NO"});
      all_equal = all_equal && r.equal && r.sweep_equal;
    }
  }
  const bool wrote =
      WriteJson(out, points, dict_points, delta_points, scale, seed, runs);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());
  return all_equal && wrote ? 0 : 1;
}
