// Ablation: method shoot-out against related-work baselines.
//
// On one ground-truthed GtoPdb-style version pair, compares:
//   hybrid   — bisimulation only (§3.4)
//   overlap  — the paper's scalable similarity method (§4.7)
//   flooding — similarity flooding [Melnik et al. 2002] with greedy 1:1
//              extraction (the related-work comparison of §1)
//   σEdit    — the quadratic reference measure (§4.2), aligned at θ
//
// Reported: exact/missing/false counts against the key ground truth and
// wall time. The paper's argument is visible in the numbers: flooding and
// σEdit are competitive in quality but blow up in time/space, while
// overlap approximates them at near-hybrid cost.

#include "bench/harness.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "core/sigma_edit.h"
#include "core/similarity_flooding.h"
#include "gen/efo_gen.h"
#include "gen/gtopdb_gen.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

/// Precision of an explicit pair list (for the flooding/σEdit baselines,
/// which produce pair sets rather than partitions).
gen::PrecisionStats ScorePairs(
    const CombinedGraph& cg,
    const std::vector<std::pair<NodeId, NodeId>>& pairs,
    const gen::GroundTruth& gt) {
  const TripleGraph& g = cg.graph();
  std::unordered_map<NodeId, std::vector<NodeId>> of_source;
  std::unordered_map<NodeId, std::vector<NodeId>> of_target;
  for (auto [a, b] : pairs) {
    of_source[a].push_back(b);
    of_target[b].push_back(a);
  }
  gen::PrecisionStats stats;
  auto classify = [&](NodeId node, NodeId partner,
                      const std::vector<NodeId>* aligned) {
    ++stats.evaluated;
    bool has_partner = partner != kInvalidNode;
    bool has_aligned = aligned != nullptr && !aligned->empty();
    if (!has_partner) {
      has_aligned ? ++stats.false_matches : ++stats.true_negatives;
      return;
    }
    if (!has_aligned) {
      ++stats.missing;
      return;
    }
    bool found = false;
    for (NodeId x : *aligned) {
      if (x == partner) found = true;
    }
    if (!found) {
      ++stats.missing;
    } else if (aligned->size() == 1) {
      ++stats.exact;
    } else {
      ++stats.inclusive;
    }
  };
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsLiteral(n)) continue;
    if (cg.InSource(n)) {
      NodeId partner = gt.TargetOf(cg.ToLocal(n));
      auto it = of_source.find(n);
      classify(n,
               partner == kInvalidNode ? kInvalidNode
                                       : cg.FromTarget(partner),
               it == of_source.end() ? nullptr : &it->second);
    } else {
      NodeId partner = gt.SourceOf(cg.ToLocal(n));
      auto it = of_target.find(n);
      classify(n,
               partner == kInvalidNode ? kInvalidNode
                                       : cg.FromSource(partner),
               it == of_target.end() ? nullptr : &it->second);
    }
  }
  return stats;
}

void RunContest(const CombinedGraph& cg, const gen::GroundTruth& gt,
                double theta) {
  bench::TablePrinter table({"method", "exact", "inclusive", "false",
                             "missing", "exact%", "time(ms)"});

  WallTimer t_hybrid;
  Partition hybrid = HybridPartition(cg);
  double hybrid_ms = t_hybrid.ElapsedMillis();
  gen::PrecisionStats hs = gen::EvaluatePrecision(cg, hybrid, gt);
  table.Row({"hybrid", bench::FmtInt(hs.exact), bench::FmtInt(hs.inclusive),
             bench::FmtInt(hs.false_matches), bench::FmtInt(hs.missing),
             bench::Fmt("%.1f", 100.0 * hs.ExactRate()),
             bench::Fmt("%.1f", hybrid_ms)});

  WallTimer t_overlap;
  OverlapAlignOptions oopt;
  oopt.theta = theta;
  OverlapAlignResult overlap = OverlapAlign(cg, oopt, &hybrid);
  double overlap_ms = hybrid_ms + t_overlap.ElapsedMillis();
  gen::PrecisionStats os =
      gen::EvaluatePrecision(cg, overlap.xi.partition, gt);
  table.Row({"overlap", bench::FmtInt(os.exact), bench::FmtInt(os.inclusive),
             bench::FmtInt(os.false_matches), bench::FmtInt(os.missing),
             bench::Fmt("%.1f", 100.0 * os.ExactRate()),
             bench::Fmt("%.1f", overlap_ms)});

  WallTimer t_flood;
  auto sf = SimilarityFlooding::Compute(cg);
  if (sf.ok()) {
    auto matching = sf->GreedyMatching(0.01);
    double flood_ms = t_flood.ElapsedMillis();
    gen::PrecisionStats fs = ScorePairs(cg, matching, gt);
    table.Row({"flooding", bench::FmtInt(fs.exact),
               bench::FmtInt(fs.inclusive), bench::FmtInt(fs.false_matches),
               bench::FmtInt(fs.missing),
               bench::Fmt("%.1f", 100.0 * fs.ExactRate()),
               bench::Fmt("%.1f", flood_ms)});
  } else {
    std::printf("flooding: %s\n", sf.status().ToString().c_str());
  }

  WallTimer t_sigma;
  auto se = SigmaEdit::Compute(cg, hybrid);
  if (se.ok()) {
    auto pairs = se->AlignAt(theta);
    double sigma_ms = hybrid_ms + t_sigma.ElapsedMillis();
    gen::PrecisionStats ss = ScorePairs(cg, pairs, gt);
    table.Row({"sigma-edit", bench::FmtInt(ss.exact),
               bench::FmtInt(ss.inclusive), bench::FmtInt(ss.false_matches),
               bench::FmtInt(ss.missing),
               bench::Fmt("%.1f", 100.0 * ss.ExactRate()),
               bench::Fmt("%.1f", sigma_ms)});
  } else {
    std::printf("sigma-edit: %s\n", se.status().ToString().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::GtoPdbOptions options;
  // Small scale: two of the four contenders are quadratic.
  options.num_ligands = static_cast<size_t>(
      60 * flags.GetDouble("scale", 1.0));
  options.versions = 2;
  options.seed = flags.GetInt("seed", 7);
  const double theta = flags.GetDouble("theta", 0.65);

  bench::Banner("Ablation: baselines",
                "hybrid vs overlap vs similarity flooding vs sigma-edit on "
                "a ground-truthed GtoPdb pair");
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);
  auto dict = std::make_shared<Dictionary>();
  auto g1 = gen::ExportGtoPdbVersion(chain.versions[0], 0, dict);
  auto g2 = gen::ExportGtoPdbVersion(chain.versions[1], 1, dict);
  auto cg = CombinedGraph::Build(*g1, *g2).value();
  gen::GroundTruth gt = gen::RelationalGroundTruth(
      chain.versions[0], *g1, 0, chain.versions[1], *g2, 1);
  std::printf("[GtoPdb pair: all URI prefixes renamed] %zu + %zu triples, "
              "%zu ground-truth pairs\n\n",
              g1->NumEdges(), g2->NumEdges(), gt.NumPairs());
  RunContest(cg, gt, theta);
  std::printf("\n(similarity flooding collapses here: with every predicate "
              "label renamed it has no shared edge labels to flood along — "
              "the ontology-change robustness the paper's methods add)\n\n");

  // Second regime: an ontology pair with *stable* predicates, where
  // flooding has signal.
  gen::EfoOptions efo;
  efo.initial_classes = static_cast<size_t>(
      40 * flags.GetDouble("scale", 1.0));
  efo.versions = 2;
  gen::EfoChain chain2 = gen::EfoChain::Generate(efo);
  auto cg2 =
      CombinedGraph::Build(chain2.Version(0), chain2.Version(1)).value();
  gen::GroundTruth gt2 = chain2.ClassGroundTruth(0, 1);
  std::printf("[EFO pair: stable predicate vocabulary] %zu + %zu triples, "
              "%zu ground-truth class pairs\n\n",
              chain2.Version(0).NumEdges(), chain2.Version(1).NumEdges(),
              gt2.NumPairs());
  RunContest(cg2, gt2, theta);
  return 0;
}
