// Phase-timed end-to-end A/B of the alignment pipeline (the ISSUE 4
// acceptance bench).
//
// At each fig16-style scale point a two-version category chain is generated,
// both versions are stored as binary snapshots and reloaded (the zero-parse
// production path), and then every non-refinement phase of the pipeline is
// run twice — once on the legacy hash-map implementations kept in
// core/pipeline_legacy.h, once on the flat dense-ID rewrite:
//
//   merge     : CombinedGraph::BuildLegacy (FromParts re-sort + re-index)
//               vs CombinedGraph::Build (CSR concatenation)
//   partops   : label-keyed constructors, FromColors, Equivalent,
//               IsFinerOrEqual, Classes — hash maps vs flat arrays
//   overlap   : characterizing-set build + Algorithm 1 — unordered_map
//               inverted index vs counting-sort CSR postings
//   stats     : edge alignment + node alignment + delta — hash sets vs
//               sort-based joins
//
// The refinement fixpoint itself (A/B'd by refinement_bench) is timed once
// for context. Every phase's outputs are checked identical between the two
// implementations, and a threads sweep ({1,2,3,4,8}) re-runs the
// shared-pool kernels at every point, requiring each count to reproduce the
// 1-thread outputs bit for bit. The bench exits nonzero — without writing
// JSON — on any mismatch, so the pipeline_bench_smoke ctest target and the
// CI perf gate double as an equivalence gate. Emits BENCH_pipeline.json;
// the checked-in copy at the repo root is the reference run.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/alignment.h"
#include "core/delta.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "core/pipeline_legacy.h"
#include "gen/category_gen.h"
#include "store/snapshot.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

struct PointResult {
  double scale_point = 0;
  size_t nodes = 0;
  size_t edges = 0;
  double load_ms = 0;     // snapshot load of both versions (context)
  double refine_ms = 0;   // hybrid refinement fixpoint (context)
  double merge_legacy_ms = 0;
  double merge_flat_ms = 0;
  double partops_legacy_ms = 0;
  double partops_flat_ms = 0;
  double overlap_legacy_ms = 0;
  double overlap_flat_ms = 0;
  double stats_legacy_ms = 0;
  double stats_flat_ms = 0;
  bool equal = true;
  // One entry per swept thread count: best wall time of the parallel kernel
  // bundle (merge + class sides + overlap match + stats joins + delta).
  std::vector<std::pair<size_t, double>> sweep;
  bool sweep_equal = true;

  double LegacyTotal() const {
    return merge_legacy_ms + partops_legacy_ms + overlap_legacy_ms +
           stats_legacy_ms;
  }
  double FlatTotal() const {
    return merge_flat_ms + partops_flat_ms + overlap_flat_ms + stats_flat_ms;
  }
  double Speedup() const {
    return FlatTotal() > 0 ? LegacyTotal() / FlatTotal() : 0.0;
  }
};

/// Best-of-`runs` wall time of `fn` (which must return true).
template <typename Fn>
bool BestOf(size_t runs, double* best_ms, Fn&& fn) {
  *best_ms = 0;
  for (size_t r = 0; r < runs; ++r) {
    WallTimer t;
    if (!fn()) return false;
    double ms = t.ElapsedMillis();
    if (r == 0 || ms < *best_ms) *best_ms = ms;
  }
  return true;
}

bool SpansEqual(std::span<const uint64_t> a, std::span<const uint64_t> b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

bool RunPoint(double scale_point, uint64_t seed, size_t runs,
              const std::string& tmp_prefix, PointResult* out) {
  PointResult r;
  r.scale_point = scale_point;

  // ---- parse/load: generate, snapshot, reload through the store ----------
  gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(scale_point, /*versions=*/2, seed));
  const std::string snap1 = tmp_prefix + "_1.snap";
  const std::string snap2 = tmp_prefix + "_2.snap";
  if (!store::WriteSnapshot(chain.Version(0), snap1).ok() ||
      !store::WriteSnapshot(chain.Version(1), snap2).ok()) {
    std::fprintf(stderr, "cannot write snapshots under %s\n",
                 tmp_prefix.c_str());
    return false;
  }
  TripleGraph g1, g2;
  {
    WallTimer t;
    auto dict = std::make_shared<Dictionary>();
    auto l1 = store::LoadSnapshot(snap1, dict);
    auto l2 = store::LoadSnapshot(snap2, dict);
    std::filesystem::remove(snap1);
    std::filesystem::remove(snap2);
    if (!l1.ok() || !l2.ok()) {
      std::fprintf(stderr, "snapshot reload failed\n");
      return false;
    }
    g1 = std::move(l1).value();
    g2 = std::move(l2).value();
    r.load_ms = t.ElapsedMillis();
  }
  r.nodes = g1.NumNodes() + g2.NumNodes();
  r.edges = g1.NumEdges() + g2.NumEdges();

  // ---- merge ---------------------------------------------------------------
  CombinedGraph cg;       // flat result, used by the rest of the pipeline
  CombinedGraph cg_legacy;
  bool ok =
      BestOf(runs, &r.merge_legacy_ms,
             [&] {
               auto res = CombinedGraph::BuildLegacy(g1, g2);
               if (!res.ok()) return false;
               cg_legacy = std::move(res).value();
               return true;
             }) &&
      BestOf(runs, &r.merge_flat_ms, [&] {
        auto res = CombinedGraph::Build(g1, g2);
        if (!res.ok()) return false;
        cg = std::move(res).value();
        return true;
      });
  if (!ok) return false;
  r.equal = r.equal && LabeledGraphsEqual(cg.graph(), cg_legacy.graph()) &&
            SpansEqual(cg.graph().OutOffsets(), cg_legacy.graph().OutOffsets()) &&
            SpansEqual(cg.graph().InOffsets(), cg_legacy.graph().InOffsets());

  // ---- refine (context; not part of the A/B total) ------------------------
  Partition hybrid;
  {
    WallTimer t;
    hybrid = HybridPartition(cg);
    r.refine_ms = t.ElapsedMillis();
  }

  // ---- partition ops -------------------------------------------------------
  Partition label_flat, trivial_flat, from_colors_flat;
  Partition label_legacy, trivial_legacy;
  std::vector<ColorId> legacy_renumbered;
  size_t legacy_count = 0;
  PartitionClasses classes_flat;
  std::vector<std::vector<NodeId>> classes_legacy;
  bool equivalent_flat = false, finer_flat = false;
  bool equivalent_legacy = false, finer_legacy = false;
  ok = BestOf(runs, &r.partops_legacy_ms,
              [&] {
                label_legacy = legacy::LabelPartition(cg.graph());
                trivial_legacy = legacy::TrivialPartition(cg.graph());
                auto [cols, cnt] =
                    legacy::RenumberFirstOccurrence(hybrid.colors());
                legacy_renumbered = std::move(cols);
                legacy_count = cnt;
                classes_legacy = legacy::PartitionClassesVectors(hybrid);
                equivalent_legacy =
                    legacy::PartitionEquivalent(hybrid, hybrid);
                finer_legacy =
                    legacy::PartitionIsFinerOrEqual(hybrid, label_legacy);
                return true;
              }) &&
       BestOf(runs, &r.partops_flat_ms, [&] {
         label_flat = LabelPartition(cg.graph());
         trivial_flat = TrivialPartition(cg.graph());
         from_colors_flat = Partition::FromColors(hybrid.colors());
         classes_flat = hybrid.Classes();
         equivalent_flat = Partition::Equivalent(hybrid, hybrid);
         finer_flat = Partition::IsFinerOrEqual(hybrid, label_flat);
         return true;
       });
  if (!ok) return false;
  r.equal = r.equal && label_flat.colors() == label_legacy.colors() &&
            trivial_flat.colors() == trivial_legacy.colors() &&
            from_colors_flat.colors() == legacy_renumbered &&
            from_colors_flat.NumColors() == legacy_count &&
            equivalent_flat == equivalent_legacy &&
            finer_flat == finer_legacy &&
            classes_flat.size() == classes_legacy.size() &&
            classes_flat.members.size() == hybrid.NumNodes();
  for (size_t c = 0; r.equal && c < classes_flat.size(); ++c) {
    std::span<const NodeId> m = classes_flat[c];
    r.equal = std::equal(m.begin(), m.end(), classes_legacy[c].begin(),
                         classes_legacy[c].end());
  }

  // ---- overlap index + match ----------------------------------------------
  const TripleGraph& g = cg.graph();
  WeightedPartition xi = MakeZeroWeighted(hybrid);
  std::vector<NodeId> a_nodes, b_nodes;
  {
    std::vector<ClassSides> sides = ComputeClassSides(cg, hybrid);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsLiteral(n)) continue;
      if (sides[hybrid.ColorOf(n)] == ClassSides::kBoth) continue;
      (cg.InSource(n) ? a_nodes : b_nodes).push_back(n);
    }
  }
  auto sigma = [&](size_t x, size_t y) {
    return SigmaNonLiteral(g, xi, a_nodes[x], b_nodes[y]);
  };
  const double theta = 0.65;
  BipartiteMatching h_legacy, h_flat;
  OverlapMatchStats s_legacy, s_flat;
  ok = BestOf(runs, &r.overlap_legacy_ms,
              [&] {
                // Legacy representation: per-node heap vectors, hash-map
                // inverted index.
                legacy::VectorCharSets a_char(a_nodes.size());
                legacy::VectorCharSets b_char(b_nodes.size());
                for (size_t i = 0; i < a_nodes.size(); ++i) {
                  a_char[i] = OutColorSet(g, xi, a_nodes[i]);
                }
                for (size_t i = 0; i < b_nodes.size(); ++i) {
                  b_char[i] = OutColorSet(g, xi, b_nodes[i]);
                }
                h_legacy = legacy::OverlapMatch(a_nodes, b_nodes, a_char,
                                                b_char, theta, sigma, {},
                                                &s_legacy);
                return true;
              }) &&
       BestOf(runs, &r.overlap_flat_ms, [&] {
         // The exact production streaming build (overlap_align.cc uses the
         // same AppendOutColorSet), so the A/B cannot drift from it.
         CharacterizingSets a_char;
         CharacterizingSets b_char;
         a_char.Reserve(a_nodes.size(), a_nodes.size());
         b_char.Reserve(b_nodes.size(), b_nodes.size());
         for (NodeId n : a_nodes) AppendOutColorSet(g, xi, n, a_char);
         for (NodeId n : b_nodes) AppendOutColorSet(g, xi, n, b_char);
         h_flat = OverlapMatch(a_nodes, b_nodes, a_char, b_char, theta,
                               sigma, {}, &s_flat);
         return true;
       });
  if (!ok) return false;
  r.equal = r.equal && h_flat.edges.size() == h_legacy.edges.size() &&
            s_flat.candidates_probed == s_legacy.candidates_probed &&
            s_flat.overlap_checked == s_legacy.overlap_checked &&
            s_flat.sigma_checked == s_legacy.sigma_checked &&
            s_flat.matched == s_legacy.matched;
  for (size_t i = 0; r.equal && i < h_flat.edges.size(); ++i) {
    r.equal = h_flat.edges[i].a == h_legacy.edges[i].a &&
              h_flat.edges[i].b == h_legacy.edges[i].b &&
              h_flat.edges[i].distance == h_legacy.edges[i].distance;
  }

  // ---- stats ---------------------------------------------------------------
  EdgeAlignmentStats es_legacy, es_flat;
  NodeAlignmentStats ns_legacy, ns_flat;
  RdfDelta d_legacy, d_flat;
  ok = BestOf(runs, &r.stats_legacy_ms,
              [&] {
                es_legacy = legacy::ComputeEdgeAlignment(cg, hybrid);
                ns_legacy = ComputeNodeAlignment(cg, hybrid);
                d_legacy = legacy::ComputeDelta(cg, hybrid);
                return true;
              }) &&
       BestOf(runs, &r.stats_flat_ms, [&] {
         es_flat = ComputeEdgeAlignment(cg, hybrid);
         ns_flat = ComputeNodeAlignment(cg, hybrid);
         d_flat = ComputeDelta(cg, hybrid);
         return true;
       });
  if (!ok) return false;
  auto rename_set = [](const RdfDelta& d) {
    std::set<std::pair<NodeId, NodeId>> out;
    for (const UriRename& u : d.renamed_uris) out.emplace(u.source, u.target);
    return out;
  };
  r.equal = r.equal && es_flat.total_edges == es_legacy.total_edges &&
            es_flat.aligned_edges == es_legacy.aligned_edges &&
            ns_flat.aligned_classes == ns_legacy.aligned_classes &&
            ns_flat.aligned_source_nodes == ns_legacy.aligned_source_nodes &&
            d_flat.unchanged == d_legacy.unchanged &&
            d_flat.added == d_legacy.added &&
            d_flat.deleted == d_legacy.deleted &&
            d_flat.renamed_uris.size() == d_legacy.renamed_uris.size() &&
            rename_set(d_flat) == rename_set(d_legacy);

  // ---- thread sweep over the shared-pool kernels ---------------------------
  // Each thread count re-runs the parallelized bundle (merge, class sides,
  // overlap match, stats joins, delta). threads=1 takes the legacy serial
  // paths and is the baseline; every other count must reproduce its outputs
  // bit for bit, or sweep_equal clears and main() refuses to emit JSON.
  {
    CombinedGraph cg_base;
    std::vector<ClassSides> sides_base;
    BipartiteMatching h_base;
    OverlapMatchStats s_base;
    EdgeAlignmentStats es_base;
    NodeAlignmentStats ns_base;
    RdfDelta d_base;
    for (size_t t : {1u, 2u, 3u, 4u, 8u}) {
      CombinedGraph cg_t;
      std::vector<ClassSides> sides_t;
      BipartiteMatching h_t;
      OverlapMatchStats s_t;
      EdgeAlignmentStats es_t;
      NodeAlignmentStats ns_t;
      RdfDelta d_t;
      double ms = 0;
      ok = BestOf(runs, &ms, [&] {
        auto res = CombinedGraph::Build(g1, g2, t);
        if (!res.ok()) return false;
        cg_t = std::move(res).value();
        sides_t = ComputeClassSides(cg, hybrid, t);
        CharacterizingSets a_char;
        CharacterizingSets b_char;
        a_char.Reserve(a_nodes.size(), a_nodes.size());
        b_char.Reserve(b_nodes.size(), b_nodes.size());
        for (NodeId n : a_nodes) AppendOutColorSet(g, xi, n, a_char);
        for (NodeId n : b_nodes) AppendOutColorSet(g, xi, n, b_char);
        h_t = OverlapMatch(a_nodes, b_nodes, a_char, b_char, theta, sigma,
                           {}, &s_t, t);
        es_t = ComputeEdgeAlignment(cg, hybrid, t);
        ns_t = ComputeNodeAlignment(cg, hybrid, t);
        d_t = ComputeDelta(cg, hybrid, t);
        return true;
      });
      if (!ok) return false;
      r.sweep.emplace_back(t, ms);
      if (t == 1) {
        cg_base = std::move(cg_t);
        sides_base = std::move(sides_t);
        h_base = std::move(h_t);
        s_base = s_t;
        es_base = es_t;
        ns_base = ns_t;
        d_base = std::move(d_t);
        continue;
      }
      bool same = LabeledGraphsEqual(cg_t.graph(), cg_base.graph()) &&
                  SpansEqual(cg_t.graph().OutOffsets(),
                             cg_base.graph().OutOffsets()) &&
                  SpansEqual(cg_t.graph().InOffsets(),
                             cg_base.graph().InOffsets()) &&
                  sides_t == sides_base &&
                  h_t.edges.size() == h_base.edges.size() &&
                  s_t.candidates_probed == s_base.candidates_probed &&
                  s_t.overlap_checked == s_base.overlap_checked &&
                  s_t.sigma_checked == s_base.sigma_checked &&
                  s_t.matched == s_base.matched &&
                  es_t.total_edges == es_base.total_edges &&
                  es_t.aligned_edges == es_base.aligned_edges &&
                  ns_t.aligned_classes == ns_base.aligned_classes &&
                  ns_t.aligned_source_nodes == ns_base.aligned_source_nodes &&
                  ns_t.aligned_target_nodes == ns_base.aligned_target_nodes &&
                  ns_t.unaligned_source_nodes ==
                      ns_base.unaligned_source_nodes &&
                  ns_t.unaligned_target_nodes ==
                      ns_base.unaligned_target_nodes &&
                  d_t.unchanged == d_base.unchanged &&
                  d_t.added == d_base.added && d_t.deleted == d_base.deleted &&
                  d_t.renamed_uris.size() == d_base.renamed_uris.size();
      for (size_t i = 0; same && i < h_t.edges.size(); ++i) {
        same = h_t.edges[i].a == h_base.edges[i].a &&
               h_t.edges[i].b == h_base.edges[i].b &&
               h_t.edges[i].distance == h_base.edges[i].distance;
      }
      for (size_t i = 0; same && i < d_t.renamed_uris.size(); ++i) {
        same = d_t.renamed_uris[i].source == d_base.renamed_uris[i].source &&
               d_t.renamed_uris[i].target == d_base.renamed_uris[i].target;
      }
      if (!same) {
        std::fprintf(stderr,
                     "FAIL: threads=%zu diverged from the 1-thread kernels "
                     "at scale %g\n",
                     t, scale_point);
        r.sweep_equal = false;
      }
    }
  }

  *out = r;
  return true;
}

bool WriteJson(const std::string& path, const std::vector<PointResult>& points,
               double scale, uint64_t seed, size_t runs) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pipeline_phases\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"seed\": %llu,\n", (unsigned long long)seed);
  std::fprintf(f, "  \"runs\": %zu,\n", runs);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"provenance\": \"single-process wall clock; "
               "hardware_threads records the recording box — like "
               "BENCH_refinement.json and BENCH_store.json, re-record on "
               "multi-core hardware to see parallel scaling; on a 1-core "
               "box the threads_sweep is expected to stay flat\",\n");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale_point\": %g,\n", r.scale_point);
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"load_ms\": %.2f,\n", r.load_ms);
    std::fprintf(f, "      \"refine_ms\": %.2f,\n", r.refine_ms);
    std::fprintf(f, "      \"merge_legacy_ms\": %.2f,\n", r.merge_legacy_ms);
    std::fprintf(f, "      \"merge_flat_ms\": %.2f,\n", r.merge_flat_ms);
    std::fprintf(f, "      \"partops_legacy_ms\": %.2f,\n",
                 r.partops_legacy_ms);
    std::fprintf(f, "      \"partops_flat_ms\": %.2f,\n", r.partops_flat_ms);
    std::fprintf(f, "      \"overlap_legacy_ms\": %.2f,\n",
                 r.overlap_legacy_ms);
    std::fprintf(f, "      \"overlap_flat_ms\": %.2f,\n", r.overlap_flat_ms);
    std::fprintf(f, "      \"stats_legacy_ms\": %.2f,\n", r.stats_legacy_ms);
    std::fprintf(f, "      \"stats_flat_ms\": %.2f,\n", r.stats_flat_ms);
    std::fprintf(f, "      \"nonrefine_legacy_ms\": %.2f,\n",
                 r.LegacyTotal());
    std::fprintf(f, "      \"nonrefine_flat_ms\": %.2f,\n", r.FlatTotal());
    std::fprintf(f, "      \"speedup\": %.2f,\n", r.Speedup());
    std::fprintf(f, "      \"threads_sweep\": [");
    for (size_t s = 0; s < r.sweep.size(); ++s) {
      std::fprintf(f, "%s{\"threads\": %zu, \"ms\": %.2f}",
                   s > 0 ? ", " : "", r.sweep[s].first, r.sweep[s].second);
    }
    std::fprintf(f, "],\n");
    std::fprintf(f, "      \"sweep_equal\": %s,\n",
                 r.sweep_equal ? "true" : "false");
    std::fprintf(f, "      \"equal\": %s\n", r.equal ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = flags.GetInt("seed", 5);
  const size_t runs = static_cast<size_t>(flags.GetInt("runs", 3));
  const std::string out = flags.GetString("out", "BENCH_pipeline.json");

  bench::Banner("Alignment pipeline phase A/B",
                "legacy hash-map glue vs flat dense-ID rewrite, per phase "
                "(merge / partition ops / overlap index / stats)");

  const std::string tmp_prefix =
      (std::filesystem::temp_directory_path() /
       ("rdfalign_pipeline_bench_" + std::to_string(seed)))
          .string();

  // The fig16 ladder: quarter, full, and 4x scale (the 4x point matches the
  // other two BENCH files' largest workload).
  std::vector<PointResult> points;
  for (double point : {0.25 * scale, 1.0 * scale, 4.0 * scale}) {
    PointResult r;
    if (!RunPoint(point, seed, runs, tmp_prefix, &r)) return 1;
    points.push_back(r);
  }

  bool all_equal = true;
  bench::TablePrinter table({"nodes", "edges", "legacy(ms)", "flat(ms)",
                             "speedup", "refine(ms)", "t1(ms)", "t8(ms)",
                             "equal"});
  for (const PointResult& r : points) {
    table.Row({bench::FmtInt(r.nodes), bench::FmtInt(r.edges),
               bench::Fmt("%.1f", r.LegacyTotal()),
               bench::Fmt("%.1f", r.FlatTotal()),
               bench::Fmt("%.1fx", r.Speedup()),
               bench::Fmt("%.1f", r.refine_ms),
               bench::Fmt("%.1f", r.sweep.front().second),
               bench::Fmt("%.1f", r.sweep.back().second),
               r.equal && r.sweep_equal ? "yes" : "NO"});
    all_equal = all_equal && r.equal && r.sweep_equal;
  }
  std::printf("\nper-phase (largest point): merge %.1f->%.1f, partops "
              "%.1f->%.1f, overlap %.1f->%.1f, stats %.1f->%.1f ms\n",
              points.back().merge_legacy_ms, points.back().merge_flat_ms,
              points.back().partops_legacy_ms, points.back().partops_flat_ms,
              points.back().overlap_legacy_ms, points.back().overlap_flat_ms,
              points.back().stats_legacy_ms, points.back().stats_flat_ms);
  if (!all_equal) {
    // The JSON is the perf record of a correct run; a diverging sweep or
    // phase A/B must not leave one behind.
    std::fprintf(stderr,
                 "FAIL: parallel/flat pipeline diverged from the reference; "
                 "not writing %s\n",
                 out.c_str());
    return 1;
  }
  const bool wrote = WriteJson(out, points, scale, seed, runs);
  if (wrote) std::printf("wrote %s\n", out.c_str());
  return wrote ? 0 : 1;
}
