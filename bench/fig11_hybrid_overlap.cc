// Figure 11: Hybrid vs Deblank and Overlap vs Hybrid (EFO) — the absolute
// number of edges *additionally* aligned, for every version pair.
//
// Paper shape: the improvements concentrate where URI-prefix migrations
// happened — a big batch between versions 7 and 8, and a cohort that
// disappears around version 3 and reappears migrated at version 5; the
// overlap alignment adds on top where the contents changed too.

#include "bench/harness.h"
#include "core/alignment.h"
#include "core/deblank.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "gen/efo_gen.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::EfoOptions options;
  options.initial_classes = static_cast<size_t>(
      300 * flags.GetDouble("scale", 1.0));
  options.versions = flags.GetInt("versions", 10);
  options.seed = flags.GetInt("seed", 11);
  const double theta = flags.GetDouble("theta", 0.65);

  bench::Banner("Figure 11",
                "Hybrid vs Deblank and Overlap vs Hybrid (EFO-like chain): "
                "absolute number of additionally aligned edges");
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  const size_t n = chain.NumVersions();

  std::vector<std::vector<double>> hybrid_gain(n, std::vector<double>(n));
  std::vector<std::vector<double>> overlap_gain(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      auto cg =
          CombinedGraph::Build(chain.Version(i), chain.Version(j)).value();
      size_t deblank =
          ComputeEdgeAlignment(cg, DeblankPartition(cg)).aligned_edges;
      Partition hybrid = HybridPartition(cg);
      size_t hybrid_edges = ComputeEdgeAlignment(cg, hybrid).aligned_edges;
      OverlapAlignOptions oopt;
      oopt.theta = theta;
      OverlapAlignResult overlap = OverlapAlign(cg, oopt, &hybrid);
      size_t overlap_edges =
          ComputeEdgeAlignment(cg, overlap.xi.partition).aligned_edges;
      hybrid_gain[i][j] = static_cast<double>(hybrid_edges - deblank);
      overlap_gain[i][j] = static_cast<double>(overlap_edges - hybrid_edges);
    }
  }
  bench::PrintMatrix("Hybrid vs Deblank (extra aligned edges)", hybrid_gain,
                     "%8.0f");
  bench::PrintMatrix("Overlap vs Hybrid (extra aligned edges)", overlap_gain,
                     "%8.0f");

  // The migration-pair hot spot.
  size_t big = options.big_migration_version;
  if (big + 1 < n) {
    std::printf("hot spot: hybrid gain at pair (%zu,%zu) = %.0f "
                "(URI-prefix migration batch)\n",
                big + 1, big + 2, hybrid_gain[big][big + 1]);
  }
  return 0;
}
