// Shared harness for the figure-reproduction benches: fixed-width table
// printing in the shape of the paper's tables/series, plus a tiny flag
// parser (--scale=, --seed=, --theta=) so every experiment can be re-run at
// other sizes.

#ifndef RDFALIGN_BENCH_HARNESS_H_
#define RDFALIGN_BENCH_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace rdfalign::bench {

/// Parses `--name=value` style flags.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  double GetDouble(const std::string& name, double fallback) const {
    std::string value;
    return Find(name, &value) ? std::atof(value.c_str()) : fallback;
  }

  uint64_t GetInt(const std::string& name, uint64_t fallback) const {
    std::string value;
    return Find(name, &value)
               ? static_cast<uint64_t>(std::atoll(value.c_str()))
               : fallback;
  }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const {
    std::string value;
    return Find(name, &value) ? value : fallback;
  }

 private:
  bool Find(const std::string& name, std::string* value) const {
    std::string prefix = "--" + name + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) {
        *value = a.substr(prefix.size());
        return true;
      }
    }
    return false;
  }

  std::vector<std::string> args_;
};

/// Prints the experiment banner.
inline void Banner(const char* figure, const char* description) {
  std::printf("\n=== %s ===\n%s\n\n", figure, description);
}

/// Fixed-width table printer.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns, int width = 12)
      : columns_(std::move(columns)), width_(width) {
    for (const auto& c : columns_) {
      std::printf("%*s", width_, c.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < columns_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) {
      std::printf("%*s", width_, c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

/// Prints a version-by-version matrix (the Fig. 10/11 heat-map data) with
/// row = target version, column = source version.
inline void PrintMatrix(const char* title,
                        const std::vector<std::vector<double>>& m,
                        const char* cell_format = "%8.3f") {
  std::printf("%s\n", title);
  const size_t n = m.size();
  std::printf("tgt\\src ");
  for (size_t j = 0; j < n; ++j) std::printf("%8zu", j + 1);
  std::printf("\n");
  for (size_t i = 0; i < n; ++i) {
    std::printf("%7zu ", i + 1);
    for (size_t j = 0; j < n; ++j) {
      std::printf(cell_format, m[j][i]);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

inline std::string Fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

inline std::string FmtInt(uint64_t v) { return std::to_string(v); }

}  // namespace rdfalign::bench

#endif  // RDFALIGN_BENCH_HARNESS_H_
