// Figure 14: Alignment precision (GtoPdb) — per consecutive version pair,
// the number of exact / inclusive / false / missing matches for the Hybrid
// and Overlap alignments against the key-based ground truth.
//
// Paper shape: Overlap's exact share dominates everywhere; Hybrid misses
// most nodes (no shared URIs, and value edits poison bisimulation colors);
// the worst Overlap precision — including a visible count of false
// matches — occurs at the high-churn pair (3-4), driven by inserted nodes
// whose neighborhoods consist mostly of previously existing nodes.

#include "bench/harness.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "gen/gtopdb_gen.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::GtoPdbOptions options;
  options.num_ligands = static_cast<size_t>(
      600 * flags.GetDouble("scale", 1.0));
  options.versions = flags.GetInt("versions", 10);
  options.seed = flags.GetInt("seed", 7);
  const double theta = flags.GetDouble("theta", 0.65);

  bench::Banner("Figure 14",
                "Alignment precision (GtoPdb): exact/inclusive/false/missing "
                "per consecutive pair, Hybrid vs Overlap");
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);

  bench::TablePrinter table({"pair", "method", "exact", "inclusive", "false",
                             "missing", "exact%"});
  for (size_t v = 0; v + 1 < chain.versions.size(); ++v) {
    auto dict = std::make_shared<Dictionary>();
    auto g1 = gen::ExportGtoPdbVersion(chain.versions[v], v, dict);
    auto g2 = gen::ExportGtoPdbVersion(chain.versions[v + 1], v + 1, dict);
    auto cg = CombinedGraph::Build(*g1, *g2).value();
    gen::GroundTruth gt = gen::RelationalGroundTruth(
        chain.versions[v], *g1, v, chain.versions[v + 1], *g2, v + 1);

    Partition hybrid = HybridPartition(cg);
    gen::PrecisionStats hs = gen::EvaluatePrecision(cg, hybrid, gt);
    OverlapAlignOptions oopt;
    oopt.theta = theta;
    OverlapAlignResult overlap = OverlapAlign(cg, oopt, &hybrid);
    gen::PrecisionStats os =
        gen::EvaluatePrecision(cg, overlap.xi.partition, gt);

    std::string pair = std::to_string(v + 1) + "-" + std::to_string(v + 2);
    table.Row({pair, "hybrid", bench::FmtInt(hs.exact),
               bench::FmtInt(hs.inclusive), bench::FmtInt(hs.false_matches),
               bench::FmtInt(hs.missing),
               bench::Fmt("%.1f", 100.0 * hs.ExactRate())});
    table.Row({pair, "overlap", bench::FmtInt(os.exact),
               bench::FmtInt(os.inclusive), bench::FmtInt(os.false_matches),
               bench::FmtInt(os.missing),
               bench::Fmt("%.1f", 100.0 * os.ExactRate())});
  }
  return 0;
}
