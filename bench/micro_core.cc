// Micro-benchmarks (google-benchmark) of the core primitives: string edit
// distance, Hungarian assignment, refinement steps, overlap screening.

#include <benchmark/benchmark.h>

#include "core/bisim.h"
#include "core/edit_distance.h"
#include "core/hungarian.h"
#include "core/overlap.h"
#include "core/refinement.h"
#include "gen/efo_gen.h"
#include "gen/textgen.h"
#include "rdf/merge.h"
#include "util/random.h"

namespace rdfalign {
namespace {

void BM_Levenshtein(benchmark::State& state) {
  Rng rng(1);
  const size_t len = state.range(0);
  std::string a;
  std::string b;
  while (a.size() < len) a += gen::RandomWord(rng) + " ";
  b = gen::ApplyTypos(a, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(a.size()));
}
BENCHMARK(BM_Levenshtein)->Arg(16)->Arg(64)->Arg(256);

void BM_LevenshteinBounded(benchmark::State& state) {
  Rng rng(1);
  const size_t len = state.range(0);
  std::string a;
  while (a.size() < len) a += gen::RandomWord(rng) + " ";
  std::string b = gen::ApplyTypos(a, 3, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistanceBounded(a, b, 5));
  }
}
BENCHMARK(BM_LevenshteinBounded)->Arg(64)->Arg(256);

void BM_Hungarian(benchmark::State& state) {
  Rng rng(2);
  const size_t n = state.range(0);
  std::vector<double> cost(n * n);
  for (double& c : cost) c = rng.UniformReal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveAssignment(cost, n));
  }
}
BENCHMARK(BM_Hungarian)->Arg(8)->Arg(32)->Arg(64);

// range(0): EFO initial classes; range(1): 1 = incremental worklist engine,
// 0 = legacy full-rescan engine.
void BM_RefineFixpoint(benchmark::State& state) {
  gen::EfoOptions options;
  options.initial_classes = state.range(0);
  options.versions = 2;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  auto cg =
      CombinedGraph::Build(chain.Version(0), chain.Version(1)).value();
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  const RefinementOptions engine{.incremental = state.range(1) != 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BisimRefineFixpoint(g, LabelPartition(g), all, nullptr, engine));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_RefineFixpoint)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({400, 0})
    ->Args({400, 1})
    ->Args({2000, 0})
    ->Args({2000, 1});

// range(0): EFO initial classes; range(1): signing threads for the
// incremental engine. parallel_min_round is lowered so the pool engages at
// micro-bench scale too.
void BM_RefineFixpointParallel(benchmark::State& state) {
  gen::EfoOptions options;
  options.initial_classes = state.range(0);
  options.versions = 2;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  auto cg =
      CombinedGraph::Build(chain.Version(0), chain.Version(1)).value();
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  RefinementOptions engine;
  engine.threads = state.range(1);
  engine.parallel_min_round = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BisimRefineFixpoint(g, LabelPartition(g), all, nullptr, engine));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_RefineFixpointParallel)
    ->Args({2000, 1})
    ->Args({2000, 2})
    ->Args({2000, 4})
    ->Args({2000, 8});

void BM_OverlapMeasure(benchmark::State& state) {
  Rng rng(3);
  const size_t k = state.range(0);
  std::vector<uint64_t> o1;
  std::vector<uint64_t> o2;
  for (size_t i = 0; i < k; ++i) {
    o1.push_back(rng.Uniform(k * 2));
    o2.push_back(rng.Uniform(k * 2));
  }
  std::sort(o1.begin(), o1.end());
  o1.erase(std::unique(o1.begin(), o1.end()), o1.end());
  std::sort(o2.begin(), o2.end());
  o2.erase(std::unique(o2.begin(), o2.end()), o2.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(OverlapMeasure(o1, o2));
  }
}
BENCHMARK(BM_OverlapMeasure)->Arg(8)->Arg(64)->Arg(512);

void BM_BisimPartition(benchmark::State& state) {
  gen::EfoOptions options;
  options.initial_classes = state.range(0);
  options.versions = 1;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  const TripleGraph& g = chain.Version(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BisimPartition(g));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(g.NumEdges()));
}
BENCHMARK(BM_BisimPartition)->Arg(200)->Arg(800);

}  // namespace
}  // namespace rdfalign

BENCHMARK_MAIN();
