// Ablation: the partition-refinement engine (§3.2).
//
// Measures the hash-consed refinement's scaling across graph sizes and the
// cost split between the deblanking restriction (X = Blanks) and full
// bisimulation (X = all nodes) — the reason the paper's methods stay
// practical on large RDF graphs.

#include "bench/harness.h"
#include "core/bisim.h"
#include "core/deblank.h"
#include "gen/efo_gen.h"
#include "rdf/merge.h"
#include "util/timer.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 1.0);

  bench::Banner("Ablation: partition refinement engine",
                "fixpoint cost and iteration counts vs graph size");
  bench::TablePrinter table({"classes", "edges", "iters", "full(ms)",
                             "blanks(ms)", "Medges/s"});
  for (size_t classes : {100, 300, 900, 2700}) {
    gen::EfoOptions options;
    options.initial_classes = static_cast<size_t>(classes * scale);
    options.versions = 2;
    gen::EfoChain chain = gen::EfoChain::Generate(options);
    auto cg = CombinedGraph::Build(chain.Version(0), chain.Version(1))
                  .value();
    const TripleGraph& g = cg.graph();

    RefinementStats stats;
    WallTimer t_full;
    Partition full = BisimPartition(g, &stats);
    double full_ms = t_full.ElapsedMillis();

    WallTimer t_blanks;
    Partition deblank = DeblankPartition(cg);
    double blanks_ms = t_blanks.ElapsedMillis();

    double medges_per_s =
        static_cast<double>(g.NumEdges()) * stats.iterations /
        (full_ms / 1000.0) / 1e6;
    table.Row({bench::FmtInt(classes), bench::FmtInt(g.NumEdges()),
               bench::FmtInt(stats.iterations),
               bench::Fmt("%.1f", full_ms), bench::Fmt("%.1f", blanks_ms),
               bench::Fmt("%.1f", medges_per_s)});
    (void)full;
    (void)deblank;
  }
  std::printf("\n(near-linear growth; iteration counts stay small — the "
              "quadratic worst case of basic refinement does not bite on "
              "RDF-shaped data, as the paper observes)\n");
  return 0;
}
