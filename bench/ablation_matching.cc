// Ablation: σNL's rank coupling vs the Hungarian algorithm (§4.7).
//
// The paper claims the optimal matching among same-color out-edges "can be
// easily done without the use of the Hungarian algorithm". This ablation
// verifies the claim empirically: on random weighted out-neighborhoods the
// rank-coupled cost equals the Hungarian optimum restricted to same-color
// coupling, at a fraction of the cost.

#include "bench/harness.h"
#include "core/hungarian.h"
#include "core/overlap_align.h"
#include "core/weighted_partition.h"
#include "rdf/graph.h"
#include "util/random.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

/// Hungarian-based reference for σNL: full f×f assignment where coupling
/// across different color keys costs 1 (σ_ξ of different clusters).
double SigmaNonLiteralHungarian(const TripleGraph& g,
                                const WeightedPartition& xi, NodeId n,
                                NodeId m) {
  auto out_n = g.Out(n);
  auto out_m = g.Out(m);
  const size_t f = std::max(out_n.size(), out_m.size());
  if (f == 0) return 0.0;
  std::vector<double> cost(f * f, 1.0);
  for (size_t i = 0; i < out_n.size(); ++i) {
    for (size_t j = 0; j < out_m.size(); ++j) {
      const auto& e1 = out_n[i];
      const auto& e2 = out_m[j];
      double sigma_p = xi.Distance(e1.p, e2.p);
      double sigma_o = xi.Distance(e1.o, e2.o);
      cost[i * f + j] = OPlus(sigma_p, sigma_o);
    }
  }
  AssignmentResult r = SolveAssignment(cost, f);
  return std::min(1.0, r.cost / static_cast<double>(f));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  Rng rng(flags.GetInt("seed", 9));
  const size_t trials = static_cast<size_t>(
      200 * flags.GetDouble("scale", 1.0));

  bench::Banner("Ablation: σNL rank coupling vs Hungarian",
                "distance agreement and speed on random out-neighborhoods");

  bench::TablePrinter table({"degree", "trials", "max|Δ|", "rank(ms)",
                             "hung(ms)", "speedup"});
  for (size_t degree : {4, 8, 16, 32}) {
    double max_delta = 0;
    double rank_ms = 0;
    double hung_ms = 0;
    for (size_t trial = 0; trial < trials; ++trial) {
      // Two nodes with `degree` out-edges over a small color space; same
      // color pairs get random weights.
      GraphBuilder b;
      NodeId n1 = b.AddUri("a:n1");
      NodeId n2 = b.AddUri("a:n2");
      const size_t colors = 1 + rng.Uniform(4);
      std::vector<NodeId> preds;
      for (size_t c = 0; c < colors; ++c) {
        preds.push_back(b.AddUri("a:p" + std::to_string(c)));
      }
      std::vector<NodeId> objects;
      for (size_t i = 0; i < degree; ++i) {
        objects.push_back(b.AddLiteral("o" + std::to_string(i)));
      }
      for (size_t i = 0; i < degree; ++i) {
        b.AddTriple(n1, preds[rng.Uniform(colors)],
                    objects[rng.Uniform(degree)]);
        b.AddTriple(n2, preds[rng.Uniform(colors)],
                    objects[rng.Uniform(degree)]);
      }
      auto g = std::move(b.Build(true)).value();
      WeightedPartition xi;
      // Group literals into shared color classes (so same-key runs exist);
      // weights random.
      std::vector<ColorId> cols(g.NumNodes());
      for (NodeId i = 0; i < g.NumNodes(); ++i) {
        cols[i] = g.IsLiteral(i) ? static_cast<ColorId>(rng.Uniform(3))
                                 : static_cast<ColorId>(100 + i);
      }
      xi.partition = Partition::FromColors(std::move(cols));
      xi.weight.resize(g.NumNodes());
      for (double& w : xi.weight) w = rng.UniformReal() * 0.4;

      WallTimer t1;
      double rank = SigmaNonLiteral(g, xi, n1, n2);
      rank_ms += t1.ElapsedMillis();
      WallTimer t2;
      double hung = SigmaNonLiteralHungarian(g, xi, n1, n2);
      hung_ms += t2.ElapsedMillis();
      // Rank coupling can only over-estimate (it never couples across
      // colors); both clamp at 1.
      max_delta = std::max(max_delta, rank - hung);
    }
    table.Row({bench::FmtInt(degree), bench::FmtInt(trials),
               bench::Fmt("%.4f", max_delta), bench::Fmt("%.2f", rank_ms),
               bench::Fmt("%.2f", hung_ms),
               bench::Fmt("%.1fx", hung_ms / std::max(rank_ms, 1e-9))});
  }
  std::printf("\n(rank coupling equals the same-color-restricted optimum; "
              "positive Δ only appears when cross-color coupling would pay, "
              "which σ_ξ prices at 1 anyway)\n");
  return 0;
}
