// Figure 10: Trivial and Deblank alignments (EFO) — the ratio of aligned
// edges to all edges of both versions, for every (source, target) version
// pair.
//
// Paper shape: the Deblank diagonal is exactly 1.0 (self-alignment is
// complete) while the Trivial diagonal is visibly below 1 (blank-touching
// edges cannot be aligned); both matrices fade with version distance.

#include "bench/harness.h"
#include "core/alignment.h"
#include "core/deblank.h"
#include "gen/efo_gen.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::EfoOptions options;
  options.initial_classes = static_cast<size_t>(
      300 * flags.GetDouble("scale", 1.0));
  options.versions = flags.GetInt("versions", 10);
  options.seed = flags.GetInt("seed", 11);

  bench::Banner("Figure 10",
                "Trivial and Deblank alignments (EFO-like chain): "
                "aligned-edge ratio for every version pair");
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  const size_t n = chain.NumVersions();

  std::vector<std::vector<double>> trivial(n, std::vector<double>(n));
  std::vector<std::vector<double>> deblank(n, std::vector<double>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      auto cg =
          CombinedGraph::Build(chain.Version(i), chain.Version(j)).value();
      trivial[i][j] =
          ComputeEdgeAlignment(cg, TrivialPartition(cg.graph())).Ratio();
      deblank[i][j] = ComputeEdgeAlignment(cg, DeblankPartition(cg)).Ratio();
    }
  }
  bench::PrintMatrix("Trivial alignment (aligned-edge ratio)", trivial);
  bench::PrintMatrix("Deblank alignment (aligned-edge ratio)", deblank);

  // Headline checks the reader can eyeball.
  std::printf("diagonal: trivial avg = %.3f, deblank avg = %.3f "
              "(paper: deblank self-alignment is complete)\n",
              [&] {
                double s = 0;
                for (size_t i = 0; i < n; ++i) s += trivial[i][i];
                return s / n;
              }(),
              [&] {
                double s = 0;
                for (size_t i = 0; i < n; ++i) s += deblank[i][i];
                return s / n;
              }());
  return 0;
}
