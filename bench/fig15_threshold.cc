// Figure 15: Overlap alignment between versions 3 and 4 (GtoPdb) for
// different threshold values θ ∈ {0.35, 0.45, ..., 0.95}.
//
// Paper shape: lower θ lowers missing matches but raises false and
// inclusive matches; exact matches peak at an interior θ (0.65 in the
// paper).

#include "bench/harness.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "gen/gtopdb_gen.h"

using namespace rdfalign;

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  gen::GtoPdbOptions options;
  options.num_ligands = static_cast<size_t>(
      600 * flags.GetDouble("scale", 1.0));
  options.versions = flags.GetInt("versions", 5);
  options.seed = flags.GetInt("seed", 7);
  // The high-churn transition is into version index 3 (pair "3-4").
  const size_t v = flags.GetInt("pair", 2);

  bench::Banner("Figure 15",
                "Overlap alignment between versions 3 and 4 (GtoPdb) for "
                "different threshold values");
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);
  auto dict = std::make_shared<Dictionary>();
  auto g1 = gen::ExportGtoPdbVersion(chain.versions[v], v, dict);
  auto g2 = gen::ExportGtoPdbVersion(chain.versions[v + 1], v + 1, dict);
  auto cg = CombinedGraph::Build(*g1, *g2).value();
  gen::GroundTruth gt = gen::RelationalGroundTruth(
      chain.versions[v], *g1, v, chain.versions[v + 1], *g2, v + 1);
  Partition hybrid = HybridPartition(cg);

  bench::TablePrinter table(
      {"theta", "exact", "inclusive", "false", "missing", "exact%"});
  size_t best_exact = 0;
  double best_theta = 0;
  for (double theta = 0.35; theta <= 0.951; theta += 0.10) {
    OverlapAlignOptions oopt;
    oopt.theta = theta;
    OverlapAlignResult overlap = OverlapAlign(cg, oopt, &hybrid);
    gen::PrecisionStats s =
        gen::EvaluatePrecision(cg, overlap.xi.partition, gt);
    table.Row({bench::Fmt("%.2f", theta), bench::FmtInt(s.exact),
               bench::FmtInt(s.inclusive), bench::FmtInt(s.false_matches),
               bench::FmtInt(s.missing),
               bench::Fmt("%.1f", 100.0 * s.ExactRate())});
    if (s.exact > best_exact) {
      best_exact = s.exact;
      best_theta = theta;
    }
  }
  std::printf("\nexact matches peak at theta = %.2f "
              "(paper: interior optimum at 0.65)\n", best_theta);
  return 0;
}
