// A/B bench of the refinement fixpoint engines (ISSUE 1 acceptance bench).
//
// Runs the bisimulation refinement fixpoint over combined two-version
// graphs from the category (Fig. 16 scalability) and EFO (Fig. 9)
// generators, once with the legacy full-rescan engine and once with the
// incremental worklist engine, checks the partitions agree, and emits
// machine-readable before/after numbers to a JSON file so the perf
// trajectory is recorded (BENCH_refinement.json at the repo root holds the
// reference run; the bench_smoke ctest target re-runs this at --scale=0.1).
//
// Default --scale=4 puts both workloads above 100k nodes.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/partition.h"
#include "core/refinement.h"
#include "gen/category_gen.h"
#include "gen/efo_gen.h"
#include "rdf/merge.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

struct RunResult {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  double legacy_ms = 0;
  double incremental_ms = 0;
  size_t iterations = 0;
  size_t legacy_resignings = 0;
  size_t incremental_resignings = 0;
  size_t signature_bytes = 0;
  size_t final_classes = 0;
  bool equivalent = false;
};

RunResult RunWorkload(const std::string& name, const TripleGraph& g) {
  RunResult r;
  r.name = name;
  r.nodes = g.NumNodes();
  r.edges = g.NumEdges();

  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;

  RefinementStats leg_stats;
  WallTimer t_leg;
  Partition leg = BisimRefineFixpoint(g, LabelPartition(g), all, &leg_stats,
                                      RefinementOptions{.incremental = false});
  r.legacy_ms = t_leg.ElapsedMillis();

  RefinementStats inc_stats;
  WallTimer t_inc;
  Partition inc = BisimRefineFixpoint(g, LabelPartition(g), all, &inc_stats,
                                      RefinementOptions{.incremental = true});
  r.incremental_ms = t_inc.ElapsedMillis();

  r.iterations = inc_stats.iterations;
  r.legacy_resignings = leg_stats.TotalDirty();
  r.incremental_resignings = inc_stats.TotalDirty();
  r.signature_bytes = inc_stats.signature_bytes;
  r.final_classes = inc.NumColors();
  r.equivalent = Partition::Equivalent(leg, inc);
  return r;
}

bool WriteJson(const std::string& path, const std::vector<RunResult>& runs,
               double scale, uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"refinement_fixpoint\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"seed\": %llu,\n", (unsigned long long)seed);
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"legacy_ms\": %.2f,\n", r.legacy_ms);
    std::fprintf(f, "      \"incremental_ms\": %.2f,\n", r.incremental_ms);
    std::fprintf(f, "      \"speedup\": %.2f,\n",
                 r.incremental_ms > 0 ? r.legacy_ms / r.incremental_ms : 0.0);
    std::fprintf(f, "      \"iterations\": %zu,\n", r.iterations);
    std::fprintf(f, "      \"legacy_resignings\": %zu,\n",
                 r.legacy_resignings);
    std::fprintf(f, "      \"incremental_resignings\": %zu,\n",
                 r.incremental_resignings);
    std::fprintf(f, "      \"signature_bytes\": %zu,\n", r.signature_bytes);
    std::fprintf(f, "      \"final_classes\": %zu,\n", r.final_classes);
    std::fprintf(f, "      \"equivalent\": %s\n",
                 r.equivalent ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 4.0);
  const uint64_t seed = flags.GetInt("seed", 5);
  const std::string out = flags.GetString("out", "BENCH_refinement.json");

  bench::Banner("Refinement engine A/B",
                "legacy full-rescan vs incremental worklist fixpoint");

  std::vector<RunResult> runs;
  {
    gen::CategoryOptions options;
    options.initial_categories =
        static_cast<size_t>(2500 * scale < 8 ? 8 : 2500 * scale);
    options.initial_articles =
        static_cast<size_t>(12000 * scale < 16 ? 16 : 12000 * scale);
    options.versions = 2;
    options.seed = seed;
    gen::CategoryChain chain = gen::CategoryChain::Generate(options);
    auto cg = CombinedGraph::Build(chain.Version(0), chain.Version(1)).value();
    runs.push_back(RunWorkload("category", cg.graph()));
  }
  {
    gen::EfoOptions options;
    options.initial_classes =
        static_cast<size_t>(2000 * scale < 8 ? 8 : 2000 * scale);
    options.versions = 2;
    options.seed = seed;
    gen::EfoChain chain = gen::EfoChain::Generate(options);
    auto cg = CombinedGraph::Build(chain.Version(0), chain.Version(1)).value();
    runs.push_back(RunWorkload("efo", cg.graph()));
  }

  bench::TablePrinter table({"workload", "nodes", "legacy(ms)", "incr(ms)",
                             "speedup", "resign-", "equal"});
  bool all_equivalent = true;
  for (const RunResult& r : runs) {
    table.Row({r.name, bench::FmtInt(r.nodes),
               bench::Fmt("%.1f", r.legacy_ms),
               bench::Fmt("%.1f", r.incremental_ms),
               bench::Fmt("%.2fx", r.legacy_ms /
                                       (r.incremental_ms > 0
                                            ? r.incremental_ms
                                            : 1.0)),
               bench::Fmt("%.1fx", static_cast<double>(r.legacy_resignings) /
                                       (r.incremental_resignings > 0
                                            ? r.incremental_resignings
                                            : 1)),
               r.equivalent ? "yes" : "NO"});
    all_equivalent = all_equivalent && r.equivalent;
  }
  const bool wrote = WriteJson(out, runs, scale, seed);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());
  return all_equivalent && wrote ? 0 : 1;
}
