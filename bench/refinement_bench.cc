// A/B bench of the refinement fixpoint engines.
//
// Three experiments over combined two-version graphs from the category
// (Fig. 16 scalability) and EFO (Fig. 9) generators:
//
//  1. plain refinement: legacy full-rescan vs incremental worklist
//     (the ISSUE 1 acceptance bench);
//  2. a signing-thread sweep (threads = 1, 2, 4, 8) of the incremental
//     engine's first round, which dominates its runtime — partitions are
//     checked bit-identical across thread counts;
//  3. contextual (mediation-aware) refinement: legacy full-rescan vs the
//     worklist port, in the predicate-aware-hybrid shape.
//
// Emits machine-readable numbers to a JSON file so the perf trajectory is
// recorded (BENCH_refinement.json at the repo root holds the reference
// run; the bench_smoke ctest target re-runs this at --scale=0.1).
//
// Default --scale=4 puts both workloads above 100k nodes.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/context.h"
#include "core/partition.h"
#include "core/refinement.h"
#include "gen/category_gen.h"
#include "gen/efo_gen.h"
#include "rdf/merge.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

struct RunResult {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  double legacy_ms = 0;
  double incremental_ms = 0;
  size_t iterations = 0;
  size_t legacy_resignings = 0;
  size_t incremental_resignings = 0;
  size_t signature_bytes = 0;
  size_t final_classes = 0;
  bool equivalent = false;
};

struct ThreadsResult {
  std::string name;
  size_t threads = 0;
  double first_round_ms = 0;
  double total_ms = 0;
  bool identical = false;  // colors equal the threads=1 run
};

struct ContextualResult {
  std::string name;
  size_t nodes = 0;
  size_t edges = 0;
  size_t predicate_only = 0;
  double legacy_ms = 0;
  double incremental_ms = 0;
  size_t legacy_resignings = 0;
  size_t incremental_resignings = 0;
  size_t final_classes = 0;
  bool equivalent = false;
};

RunResult RunWorkload(const std::string& name, const TripleGraph& g) {
  RunResult r;
  r.name = name;
  r.nodes = g.NumNodes();
  r.edges = g.NumEdges();

  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;

  RefinementStats leg_stats;
  WallTimer t_leg;
  Partition leg = BisimRefineFixpoint(g, LabelPartition(g), all, &leg_stats,
                                      RefinementOptions{.incremental = false});
  r.legacy_ms = t_leg.ElapsedMillis();

  RefinementStats inc_stats;
  WallTimer t_inc;
  Partition inc = BisimRefineFixpoint(g, LabelPartition(g), all, &inc_stats,
                                      RefinementOptions{.incremental = true});
  r.incremental_ms = t_inc.ElapsedMillis();

  r.iterations = inc_stats.iterations;
  r.legacy_resignings = leg_stats.TotalDirty();
  r.incremental_resignings = inc_stats.TotalDirty();
  r.signature_bytes = inc_stats.signature_bytes;
  r.final_classes = inc.NumColors();
  r.equivalent = Partition::Equivalent(leg, inc);
  return r;
}

// The signing-thread sweep: full bisimulation with the incremental engine
// at each thread count; the first round signs every node, so it is where
// the pool bites. Bit-identical partitions across counts are part of the
// engine contract and re-checked here at full scale.
std::vector<ThreadsResult> RunThreadsSweep(const std::string& name,
                                           const TripleGraph& g) {
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  std::vector<ThreadsResult> results;
  Partition baseline;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    RefinementOptions options;
    options.threads = threads;
    RefinementStats stats;
    WallTimer timer;
    Partition p = BisimRefineFixpoint(g, LabelPartition(g), all, &stats,
                                      options);
    ThreadsResult r;
    r.name = name;
    r.threads = threads;
    r.total_ms = timer.ElapsedMillis();
    r.first_round_ms = stats.first_round_ms;
    if (threads == 1) baseline = std::move(p);
    r.identical = threads == 1 || p.colors() == baseline.colors();
    results.push_back(r);
  }
  return results;
}

// Contextual A/B in the predicate-aware-hybrid shape — the exact inputs
// PredicateAwareHybridPartition refines over — once per engine.
ContextualResult RunContextual(const std::string& name,
                               const CombinedGraph& cg) {
  const TripleGraph& g = cg.graph();
  ContextualResult r;
  r.name = name;
  r.nodes = g.NumNodes();
  r.edges = g.NumEdges();

  ContextualHybridInputs in = BuildContextualHybridInputs(cg);
  for (uint8_t flag : in.predicate_only) r.predicate_only += flag;

  RefinementStats leg_stats;
  WallTimer t_leg;
  Partition leg = ContextualRefineFixpoint(
      g, in.blanked, in.x, in.mediation, in.predicate_only, &leg_stats,
      RefinementOptions{.incremental = false});
  r.legacy_ms = t_leg.ElapsedMillis();

  RefinementStats inc_stats;
  WallTimer t_inc;
  Partition inc = ContextualRefineFixpoint(
      g, in.blanked, in.x, in.mediation, in.predicate_only, &inc_stats,
      RefinementOptions{.incremental = true});
  r.incremental_ms = t_inc.ElapsedMillis();

  r.legacy_resignings = leg_stats.TotalDirty();
  r.incremental_resignings = inc_stats.TotalDirty();
  r.final_classes = inc.NumColors();
  r.equivalent = Partition::Equivalent(leg, inc) &&
                 leg.colors() == inc.colors();
  return r;
}

bool WriteJson(const std::string& path, const std::vector<RunResult>& runs,
               const std::vector<ThreadsResult>& sweep,
               const std::vector<ContextualResult>& contextual, double scale,
               uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"refinement_fixpoint\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"seed\": %llu,\n", (unsigned long long)seed);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"provenance\": \"single-process wall clock; "
               "hardware_threads records the recording box — on a 1-core "
               "box the threads_sweep is expected to stay flat\",\n");
  std::fprintf(f, "  \"workloads\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"legacy_ms\": %.2f,\n", r.legacy_ms);
    std::fprintf(f, "      \"incremental_ms\": %.2f,\n", r.incremental_ms);
    std::fprintf(f, "      \"speedup\": %.2f,\n",
                 r.incremental_ms > 0 ? r.legacy_ms / r.incremental_ms : 0.0);
    std::fprintf(f, "      \"iterations\": %zu,\n", r.iterations);
    std::fprintf(f, "      \"legacy_resignings\": %zu,\n",
                 r.legacy_resignings);
    std::fprintf(f, "      \"incremental_resignings\": %zu,\n",
                 r.incremental_resignings);
    std::fprintf(f, "      \"signature_bytes\": %zu,\n", r.signature_bytes);
    std::fprintf(f, "      \"final_classes\": %zu,\n", r.final_classes);
    std::fprintf(f, "      \"equivalent\": %s\n",
                 r.equivalent ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"threads_sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const ThreadsResult& r = sweep[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"threads\": %zu,\n", r.threads);
    std::fprintf(f, "      \"first_round_ms\": %.2f,\n", r.first_round_ms);
    std::fprintf(f, "      \"total_ms\": %.2f,\n", r.total_ms);
    std::fprintf(f, "      \"identical\": %s\n",
                 r.identical ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"contextual\": [\n");
  for (size_t i = 0; i < contextual.size(); ++i) {
    const ContextualResult& r = contextual[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"edges\": %zu,\n", r.edges);
    std::fprintf(f, "      \"predicate_only\": %zu,\n", r.predicate_only);
    std::fprintf(f, "      \"legacy_ms\": %.2f,\n", r.legacy_ms);
    std::fprintf(f, "      \"incremental_ms\": %.2f,\n", r.incremental_ms);
    std::fprintf(f, "      \"speedup\": %.2f,\n",
                 r.incremental_ms > 0 ? r.legacy_ms / r.incremental_ms : 0.0);
    std::fprintf(f, "      \"legacy_resignings\": %zu,\n",
                 r.legacy_resignings);
    std::fprintf(f, "      \"incremental_resignings\": %zu,\n",
                 r.incremental_resignings);
    std::fprintf(f, "      \"final_classes\": %zu,\n", r.final_classes);
    std::fprintf(f, "      \"equivalent\": %s\n",
                 r.equivalent ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < contextual.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 4.0);
  const uint64_t seed = flags.GetInt("seed", 5);
  const std::string out = flags.GetString("out", "BENCH_refinement.json");

  bench::Banner("Refinement engine A/B",
                "legacy full-rescan vs incremental worklist fixpoint");

  std::vector<RunResult> runs;
  std::vector<ThreadsResult> sweep;
  std::vector<ContextualResult> contextual;
  {
    gen::CategoryChain chain = gen::CategoryChain::Generate(
        gen::CategoryOptions::FromScale(scale, /*versions=*/2, seed));
    auto cg = CombinedGraph::Build(chain.Version(0), chain.Version(1)).value();
    runs.push_back(RunWorkload("category", cg.graph()));
    for (ThreadsResult& r : RunThreadsSweep("category", cg.graph())) {
      sweep.push_back(std::move(r));
    }
    contextual.push_back(RunContextual("category", cg));
  }
  {
    gen::EfoOptions options;
    options.initial_classes =
        static_cast<size_t>(2000 * scale < 8 ? 8 : 2000 * scale);
    options.versions = 2;
    options.seed = seed;
    gen::EfoChain chain = gen::EfoChain::Generate(options);
    auto cg = CombinedGraph::Build(chain.Version(0), chain.Version(1)).value();
    runs.push_back(RunWorkload("efo", cg.graph()));
    for (ThreadsResult& r : RunThreadsSweep("efo", cg.graph())) {
      sweep.push_back(std::move(r));
    }
    contextual.push_back(RunContextual("efo", cg));
  }

  bool all_equivalent = true;
  {
    bench::TablePrinter table({"workload", "nodes", "legacy(ms)", "incr(ms)",
                               "speedup", "resign-", "equal"});
    for (const RunResult& r : runs) {
      table.Row({r.name, bench::FmtInt(r.nodes),
                 bench::Fmt("%.1f", r.legacy_ms),
                 bench::Fmt("%.1f", r.incremental_ms),
                 bench::Fmt("%.2fx", r.legacy_ms /
                                         (r.incremental_ms > 0
                                              ? r.incremental_ms
                                              : 1.0)),
                 bench::Fmt("%.1fx", static_cast<double>(r.legacy_resignings) /
                                         (r.incremental_resignings > 0
                                              ? r.incremental_resignings
                                              : 1)),
                 r.equivalent ? "yes" : "NO"});
      all_equivalent = all_equivalent && r.equivalent;
    }
  }
  std::printf("\nfirst-round signing thread sweep\n");
  {
    bench::TablePrinter table(
        {"workload", "threads", "round1(ms)", "total(ms)", "identical"});
    for (const ThreadsResult& r : sweep) {
      table.Row({r.name, bench::FmtInt(r.threads),
                 bench::Fmt("%.1f", r.first_round_ms),
                 bench::Fmt("%.1f", r.total_ms),
                 r.identical ? "yes" : "NO"});
      all_equivalent = all_equivalent && r.identical;
    }
  }
  std::printf("\ncontextual refinement A/B (predicate-aware hybrid shape)\n");
  {
    bench::TablePrinter table({"workload", "nodes", "pred-only", "legacy(ms)",
                               "incr(ms)", "speedup", "equal"});
    for (const ContextualResult& r : contextual) {
      table.Row({r.name, bench::FmtInt(r.nodes), bench::FmtInt(r.predicate_only),
                 bench::Fmt("%.1f", r.legacy_ms),
                 bench::Fmt("%.1f", r.incremental_ms),
                 bench::Fmt("%.2fx", r.legacy_ms /
                                         (r.incremental_ms > 0
                                              ? r.incremental_ms
                                              : 1.0)),
                 r.equivalent ? "yes" : "NO"});
      all_equivalent = all_equivalent && r.equivalent;
    }
  }
  const bool wrote = WriteJson(out, runs, sweep, contextual, scale, seed);
  if (wrote) std::printf("\nwrote %s\n", out.c_str());
  return all_equivalent && wrote ? 0 : 1;
}
