// Sustained streaming-update throughput of the StreamAligner (ISSUE 8
// acceptance bench).
//
// At each scale point a category-chain of versions sharing one dictionary
// is generated, a stream session is opened on version 1 (source == target,
// the daemon's usual starting state), and every inter-version update batch
// is applied live:
//
//   open     : the initial fixpoint the session pays once;
//   apply    : BuildUpdateBatch(v, v+1) fed through StreamAligner::Apply —
//              incremental maintenance plus alignment-delta emission, the
//              number the updates/sec figure is computed from;
//   realign  : one from-scratch batch alignment of (v1, v_final) for
//              context — what every step would cost without the
//              incremental path.
//
// Gate (exit nonzero, REFUSING to write the JSON, on violation): after the
// full chain the live partition must pass CheckBatchEquivalence against a
// batch alignment of the final versions at every scale point — the stream
// path may be faster, never different.
//
// Emits BENCH_stream.json; the checked-in copy at the repo root is the
// reference run (largest point around a million triples), re-run at tiny
// scale by the stream_bench_smoke ctest target.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <filesystem>

#include "bench/harness.h"
#include "core/aligner.h"
#include "gen/category_gen.h"
#include "store/atomic_writer.h"
#include "store/update_fragment.h"
#include "stream/stream_aligner.h"
#include "util/fault_injector.h"
#include "util/stats.h"
#include "util/timer.h"

using namespace rdfalign;

namespace {

struct PointResult {
  double scale_point = 0;
  size_t nodes = 0;    // final target version
  size_t triples = 0;  // final target version
  size_t batches = 0;
  double open_ms = 0;
  size_t updates = 0;  // applied triple adds + removes across the chain
  size_t fragment_bytes = 0;
  double apply_seconds = 0;
  double updates_per_sec = 0;
  double step_p50_ms = 0, step_p95_ms = 0, step_max_ms = 0;
  size_t added_pairs = 0, removed_pairs = 0;
  size_t dirty_total = 0;
  double realign_ms = 0;       // batch align of (v1, v_final)
  double realign_speedup = 0;  // realign_ms / mean step ms
  double fragment_write_p50_ms = 0;        // durable atomic fragment write
  double fragment_write_armed_p50_ms = 0;  // same, failpoints armed (idle)
  double failpoint_overhead_p50 = 0;       // armed / unarmed
  bool equivalent = false;
  size_t live_nodes = 0, classes = 0;
};

bool RunPoint(double scale_point, size_t versions, uint64_t seed,
              size_t threads, PointResult* out) {
  PointResult r;
  r.scale_point = scale_point;

  const gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(scale_point, versions, seed));
  const TripleGraph& first = chain.Version(0);
  const TripleGraph& last = chain.Version(chain.NumVersions() - 1);
  r.nodes = last.NumNodes();
  r.triples = last.NumEdges();
  r.batches = chain.NumVersions() - 1;

  stream::StreamOptions options;
  options.method = AlignMethod::kDeblank;
  options.threads = threads;
  WallTimer open_timer;
  Result<std::unique_ptr<stream::StreamAligner>> session =
      stream::StreamAligner::Open(first, first, options);
  r.open_ms = open_timer.ElapsedMillis();
  if (!session.ok()) {
    std::fprintf(stderr, "stream_bench: open failed: %s\n",
                 session.status().ToString().c_str());
    return false;
  }
  stream::StreamAligner& aligner = **session;

  std::vector<double> step_ms;
  std::string last_image;
  for (size_t v = 1; v < chain.NumVersions(); ++v) {
    Result<store::UpdateBatch> batch = store::BuildUpdateBatch(
        chain.Version(v - 1), chain.Version(v), /*sequence=*/v);
    if (!batch.ok()) {
      std::fprintf(stderr, "stream_bench: batch %zu build failed: %s\n", v,
                   batch.status().ToString().c_str());
      return false;
    }
    // The wire image is what a daemon would receive; size it for the
    // bytes-per-step figure (the stream path never writes snapshots).
    Result<std::string> image = store::EncodeUpdateBatch(*batch);
    if (!image.ok()) return false;
    r.fragment_bytes += image->size();
    last_image = std::move(*image);

    WallTimer step_timer;
    Result<stream::StreamBatchResult> step = aligner.Apply(*batch);
    const double ms = step_timer.ElapsedMillis();
    if (!step.ok()) {
      std::fprintf(stderr, "stream_bench: apply %zu failed: %s\n", v,
                   step.status().ToString().c_str());
      return false;
    }
    step_ms.push_back(ms);
    r.updates += step->applied_adds + step->applied_removes;
    r.added_pairs += step->added_pairs.size();
    r.removed_pairs += step->removed_pairs.size();
    r.dirty_total += step->dirty_total;
  }
  for (double ms : step_ms) r.apply_seconds += ms / 1000.0;
  r.updates_per_sec =
      r.apply_seconds > 0 ? r.updates / r.apply_seconds : 0;
  r.step_p50_ms = Percentile(step_ms, 0.50);
  r.step_p95_ms = Percentile(step_ms, 0.95);
  for (double ms : step_ms) r.step_max_ms = std::max(r.step_max_ms, ms);

  // Context: what one step would cost as a full re-alignment.
  AlignerOptions batch_options;
  batch_options.method = AlignMethod::kDeblank;
  WallTimer realign_timer;
  Result<AlignmentOutcome> outcome =
      Aligner(batch_options).Align(first, last);
  r.realign_ms = realign_timer.ElapsedMillis();
  if (!outcome.ok()) {
    std::fprintf(stderr, "stream_bench: batch realign failed: %s\n",
                 outcome.status().ToString().c_str());
    return false;
  }
  const double mean_step_ms =
      r.batches > 0 ? r.apply_seconds * 1000.0 / r.batches : 0;
  r.realign_speedup = mean_step_ms > 0 ? r.realign_ms / mean_step_ms : 0;

  // Failpoint overhead on the happy path: the durable atomic fragment
  // write (temp + fsync + rename, docs/robustness.md) timed with the
  // fault injector disarmed and then armed at an ordinal it never
  // reaches. The ratio is what a production daemon pays for keeping the
  // failpoints compiled in and armed.
  {
    const std::string path =
        (std::filesystem::temp_directory_path() / "rdfalign_stream_bench.upd")
            .string();
    constexpr size_t kWriteSamples = 15;
    std::vector<double> plain_ms, armed_ms;
    for (size_t i = 0; i < kWriteSamples; ++i) {
      WallTimer t;
      if (!store::AtomicWriteFile(path, last_image.data(), last_image.size(),
                                  "update fragment")
               .ok()) {
        return false;
      }
      plain_ms.push_back(t.ElapsedMillis());
    }
    if (!FaultInjector::ArmFromSpec("store.write@1000000000=error").ok()) {
      return false;
    }
    for (size_t i = 0; i < kWriteSamples; ++i) {
      WallTimer t;
      if (!store::AtomicWriteFile(path, last_image.data(), last_image.size(),
                                  "update fragment")
               .ok()) {
        FaultInjector::Reset();
        return false;
      }
      armed_ms.push_back(t.ElapsedMillis());
    }
    FaultInjector::Reset();
    std::filesystem::remove(path);
    r.fragment_write_p50_ms = Percentile(plain_ms, 0.50);
    r.fragment_write_armed_p50_ms = Percentile(armed_ms, 0.50);
    r.failpoint_overhead_p50 =
        r.fragment_write_p50_ms > 0
            ? r.fragment_write_armed_p50_ms / r.fragment_write_p50_ms
            : 0;
  }

  // The acceptance gate: the live partition must match the batch path.
  Result<stream::StreamCheckResult> check =
      aligner.CheckBatchEquivalence(first, last);
  if (!check.ok()) {
    std::fprintf(stderr,
                 "stream_bench: FAIL equivalence at scale %g: %s\n",
                 scale_point, check.status().ToString().c_str());
    return false;
  }
  r.equivalent = true;
  r.live_nodes = check->live_nodes;
  r.classes = check->classes;
  *out = r;
  return true;
}

bool WriteJson(const std::string& path, const std::vector<PointResult>& points,
               double scale, size_t versions, uint64_t seed, size_t threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"stream\",\n");
  std::fprintf(f, "  \"scale\": %g,\n", scale);
  std::fprintf(f, "  \"versions\": %zu,\n", versions);
  std::fprintf(f, "  \"seed\": %llu,\n", (unsigned long long)seed);
  std::fprintf(f, "  \"threads\": %zu,\n", threads);
  std::fprintf(f,
               "  \"provenance\": \"single-process wall clock; updates/sec "
               "counts applied triple adds+removes over "
               "StreamAligner::Apply time (incremental maintenance + delta "
               "emission, no snapshot IO); every point passed "
               "CheckBatchEquivalence against the batch aligner or this "
               "file would not have been written\",\n");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const PointResult& r = points[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"scale_point\": %g,\n", r.scale_point);
    std::fprintf(f, "      \"nodes\": %zu,\n", r.nodes);
    std::fprintf(f, "      \"triples\": %zu,\n", r.triples);
    std::fprintf(f, "      \"batches\": %zu,\n", r.batches);
    std::fprintf(f, "      \"open_ms\": %.2f,\n", r.open_ms);
    std::fprintf(f, "      \"updates\": %zu,\n", r.updates);
    std::fprintf(f, "      \"fragment_bytes\": %zu,\n", r.fragment_bytes);
    std::fprintf(f, "      \"apply_seconds\": %.4f,\n", r.apply_seconds);
    std::fprintf(f, "      \"updates_per_sec\": %.0f,\n", r.updates_per_sec);
    std::fprintf(f, "      \"step_p50_ms\": %.3f,\n", r.step_p50_ms);
    std::fprintf(f, "      \"step_p95_ms\": %.3f,\n", r.step_p95_ms);
    std::fprintf(f, "      \"step_max_ms\": %.3f,\n", r.step_max_ms);
    std::fprintf(f, "      \"added_pairs\": %zu,\n", r.added_pairs);
    std::fprintf(f, "      \"removed_pairs\": %zu,\n", r.removed_pairs);
    std::fprintf(f, "      \"dirty_resignings\": %zu,\n", r.dirty_total);
    std::fprintf(f, "      \"realign_ms\": %.2f,\n", r.realign_ms);
    std::fprintf(f, "      \"realign_speedup\": %.1f,\n", r.realign_speedup);
    std::fprintf(f, "      \"fragment_write_p50_ms\": %.3f,\n",
                 r.fragment_write_p50_ms);
    std::fprintf(f, "      \"fragment_write_armed_p50_ms\": %.3f,\n",
                 r.fragment_write_armed_p50_ms);
    std::fprintf(f, "      \"failpoint_overhead_p50\": %.2f,\n",
                 r.failpoint_overhead_p50);
    std::fprintf(f, "      \"live_nodes\": %zu,\n", r.live_nodes);
    std::fprintf(f, "      \"classes\": %zu,\n", r.classes);
    std::fprintf(f, "      \"equivalent\": %s\n",
                 r.equivalent ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.GetDouble("scale", 6.0);
  const size_t versions = flags.GetInt("versions", 5);
  const uint64_t seed = flags.GetInt("seed", 5);
  const size_t threads = flags.GetInt("threads", 1);
  const std::string out = flags.GetString("out", "BENCH_stream.json");

  bench::Banner("stream_bench",
                "streaming continuous alignment: live update batches "
                "through StreamAligner::Apply, gated on batch-path "
                "equivalence at every point");

  // Three points up to 4x --scale; the default largest point lands around
  // a million triples in the final version.
  std::vector<double> scale_points;
  for (double factor : {0.25, 1.0, 4.0}) {
    const double point = scale * factor;
    if (scale_points.empty() || point > scale_points.back()) {
      scale_points.push_back(point);
    }
  }

  bench::TablePrinter table({"scale", "triples", "batches", "upd/s",
                             "step_p50", "realign", "equal"});
  std::vector<PointResult> points;
  for (double point : scale_points) {
    PointResult r;
    if (!RunPoint(point, versions, seed, threads, &r)) {
      std::fprintf(stderr,
                   "stream_bench: FAIL at scale %g — not writing %s\n",
                   point, out.c_str());
      return 1;
    }
    table.Row({bench::Fmt("%.3g", r.scale_point), bench::FmtInt(r.triples),
               bench::FmtInt(r.batches), bench::Fmt("%.0f", r.updates_per_sec),
               bench::Fmt("%.3f", r.step_p50_ms),
               bench::Fmt("%.1fx", r.realign_speedup),
               r.equivalent ? "yes" : "NO"});
    points.push_back(r);
  }

  if (!WriteJson(out, points, scale, versions, seed, threads)) return 1;
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
