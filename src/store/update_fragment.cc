#include "store/update_fragment.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <span>
#include <unordered_map>

#include "store/atomic_writer.h"
#include "store/front_coding.h"

namespace rdfalign::store {

namespace {

const char* UpdateSectionName(UpdateSectionId id) {
  switch (id) {
    case UpdateSectionId::kTermOffsets:
      return "term_offsets";
    case UpdateSectionId::kTermBlob:
      return "term_blob";
    case UpdateSectionId::kNodeKinds:
      return "node_kinds";
    case UpdateSectionId::kNodeLex:
      return "node_lex";
    case UpdateSectionId::kRemovedNodes:
      return "removed_nodes";
    case UpdateSectionId::kRemovedTriples:
      return "removed_triples";
    case UpdateSectionId::kAddedTriples:
      return "added_triples";
    case UpdateSectionId::kTermPrefixLens:
      return "term_prefix_lens";
  }
  return "unknown";
}

constexpr UpdateSectionId kUpdateSectionOrder[kNumUpdateSectionsV2] = {
    UpdateSectionId::kTermOffsets,    UpdateSectionId::kTermBlob,
    UpdateSectionId::kNodeKinds,      UpdateSectionId::kNodeLex,
    UpdateSectionId::kRemovedNodes,   UpdateSectionId::kRemovedTriples,
    UpdateSectionId::kAddedTriples,   UpdateSectionId::kTermPrefixLens,
};

/// Section count of an update-fragment format version.
size_t UpdateSectionCount(uint32_t version) {
  return version == kUpdateFormatVersion ? kNumUpdateSections
                                         : kNumUpdateSectionsV2;
}

/// Byte offset of the first payload of an update-fragment format version.
size_t UpdatePayloadStart(uint32_t version) {
  return sizeof(UpdateHeader) +
         UpdateSectionCount(version) * sizeof(SectionEntry);
}

bool TripleLess(const Triple& a, const Triple& b) {
  if (a.s != b.s) return a.s < b.s;
  if (a.p != b.p) return a.p < b.p;
  return a.o < b.o;
}

bool TripleEq(const Triple& a, const Triple& b) {
  return a.s == b.s && a.p == b.p && a.o == b.o;
}

/// Internal invariants every encoded (and every accepted decoded) batch
/// satisfies; shared so a hand-built batch fails the same way a corrupt
/// fragment does.
Status ValidateBatch(const UpdateBatch& batch, const std::string& name) {
  const size_t refs = batch.nodes.size();
  if (batch.num_new > refs) {
    return Status::InvalidArgument(
        "update batch declares more new nodes than references: " + name);
  }
  for (size_t i = 0; i < refs; ++i) {
    const auto kind = static_cast<uint32_t>(batch.nodes[i].kind);
    if (kind > static_cast<uint32_t>(TermKind::kBlank)) {
      return Status::Corruption("update batch node kind out of range: " +
                                name);
    }
  }
  auto check_triples = [&](const std::vector<Triple>& ts,
                           const char* what) -> Status {
    for (size_t i = 0; i < ts.size(); ++i) {
      if (ts[i].s >= refs || ts[i].p >= refs || ts[i].o >= refs) {
        return Status::Corruption(std::string("update batch ") + what +
                                  " references an undeclared node: " + name);
      }
      if (i > 0 && !TripleLess(ts[i - 1], ts[i])) {
        return Status::Corruption(std::string("update batch ") + what +
                                  " not sorted/deduplicated: " + name);
      }
    }
    return Status::OK();
  };
  RDFALIGN_RETURN_IF_ERROR(check_triples(batch.removed, "removed triples"));
  RDFALIGN_RETURN_IF_ERROR(check_triples(batch.added, "added triples"));
  for (size_t i = 0; i < batch.removed_nodes.size(); ++i) {
    const uint32_t r = batch.removed_nodes[i];
    if (r < batch.num_new || r >= refs) {
      return Status::Corruption(
          "update batch retires a node outside the existing-reference "
          "range: " +
          name);
    }
    if (i > 0 && batch.removed_nodes[i - 1] >= r) {
      return Status::Corruption(
          "update batch removed-node list not ascending: " + name);
    }
  }
  return Status::OK();
}

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void PadTo(std::string* out, size_t offset) {
  if (out->size() < offset) out->resize(offset, '\0');
}

}  // namespace

bool LooksLikeUpdateFragment(std::string_view bytes) {
  return bytes.size() >= kUpdateMagic.size() &&
         std::memcmp(bytes.data(), kUpdateMagic.data(),
                     kUpdateMagic.size()) == 0;
}

bool LooksLikeUpdateFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<char, 8> magic = {};
  in.read(magic.data(), magic.size());
  return in.gcount() == static_cast<std::streamsize>(magic.size()) &&
         magic == kUpdateMagic;
}

Result<std::string> EncodeUpdateBatch(const UpdateBatch& batch,
                                      const StoreWriteOptions& options) {
  static_assert(std::endian::native == std::endian::little,
                "update fragments are written on little-endian hosts only");
  RDFALIGN_RETURN_IF_ERROR(ValidateBatch(batch, "encode"));
  const bool fc = options.compress_dict;
  const uint32_t version =
      fc ? kUpdateFormatVersionFrontCoded : kUpdateFormatVersion;
  const size_t num_sections = UpdateSectionCount(version);

  // Term table: distinct lexical forms in first-use (reference) order —
  // the version-1 file order. Version 2 re-sorts them lexicographically
  // below so consecutive terms share prefixes.
  std::unordered_map<std::string_view, uint32_t> term_of;
  std::vector<std::string_view> terms;
  std::vector<uint32_t> lex(batch.nodes.size());
  std::vector<uint8_t> kinds(batch.nodes.size());
  for (size_t i = 0; i < batch.nodes.size(); ++i) {
    kinds[i] = static_cast<uint8_t>(batch.nodes[i].kind);
    const std::string_view form = batch.nodes[i].lex;
    auto [it, inserted] =
        term_of.emplace(form, static_cast<uint32_t>(terms.size()));
    if (inserted) terms.push_back(form);
    lex[i] = it->second;
  }
  FrontCodedLayout layout;
  if (fc) {
    // The forms are distinct (term_of interned uniquely), so the sort is
    // strict and the remap a permutation.
    std::vector<uint32_t> order(terms.size());
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&terms](uint32_t a, uint32_t b) {
      return terms[a] < terms[b];
    });
    std::vector<uint32_t> remap(terms.size());
    std::vector<std::string_view> sorted(terms.size());
    for (size_t k = 0; k < order.size(); ++k) {
      remap[order[k]] = static_cast<uint32_t>(k);
      sorted[k] = terms[order[k]];
    }
    terms = std::move(sorted);
    for (uint32_t& t : lex) t = remap[t];
    layout = FrontCodeTerms(terms.size(),
                            [&terms](size_t k) { return terms[k]; });
  }
  std::vector<uint64_t> term_offsets;
  if (fc) {
    term_offsets = std::move(layout.suffix_offsets);
  } else {
    term_offsets.assign(terms.size() + 1, 0);
    for (size_t t = 0; t < terms.size(); ++t) {
      term_offsets[t + 1] = term_offsets[t] + terms[t].size();
    }
  }

  struct Payload {
    const void* data;
    size_t size;
  };
  std::string blob;
  blob.reserve(term_offsets.back());
  for (size_t t = 0; t < terms.size(); ++t) {
    blob.append(fc ? terms[t].substr(layout.prefix_lens[t]) : terms[t]);
  }
  const Payload payloads[kNumUpdateSectionsV2] = {
      {term_offsets.data(), term_offsets.size() * sizeof(uint64_t)},
      {blob.data(), blob.size()},
      {kinds.data(), kinds.size()},
      {lex.data(), lex.size() * sizeof(uint32_t)},
      {batch.removed_nodes.data(),
       batch.removed_nodes.size() * sizeof(uint32_t)},
      {batch.removed.data(), batch.removed.size() * sizeof(Triple)},
      {batch.added.data(), batch.added.size() * sizeof(Triple)},
      {layout.prefix_lens.data(),
       layout.prefix_lens.size() * sizeof(uint32_t)},
  };

  SectionEntry table[kNumUpdateSectionsV2];
  uint64_t cursor = UpdatePayloadStart(version);
  for (size_t s = 0; s < num_sections; ++s) {
    cursor = AlignUp(cursor);
    table[s].id = static_cast<uint32_t>(kUpdateSectionOrder[s]);
    table[s].reserved = 0;
    table[s].offset = cursor;
    table[s].size = payloads[s].size;
    table[s].checksum = Checksum64(payloads[s].data, payloads[s].size);
    cursor += payloads[s].size;
  }

  UpdateHeader header;
  std::memset(&header, 0, sizeof(header));
  header.magic = kUpdateMagic;
  header.version = version;
  header.endian_tag = kEndianTag;
  header.sequence = batch.sequence;
  header.num_refs = batch.nodes.size();
  header.num_new_nodes = batch.num_new;
  header.num_removed_nodes = batch.removed_nodes.size();
  header.num_removed_triples = batch.removed.size();
  header.num_added_triples = batch.added.size();
  header.num_terms = terms.size();
  header.num_sections = num_sections;
  header.file_size = cursor;
  header.header_checksum = 0;
  {
    Checksummer c;
    c.Update(&header, sizeof(header));
    c.Update(table, num_sections * sizeof(SectionEntry));
    header.header_checksum = c.Finish();
  }

  std::string out;
  out.reserve(cursor);
  AppendBytes(&out, &header, sizeof(header));
  AppendBytes(&out, table, num_sections * sizeof(SectionEntry));
  for (size_t s = 0; s < num_sections; ++s) {
    PadTo(&out, table[s].offset);
    AppendBytes(&out, payloads[s].data, payloads[s].size);
  }
  return out;
}

Result<UpdateBatch> DecodeUpdateBatch(std::string_view bytes,
                                      const std::string& name) {
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < sizeof(UpdateHeader)) {
    return Status::Corruption("truncated update fragment (no header): " +
                              name);
  }
  UpdateHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (header.magic != kUpdateMagic) {
    return Status::InvalidArgument("not an rdfalign update fragment: " +
                                   name);
  }
  if (header.version != kUpdateFormatVersion &&
      header.version != kUpdateFormatVersionFrontCoded) {
    return Status::NotSupported(
        "unsupported update fragment version " +
        std::to_string(header.version) + " (this build reads versions " +
        std::to_string(kUpdateFormatVersion) + "-" +
        std::to_string(kUpdateFormatVersionFrontCoded) + "): " + name);
  }
  if (header.endian_tag != kEndianTag) {
    return Status::NotSupported(
        "update fragment written with a different byte order: " + name);
  }
  const bool fc = header.version == kUpdateFormatVersionFrontCoded;
  const size_t num_sections = UpdateSectionCount(header.version);
  const uint64_t payload_start = UpdatePayloadStart(header.version);
  if (header.num_sections != num_sections) {
    return Status::Corruption("unexpected update section count: " + name);
  }
  if (header.file_size != bytes.size()) {
    return Status::Corruption("update fragment size mismatch: " + name);
  }
  if (bytes.size() < payload_start) {
    return Status::Corruption("truncated update fragment (no sections): " +
                              name);
  }
  SectionEntry table[kNumUpdateSectionsV2];
  std::memcpy(table, base + sizeof(UpdateHeader),
              num_sections * sizeof(SectionEntry));
  {
    UpdateHeader copy = header;
    copy.header_checksum = 0;
    Checksummer c;
    c.Update(&copy, sizeof(copy));
    c.Update(table, num_sections * sizeof(SectionEntry));
    if (c.Finish() != header.header_checksum) {
      return Status::Corruption("update fragment header checksum mismatch: " +
                                name);
    }
  }
  uint64_t cursor = payload_start;
  for (size_t s = 0; s < num_sections; ++s) {
    if (table[s].id != static_cast<uint32_t>(kUpdateSectionOrder[s]) ||
        table[s].reserved != 0) {
      return Status::Corruption("unexpected update section table: " + name);
    }
    cursor = AlignUp(cursor);
    if (table[s].offset != cursor || table[s].size > bytes.size() ||
        table[s].offset > bytes.size() - table[s].size) {
      return Status::Corruption(
          std::string("update section out of bounds: ") +
          UpdateSectionName(kUpdateSectionOrder[s]) + ": " + name);
    }
    if (Checksum64(base + table[s].offset, table[s].size) !=
        table[s].checksum) {
      return Status::Corruption(
          std::string("update section checksum mismatch: ") +
          UpdateSectionName(kUpdateSectionOrder[s]) + ": " + name);
    }
    cursor = table[s].offset + table[s].size;
  }

  auto expect_size = [&](size_t s, uint64_t want) -> Status {
    if (table[s].size != want) {
      return Status::Corruption(
          std::string("update section size mismatch: ") +
          UpdateSectionName(kUpdateSectionOrder[s]) + ": " + name);
    }
    return Status::OK();
  };
  const uint64_t refs = header.num_refs;
  const uint64_t terms = header.num_terms;
  if (refs > 0xffffffffull || terms > 0xffffffffull) {
    return Status::Corruption("update fragment counts out of range: " + name);
  }
  RDFALIGN_RETURN_IF_ERROR(expect_size(0, (terms + 1) * sizeof(uint64_t)));
  RDFALIGN_RETURN_IF_ERROR(expect_size(2, refs));
  RDFALIGN_RETURN_IF_ERROR(expect_size(3, refs * sizeof(uint32_t)));
  RDFALIGN_RETURN_IF_ERROR(
      expect_size(4, header.num_removed_nodes * sizeof(uint32_t)));
  RDFALIGN_RETURN_IF_ERROR(
      expect_size(5, header.num_removed_triples * sizeof(Triple)));
  RDFALIGN_RETURN_IF_ERROR(
      expect_size(6, header.num_added_triples * sizeof(Triple)));
  if (fc) {
    RDFALIGN_RETURN_IF_ERROR(expect_size(7, terms * sizeof(uint32_t)));
  }

  const auto* term_offsets =
      reinterpret_cast<const uint64_t*>(base + table[0].offset);
  const uint64_t blob_size = table[1].size;
  const auto* prefix_lens =
      fc ? reinterpret_cast<const uint32_t*>(base + table[7].offset)
         : nullptr;
  if (fc) {
    if (const char* defect = CheckFrontCodedGeometry(
            std::span<const uint32_t>(prefix_lens, terms),
            std::span<const uint64_t>(term_offsets, terms + 1), blob_size,
            nullptr)) {
      return Status::Corruption(std::string(defect) + ": " + name);
    }
  } else {
    if (term_offsets[0] != 0 || term_offsets[terms] != blob_size) {
      return Status::Corruption("update term offsets malformed: " + name);
    }
    for (uint64_t t = 0; t < terms; ++t) {
      if (term_offsets[t] > term_offsets[t + 1]) {
        return Status::Corruption("update term offsets not monotonic: " +
                                  name);
      }
    }
  }
  const char* blob = reinterpret_cast<const char*>(base + table[1].offset);
  // Front-coded decode: each term is its predecessor's head plus its own
  // suffix; the geometry check above bounds every prefix length, and the
  // strict-ascending check rejects crafted non-sorted dictionaries.
  std::vector<std::string> decoded_terms;
  if (fc) {
    decoded_terms.resize(terms);
    for (uint64_t t = 0; t < terms; ++t) {
      std::string& cur = decoded_terms[t];
      const uint32_t plen = prefix_lens[t];
      const uint64_t suffix_len = term_offsets[t + 1] - term_offsets[t];
      cur.reserve(plen + suffix_len);
      if (plen > 0) cur.assign(decoded_terms[t - 1].data(), plen);
      cur.append(blob + term_offsets[t], suffix_len);
      if (t > 0 && !(decoded_terms[t - 1] < cur)) {
        return Status::Corruption(
            "update front-coded terms not strictly ascending: " + name);
      }
    }
  }

  UpdateBatch batch;
  batch.sequence = header.sequence;
  batch.num_new = static_cast<uint32_t>(header.num_new_nodes);
  batch.nodes.resize(refs);
  const auto* kinds = base + table[2].offset;
  const auto* lex = reinterpret_cast<const uint32_t*>(base + table[3].offset);
  for (uint64_t i = 0; i < refs; ++i) {
    if (kinds[i] > static_cast<uint8_t>(TermKind::kBlank)) {
      return Status::Corruption("update node kind out of range: " + name);
    }
    if (lex[i] >= terms) {
      return Status::Corruption("update node references a missing term: " +
                                name);
    }
    batch.nodes[i].kind = static_cast<TermKind>(kinds[i]);
    if (fc) {
      batch.nodes[i].lex = decoded_terms[lex[i]];
    } else {
      batch.nodes[i].lex.assign(
          blob + term_offsets[lex[i]],
          static_cast<size_t>(term_offsets[lex[i] + 1] -
                              term_offsets[lex[i]]));
    }
  }
  const auto* removed_nodes =
      reinterpret_cast<const uint32_t*>(base + table[4].offset);
  batch.removed_nodes.assign(removed_nodes,
                             removed_nodes + header.num_removed_nodes);
  const auto* removed =
      reinterpret_cast<const Triple*>(base + table[5].offset);
  batch.removed.assign(removed, removed + header.num_removed_triples);
  const auto* added = reinterpret_cast<const Triple*>(base + table[6].offset);
  batch.added.assign(added, added + header.num_added_triples);

  RDFALIGN_RETURN_IF_ERROR(ValidateBatch(batch, name));
  return batch;
}

Result<UpdateBatch> BuildUpdateBatch(const TripleGraph& base,
                                     const TripleGraph& next,
                                     uint64_t sequence) {
  // Node matching by (kind, lexical form). GraphBuilder guarantees unique
  // labels per graph (blanks by local name), so the match is one-to-one.
  auto key_of = [](TermKind kind, std::string_view lex) {
    std::string key;
    key.reserve(lex.size() + 2);
    key.push_back(static_cast<char>(kind));
    key.push_back(':');
    key.append(lex);
    return key;
  };
  std::unordered_map<std::string, NodeId> in_next;
  in_next.reserve(next.NumNodes());
  for (NodeId n = 0; n < next.NumNodes(); ++n) {
    if (!in_next.emplace(key_of(next.KindOf(n), next.Lexical(n)), n).second) {
      return Status::InvalidArgument(
          "next graph has duplicate node labels; cannot build an update "
          "batch");
    }
  }
  std::vector<NodeId> base_to_next(base.NumNodes(), kInvalidNode);
  std::vector<NodeId> next_to_base(next.NumNodes(), kInvalidNode);
  {
    std::unordered_map<std::string, NodeId> seen;
    seen.reserve(base.NumNodes());
    for (NodeId b = 0; b < base.NumNodes(); ++b) {
      const std::string key = key_of(base.KindOf(b), base.Lexical(b));
      if (!seen.emplace(key, b).second) {
        return Status::InvalidArgument(
            "base graph has duplicate node labels; cannot build an update "
            "batch");
      }
      auto it = in_next.find(key);
      if (it != in_next.end()) {
        base_to_next[b] = it->second;
        next_to_base[it->second] = b;
      }
    }
  }

  UpdateBatch batch;
  batch.sequence = sequence;
  // References: new nodes first (ascending next id), then existing nodes in
  // first-use order over a deterministic walk.
  std::vector<uint32_t> ref_of_next(next.NumNodes(), kInvalidNode);
  std::vector<uint32_t> ref_of_base(base.NumNodes(), kInvalidNode);
  for (NodeId n = 0; n < next.NumNodes(); ++n) {
    if (next_to_base[n] != kInvalidNode) continue;
    ref_of_next[n] = static_cast<uint32_t>(batch.nodes.size());
    batch.nodes.push_back(
        {next.KindOf(n), std::string(next.Lexical(n))});
  }
  batch.num_new = static_cast<uint32_t>(batch.nodes.size());
  auto ref_existing_next = [&](NodeId n) -> uint32_t {
    if (ref_of_next[n] == kInvalidNode) {
      ref_of_next[n] = static_cast<uint32_t>(batch.nodes.size());
      const NodeId b = next_to_base[n];
      if (b != kInvalidNode) ref_of_base[b] = ref_of_next[n];
      batch.nodes.push_back({next.KindOf(n), std::string(next.Lexical(n))});
    }
    return ref_of_next[n];
  };
  auto ref_base = [&](NodeId b) -> uint32_t {
    const NodeId n = base_to_next[b];
    if (n != kInvalidNode) return ref_existing_next(n);
    if (ref_of_base[b] == kInvalidNode) {
      ref_of_base[b] = static_cast<uint32_t>(batch.nodes.size());
      batch.nodes.push_back({base.KindOf(b), std::string(base.Lexical(b))});
    }
    return ref_of_base[b];
  };

  // Removed triples: base triples whose label-image is absent from next.
  const auto next_triples = next.triples();
  for (const Triple& t : base.triples()) {
    const NodeId s = base_to_next[t.s];
    const NodeId p = base_to_next[t.p];
    const NodeId o = base_to_next[t.o];
    bool kept = false;
    if (s != kInvalidNode && p != kInvalidNode && o != kInvalidNode) {
      const Triple mapped{s, p, o};
      kept = std::binary_search(next_triples.begin(), next_triples.end(),
                                mapped, TripleLess);
    }
    if (!kept) {
      batch.removed.push_back(
          {ref_base(t.s), ref_base(t.p), ref_base(t.o)});
    }
  }
  // Added triples: next triples whose label-preimage is absent from base.
  const auto base_triples = base.triples();
  for (const Triple& t : next_triples) {
    const NodeId s = next_to_base[t.s];
    const NodeId p = next_to_base[t.p];
    const NodeId o = next_to_base[t.o];
    bool existed = false;
    if (s != kInvalidNode && p != kInvalidNode && o != kInvalidNode) {
      const Triple mapped{s, p, o};
      existed = std::binary_search(base_triples.begin(), base_triples.end(),
                                   mapped, TripleLess);
    }
    if (!existed) {
      batch.added.push_back({ref_existing_next(t.s), ref_existing_next(t.p),
                             ref_existing_next(t.o)});
    }
  }
  // Retired nodes: base nodes with no next image.
  for (NodeId b = 0; b < base.NumNodes(); ++b) {
    if (base_to_next[b] == kInvalidNode) {
      batch.removed_nodes.push_back(ref_base(b));
    }
  }

  std::sort(batch.removed.begin(), batch.removed.end(), TripleLess);
  batch.removed.erase(std::unique(batch.removed.begin(), batch.removed.end(),
                                  TripleEq),
                      batch.removed.end());
  std::sort(batch.added.begin(), batch.added.end(), TripleLess);
  batch.added.erase(
      std::unique(batch.added.begin(), batch.added.end(), TripleEq),
      batch.added.end());
  std::sort(batch.removed_nodes.begin(), batch.removed_nodes.end());

  RDFALIGN_RETURN_IF_ERROR(ValidateBatch(batch, "build"));
  return batch;
}

Status WriteUpdateFile(const UpdateBatch& batch, const std::string& path,
                       const StoreWriteOptions& options) {
  RDFALIGN_ASSIGN_OR_RETURN(std::string bytes,
                            EncodeUpdateBatch(batch, options));
  return AtomicWriteFile(path, bytes.data(), bytes.size(), "update fragment");
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    return Status::NotFound("no such file: " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  std::string bytes;
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return Status::IOError("cannot stat file: " + path);
  }
  bytes.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(bytes.data(), size);
  if (!in) {
    return Status::IOError("error reading file: " + path);
  }
  return bytes;
}

Result<UpdateBatch> ReadUpdateFile(const std::string& path) {
  RDFALIGN_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  return DecodeUpdateBatch(bytes, path);
}

}  // namespace rdfalign::store
