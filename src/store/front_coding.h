// Front-coded dictionary sections (format version 2 of the snapshot,
// delta, and update-fragment files).
//
// The terms of a dictionary section are sorted lexicographically by their
// raw bytes; consecutive terms then share long prefixes (IRIs share
// namespaces by construction), and each term is stored as
//
//   prefix_lens[i]  — bytes shared with term i-1 (u32)
//   suffix          — the remaining tail, concatenated into the blob
//
// with a *restart point* every kRestartInterval terms: at a restart the
// prefix length is forced to zero, so the term is stored whole and any
// single term decodes by scanning at most one block — O(block), not O(i).
// The suffix offset table keeps the familiar (t + 1) x u64 shape of the
// raw encoding, but its entries now index the *suffix* blob.
//
// The decode contract (see docs/store.md "Front-coded dictionary"):
// restart terms are complete in the blob and stay zero-copy; non-restart
// terms are materialized (previous term's head + own suffix) into a side
// arena pinned to the dictionary, so Dictionary::InternPinned remains
// valid for every term and the mmap fast path survives.
//
// This header holds the pieces shared by all three writers and readers:
// the restart interval, the prefix/suffix computation, and the geometry
// validation a loader must run before touching the blob.

#ifndef RDFALIGN_STORE_FRONT_CODING_H_
#define RDFALIGN_STORE_FRONT_CODING_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace rdfalign::store {

/// Terms between forced whole-term restart points. Small enough that the
/// worst-case single-term decode touches a handful of entries, large
/// enough that the per-block whole term amortizes away.
inline constexpr size_t kRestartInterval = 16;

/// The computed layout of one front-coded term list: per-term shared
/// prefix lengths and offsets of the suffix tails. Suffix bytes are not
/// materialized — writers stream them from the term accessor.
struct FrontCodedLayout {
  std::vector<uint32_t> prefix_lens;     ///< count entries
  std::vector<uint64_t> suffix_offsets;  ///< count + 1 entries
};

/// Computes the front-coded layout of `count` terms. `get(i)` must return
/// the i-th term; the terms must be sorted ascending (strictly — distinct
/// interned ids hold distinct strings).
template <typename GetTerm>
FrontCodedLayout FrontCodeTerms(size_t count, GetTerm&& get) {
  FrontCodedLayout layout;
  layout.prefix_lens.resize(count);
  layout.suffix_offsets.assign(count + 1, 0);
  std::string_view prev;
  for (size_t i = 0; i < count; ++i) {
    const std::string_view term = get(i);
    size_t plen = 0;
    if (i % kRestartInterval != 0) {
      const size_t limit = prev.size() < term.size() ? prev.size()
                                                     : term.size();
      while (plen < limit && prev[plen] == term[plen]) ++plen;
      // The on-disk field is u32; a >4 GiB shared prefix is truncated to
      // a shorter (still correct) one rather than wrapped.
      if (plen > 0xffffffffull) plen = 0xffffffffull;
    }
    layout.prefix_lens[i] = static_cast<uint32_t>(plen);
    layout.suffix_offsets[i + 1] =
        layout.suffix_offsets[i] + (term.size() - plen);
    prev = term;
  }
  return layout;
}

/// Validates the geometry of a front-coded section before any blob byte
/// is interpreted: the suffix offsets span the blob monotonically, every
/// restart has prefix length zero, and every prefix length is bounded by
/// the previous term's decoded length — so the decode loop below never
/// reads outside [prev term]. Returns nullptr on success or a static
/// description of the defect; on success *materialized_bytes is the total
/// decoded size of the non-restart terms (the side-arena budget).
inline const char* CheckFrontCodedGeometry(
    std::span<const uint32_t> prefix_lens,
    std::span<const uint64_t> suffix_offsets, uint64_t blob_size,
    uint64_t* materialized_bytes) {
  const size_t count = prefix_lens.size();
  if (suffix_offsets.size() != count + 1) {
    return "front-coded prefix table does not match the offset table";
  }
  if (suffix_offsets[0] != 0 || suffix_offsets[count] != blob_size) {
    return "term offset table does not span the term blob";
  }
  uint64_t arena = 0;
  uint64_t prev_len = 0;
  for (size_t i = 0; i < count; ++i) {
    if (suffix_offsets[i] > suffix_offsets[i + 1]) {
      return "term offsets not monotonic";
    }
    const uint64_t suffix_len = suffix_offsets[i + 1] - suffix_offsets[i];
    const uint64_t plen = prefix_lens[i];
    if (i % kRestartInterval == 0) {
      if (plen != 0) return "front-coded restart term has a nonzero prefix";
    } else if (plen > prev_len) {
      return "front-coded prefix longer than the previous term";
    }
    prev_len = plen + suffix_len;
    if (plen != 0) arena += prev_len;
  }
  if (materialized_bytes != nullptr) *materialized_bytes = arena;
  return nullptr;
}

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_FRONT_CODING_H_
