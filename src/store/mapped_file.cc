#include "store/mapped_file.h"

#include <cerrno>
#include <cstring>

#if defined(_WIN32)
// The snapshot store's mmap path is POSIX-only; Open() reports NotSupported.
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace rdfalign::store {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(
    const std::string& path) {
#if defined(_WIN32)
  return Status::NotSupported("mmap snapshot loading is POSIX-only: " + path);
#else
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("cannot open file: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat file: " + path + ": " +
                           std::strerror(err));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const unsigned char* data = nullptr;
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map == MAP_FAILED) {
      int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap file: " + path + ": " +
                             std::strerror(err));
    }
    data = static_cast<const unsigned char*>(map);
  }
  // The mapping persists after the descriptor closes.
  ::close(fd);
  return std::shared_ptr<MappedFile>(new MappedFile(data, size));
#endif
}

MappedFile::~MappedFile() {
#if !defined(_WIN32)
  if (data_ != nullptr && size_ > 0) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
#endif
}

}  // namespace rdfalign::store
