#include "store/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "store/atomic_writer.h"
#include "store/front_coding.h"
#include "store/io_util.h"
#include "store/mapped_file.h"
#include "util/shared_array.h"

namespace rdfalign::store {

namespace {

// Section order within a file (also the id order). Version-1 files carry
// the first kNumSections entries; version-2 files all kNumSectionsV2.
constexpr SectionId kSectionOrder[kNumSectionsV2] = {
    SectionId::kTermOffsets, SectionId::kTermBlob,  SectionId::kNodeKinds,
    SectionId::kNodeLex,     SectionId::kTriples,   SectionId::kOutOffsets,
    SectionId::kOutPairs,    SectionId::kInOffsets, SectionId::kInSubjects,
    SectionId::kTermPrefixLens,
};

/// Section count of a snapshot format version.
size_t SectionCount(uint32_t version) {
  return version == kFormatVersion ? kNumSections : kNumSectionsV2;
}

/// Byte offset of the first payload of a snapshot format version.
size_t PayloadStart(uint32_t version) {
  return sizeof(SnapshotHeader) +
         SectionCount(version) * sizeof(SectionEntry);
}

Status WriteExact(std::ostream& out, const void* data, size_t n,
                  const std::string& path) {
  return store::WriteExact(out, data, n, "snapshot", path);  // io_util.h
}

}  // namespace

std::string_view SectionName(SectionId id) {
  switch (id) {
    case SectionId::kTermOffsets:
      return "term_offsets";
    case SectionId::kTermBlob:
      return "term_blob";
    case SectionId::kNodeKinds:
      return "node_kinds";
    case SectionId::kNodeLex:
      return "node_lex";
    case SectionId::kTriples:
      return "triples";
    case SectionId::kOutOffsets:
      return "out_offsets";
    case SectionId::kOutPairs:
      return "out_pairs";
    case SectionId::kInOffsets:
      return "in_offsets";
    case SectionId::kInSubjects:
      return "in_subjects";
    case SectionId::kTermPrefixLens:
      return "term_prefix_lens";
  }
  return "unknown";
}

Status WriteSnapshotToStream(const TripleGraph& g, std::ostream& out,
                             const std::string& path,
                             const StoreWriteOptions& options) {
  static_assert(std::endian::native == std::endian::little,
                "snapshots are written on little-endian hosts only");
  const size_t n = g.NumNodes();
  const size_t e = g.NumEdges();
  const Dictionary& dict = g.dict();
  const bool fc = options.compress_dict;
  const uint32_t version = fc ? kFormatVersionFrontCoded : kFormatVersion;
  const size_t num_sections = SectionCount(version);
  const uint64_t payload_start = PayloadStart(version);

  // Terms referenced by this graph, renumbered densely. A shared
  // dictionary may hold terms of other graphs; those are not written.
  // Version 1 keeps ascending original-id order; version 2 sorts the terms
  // lexicographically (the front-coding precondition). Either way, loading
  // a snapshot into a fresh dictionary interns the terms in file order, so
  // re-saving a loaded snapshot reproduces it byte for byte.
  std::vector<uint8_t> used(dict.size(), 0);
  for (const NodeLabel& l : g.labels()) {
    used[l.lex] = 1;
  }
  std::vector<LexId> term_ids;
  for (LexId id = 0; id < used.size(); ++id) {
    if (used[id]) term_ids.push_back(id);
  }
  if (fc) {
    // Distinct ids hold distinct strings, so the order is total.
    std::sort(term_ids.begin(), term_ids.end(), [&dict](LexId a, LexId b) {
      return dict.Get(a) < dict.Get(b);
    });
  }
  const size_t num_terms = term_ids.size();
  std::vector<LexId> remap(dict.size(), kInvalidLex);
  for (size_t j = 0; j < num_terms; ++j) {
    remap[term_ids[j]] = static_cast<LexId>(j);
  }

  // Dense columns. In version 2 the offset table indexes the suffix blob
  // and a prefix-length column is appended as the tenth section.
  FrontCodedLayout layout;
  std::vector<uint64_t> raw_offsets;
  if (fc) {
    layout = FrontCodeTerms(
        num_terms, [&](size_t i) { return dict.Get(term_ids[i]); });
  } else {
    raw_offsets.assign(num_terms + 1, 0);
    for (size_t i = 0; i < num_terms; ++i) {
      raw_offsets[i + 1] = raw_offsets[i] + dict.Get(term_ids[i]).size();
    }
  }
  const std::vector<uint64_t>& term_offsets =
      fc ? layout.suffix_offsets : raw_offsets;
  std::vector<uint8_t> kinds(n);
  std::vector<uint32_t> lex(n);
  for (size_t i = 0; i < n; ++i) {
    kinds[i] = static_cast<uint8_t>(g.labels()[i].kind);
    lex[i] = remap[g.labels()[i].lex];
  }

  // The i-th term's bytes as stored in the blob: the whole term (v1) or
  // its suffix tail past the shared prefix (v2).
  const auto stored_bytes = [&](size_t i) {
    std::string_view term = dict.Get(term_ids[i]);
    return fc ? term.substr(layout.prefix_lens[i]) : term;
  };

  // Section payloads: {data, size}. The term blob (section index 1) is the
  // one section streamed term by term instead of from a contiguous buffer;
  // it is selected by INDEX below — a null data pointer is NOT a sentinel,
  // since any empty array section legitimately has data() == nullptr.
  constexpr size_t kBlobIndex = 1;
  struct Payload {
    const void* data;
    uint64_t size;
  };
  const Payload payloads[kNumSectionsV2] = {
      {term_offsets.data(), (num_terms + 1) * sizeof(uint64_t)},
      {nullptr, term_offsets[num_terms]},
      {kinds.data(), n * sizeof(uint8_t)},
      {lex.data(), n * sizeof(uint32_t)},
      {g.triples().data(), e * sizeof(Triple)},
      {g.OutOffsets().data(), (n + 1) * sizeof(uint64_t)},
      {g.OutPairs().data(), e * sizeof(PredicateObject)},
      {g.InOffsets().data(), (n + 1) * sizeof(uint64_t)},
      {g.InSubjects().data(), g.InSubjects().size() * sizeof(NodeId)},
      {layout.prefix_lens.data(), num_terms * sizeof(uint32_t)},
  };

  SectionEntry table[kNumSectionsV2];
  uint64_t cursor = payload_start;
  for (size_t s = 0; s < num_sections; ++s) {
    table[s].id = static_cast<uint32_t>(kSectionOrder[s]);
    table[s].reserved = 0;
    table[s].offset = AlignUp(cursor);
    table[s].size = payloads[s].size;
    if (s == kBlobIndex) {
      Checksummer c;
      for (size_t i = 0; i < num_terms; ++i) {
        std::string_view bytes = stored_bytes(i);
        c.Update(bytes.data(), bytes.size());
      }
      table[s].checksum = c.Finish();
    } else {
      table[s].checksum = Checksum64(payloads[s].data, payloads[s].size);
    }
    cursor = table[s].offset + table[s].size;
  }

  SnapshotHeader header;
  header.magic = kMagic;
  header.version = version;
  header.endian_tag = kEndianTag;
  header.num_nodes = n;
  header.num_triples = e;
  header.num_terms = num_terms;
  header.num_sections = num_sections;
  header.file_size = cursor;
  header.header_checksum = 0;
  {
    Checksummer c;
    c.Update(&header, sizeof(header));
    c.Update(table, num_sections * sizeof(SectionEntry));
    header.header_checksum = c.Finish();
  }

  RDFALIGN_RETURN_IF_ERROR(WriteExact(out, &header, sizeof(header), path));
  RDFALIGN_RETURN_IF_ERROR(
      WriteExact(out, table, num_sections * sizeof(SectionEntry), path));
  uint64_t written = payload_start;
  const char zeros[kSectionAlignment] = {};
  for (size_t s = 0; s < num_sections; ++s) {
    if (table[s].offset > written) {
      RDFALIGN_RETURN_IF_ERROR(
          WriteExact(out, zeros, table[s].offset - written, path));
    }
    if (s == kBlobIndex) {
      for (size_t i = 0; i < num_terms; ++i) {
        std::string_view bytes = stored_bytes(i);
        RDFALIGN_RETURN_IF_ERROR(
            WriteExact(out, bytes.data(), bytes.size(), path));
      }
    } else {
      RDFALIGN_RETURN_IF_ERROR(
          WriteExact(out, payloads[s].data, payloads[s].size, path));
    }
    written = table[s].offset + table[s].size;
  }
  out.flush();
  if (!out) {
    return Status::IOError("error writing snapshot: " + path);
  }
  return Status::OK();
}

Status WriteSnapshot(const TripleGraph& g, const std::string& path,
                     const StoreWriteOptions& options) {
  // Durable atomic replace: stream into path.tmp.<pid>, fsync, rename
  // (see store/atomic_writer.h) — a crash mid-save leaves the previous
  // snapshot intact and never a torn file.
  AtomicFileWriter writer(path, "snapshot");
  RDFALIGN_RETURN_IF_ERROR(writer.Open());
  Status st = WriteSnapshotToStream(g, writer.stream(), path, options);
  if (!st.ok()) {
    // Prefer the writer's errno-carrying status over the stream-level
    // message when the failure was an I/O error.
    Status io = writer.status();
    return io.ok() ? st : io;
  }
  return writer.Commit();
}

namespace {

/// The validated raw view of a snapshot: base pointer, header, and the
/// section table. `pin` keeps the underlying buffer or mapping alive.
/// Version-1 files fill only the first kNumSections table entries.
struct RawSnapshot {
  std::shared_ptr<const void> pin;
  const unsigned char* base = nullptr;
  uint64_t size = 0;
  SnapshotHeader header;
  SectionEntry table[kNumSectionsV2];
};

/// Header and section-table validation shared by the loader and
/// ReadSnapshotInfo. `actual_size` is the real on-disk size; the first
/// PayloadStart(version) bytes must be present at `base`.
Status ValidateHeader(const unsigned char* base, uint64_t available,
                      uint64_t actual_size, SnapshotHeader* header,
                      SectionEntry* table, const std::string& path) {
  if (available < sizeof(SnapshotHeader)) {
    return Status::Corruption("truncated snapshot (no header): " + path);
  }
  std::memcpy(header, base, sizeof(SnapshotHeader));
  if (header->magic != kMagic) {
    return Status::InvalidArgument("not an rdfalign snapshot: " + path);
  }
  if (header->version != kFormatVersion &&
      header->version != kFormatVersionFrontCoded) {
    return Status::NotSupported(
        "unsupported snapshot format version " +
        std::to_string(header->version) + " (this build reads versions " +
        std::to_string(kFormatVersion) + "-" +
        std::to_string(kFormatVersionFrontCoded) + "): " + path);
  }
  if (header->endian_tag != kEndianTag) {
    return Status::NotSupported(
        "snapshot written with a different byte order: " + path);
  }
  const size_t num_sections = SectionCount(header->version);
  const uint64_t payload_start = PayloadStart(header->version);
  if (header->num_sections != num_sections) {
    return Status::Corruption("unexpected section count: " + path);
  }
  if (header->file_size != actual_size) {
    return Status::Corruption(
        "snapshot size mismatch (header says " +
        std::to_string(header->file_size) + " bytes, file has " +
        std::to_string(actual_size) + "): " + path);
  }
  if (available < payload_start) {
    return Status::Corruption("truncated snapshot (no section table): " +
                              path);
  }
  std::memcpy(table, base + sizeof(SnapshotHeader),
              num_sections * sizeof(SectionEntry));
  {
    // The header checksum covers header + table with the field zeroed.
    SnapshotHeader zeroed = *header;
    zeroed.header_checksum = 0;
    Checksummer c;
    c.Update(&zeroed, sizeof(zeroed));
    c.Update(table, num_sections * sizeof(SectionEntry));
    if (c.Finish() != header->header_checksum) {
      return Status::Corruption("snapshot header checksum mismatch: " + path);
    }
  }
  // Bound the counts before computing expected sizes (overflow safety).
  if (header->num_nodes >= kInvalidNode || header->num_terms >= kInvalidLex ||
      header->num_triples > (uint64_t{1} << 40)) {
    return Status::Corruption("implausible snapshot counts: " + path);
  }
  const uint64_t n = header->num_nodes;
  const uint64_t e = header->num_triples;
  const uint64_t t = header->num_terms;
  // Fixed expected sizes (blob and in_subjects are data-dependent; their
  // sizes are cross-checked against the offset arrays during load).
  const uint64_t expected[kNumSectionsV2] = {
      (t + 1) * sizeof(uint64_t),  // term_offsets
      table[1].size,               // term_blob: data-dependent
      n * sizeof(uint8_t),         // node_kinds
      n * sizeof(uint32_t),        // node_lex
      e * sizeof(Triple),          // triples
      (n + 1) * sizeof(uint64_t),  // out_offsets
      e * sizeof(PredicateObject),  // out_pairs
      (n + 1) * sizeof(uint64_t),  // in_offsets
      table[8].size,               // in_subjects: data-dependent
      t * sizeof(uint32_t),        // term_prefix_lens (v2 only)
  };
  uint64_t prev_end = payload_start;
  for (size_t s = 0; s < num_sections; ++s) {
    const SectionEntry& sec = table[s];
    if (sec.id != static_cast<uint32_t>(kSectionOrder[s]) ||
        sec.reserved != 0) {
      return Status::Corruption("malformed section table: " + path);
    }
    if (sec.size != expected[s]) {
      return Status::Corruption("section " +
                                std::string(SectionName(kSectionOrder[s])) +
                                " has unexpected size: " + path);
    }
    if (sec.offset % kSectionAlignment != 0 || sec.offset < prev_end ||
        sec.offset > header->file_size ||
        sec.size > header->file_size - sec.offset) {
      return Status::Corruption("section " +
                                std::string(SectionName(kSectionOrder[s])) +
                                " out of bounds: " + path);
    }
    prev_end = sec.offset + sec.size;
  }
  return Status::OK();
}

/// Opens `path` for buffered reading and validates the snapshot header and
/// section table from the first kPayloadStart bytes, without allocating
/// anything file-sized: a junk or crafted file is rejected from its prefix
/// alone. Only regular files are accepted — a directory "opens" as an
/// ifstream on Linux and tellg() then reports a nonsense size (observed:
/// -1 or LLONG_MAX). On success `in` is open and the actual file size is
/// returned.
Result<uint64_t> OpenAndValidatePrefix(const std::string& path,
                                       std::ifstream& in,
                                       SnapshotHeader* header,
                                       SectionEntry* table) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    return Status::IOError("not a regular file: " + path);
  }
  in.open(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  const std::streamoff pos = in.tellg();
  if (!in || pos < 0) {
    return Status::IOError("cannot determine file size: " + path);
  }
  const auto size = static_cast<uint64_t>(pos);
  in.seekg(0);
  // Large enough for either format version's header + section table; the
  // validator reads only the entries its version declares.
  unsigned char head[kPayloadStartV2] = {};
  const uint64_t head_bytes =
      size < kPayloadStartV2 ? size : kPayloadStartV2;
  in.read(reinterpret_cast<char*>(head),
          static_cast<std::streamsize>(head_bytes));
  if (!in && head_bytes > 0) {
    return Status::IOError("error reading file: " + path);
  }
  RDFALIGN_RETURN_IF_ERROR(
      ValidateHeader(head, head_bytes, size, header, table, path));
  return size;
}

/// Produces a RawSnapshot whose header and section table are validated.
/// The buffered path validates the prefix before allocating; the mmap
/// path validates in place after mapping.
Result<RawSnapshot> AcquireBytes(const std::string& path, bool use_mmap) {
  RawSnapshot raw;
  if (use_mmap) {
    RDFALIGN_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                              MappedFile::Open(path));
    raw.base = file->data();
    raw.size = file->size();
    raw.pin = std::move(file);
    RDFALIGN_RETURN_IF_ERROR(ValidateHeader(raw.base, raw.size, raw.size,
                                            &raw.header, raw.table, path));
    return raw;
  }
  std::ifstream in;
  RDFALIGN_ASSIGN_OR_RETURN(
      const uint64_t size,
      OpenAndValidatePrefix(path, in, &raw.header, raw.table));
  // The header vouched for the size; a genuinely huge snapshot can still
  // exceed memory, which must come back as a Status, not a bad_alloc.
  std::shared_ptr<std::vector<unsigned char>> buffer;
  try {
    buffer = std::make_shared<std::vector<unsigned char>>(size);
  } catch (const std::bad_alloc&) {
    return Status::IOError("snapshot too large to buffer (" +
                           std::to_string(size) + " bytes): " + path);
  }
  if (size > 0) {
    in.seekg(0);
    in.read(reinterpret_cast<char*>(buffer->data()),
            static_cast<std::streamsize>(size));
    if (!in) {
      return Status::IOError("error reading file: " + path);
    }
  }
  raw.base = buffer->data();
  raw.size = size;
  raw.pin = std::move(buffer);
  return raw;
}

template <typename T>
std::span<const T> SectionSpan(const RawSnapshot& raw, size_t index) {
  // Sections are 8-byte aligned and both backings (page-aligned mapping,
  // operator-new buffer) are at least that aligned, so the reinterpret_cast
  // is sound for the fixed-width little-endian element types used here.
  return {reinterpret_cast<const T*>(raw.base + raw.table[index].offset),
          static_cast<size_t>(raw.table[index].size / sizeof(T))};
}

/// The shared body of the file and memory loaders: checksums, structural
/// validation, dictionary interning, zero-copy array adoption. `raw` must
/// hold a validated header and section table.
Result<TripleGraph> LoadFromRaw(const RawSnapshot& raw,
                                std::shared_ptr<Dictionary> dict,
                                const SnapshotLoadOptions& options,
                                SnapshotLoadStats* stats,
                                const std::string& path) {
  static_assert(std::endian::native == std::endian::little,
                "snapshots are read on little-endian hosts only");
  const uint64_t n = raw.header.num_nodes;
  const uint64_t e = raw.header.num_triples;
  const uint64_t t = raw.header.num_terms;

  const bool fc = raw.header.version == kFormatVersionFrontCoded;
  const size_t num_sections = SectionCount(raw.header.version);
  if (options.verify_checksums) {
    for (size_t s = 0; s < num_sections; ++s) {
      if (Checksum64(raw.base + raw.table[s].offset, raw.table[s].size) !=
          raw.table[s].checksum) {
        return Status::Corruption(
            "section " + std::string(SectionName(kSectionOrder[s])) +
            " checksum mismatch: " + path);
      }
    }
  }

  const auto term_offsets = SectionSpan<uint64_t>(raw, 0);
  const auto blob = SectionSpan<char>(raw, 1);
  const auto kinds = SectionSpan<uint8_t>(raw, 2);
  const auto lex = SectionSpan<uint32_t>(raw, 3);
  const auto triples = SectionSpan<Triple>(raw, 4);
  const auto out_offsets = SectionSpan<uint64_t>(raw, 5);
  const auto out_pairs = SectionSpan<PredicateObject>(raw, 6);
  const auto in_offsets = SectionSpan<uint64_t>(raw, 7);
  const auto in_subjects = SectionSpan<NodeId>(raw, 8);
  const auto prefix_lens =
      fc ? SectionSpan<uint32_t>(raw, 9) : std::span<const uint32_t>{};

  // Structural validation: everything FromIndexedParts trusts. Runs on
  // every load — these invariants are what make a malformed file safe to
  // reject instead of undefined behavior.
  const auto corrupt = [&path](std::string_view what) {
    return Status::Corruption(std::string(what) + ": " + path);
  };
  if (raw.table[8].size % sizeof(NodeId) != 0) {
    return corrupt("in-index subject section misaligned");
  }
  uint64_t arena_bytes = 0;
  if (fc) {
    // Front-coded geometry: offsets span the suffix blob, restarts are
    // whole terms, prefixes bounded by the previous decoded length — the
    // decode loop below then never reads outside its inputs.
    if (const char* defect = CheckFrontCodedGeometry(
            prefix_lens, term_offsets, blob.size(), &arena_bytes)) {
      return corrupt(defect);
    }
  } else {
    if (term_offsets[0] != 0 || term_offsets[t] != blob.size()) {
      return corrupt("term offset table does not span the term blob");
    }
    for (uint64_t i = 0; i < t; ++i) {
      if (term_offsets[i] > term_offsets[i + 1]) {
        return corrupt("term offsets not monotonic");
      }
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (kinds[i] > static_cast<uint8_t>(TermKind::kBlank)) {
      return corrupt("node kind out of range");
    }
    if (lex[i] >= t) {
      return corrupt("node label references term out of range");
    }
  }
  for (uint64_t i = 0; i < e; ++i) {
    const Triple& tr = triples[i];
    if (tr.s >= n || tr.p >= n || tr.o >= n) {
      return corrupt("triple references node out of range");
    }
    if (i > 0 && !(triples[i - 1] < tr)) {
      return corrupt("triples not sorted and deduplicated");
    }
  }
  // Each offsets array must be proven monotone END TO END before any entry
  // is used as an index: monotonicity plus the endpoint equality bounds
  // every entry by the payload length. Interleaving the monotone check with
  // the per-node consistency loop would let out_offsets = [0, HUGE, ...]
  // drive reads far past the section before the i=1 check fires.
  if (out_offsets[0] != 0 || out_offsets[n] != e) {
    return corrupt("out-index offsets do not span the triple list");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (out_offsets[i] > out_offsets[i + 1]) {
      return corrupt("out-index offsets not monotonic");
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t k = out_offsets[i]; k < out_offsets[i + 1]; ++k) {
      if (triples[k].s != i || out_pairs[k].p != triples[k].p ||
          out_pairs[k].o != triples[k].o) {
        return corrupt("out-index inconsistent with triple list");
      }
    }
  }
  if (in_offsets[0] != 0 ||
      in_offsets[n] != static_cast<uint64_t>(in_subjects.size())) {
    return corrupt("in-index offsets do not span the subject list");
  }
  for (uint64_t i = 0; i < n; ++i) {
    if (in_offsets[i] > in_offsets[i + 1]) {
      return corrupt("in-index offsets not monotonic");
    }
  }
  for (uint64_t i = 0; i < n; ++i) {
    for (uint64_t k = in_offsets[i]; k < in_offsets[i + 1]; ++k) {
      if (in_subjects[k] >= n ||
          (k > in_offsets[i] && in_subjects[k - 1] >= in_subjects[k])) {
        return corrupt("in-index subjects malformed");
      }
    }
  }

  // Dictionary: intern each term as a view into the pinned payload. With a
  // fresh dictionary this assigns ids 0..t-1 in file order (identity map);
  // with a shared dictionary the ids are remapped transparently.
  if (dict == nullptr) dict = std::make_shared<Dictionary>();
  dict->PinArena(raw.pin);
  const size_t dict_before = dict->size();
  std::vector<LexId> remap(t);
  bool identity = true;
  if (fc) {
    // Front-coded decode. Restart terms are complete in the blob and stay
    // zero-copy views; non-restart terms are materialized (previous term's
    // head + own suffix) into a side arena pinned to the dictionary. The
    // arena is reserved to its exact final size and MUST NOT reallocate —
    // views already interned point into it. The previous term is always
    // contiguous (a blob view or an arena entry), so its head is one copy.
    auto arena = std::make_shared<std::vector<char>>();
    arena->reserve(arena_bytes);
    std::string_view prev;
    for (uint64_t i = 0; i < t; ++i) {
      const uint64_t slen = term_offsets[i + 1] - term_offsets[i];
      const uint32_t plen = prefix_lens[i];
      std::string_view term;
      if (plen == 0) {
        term = std::string_view(blob.data() + term_offsets[i], slen);
      } else {
        const size_t pos = arena->size();
        arena->insert(arena->end(), prev.data(), prev.data() + plen);
        arena->insert(arena->end(), blob.data() + term_offsets[i],
                      blob.data() + term_offsets[i] + slen);
        term = std::string_view(arena->data() + pos, plen + slen);
      }
      if (i > 0 && !(prev < term)) {
        return corrupt("front-coded terms not strictly ascending");
      }
      remap[i] = dict->InternPinned(term);
      identity = identity && remap[i] == i;
      prev = term;
    }
    if (!arena->empty()) dict->PinArena(std::move(arena));
  } else {
    for (uint64_t i = 0; i < t; ++i) {
      std::string_view term(blob.data() + term_offsets[i],
                            term_offsets[i + 1] - term_offsets[i]);
      remap[i] = dict->InternPinned(term);
      identity = identity && remap[i] == i;
    }
  }

  std::vector<NodeLabel> labels(n);
  for (uint64_t i = 0; i < n; ++i) {
    labels[i] = NodeLabel{static_cast<TermKind>(kinds[i]), remap[lex[i]]};
  }

  if (stats != nullptr) {
    stats->file_bytes = raw.size;
    stats->terms_interned = dict->size() - dict_before;
    stats->identity_term_map = identity;
    stats->used_mmap = options.use_mmap;
  }

  return TripleGraph::FromIndexedParts(
      std::move(dict), std::move(labels),
      SharedArray<Triple>(raw.pin, triples.data(), triples.size()),
      SharedArray<uint64_t>(raw.pin, out_offsets.data(), out_offsets.size()),
      SharedArray<PredicateObject>(raw.pin, out_pairs.data(),
                                   out_pairs.size()),
      SharedArray<uint64_t>(raw.pin, in_offsets.data(), in_offsets.size()),
      SharedArray<NodeId>(raw.pin, in_subjects.data(), in_subjects.size()));
}

}  // namespace

Result<TripleGraph> LoadSnapshot(const std::string& path,
                                 std::shared_ptr<Dictionary> dict,
                                 const SnapshotLoadOptions& options,
                                 SnapshotLoadStats* stats) {
  RDFALIGN_ASSIGN_OR_RETURN(RawSnapshot raw,
                            AcquireBytes(path, options.use_mmap));
  return LoadFromRaw(raw, std::move(dict), options, stats, path);
}

Result<TripleGraph> LoadSnapshotFromMemory(std::shared_ptr<const void> pin,
                                           const unsigned char* data,
                                           uint64_t size,
                                           std::shared_ptr<Dictionary> dict,
                                           const SnapshotLoadOptions& options,
                                           SnapshotLoadStats* stats,
                                           const std::string& name) {
  RawSnapshot raw;
  raw.pin = std::move(pin);
  raw.base = data;
  raw.size = size;
  RDFALIGN_RETURN_IF_ERROR(
      ValidateHeader(data, size, size, &raw.header, raw.table, name));
  SnapshotLoadOptions in_place = options;
  in_place.use_mmap = false;  // no file involved; report a buffered load
  return LoadFromRaw(raw, std::move(dict), in_place, stats, name);
}

Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path) {
  std::ifstream in;
  SnapshotHeader header;
  SectionEntry table[kNumSectionsV2];
  RDFALIGN_RETURN_IF_ERROR(
      OpenAndValidatePrefix(path, in, &header, table).status());
  SnapshotInfo info;
  info.version = header.version;
  info.num_nodes = header.num_nodes;
  info.num_triples = header.num_triples;
  info.num_terms = header.num_terms;
  info.file_size = header.file_size;
  for (size_t s = 0; s < SectionCount(header.version); ++s) {
    info.sections.push_back(SnapshotSectionInfo{
        kSectionOrder[s], table[s].offset, table[s].size, table[s].checksum});
  }
  return info;
}

bool LooksLikeSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<char, 8> magic = {};
  in.read(magic.data(), magic.size());
  return in.gcount() == static_cast<std::streamsize>(magic.size()) &&
         magic == kMagic;
}

}  // namespace rdfalign::store
