// Internal I/O helpers shared by the store writers (snapshot, delta,
// archive). Not part of the public store API.

#ifndef RDFALIGN_STORE_IO_UTIL_H_
#define RDFALIGN_STORE_IO_UTIL_H_

#include <cstddef>
#include <ostream>
#include <string>

#include "util/status.h"

namespace rdfalign::store {

/// Writes exactly `n` bytes or returns an IOError naming the file kind
/// ("snapshot", "delta", "archive") and path.
inline Status WriteExact(std::ostream& out, const void* data, size_t n,
                         const char* kind, const std::string& path) {
  if (n == 0) return Status::OK();
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!out) {
    return Status::IOError("error writing " + std::string(kind) + ": " +
                           path);
  }
  return Status::OK();
}

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_IO_UTIL_H_
