// Incremental snapshot deltas: the binary change between two versions.
//
// WriteDelta serializes the difference base -> next — dictionary
// additions, the next version's node columns, the alignment-derived node
// remap, and the triple change as removed/kept runs over the base triple
// list plus a sorted added-triple list — into the checksummed section
// format of store/format.h. ApplyDelta reconstructs the next version from
// a materialized base graph with no parsing and no sorting: the kept runs
// are mapped through the node remap and linearly merged with the added
// triples (both pre-sorted in next-id space), and the CSR indexes are
// rebuilt from the merged list by the same counting passes as
// TripleGraph::BuildIndexes — so the result is bit-identical (triples and
// both CSR arrays) to loading a full snapshot of the next version, with
// labels equal term for term.
//
// A delta applies to exactly one base *content*: the header carries
// GraphFingerprint(base) — computed in canonical (lexicographic) term
// order, so it is independent of dictionary history — and ApplyDelta
// refuses (InvalidArgument) any graph whose fingerprint differs. A graph
// materialized by an earlier ApplyDelta is therefore a valid base for the
// next delta in a chain. Malformed or crafted delta files are
// rejected with Corruption statuses — every array reference is validated
// before use, as in the snapshot loader. See docs/store.md ("Delta
// format") for the normative description.

#ifndef RDFALIGN_STORE_DELTA_H_
#define RDFALIGN_STORE_DELTA_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "rdf/graph.h"
#include "store/format.h"
#include "util/result.h"

namespace rdfalign::store {

/// Telemetry of a delta write.
struct DeltaWriteStats {
  uint64_t kept_triples = 0;     ///< base triples surviving into next
  uint64_t removed_triples = 0;  ///< base triples absent from next
  uint64_t added_triples = 0;    ///< next triples with no base counterpart
  uint64_t new_terms = 0;        ///< dictionary terms new in next
  uint64_t mapped_nodes = 0;     ///< next nodes with an aligned base node
  uint64_t kept_runs = 0;        ///< run entries encoding the kept triples
  uint64_t file_bytes = 0;
};

/// Serializes the change base -> next to `path`. The two graphs must share
/// one Dictionary (the alignment precondition); `alignment.next_to_base`
/// must have one entry per next node, each kInvalidNode or a distinct base
/// node id. An all-invalid map is legal — the delta then stores next in
/// full as removals plus additions. The new-term blob is front-coded by
/// default (format version 2); options.compress_dict = false writes the
/// raw version-1 layout byte for byte.
Status WriteDelta(const TripleGraph& base, const TripleGraph& next,
                  const VersionNodeMap& alignment, const std::string& path,
                  DeltaWriteStats* stats = nullptr,
                  const StoreWriteOptions& options = {});

/// Stream variant (the archive store embeds delta images this way).
Status WriteDeltaToStream(const TripleGraph& base, const TripleGraph& next,
                          const VersionNodeMap& alignment, std::ostream& out,
                          const std::string& name,
                          DeltaWriteStats* stats = nullptr,
                          const StoreWriteOptions& options = {});

struct DeltaApplyOptions {
  /// Verify the per-section checksums. Structural validation runs
  /// regardless (same policy as SnapshotLoadOptions).
  bool verify_checksums = true;
  /// Worker threads for section checksum verification and the CSR rebuild
  /// (0 = one per hardware thread). The replayed graph is bit-identical
  /// for any value; 1 keeps everything on the calling thread.
  size_t threads = 1;
};

/// Telemetry of a delta application.
struct DeltaApplyStats {
  uint64_t file_bytes = 0;
  uint64_t kept_triples = 0;
  uint64_t removed_triples = 0;
  uint64_t added_triples = 0;
  uint64_t new_terms = 0;
  uint64_t terms_interned = 0;  ///< terms new to the target dictionary
};

/// Reconstructs the next version from `base` and the delta at `path`.
/// `dict` is the target dictionary of the result — pass nullptr for a
/// fresh one, or the dictionary shared along a replayed chain. Returns
/// InvalidArgument when the delta was not written against this base
/// (count or fingerprint mismatch), Corruption for malformed content.
Result<TripleGraph> ApplyDelta(const TripleGraph& base,
                               const std::string& path,
                               std::shared_ptr<Dictionary> dict,
                               const DeltaApplyOptions& options = {},
                               DeltaApplyStats* stats = nullptr);

/// Applies a delta image already resident in memory (an archive section).
Result<TripleGraph> ApplyDeltaFromMemory(
    const TripleGraph& base, const unsigned char* data, uint64_t size,
    std::shared_ptr<Dictionary> dict, const DeltaApplyOptions& options = {},
    DeltaApplyStats* stats = nullptr, const std::string& name = "<memory>");

/// Section metadata as reported by `rdfalign info` for delta files.
struct DeltaSectionInfo {
  DeltaSectionId id;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

/// Header-level delta metadata (no payload is read) — `rdfalign info`.
struct DeltaInfo {
  uint32_t version = 0;
  uint64_t base_nodes = 0;
  uint64_t base_triples = 0;
  uint64_t base_terms = 0;
  uint64_t base_fingerprint = 0;
  uint64_t next_nodes = 0;
  uint64_t next_triples = 0;
  uint64_t next_terms = 0;
  uint64_t num_new_terms = 0;
  uint64_t file_size = 0;
  std::vector<DeltaSectionInfo> sections;
};

/// Reads and validates the delta header and section table only.
Result<DeltaInfo> ReadDeltaInfo(const std::string& path);

/// Human-readable delta section name ("term_sources", "kept_runs", ...).
std::string_view DeltaSectionName(DeltaSectionId id);

/// True when `path` starts with the delta magic.
bool LooksLikeDelta(const std::string& path);

/// Content fingerprint binding a delta to its base: a Checksum64 stream
/// over the node count, triple count, node kinds, the node label column in
/// canonical dense term numbering, the referenced terms themselves
/// (length-prefixed, in lexicographic order), and the raw triple array.
/// Canonical in the graph's *content* — identical for a built graph, its
/// snapshot reload, and its patch-replay reconstruction, independent of
/// dictionary history; any label, kind, or triple difference changes it.
uint64_t GraphFingerprint(const TripleGraph& g);

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_DELTA_H_
