// Update fragments ("RDFUPDT1"): the wire encoding of one live update
// batch for the streaming aligner (src/stream/, docs/stream.md).
//
// A fragment carries a *set-semantics* change to the mutable target graph:
// triples to remove, triples to add, and nodes to retire, all expressed
// against node labels rather than node ids. A delta file (RDFDELT1) ties
// its removed/kept/added-run vocabulary to one frozen base numbering; a
// stream has no such numbering — the receiver's node ids drift from any
// materialized version as nodes are appended — so fragments resolve every
// node reference by (kind, lexical form) at apply time. That makes them
// generatable statelessly from any adjacent version pair (`rdfalign
// updates`) and replayable against any receiver holding the same labeled
// graph, which is exactly the batch-equivalence contract the stream gate
// checks.
//
// File layout (store/format.h conventions — little-endian, fixed header,
// checksummed 8-byte-aligned sections):
//
//   [ UpdateHeader                  96 bytes                     ]
//   [ SectionEntry * kNumUpdateSections                          ]
//   [ section payloads, 8-byte aligned, zero-padded gaps         ]
//
// Node references: the fragment declares `num_refs` node labels; the
// first `num_new_nodes` of them MUST NOT exist in the receiver's target
// graph (they are created by this batch), the rest MUST already exist
// (they are resolved by label). Triples and removed-node lists index this
// reference table.

#ifndef RDFALIGN_STORE_UPDATE_FRAGMENT_H_
#define RDFALIGN_STORE_UPDATE_FRAGMENT_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"
#include "store/format.h"
#include "util/result.h"
#include "util/status.h"

namespace rdfalign::store {

/// "RDFUPDT1" — identifies an rdfalign update fragment.
inline constexpr std::array<char, 8> kUpdateMagic = {'R', 'D', 'F', 'U',
                                                     'P', 'D', 'T', '1'};

inline constexpr uint32_t kUpdateFormatVersion = 1;

/// Version 2 front-codes the term dictionary: terms are sorted
/// lexicographically, kTermOffsets indexes *suffix* tails in kTermBlob,
/// and a kTermPrefixLens section carries the shared-prefix lengths (see
/// store/front_coding.h and docs/store.md "Front-coded dictionary").
inline constexpr uint32_t kUpdateFormatVersionFrontCoded = 2;

/// The payload sections of an update fragment, in file order. Version-1
/// fragments carry the first seven; version-2 fragments add
/// kTermPrefixLens.
enum class UpdateSectionId : uint32_t {
  kTermOffsets = 1,     ///< (num_terms + 1) x u64 into kTermBlob
  kTermBlob = 2,        ///< concatenated UTF-8 lexical forms (v2: suffixes)
  kNodeKinds = 3,       ///< num_refs x u8: TermKind per node reference
  kNodeLex = 4,         ///< num_refs x u32: term index per node reference
  kRemovedNodes = 5,    ///< u32[]: node references retired by this batch,
                        ///< ascending; must index the existing-node suffix
  kRemovedTriples = 6,  ///< Triple[] of node references, sorted ascending
  kAddedTriples = 7,    ///< Triple[] of node references, sorted ascending
  kTermPrefixLens = 8,  ///< v2 only: num_terms x u32 shared-prefix lengths
};

inline constexpr size_t kNumUpdateSections = 7;
inline constexpr size_t kNumUpdateSectionsV2 = 8;

/// The fixed-size fragment header.
struct UpdateHeader {
  std::array<char, 8> magic;    ///< kUpdateMagic
  uint32_t version;             ///< kUpdateFormatVersion
  uint32_t endian_tag;          ///< kEndianTag
  uint64_t sequence;            ///< producer-assigned batch number
  uint64_t num_refs;            ///< node references declared
  uint64_t num_new_nodes;       ///< leading refs created by this batch
  uint64_t num_removed_nodes;   ///< entries in kRemovedNodes
  uint64_t num_removed_triples; ///< entries in kRemovedTriples
  uint64_t num_added_triples;   ///< entries in kAddedTriples
  uint64_t num_terms;           ///< distinct lexical forms referenced
  uint64_t num_sections;        ///< kNumUpdateSections
  uint64_t file_size;           ///< total fragment size in bytes
  uint64_t header_checksum;     ///< Checksum64 of header + section table,
                                ///< computed with this field set to zero
};
static_assert(sizeof(UpdateHeader) == 96);
static_assert(std::is_trivially_copyable_v<UpdateHeader>);

/// Byte offset of the first section payload, per format version.
inline constexpr size_t kUpdatePayloadStart =
    sizeof(UpdateHeader) + kNumUpdateSections * sizeof(SectionEntry);
inline constexpr size_t kUpdatePayloadStartV2 =
    sizeof(UpdateHeader) + kNumUpdateSectionsV2 * sizeof(SectionEntry);

/// One update batch, decoded. Triples index `nodes`; references
/// [0, num_new) are created by the batch, [num_new, nodes.size()) resolve
/// to existing target-graph nodes by (kind, lex).
struct UpdateBatch {
  struct NodeRef {
    TermKind kind = TermKind::kUri;
    std::string lex;
  };
  std::vector<NodeRef> nodes;
  uint32_t num_new = 0;
  std::vector<Triple> removed;             ///< sorted, deduplicated
  std::vector<Triple> added;               ///< sorted, deduplicated
  std::vector<uint32_t> removed_nodes;     ///< ascending ref indexes
  uint64_t sequence = 0;
};

/// Serializes a batch (validating its internal invariants: ref indexes in
/// range, triple lists sorted and deduplicated, removed nodes ascending
/// existing refs). The term dictionary is front-coded by default (format
/// version 2); options.compress_dict = false writes the raw version-1
/// layout byte for byte.
Result<std::string> EncodeUpdateBatch(const UpdateBatch& batch,
                                      const StoreWriteOptions& options = {});

/// Parses and fully validates a fragment image: magic/version/endianness,
/// header and per-section checksums, section geometry, ref/term index
/// bounds, sortedness. `name` labels error messages (a path or
/// "stream frame").
Result<UpdateBatch> DecodeUpdateBatch(std::string_view bytes,
                                      const std::string& name);

/// True when `bytes` starts with the update-fragment magic.
bool LooksLikeUpdateFragment(std::string_view bytes);

/// True when the file at `path` starts with the update-fragment magic
/// (the `rdfalign info` sniffing convention of LooksLikeDelta).
bool LooksLikeUpdateFile(const std::string& path);

/// Computes the batch turning the labeled graph `base` into `next`:
/// node matching by (kind, lexical form) — blanks by local name — with
/// next-only nodes created, base-only nodes retired, and the triple
/// difference under that matching. Deterministic: reference order is
/// new nodes in `next` id order, then existing nodes in first-use order.
Result<UpdateBatch> BuildUpdateBatch(const TripleGraph& base,
                                     const TripleGraph& next,
                                     uint64_t sequence);

/// File convenience wrappers over Encode/Decode.
Status WriteUpdateFile(const UpdateBatch& batch, const std::string& path,
                       const StoreWriteOptions& options = {});
Result<UpdateBatch> ReadUpdateFile(const std::string& path);

/// Reads a whole file into a string (shared by the stream CLI verb).
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_UPDATE_FRAGMENT_H_
