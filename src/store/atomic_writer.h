// AtomicFileWriter: durable atomic replacement of one file.
//
// Every store writer (snapshot, delta, archive, update fragment, RDF text
// dumps) routes its bytes through this class so that a crash — process
// kill, power cut, full disk — at ANY point leaves either the complete
// old file or the complete new file at the target path, never a torn or
// half-written one:
//
//   1. bytes stream into `path.tmp.<pid>` in the target directory (same
//      filesystem, so the final rename is atomic);
//   2. Commit() flushes, fsyncs the temp file, renames it over `path`,
//      then fsyncs the directory so the rename itself is durable;
//   3. any failure (or destruction before Commit) unlinks the temp file —
//      a failed save never leaves a partial file behind.
//
// Open() also scrubs stale temps left by earlier crashed writers of the
// same target (matching `path.tmp.*` whose pid is no longer alive), so
// the directory self-heals on the next save; CleanupStaleTemps exposes
// the scrub for startup code and tests.
//
// Failure injection: the write/fsync/rename/dirsync syscalls sit behind
// the `store.open`, `store.alloc`, `store.write`, `store.fsync`,
// `store.rename`, `store.dirsync` failpoints (util/fault_injector.h) —
// the crash-consistency suite kills the process at each of them and
// asserts the survivor loads clean.

#ifndef RDFALIGN_STORE_ATOMIC_WRITER_H_
#define RDFALIGN_STORE_ATOMIC_WRITER_H_

#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "util/status.h"

namespace rdfalign::store {

class AtomicFileWriter {
 public:
  /// Creates `path.tmp.<pid>` for writing (scrubbing stale temps of the
  /// same target first). `kind` names the file in error messages
  /// ("snapshot", "delta", ...). The returned Status carries the errno
  /// text on failure ("...: Permission denied").
  explicit AtomicFileWriter(std::string path, std::string kind);
  ~AtomicFileWriter();  ///< aborts (unlinks the temp) if not committed

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Opens the temp file. Must be called (and checked) before stream().
  Status Open();

  /// The buffered output stream over the temp file. Write failures are
  /// latched into status() (the stream also sets failbit); WriteExact
  /// callers keep their existing `if (!out)` checks working.
  std::ostream& stream() { return *stream_; }

  /// First error recorded by the underlying writes, or OK.
  Status status() const;

  /// Flush + fsync(temp) + rename over the target + fsync(directory).
  /// On any failure the temp file is removed and the target is untouched.
  Status Commit();

  /// Unlinks the temp file without touching the target. Idempotent; also
  /// run by the destructor when Commit was never (successfully) called.
  void Abort();

  const std::string& temp_path() const { return temp_path_; }

 private:
  class FdStreamBuf;

  std::string path_;
  std::string kind_;
  std::string temp_path_;
  std::unique_ptr<FdStreamBuf> buf_;
  std::unique_ptr<std::ostream> stream_;
  bool committed_ = false;
};

/// Removes stale `<target>.tmp.<pid>` files for `target` whose writer
/// process is gone (or that carry an unparsable suffix). Returns how many
/// were removed. Never touches `target` itself or live writers' temps.
size_t CleanupStaleTemps(const std::string& target);

/// Convenience: atomically replaces `path` with `bytes` (used by the
/// update-fragment writer and tests).
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size, const char* kind);

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_ATOMIC_WRITER_H_
