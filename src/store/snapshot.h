// Binary snapshot store: zero-parse persistence for TripleGraphs.
//
// WriteSnapshot serializes a graph — dictionary, labels, triple list, and
// both CSR indexes — into the versioned little-endian format of
// store/format.h. LoadSnapshot reads it back without any text parsing,
// sorting, or index construction: the array sections are referenced in
// place (from a buffered read of the whole file, or from an mmap when
// SnapshotLoadOptions::use_mmap is set) and pinned into the graph via
// SharedArray; term bytes are interned into the target dictionary as views
// (Dictionary::InternPinned), so nothing is copied but the node-label
// column.
//
// Loading into a non-empty dictionary (the alignment workflow: two
// snapshots, one shared dictionary) transparently remaps the snapshot's
// term ids onto the shared id space.

#ifndef RDFALIGN_STORE_SNAPSHOT_H_
#define RDFALIGN_STORE_SNAPSHOT_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/graph.h"
#include "store/format.h"
#include "util/result.h"

namespace rdfalign::store {

/// Serializes `g` to `path`, overwriting any existing file. Only the
/// dictionary terms actually referenced by the graph's labels are written
/// (a shared dictionary may hold terms of other graphs), renumbered
/// densely — in ascending original-id order for the raw version-1 layout,
/// in lexicographic order for the front-coded version-2 default
/// (options.compress_dict; see store/front_coding.h and docs/store.md).
/// Either way, saving a freshly loaded snapshot reproduces it byte for
/// byte under the same options.
///
/// The store persists *triple graphs* (§2.1), not only RDF graphs: label
/// uniqueness and the RDF positional constraints are intentionally not
/// part of the format or of load-time validation, because combined
/// two-version graphs (which violate uniqueness by design) are valid
/// snapshot subjects. Callers needing RDF-graph guarantees should obtain
/// the graph through a validating front end (parser / GraphBuilder).
Status WriteSnapshot(const TripleGraph& g, const std::string& path,
                     const StoreWriteOptions& options = {});

/// Serializes `g` into an already-open binary stream (the archive store
/// embeds snapshot images this way). `name` labels error messages.
Status WriteSnapshotToStream(const TripleGraph& g, std::ostream& out,
                             const std::string& name,
                             const StoreWriteOptions& options = {});

struct SnapshotLoadOptions {
  /// Map the file instead of reading it into a buffer. The CSR arrays are
  /// then backed directly by the page cache with no up-front copy, and a
  /// warm cache makes repeated loads nearly free. Note: loading is NOT
  /// lazy — structural validation and term interning read essentially the
  /// whole file once regardless of this flag or verify_checksums.
  bool use_mmap = false;
  /// Verify the per-section checksums (detects bit rot / torn writes).
  /// Structural validation — offset monotonicity, id ranges, CSR/triple
  /// consistency — runs regardless, so disabling this never makes a
  /// corrupted file memory-unsafe, it only skips content hashing.
  bool verify_checksums = true;
};

/// Telemetry of a snapshot load.
struct SnapshotLoadStats {
  uint64_t file_bytes = 0;
  uint64_t terms_interned = 0;  ///< terms new to the target dictionary
  /// True when the snapshot's term ids mapped onto the dictionary
  /// unchanged (always the case for a fresh dictionary).
  bool identity_term_map = false;
  bool used_mmap = false;
};

/// Loads a snapshot into a TripleGraph. `dict` is the target dictionary —
/// pass nullptr for a fresh one, or the shared dictionary of a graph
/// already loaded when the two will be aligned. On success the graph's
/// array storage references the load buffer / mapping (kept alive by the
/// graph itself).
Result<TripleGraph> LoadSnapshot(const std::string& path,
                                 std::shared_ptr<Dictionary> dict,
                                 const SnapshotLoadOptions& options = {},
                                 SnapshotLoadStats* stats = nullptr);

/// Loads a snapshot image already resident in memory (an archive section,
/// a network buffer). `pin` keeps [data, data+size) alive and is captured
/// by the returned graph for zero-copy adoption; `name` labels error
/// messages. All validation of the file-based loader runs.
Result<TripleGraph> LoadSnapshotFromMemory(
    std::shared_ptr<const void> pin, const unsigned char* data, uint64_t size,
    std::shared_ptr<Dictionary> dict, const SnapshotLoadOptions& options = {},
    SnapshotLoadStats* stats = nullptr, const std::string& name = "<memory>");

/// Section metadata as reported by `rdfalign info`.
struct SnapshotSectionInfo {
  SectionId id;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

/// Header-level snapshot metadata (no payload is read).
struct SnapshotInfo {
  uint32_t version = 0;
  uint64_t num_nodes = 0;
  uint64_t num_triples = 0;
  uint64_t num_terms = 0;
  uint64_t file_size = 0;
  std::vector<SnapshotSectionInfo> sections;
};

/// Reads and validates the header and section table only (a few hundred
/// bytes) — the `rdfalign info` fast path.
Result<SnapshotInfo> ReadSnapshotInfo(const std::string& path);

/// Human-readable section name ("term_offsets", "triples", ...).
std::string_view SectionName(SectionId id);

/// True when `path` starts with the snapshot magic (used by the CLI to
/// distinguish snapshots from RDF text files).
bool LooksLikeSnapshot(const std::string& path);

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_SNAPSHOT_H_
