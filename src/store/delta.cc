#include "store/delta.h"

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "store/atomic_writer.h"
#include "store/front_coding.h"
#include "store/io_util.h"
#include "util/shared_array.h"
#include "util/thread_pool.h"

namespace rdfalign::store {

namespace {

// Section order within a delta file (also the id order). Version-1 files
// carry the first kNumDeltaSections entries; version-2 files all
// kNumDeltaSectionsV2.
constexpr DeltaSectionId kDeltaSectionOrder[kNumDeltaSectionsV2] = {
    DeltaSectionId::kTermSources, DeltaSectionId::kNewTermOffsets,
    DeltaSectionId::kNewTermBlob, DeltaSectionId::kNodeKinds,
    DeltaSectionId::kNodeLex,     DeltaSectionId::kNodeRemap,
    DeltaSectionId::kRemovedRuns, DeltaSectionId::kKeptRuns,
    DeltaSectionId::kAddedTriples, DeltaSectionId::kNewTermPrefixLens,
};

/// Section count of a delta format version.
size_t DeltaSectionCount(uint32_t version) {
  return version == kDeltaFormatVersion ? kNumDeltaSections
                                        : kNumDeltaSectionsV2;
}

/// Byte offset of the first payload of a delta format version.
size_t DeltaPayloadStart(uint32_t version) {
  return sizeof(DeltaHeader) +
         DeltaSectionCount(version) * sizeof(SectionEntry);
}

constexpr uint32_t kInvalidDense = 0xffffffffu;

/// Dense numbering of the dictionary terms a graph's labels reference, in
/// lexicographic order of the term bytes. Unlike the snapshot writer's
/// ascending-dictionary-id convention, this order is **canonical in the
/// graph's content**: the delta writer and the patch replayer resolve
/// term references identically no matter how either side's dictionary was
/// populated, so a delta applies to any base holding the right content —
/// including one materialized by an earlier patch (chained `rdfalign
/// diff`/`patch` over independently built snapshots).
struct TermBinding {
  std::vector<LexId> term_ids;     ///< dense index -> dictionary id
  std::vector<uint32_t> dense_of;  ///< dictionary id -> dense index
};

TermBinding BindTerms(const TripleGraph& g) {
  const Dictionary& dict = g.dict();
  std::vector<uint8_t> used(dict.size(), 0);
  for (const NodeLabel& l : g.labels()) {
    used[l.lex] = 1;
  }
  TermBinding b;
  for (LexId id = 0; id < used.size(); ++id) {
    if (used[id]) b.term_ids.push_back(id);
  }
  // Distinct ids hold distinct strings (the dictionary interns uniquely),
  // so the order is total and deterministic.
  std::sort(b.term_ids.begin(), b.term_ids.end(),
            [&dict](LexId a, LexId c) { return dict.Get(a) < dict.Get(c); });
  b.dense_of.assign(dict.size(), kInvalidDense);
  for (size_t j = 0; j < b.term_ids.size(); ++j) {
    b.dense_of[b.term_ids[j]] = static_cast<uint32_t>(j);
  }
  return b;
}

uint64_t FingerprintWithBinding(const TripleGraph& g, const TermBinding& b) {
  Checksummer c;
  const uint64_t n = g.NumNodes();
  const uint64_t e = g.NumEdges();
  const uint64_t t = b.term_ids.size();
  c.Update(&n, sizeof(n));
  c.Update(&e, sizeof(e));
  c.Update(&t, sizeof(t));
  for (const NodeLabel& l : g.labels()) {
    const uint8_t kind = static_cast<uint8_t>(l.kind);
    const uint32_t dense = b.dense_of[l.lex];
    c.Update(&kind, sizeof(kind));
    c.Update(&dense, sizeof(dense));
  }
  for (LexId id : b.term_ids) {
    std::string_view term = g.dict().Get(id);
    const uint64_t len = term.size();
    c.Update(&len, sizeof(len));
    c.Update(term.data(), term.size());
  }
  c.Update(g.triples().data(), g.triples().size() * sizeof(Triple));
  return c.Finish();
}

Status WriteExact(std::ostream& out, const void* data, size_t n,
                  const std::string& name) {
  return store::WriteExact(out, data, n, "delta", name);  // io_util.h
}

}  // namespace

std::string_view DeltaSectionName(DeltaSectionId id) {
  switch (id) {
    case DeltaSectionId::kTermSources:
      return "term_sources";
    case DeltaSectionId::kNewTermOffsets:
      return "new_term_offsets";
    case DeltaSectionId::kNewTermBlob:
      return "new_term_blob";
    case DeltaSectionId::kNodeKinds:
      return "node_kinds";
    case DeltaSectionId::kNodeLex:
      return "node_lex";
    case DeltaSectionId::kNodeRemap:
      return "node_remap";
    case DeltaSectionId::kRemovedRuns:
      return "removed_runs";
    case DeltaSectionId::kKeptRuns:
      return "kept_runs";
    case DeltaSectionId::kAddedTriples:
      return "added_triples";
    case DeltaSectionId::kNewTermPrefixLens:
      return "new_term_prefix_lens";
  }
  return "unknown";
}

uint64_t GraphFingerprint(const TripleGraph& g) {
  return FingerprintWithBinding(g, BindTerms(g));
}

Status WriteDeltaToStream(const TripleGraph& base, const TripleGraph& next,
                          const VersionNodeMap& alignment, std::ostream& out,
                          const std::string& name, DeltaWriteStats* stats,
                          const StoreWriteOptions& options) {
  static_assert(std::endian::native == std::endian::little,
                "deltas are written on little-endian hosts only");
  const bool fc = options.compress_dict;
  const uint32_t version =
      fc ? kDeltaFormatVersionFrontCoded : kDeltaFormatVersion;
  const size_t num_sections = DeltaSectionCount(version);
  const uint64_t payload_start = DeltaPayloadStart(version);
  if (base.dict_ptr().get() != next.dict_ptr().get()) {
    return Status::InvalidArgument(
        "delta endpoints must share one Dictionary: " + name);
  }
  const size_t bn = base.NumNodes();
  const size_t be = base.NumEdges();
  const size_t nn = next.NumNodes();
  const size_t ne = next.NumEdges();
  if (alignment.next_to_base.size() != nn) {
    return Status::InvalidArgument(
        "alignment map must have one entry per next-version node: " + name);
  }
  // Invert the (injective) next -> base map.
  std::vector<NodeId> base_to_next(bn, kInvalidNode);
  for (NodeId i = 0; i < nn; ++i) {
    const NodeId b = alignment.next_to_base[i];
    if (b == kInvalidNode) continue;
    if (b >= bn) {
      return Status::InvalidArgument(
          "alignment maps a next node onto a base node out of range: " +
          name);
    }
    if (base_to_next[b] != kInvalidNode) {
      return Status::InvalidArgument("alignment map is not injective: " +
                                     name);
    }
    base_to_next[b] = i;
  }

  const TermBinding base_terms = BindTerms(base);
  const TermBinding next_terms = BindTerms(next);
  const size_t tb = base_terms.term_ids.size();
  const size_t tn = next_terms.term_ids.size();
  if (tb > kMaxDeltaTerms || tn > kMaxDeltaTerms) {
    return Status::InvalidArgument("too many dictionary terms for a delta: " +
                                   name);
  }

  // Term sources: every next-dense term either references the base term
  // table or the delta's new-term table (new terms numbered in next-dense
  // order, so the reader can validate denseness).
  std::vector<uint32_t> term_sources(tn);
  std::vector<LexId> new_terms;
  for (size_t j = 0; j < tn; ++j) {
    const LexId id = next_terms.term_ids[j];
    const uint32_t dense_b = base_terms.dense_of[id];
    if (dense_b != kInvalidDense) {
      term_sources[j] = dense_b;
    } else {
      term_sources[j] = kNewTermFlag | static_cast<uint32_t>(new_terms.size());
      new_terms.push_back(id);
    }
  }
  // New terms were pushed in next-dense order, which BindTerms defines as
  // lexicographic — exactly the order front coding wants, so the v2 blob
  // needs no separate sort or id remap.
  const auto new_term_bytes = [&next, &new_terms](size_t k) {
    return next.dict().Get(new_terms[k]);
  };
  FrontCodedLayout layout;
  std::vector<uint64_t> new_term_offsets;
  if (fc) {
    layout = FrontCodeTerms(new_terms.size(), new_term_bytes);
    new_term_offsets = std::move(layout.suffix_offsets);
  } else {
    new_term_offsets.assign(new_terms.size() + 1, 0);
    for (size_t k = 0; k < new_terms.size(); ++k) {
      new_term_offsets[k + 1] =
          new_term_offsets[k] + next.dict().Get(new_terms[k]).size();
    }
  }
  // Bytes of new term k as stored in the blob (suffix tail under front
  // coding, the whole term raw).
  const auto stored_bytes = [&](size_t k) {
    std::string_view term = new_term_bytes(k);
    return fc ? term.substr(layout.prefix_lens[k]) : term;
  };

  // The next version's node columns, in next-dense (canonical) term
  // numbering.
  std::vector<uint8_t> kinds(nn);
  std::vector<uint32_t> lex(nn);
  for (size_t i = 0; i < nn; ++i) {
    kinds[i] = static_cast<uint8_t>(next.labels()[i].kind);
    lex[i] = next_terms.dense_of[next.labels()[i].lex];
  }

  // Triple classification. A base triple is *kept* when all three nodes
  // have next-version images and the mapped triple exists in next;
  // otherwise it is removed. Next triples not claimed by a kept base
  // triple are added. The node map is injective, so distinct base triples
  // map to distinct next triples and each next triple is claimed at most
  // once.
  const std::span<const Triple> base_tris = base.triples();
  const std::span<const Triple> next_tris = next.triples();
  std::vector<uint8_t> claimed(ne, 0);
  std::vector<std::pair<uint64_t, uint64_t>> kept;  // (next pos, base idx)
  std::vector<RunEntry> removed_runs;
  uint64_t removed_count = 0;
  const auto add_removed = [&removed_runs, &removed_count](uint64_t i) {
    if (!removed_runs.empty() &&
        removed_runs.back().start + removed_runs.back().count == i) {
      ++removed_runs.back().count;
    } else {
      removed_runs.push_back(RunEntry{i, 1});
    }
    ++removed_count;
  };
  for (uint64_t i = 0; i < be; ++i) {
    const Triple& t = base_tris[i];
    const NodeId s = base_to_next[t.s];
    const NodeId p = base_to_next[t.p];
    const NodeId o = base_to_next[t.o];
    if (s == kInvalidNode || p == kInvalidNode || o == kInvalidNode) {
      add_removed(i);
      continue;
    }
    const Triple mapped{s, p, o};
    const auto it =
        std::lower_bound(next_tris.begin(), next_tris.end(), mapped);
    if (it == next_tris.end() || !(*it == mapped)) {
      add_removed(i);
      continue;
    }
    const uint64_t j = static_cast<uint64_t>(it - next_tris.begin());
    claimed[j] = 1;
    kept.emplace_back(j, i);
  }
  // Kept runs expand in next-space order; a run continues while the base
  // indexes stay consecutive.
  std::sort(kept.begin(), kept.end());
  std::vector<RunEntry> kept_runs;
  for (const auto& [j, i] : kept) {
    (void)j;
    if (!kept_runs.empty() &&
        kept_runs.back().start + kept_runs.back().count == i) {
      ++kept_runs.back().count;
    } else {
      kept_runs.push_back(RunEntry{i, 1});
    }
  }
  std::vector<Triple> added;
  added.reserve(ne - kept.size());
  for (uint64_t j = 0; j < ne; ++j) {
    if (!claimed[j]) added.push_back(next_tris[j]);
  }

  // Assemble the section table. The new-term blob (index 2) is streamed
  // term by term; everything else is a contiguous buffer.
  constexpr size_t kBlobIndex = 2;
  struct Payload {
    const void* data;
    uint64_t size;
  };
  const Payload payloads[kNumDeltaSectionsV2] = {
      {term_sources.data(), tn * sizeof(uint32_t)},
      {new_term_offsets.data(), new_term_offsets.size() * sizeof(uint64_t)},
      {nullptr, new_term_offsets.back()},
      {kinds.data(), nn * sizeof(uint8_t)},
      {lex.data(), nn * sizeof(uint32_t)},
      {alignment.next_to_base.data(), nn * sizeof(NodeId)},
      {removed_runs.data(), removed_runs.size() * sizeof(RunEntry)},
      {kept_runs.data(), kept_runs.size() * sizeof(RunEntry)},
      {added.data(), added.size() * sizeof(Triple)},
      {layout.prefix_lens.data(), layout.prefix_lens.size() * sizeof(uint32_t)},
  };
  SectionEntry table[kNumDeltaSectionsV2];
  uint64_t cursor = payload_start;
  for (size_t s = 0; s < num_sections; ++s) {
    table[s].id = static_cast<uint32_t>(kDeltaSectionOrder[s]);
    table[s].reserved = 0;
    table[s].offset = AlignUp(cursor);
    table[s].size = payloads[s].size;
    if (s == kBlobIndex) {
      Checksummer c;
      for (size_t k = 0; k < new_terms.size(); ++k) {
        std::string_view bytes = stored_bytes(k);
        c.Update(bytes.data(), bytes.size());
      }
      table[s].checksum = c.Finish();
    } else {
      table[s].checksum = Checksum64(payloads[s].data, payloads[s].size);
    }
    cursor = table[s].offset + table[s].size;
  }

  DeltaHeader header;
  header.magic = kDeltaMagic;
  header.version = version;
  header.endian_tag = kEndianTag;
  header.base_nodes = bn;
  header.base_triples = be;
  header.base_terms = tb;
  header.base_fingerprint = FingerprintWithBinding(base, base_terms);
  header.next_nodes = nn;
  header.next_triples = ne;
  header.next_terms = tn;
  header.num_new_terms = new_terms.size();
  header.num_sections = static_cast<uint32_t>(num_sections);
  header.file_size = cursor;
  header.header_checksum = 0;
  {
    Checksummer c;
    c.Update(&header, sizeof(header));
    c.Update(table, num_sections * sizeof(SectionEntry));
    header.header_checksum = c.Finish();
  }

  RDFALIGN_RETURN_IF_ERROR(WriteExact(out, &header, sizeof(header), name));
  RDFALIGN_RETURN_IF_ERROR(
      WriteExact(out, table, num_sections * sizeof(SectionEntry), name));
  uint64_t written = payload_start;
  const char zeros[kSectionAlignment] = {};
  for (size_t s = 0; s < num_sections; ++s) {
    if (table[s].offset > written) {
      RDFALIGN_RETURN_IF_ERROR(
          WriteExact(out, zeros, table[s].offset - written, name));
    }
    if (s == kBlobIndex) {
      for (size_t k = 0; k < new_terms.size(); ++k) {
        std::string_view bytes = stored_bytes(k);
        RDFALIGN_RETURN_IF_ERROR(
            WriteExact(out, bytes.data(), bytes.size(), name));
      }
    } else {
      RDFALIGN_RETURN_IF_ERROR(
          WriteExact(out, payloads[s].data, payloads[s].size, name));
    }
    written = table[s].offset + table[s].size;
  }
  out.flush();
  if (!out) {
    return Status::IOError("error writing delta: " + name);
  }
  if (stats != nullptr) {
    stats->kept_triples = kept.size();
    stats->removed_triples = removed_count;
    stats->added_triples = added.size();
    stats->new_terms = new_terms.size();
    stats->mapped_nodes = alignment.MappedCount();
    stats->kept_runs = kept_runs.size();
    stats->file_bytes = cursor;
  }
  return Status::OK();
}

Status WriteDelta(const TripleGraph& base, const TripleGraph& next,
                  const VersionNodeMap& alignment, const std::string& path,
                  DeltaWriteStats* stats, const StoreWriteOptions& options) {
  // Durable atomic replace (store/atomic_writer.h): a crash mid-save
  // leaves the previous delta intact, never a torn file.
  AtomicFileWriter writer(path, "delta");
  RDFALIGN_RETURN_IF_ERROR(writer.Open());
  Status st = WriteDeltaToStream(base, next, alignment, writer.stream(), path,
                                 stats, options);
  if (!st.ok()) {
    Status io = writer.status();
    return io.ok() ? st : io;
  }
  return writer.Commit();
}

namespace {

/// The validated raw view of a delta image.
struct RawDelta {
  std::shared_ptr<const void> pin;  ///< keeps `base` alive (buffered reads)
  const unsigned char* base = nullptr;
  uint64_t size = 0;
  DeltaHeader header;
  SectionEntry table[kNumDeltaSectionsV2];
};

/// Header and section-table validation shared by ApplyDelta and
/// ReadDeltaInfo; mirrors the snapshot loader's ValidateHeader.
Status ValidateDeltaHeader(const unsigned char* base, uint64_t available,
                           uint64_t actual_size, DeltaHeader* header,
                           SectionEntry* table, const std::string& name) {
  if (available < sizeof(DeltaHeader)) {
    return Status::Corruption("truncated delta (no header): " + name);
  }
  std::memcpy(header, base, sizeof(DeltaHeader));
  if (header->magic != kDeltaMagic) {
    return Status::InvalidArgument("not an rdfalign delta: " + name);
  }
  if (header->version != kDeltaFormatVersion &&
      header->version != kDeltaFormatVersionFrontCoded) {
    return Status::NotSupported(
        "unsupported delta format version " +
        std::to_string(header->version) + " (this build reads versions " +
        std::to_string(kDeltaFormatVersion) + "-" +
        std::to_string(kDeltaFormatVersionFrontCoded) + "): " + name);
  }
  if (header->endian_tag != kEndianTag) {
    return Status::NotSupported(
        "delta written with a different byte order: " + name);
  }
  const size_t num_sections = DeltaSectionCount(header->version);
  const uint64_t payload_start = DeltaPayloadStart(header->version);
  if (header->num_sections != num_sections) {
    return Status::Corruption("unexpected delta section count: " + name);
  }
  if (header->file_size != actual_size) {
    return Status::Corruption(
        "delta size mismatch (header says " +
        std::to_string(header->file_size) + " bytes, file has " +
        std::to_string(actual_size) + "): " + name);
  }
  if (available < payload_start) {
    return Status::Corruption("truncated delta (no section table): " + name);
  }
  std::memcpy(table, base + sizeof(DeltaHeader),
              num_sections * sizeof(SectionEntry));
  {
    DeltaHeader zeroed = *header;
    zeroed.header_checksum = 0;
    Checksummer c;
    c.Update(&zeroed, sizeof(zeroed));
    c.Update(table, num_sections * sizeof(SectionEntry));
    if (c.Finish() != header->header_checksum) {
      return Status::Corruption("delta header checksum mismatch: " + name);
    }
  }
  // Bound the counts before computing expected sizes (overflow safety).
  if (header->base_nodes >= kInvalidNode ||
      header->next_nodes >= kInvalidNode ||
      header->base_terms > kMaxDeltaTerms ||
      header->next_terms > kMaxDeltaTerms ||
      header->num_new_terms > header->next_terms ||
      header->base_triples > (uint64_t{1} << 40) ||
      header->next_triples > (uint64_t{1} << 40)) {
    return Status::Corruption("implausible delta counts: " + name);
  }
  const uint64_t nn = header->next_nodes;
  const uint64_t tn = header->next_terms;
  const uint64_t nw = header->num_new_terms;
  // Fixed expected sizes; the run and triple sections are data-dependent
  // but must hold whole elements.
  const uint64_t expected[kNumDeltaSectionsV2] = {
      tn * sizeof(uint32_t),         // term_sources
      (nw + 1) * sizeof(uint64_t),   // new_term_offsets
      table[2].size,                 // new_term_blob: data-dependent
      nn * sizeof(uint8_t),          // node_kinds
      nn * sizeof(uint32_t),         // node_lex
      nn * sizeof(NodeId),           // node_remap
      table[6].size,                 // removed_runs
      table[7].size,                 // kept_runs
      table[8].size,                 // added_triples
      nw * sizeof(uint32_t),         // new_term_prefix_lens (v2)
  };
  if (table[6].size % sizeof(RunEntry) != 0 ||
      table[7].size % sizeof(RunEntry) != 0 ||
      table[8].size % sizeof(Triple) != 0) {
    return Status::Corruption("delta section holds partial elements: " +
                              name);
  }
  uint64_t prev_end = payload_start;
  for (size_t s = 0; s < num_sections; ++s) {
    const SectionEntry& sec = table[s];
    if (sec.id != static_cast<uint32_t>(kDeltaSectionOrder[s]) ||
        sec.reserved != 0) {
      return Status::Corruption("malformed delta section table: " + name);
    }
    if (sec.size != expected[s]) {
      return Status::Corruption(
          "delta section " +
          std::string(DeltaSectionName(kDeltaSectionOrder[s])) +
          " has unexpected size: " + name);
    }
    if (sec.offset % kSectionAlignment != 0 || sec.offset < prev_end ||
        sec.offset > header->file_size ||
        sec.size > header->file_size - sec.offset) {
      return Status::Corruption(
          "delta section " +
          std::string(DeltaSectionName(kDeltaSectionOrder[s])) +
          " out of bounds: " + name);
    }
    prev_end = sec.offset + sec.size;
  }
  return Status::OK();
}

/// Opens `path` and validates the delta header from its prefix without
/// allocating anything file-sized; returns the actual size.
Result<uint64_t> OpenAndValidateDeltaPrefix(const std::string& path,
                                            std::ifstream& in,
                                            DeltaHeader* header,
                                            SectionEntry* table) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    return Status::IOError("not a regular file: " + path);
  }
  in.open(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  const std::streamoff pos = in.tellg();
  if (!in || pos < 0) {
    return Status::IOError("cannot determine file size: " + path);
  }
  const auto size = static_cast<uint64_t>(pos);
  in.seekg(0);
  // Large enough for either format version; v1 validation only reads the
  // first kNumDeltaSections table entries.
  unsigned char head[kDeltaPayloadStartV2] = {};
  const uint64_t head_bytes =
      size < kDeltaPayloadStartV2 ? size : kDeltaPayloadStartV2;
  in.read(reinterpret_cast<char*>(head),
          static_cast<std::streamsize>(head_bytes));
  if (!in && head_bytes > 0) {
    return Status::IOError("error reading file: " + path);
  }
  RDFALIGN_RETURN_IF_ERROR(
      ValidateDeltaHeader(head, head_bytes, size, header, table, path));
  return size;
}

Result<RawDelta> AcquireDeltaBytes(const std::string& path) {
  RawDelta raw;
  std::ifstream in;
  RDFALIGN_ASSIGN_OR_RETURN(
      const uint64_t size,
      OpenAndValidateDeltaPrefix(path, in, &raw.header, raw.table));
  std::shared_ptr<std::vector<unsigned char>> buffer;
  try {
    buffer = std::make_shared<std::vector<unsigned char>>(size);
  } catch (const std::bad_alloc&) {
    return Status::IOError("delta too large to buffer (" +
                           std::to_string(size) + " bytes): " + path);
  }
  if (size > 0) {
    in.seekg(0);
    in.read(reinterpret_cast<char*>(buffer->data()),
            static_cast<std::streamsize>(size));
    if (!in) {
      return Status::IOError("error reading file: " + path);
    }
  }
  raw.base = buffer->data();
  raw.size = size;
  raw.pin = std::move(buffer);
  return raw;
}

template <typename T>
std::span<const T> DeltaSectionSpan(const RawDelta& raw, size_t index) {
  return {reinterpret_cast<const T*>(raw.base + raw.table[index].offset),
          static_cast<size_t>(raw.table[index].size / sizeof(T))};
}

/// The shared body of the file and memory appliers. `raw` holds a
/// validated header and section table.
Result<TripleGraph> ApplyFromRaw(const TripleGraph& base, const RawDelta& raw,
                                 std::shared_ptr<Dictionary> dict,
                                 const DeltaApplyOptions& options,
                                 DeltaApplyStats* stats,
                                 const std::string& name) {
  static_assert(std::endian::native == std::endian::little,
                "deltas are read on little-endian hosts only");
  const auto corrupt = [&name](std::string_view what) {
    return Status::Corruption(std::string(what) + ": " + name);
  };

  const bool fc = raw.header.version == kDeltaFormatVersionFrontCoded;
  const size_t num_sections = DeltaSectionCount(raw.header.version);
  const size_t threads = ResolveThreads(options.threads);
  if (options.verify_checksums) {
    // Sections hash independently; the first mismatch in section order is
    // reported no matter which worker found it.
    uint8_t bad[kNumDeltaSectionsV2] = {};
    ParallelChunks(num_sections, threads, /*grain=*/1,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t s = begin; s < end; ++s) {
                       bad[s] = Checksum64(raw.base + raw.table[s].offset,
                                           raw.table[s].size) !=
                                raw.table[s].checksum;
                     }
                   });
    for (size_t s = 0; s < num_sections; ++s) {
      if (bad[s]) {
        return Status::Corruption(
            "delta section " +
            std::string(DeltaSectionName(kDeltaSectionOrder[s])) +
            " checksum mismatch: " + name);
      }
    }
  }

  // Base binding: the delta applies to exactly one graph. Count or
  // fingerprint disagreement is a caller error (wrong base), not file
  // corruption.
  const TermBinding base_terms = BindTerms(base);
  if (raw.header.base_nodes != base.NumNodes() ||
      raw.header.base_triples != base.NumEdges() ||
      raw.header.base_terms != base_terms.term_ids.size() ||
      raw.header.base_fingerprint !=
          FingerprintWithBinding(base, base_terms)) {
    return Status::InvalidArgument(
        "delta does not apply to this base graph: " + name);
  }

  const uint64_t bn = raw.header.base_nodes;
  const uint64_t be = raw.header.base_triples;
  const uint64_t nn = raw.header.next_nodes;
  const uint64_t ne = raw.header.next_triples;
  const uint64_t tb = raw.header.base_terms;
  const uint64_t tn = raw.header.next_terms;
  const uint64_t nw = raw.header.num_new_terms;

  const auto term_sources = DeltaSectionSpan<uint32_t>(raw, 0);
  const auto new_term_offsets = DeltaSectionSpan<uint64_t>(raw, 1);
  const auto blob = DeltaSectionSpan<char>(raw, 2);
  const auto kinds = DeltaSectionSpan<uint8_t>(raw, 3);
  const auto lex = DeltaSectionSpan<uint32_t>(raw, 4);
  const auto remap = DeltaSectionSpan<NodeId>(raw, 5);
  const auto removed_runs = DeltaSectionSpan<RunEntry>(raw, 6);
  const auto kept_runs = DeltaSectionSpan<RunEntry>(raw, 7);
  const auto added = DeltaSectionSpan<Triple>(raw, 8);
  const auto new_prefix_lens =
      fc ? DeltaSectionSpan<uint32_t>(raw, 9) : std::span<const uint32_t>{};

  // Structural validation: every array reference checked before use, so a
  // crafted delta (checksums recomputed) is a Corruption status, never UB.
  {
    uint64_t new_seen = 0;
    for (uint64_t j = 0; j < tn; ++j) {
      const uint32_t src = term_sources[j];
      if (src & kNewTermFlag) {
        if ((src & ~kNewTermFlag) != new_seen) {
          return corrupt("delta new-term references not dense and ordered");
        }
        ++new_seen;
      } else if (src >= tb) {
        return corrupt("delta term source references base term out of range");
      }
    }
    if (new_seen != nw) {
      return corrupt("delta new-term count inconsistent with term sources");
    }
  }
  if (fc) {
    if (const char* defect = CheckFrontCodedGeometry(
            new_prefix_lens, new_term_offsets, blob.size(), nullptr)) {
      return corrupt(defect);
    }
  } else {
    if (new_term_offsets[0] != 0 || new_term_offsets[nw] != blob.size()) {
      return corrupt("delta term offset table does not span the term blob");
    }
    for (uint64_t k = 0; k < nw; ++k) {
      if (new_term_offsets[k] > new_term_offsets[k + 1]) {
        return corrupt("delta term offsets not monotonic");
      }
    }
  }
  for (uint64_t i = 0; i < nn; ++i) {
    if (kinds[i] > static_cast<uint8_t>(TermKind::kBlank)) {
      return corrupt("delta node kind out of range");
    }
    if (lex[i] >= tn) {
      return corrupt("delta node label references term out of range");
    }
  }
  // Invert the node remap; it must be injective into the base node set.
  std::vector<NodeId> base_to_next(bn, kInvalidNode);
  for (uint64_t i = 0; i < nn; ++i) {
    const NodeId b = remap[i];
    if (b == kInvalidNode) continue;
    if (b >= bn) {
      return corrupt("delta node remap references base node out of range");
    }
    if (base_to_next[b] != kInvalidNode) {
      return corrupt("delta node remap is not injective");
    }
    base_to_next[b] = static_cast<NodeId>(i);
  }
  // Removed runs: ascending, non-overlapping, in bounds. Marked in a
  // per-base-triple role map so kept runs cannot reuse them.
  std::vector<uint8_t> role(be, 0);  // 0 unused, 1 removed, 2 kept
  uint64_t removed_total = 0;
  {
    uint64_t prev_end = 0;
    bool first = true;
    for (const RunEntry& r : removed_runs) {
      if (r.count == 0) return corrupt("delta removed run is empty");
      if (!first && r.start < prev_end) {
        return corrupt("delta removed runs not ascending");
      }
      if (r.start > be || r.count > be - r.start) {
        return corrupt("delta removed run out of bounds");
      }
      for (uint64_t k = r.start; k < r.start + r.count; ++k) role[k] = 1;
      prev_end = r.start + r.count;
      removed_total += r.count;
      first = false;
    }
  }
  uint64_t kept_total = 0;
  for (const RunEntry& r : kept_runs) {
    if (r.count == 0) return corrupt("delta kept run is empty");
    if (r.start > be || r.count > be - r.start) {
      return corrupt("delta kept run out of bounds");
    }
    for (uint64_t k = r.start; k < r.start + r.count; ++k) {
      if (role[k] != 0) {
        return corrupt("delta runs reference a base triple twice");
      }
      role[k] = 2;
    }
    kept_total += r.count;
  }
  if (kept_total + removed_total != be) {
    return corrupt("delta runs do not partition the base triple list");
  }
  if (kept_total + added.size() != ne) {
    return corrupt("delta triple counts inconsistent");
  }
  for (const Triple& t : added) {
    if (t.s >= nn || t.p >= nn || t.o >= nn) {
      return corrupt("delta added triple references node out of range");
    }
  }

  // Splice: expand the kept runs (mapped into next ids) and linearly merge
  // with the added triples. Both streams are pre-sorted in next space; the
  // global strictly-ascending check proves it and is exactly the
  // sorted+deduplicated invariant FromIndexedParts trusts.
  const std::span<const Triple> base_tris = base.triples();
  std::vector<Triple> triples;
  triples.reserve(ne);
  size_t run_index = 0;
  uint64_t run_pos = 0;
  bool have_kept = false;
  Triple kept_cur{};
  const auto advance_kept = [&]() -> Status {
    while (run_index < kept_runs.size()) {
      const RunEntry& r = kept_runs[run_index];
      if (run_pos == r.count) {
        ++run_index;
        run_pos = 0;
        continue;
      }
      const Triple& bt = base_tris[r.start + run_pos];
      ++run_pos;
      const NodeId s = base_to_next[bt.s];
      const NodeId p = base_to_next[bt.p];
      const NodeId o = base_to_next[bt.o];
      if (s == kInvalidNode || p == kInvalidNode || o == kInvalidNode) {
        return Status::Corruption(
            "delta kept triple references a base node without a "
            "next-version image: " +
            name);
      }
      kept_cur = Triple{s, p, o};
      have_kept = true;
      return Status::OK();
    }
    have_kept = false;
    return Status::OK();
  };
  RDFALIGN_RETURN_IF_ERROR(advance_kept());
  size_t add_index = 0;
  while (have_kept || add_index < added.size()) {
    const bool take_kept =
        have_kept &&
        (add_index >= added.size() || kept_cur < added[add_index]);
    const Triple chosen = take_kept ? kept_cur : added[add_index];
    if (!triples.empty() && !(triples.back() < chosen)) {
      return corrupt("delta spliced triples not sorted and deduplicated");
    }
    triples.push_back(chosen);
    if (take_kept) {
      RDFALIGN_RETURN_IF_ERROR(advance_kept());
    } else {
      ++add_index;
    }
  }

  // Dictionary: resolve each next-dense (canonical-order) term against
  // the base dictionary or the delta blob, interning by copy — the delta
  // buffer is transient — into the target dictionary.
  if (dict == nullptr) dict = std::make_shared<Dictionary>();
  const size_t dict_before = dict->size();
  std::vector<LexId> lex_map(tn);
  {
    uint64_t new_seen = 0;
    // Front-coded decode state: the previous decoded new term, kept whole
    // so the next term's prefix head can be copied from it (swap, never
    // resize in place — the head is read before it is overwritten).
    std::string prev_new;
    std::string cur_new;
    for (uint64_t j = 0; j < tn; ++j) {
      const uint32_t src = term_sources[j];
      std::string_view term;
      if (src & kNewTermFlag) {
        const uint64_t suffix_len =
            new_term_offsets[new_seen + 1] - new_term_offsets[new_seen];
        if (fc) {
          const uint32_t plen = new_prefix_lens[new_seen];
          cur_new.assign(prev_new.data(), plen);
          cur_new.append(blob.data() + new_term_offsets[new_seen],
                         suffix_len);
          if (new_seen > 0 && !(prev_new < cur_new)) {
            return corrupt("delta front-coded terms not strictly ascending");
          }
          std::swap(prev_new, cur_new);
          term = prev_new;
        } else {
          term = std::string_view(blob.data() + new_term_offsets[new_seen],
                                  suffix_len);
        }
        ++new_seen;
      } else {
        term = base.dict().Get(base_terms.term_ids[src]);
      }
      lex_map[j] = dict->Intern(term);
    }
  }
  std::vector<NodeLabel> labels(nn);
  for (uint64_t i = 0; i < nn; ++i) {
    labels[i] = NodeLabel{static_cast<TermKind>(kinds[i]), lex_map[lex[i]]};
  }

  // Fresh CSR arrays from the merged sorted triple list — the same
  // counting passes as TripleGraph::BuildIndexes, so the result is
  // bit-identical to a from-scratch build (and to a full snapshot load).
  std::vector<uint64_t> out_offsets;
  std::vector<PredicateObject> out_pairs;
  std::vector<uint64_t> in_offsets;
  std::vector<NodeId> in_subjects;
  TripleGraph::BuildCsrArrays(triples, nn, &out_offsets, &out_pairs,
                              &in_offsets, &in_subjects, threads);

  if (stats != nullptr) {
    stats->file_bytes = raw.size;
    stats->kept_triples = kept_total;
    stats->removed_triples = removed_total;
    stats->added_triples = added.size();
    stats->new_terms = nw;
    stats->terms_interned = dict->size() - dict_before;
  }

  return TripleGraph::FromIndexedParts(
      std::move(dict), std::move(labels),
      SharedArray<Triple>(std::move(triples)),
      SharedArray<uint64_t>(std::move(out_offsets)),
      SharedArray<PredicateObject>(std::move(out_pairs)),
      SharedArray<uint64_t>(std::move(in_offsets)),
      SharedArray<NodeId>(std::move(in_subjects)));
}

}  // namespace

Result<TripleGraph> ApplyDelta(const TripleGraph& base,
                               const std::string& path,
                               std::shared_ptr<Dictionary> dict,
                               const DeltaApplyOptions& options,
                               DeltaApplyStats* stats) {
  RDFALIGN_ASSIGN_OR_RETURN(RawDelta raw, AcquireDeltaBytes(path));
  return ApplyFromRaw(base, raw, std::move(dict), options, stats, path);
}

Result<TripleGraph> ApplyDeltaFromMemory(const TripleGraph& base,
                                         const unsigned char* data,
                                         uint64_t size,
                                         std::shared_ptr<Dictionary> dict,
                                         const DeltaApplyOptions& options,
                                         DeltaApplyStats* stats,
                                         const std::string& name) {
  RawDelta raw;
  raw.base = data;
  raw.size = size;
  RDFALIGN_RETURN_IF_ERROR(
      ValidateDeltaHeader(data, size, size, &raw.header, raw.table, name));
  return ApplyFromRaw(base, raw, std::move(dict), options, stats, name);
}

Result<DeltaInfo> ReadDeltaInfo(const std::string& path) {
  std::ifstream in;
  DeltaHeader header;
  SectionEntry table[kNumDeltaSectionsV2];
  RDFALIGN_RETURN_IF_ERROR(
      OpenAndValidateDeltaPrefix(path, in, &header, table).status());
  DeltaInfo info;
  info.version = header.version;
  info.base_nodes = header.base_nodes;
  info.base_triples = header.base_triples;
  info.base_terms = header.base_terms;
  info.base_fingerprint = header.base_fingerprint;
  info.next_nodes = header.next_nodes;
  info.next_triples = header.next_triples;
  info.next_terms = header.next_terms;
  info.num_new_terms = header.num_new_terms;
  info.file_size = header.file_size;
  for (size_t s = 0; s < DeltaSectionCount(header.version); ++s) {
    info.sections.push_back(
        DeltaSectionInfo{kDeltaSectionOrder[s], table[s].offset,
                         table[s].size, table[s].checksum});
  }
  return info;
}

bool LooksLikeDelta(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<char, 8> magic = {};
  in.read(magic.data(), magic.size());
  return in.gcount() == static_cast<std::streamsize>(magic.size()) &&
         magic == kDeltaMagic;
}

}  // namespace rdfalign::store
