#include "store/archive_io.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "core/delta.h"
#include "store/atomic_writer.h"
#include "store/delta.h"
#include "store/io_util.h"
#include "store/snapshot.h"

namespace rdfalign::store {

namespace {

/// A saved archive with V >= 1 versions has 2V sections: the base
/// snapshot, V-1 deltas, V entity columns. An empty archive has none.
uint64_t ExpectedSections(uint64_t num_versions) {
  return num_versions == 0 ? 0 : 2 * num_versions;
}

ArchiveSectionId ExpectedSectionId(uint64_t num_versions, uint64_t index) {
  if (index == 0) return ArchiveSectionId::kBaseSnapshot;
  if (index < num_versions) return ArchiveSectionId::kDelta;
  return ArchiveSectionId::kEntities;
}

Status WriteExact(std::ostream& out, const void* data, size_t n,
                  const std::string& path) {
  return store::WriteExact(out, data, n, "archive", path);  // io_util.h
}

/// Caps num_versions so every size computation below stays far from
/// overflow (also the VersionArchive practical range).
constexpr uint64_t kMaxArchiveVersions = uint64_t{1} << 20;

/// Validates the archive header and the variable-length section table.
/// `available` bytes of the file are present at `base`.
Status ValidateArchiveHeader(const unsigned char* base, uint64_t available,
                             uint64_t actual_size, ArchiveHeader* header,
                             std::vector<SectionEntry>* table,
                             const std::string& name) {
  if (available < sizeof(ArchiveHeader)) {
    return Status::Corruption("truncated archive (no header): " + name);
  }
  std::memcpy(header, base, sizeof(ArchiveHeader));
  if (header->magic != kArchiveMagic) {
    return Status::InvalidArgument("not an rdfalign archive: " + name);
  }
  if (header->version != kArchiveFormatVersion) {
    return Status::NotSupported(
        "unsupported archive format version " +
        std::to_string(header->version) + " (this build reads version " +
        std::to_string(kArchiveFormatVersion) + "): " + name);
  }
  if (header->endian_tag != kEndianTag) {
    return Status::NotSupported(
        "archive written with a different byte order: " + name);
  }
  if (header->num_versions > kMaxArchiveVersions ||
      header->num_sections != ExpectedSections(header->num_versions)) {
    return Status::Corruption("implausible archive version count: " + name);
  }
  if (header->file_size != actual_size) {
    return Status::Corruption(
        "archive size mismatch (header says " +
        std::to_string(header->file_size) + " bytes, file has " +
        std::to_string(actual_size) + "): " + name);
  }
  const uint64_t payload_start =
      sizeof(ArchiveHeader) + header->num_sections * sizeof(SectionEntry);
  if (available < payload_start) {
    return Status::Corruption("truncated archive (no section table): " +
                              name);
  }
  table->resize(header->num_sections);
  if (header->num_sections > 0) {  // empty table => null data()
    std::memcpy(table->data(), base + sizeof(ArchiveHeader),
                header->num_sections * sizeof(SectionEntry));
  }
  {
    ArchiveHeader zeroed = *header;
    zeroed.header_checksum = 0;
    Checksummer c;
    c.Update(&zeroed, sizeof(zeroed));
    c.Update(table->data(), header->num_sections * sizeof(SectionEntry));
    if (c.Finish() != header->header_checksum) {
      return Status::Corruption("archive header checksum mismatch: " + name);
    }
  }
  uint64_t prev_end = payload_start;
  for (uint64_t s = 0; s < header->num_sections; ++s) {
    const SectionEntry& sec = (*table)[s];
    const ArchiveSectionId expected_id =
        ExpectedSectionId(header->num_versions, s);
    if (sec.id != static_cast<uint32_t>(expected_id) || sec.reserved != 0) {
      return Status::Corruption("malformed archive section table: " + name);
    }
    if (expected_id == ArchiveSectionId::kEntities &&
        sec.size % sizeof(EntityId) != 0) {
      return Status::Corruption(
          "archive entity section holds partial elements: " + name);
    }
    if (sec.offset % kSectionAlignment != 0 || sec.offset < prev_end ||
        sec.offset > header->file_size ||
        sec.size > header->file_size - sec.offset) {
      return Status::Corruption("archive section " + std::to_string(s) +
                                " out of bounds: " + name);
    }
    prev_end = sec.offset + sec.size;
  }
  return Status::OK();
}

/// Opens `path`, reads header + table, validates both without allocating
/// anything file-sized; returns the actual size with `in` open.
Result<uint64_t> OpenAndValidateArchivePrefix(
    const std::string& path, std::ifstream& in, ArchiveHeader* header,
    std::vector<SectionEntry>* table) {
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    return Status::IOError("not a regular file: " + path);
  }
  in.open(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  const std::streamoff pos = in.tellg();
  if (!in || pos < 0) {
    return Status::IOError("cannot determine file size: " + path);
  }
  const auto size = static_cast<uint64_t>(pos);
  // The table length depends on the header, so the prefix is read in two
  // steps: fixed header first, then — once num_sections is bounded — the
  // table. ValidateArchiveHeader re-runs the header checks on the full
  // prefix buffer.
  unsigned char head[sizeof(ArchiveHeader)] = {};
  const uint64_t head_bytes =
      size < sizeof(ArchiveHeader) ? size : sizeof(ArchiveHeader);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(head),
          static_cast<std::streamsize>(head_bytes));
  if (!in && head_bytes > 0) {
    return Status::IOError("error reading file: " + path);
  }
  if (head_bytes < sizeof(ArchiveHeader)) {
    return Status::Corruption("truncated archive (no header): " + path);
  }
  ArchiveHeader peek;
  std::memcpy(&peek, head, sizeof(peek));
  if (peek.magic != kArchiveMagic) {
    return Status::InvalidArgument("not an rdfalign archive: " + path);
  }
  if (peek.num_versions > kMaxArchiveVersions ||
      peek.num_sections > 2 * kMaxArchiveVersions) {
    return Status::Corruption("implausible archive version count: " + path);
  }
  const uint64_t prefix_bytes =
      sizeof(ArchiveHeader) + peek.num_sections * sizeof(SectionEntry);
  std::vector<unsigned char> prefix(prefix_bytes, 0);
  std::memcpy(prefix.data(), head, sizeof(ArchiveHeader));
  const uint64_t rest =
      size > prefix_bytes ? prefix_bytes - sizeof(ArchiveHeader)
                          : (size - sizeof(ArchiveHeader));
  in.read(reinterpret_cast<char*>(prefix.data() + sizeof(ArchiveHeader)),
          static_cast<std::streamsize>(rest));
  if (!in && rest > 0) {
    return Status::IOError("error reading file: " + path);
  }
  RDFALIGN_RETURN_IF_ERROR(ValidateArchiveHeader(
      prefix.data(), sizeof(ArchiveHeader) + rest, size, header, table,
      path));
  return size;
}

}  // namespace

std::string_view ArchiveSectionName(ArchiveSectionId id) {
  switch (id) {
    case ArchiveSectionId::kBaseSnapshot:
      return "base_snapshot";
    case ArchiveSectionId::kDelta:
      return "delta";
    case ArchiveSectionId::kEntities:
      return "entities";
  }
  return "unknown";
}

Status SaveArchive(const VersionArchive& archive, const std::string& path,
                   ArchiveSaveStats* stats, const StoreWriteOptions& options) {
  static_assert(std::endian::native == std::endian::little,
                "archives are written on little-endian hosts only");
  const uint64_t num_versions = archive.NumVersions();
  if (num_versions > kMaxArchiveVersions) {
    return Status::InvalidArgument("too many versions for an archive file: " +
                                   path);
  }

  // Render the embedded images. Version 0 is a full snapshot; every later
  // version is a delta against its predecessor, with the node map derived
  // from the archive's entity chaining — no re-alignment.
  std::vector<std::string> images;
  images.reserve(num_versions);
  for (uint32_t v = 0; v < num_versions; ++v) {
    std::ostringstream image(std::ios::binary);
    if (v == 0) {
      RDFALIGN_RETURN_IF_ERROR(WriteSnapshotToStream(
          archive.Version(0), image, path + " (base snapshot)", options));
    } else {
      const VersionNodeMap map =
          NodeMapFromEntities(archive.Entities(v - 1), archive.Entities(v));
      RDFALIGN_RETURN_IF_ERROR(WriteDeltaToStream(
          archive.Version(v - 1), archive.Version(v), map, image,
          path + " (delta " + std::to_string(v) + ")", /*stats=*/nullptr,
          options));
    }
    images.push_back(std::move(image).str());
  }

  const uint64_t num_sections = ExpectedSections(num_versions);
  std::vector<SectionEntry> table(num_sections);
  const uint64_t payload_start =
      sizeof(ArchiveHeader) + num_sections * sizeof(SectionEntry);
  uint64_t cursor = payload_start;
  ArchiveSaveStats local_stats;
  for (uint64_t s = 0; s < num_sections; ++s) {
    const ArchiveSectionId id = ExpectedSectionId(num_versions, s);
    const void* data = nullptr;
    uint64_t size = 0;
    if (id == ArchiveSectionId::kEntities) {
      const auto& entities =
          archive.Entities(static_cast<uint32_t>(s - num_versions));
      data = entities.data();
      size = entities.size() * sizeof(EntityId);
      local_stats.entity_bytes += size;
    } else {
      const std::string& image = images[s];
      data = image.data();
      size = image.size();
      if (id == ArchiveSectionId::kBaseSnapshot) {
        local_stats.base_bytes += size;
      } else {
        local_stats.delta_bytes += size;
      }
    }
    table[s].id = static_cast<uint32_t>(id);
    table[s].reserved = 0;
    table[s].offset = AlignUp(cursor);
    table[s].size = size;
    table[s].checksum = Checksum64(data, size);
    cursor = table[s].offset + size;
  }

  ArchiveHeader header;
  header.magic = kArchiveMagic;
  header.version = kArchiveFormatVersion;
  header.endian_tag = kEndianTag;
  header.num_versions = num_versions;
  header.num_sections = num_sections;
  header.file_size = cursor;
  header.header_checksum = 0;
  {
    Checksummer c;
    c.Update(&header, sizeof(header));
    c.Update(table.data(), table.size() * sizeof(SectionEntry));
    header.header_checksum = c.Finish();
  }

  AtomicFileWriter writer(path, "archive");
  RDFALIGN_RETURN_IF_ERROR(writer.Open());
  Status body = [&]() -> Status {
    std::ostream& out = writer.stream();
    RDFALIGN_RETURN_IF_ERROR(WriteExact(out, &header, sizeof(header), path));
    RDFALIGN_RETURN_IF_ERROR(WriteExact(out, table.data(),
                                        table.size() * sizeof(SectionEntry),
                                        path));
    uint64_t written = payload_start;
    const char zeros[kSectionAlignment] = {};
    for (uint64_t s = 0; s < num_sections; ++s) {
      if (table[s].offset > written) {
        RDFALIGN_RETURN_IF_ERROR(
            WriteExact(out, zeros, table[s].offset - written, path));
      }
      const ArchiveSectionId id = ExpectedSectionId(num_versions, s);
      if (id == ArchiveSectionId::kEntities) {
        const auto& entities =
            archive.Entities(static_cast<uint32_t>(s - num_versions));
        RDFALIGN_RETURN_IF_ERROR(WriteExact(
            out, entities.data(), entities.size() * sizeof(EntityId), path));
      } else {
        RDFALIGN_RETURN_IF_ERROR(
            WriteExact(out, images[s].data(), images[s].size(), path));
      }
      written = table[s].offset + table[s].size;
    }
    return Status::OK();
  }();
  if (!body.ok()) {
    Status io = writer.status();
    return io.ok() ? body : io;
  }
  RDFALIGN_RETURN_IF_ERROR(writer.Commit());
  if (stats != nullptr) {
    local_stats.file_bytes = cursor;
    *stats = local_stats;
  }
  return Status::OK();
}

Result<VersionArchive> LoadArchive(const std::string& path,
                                   AlignerOptions options,
                                   ArchiveLoadStats* stats) {
  static_assert(std::endian::native == std::endian::little,
                "archives are read on little-endian hosts only");
  ArchiveHeader header;
  std::vector<SectionEntry> table;
  std::ifstream in;
  RDFALIGN_ASSIGN_OR_RETURN(
      const uint64_t size,
      OpenAndValidateArchivePrefix(path, in, &header, &table));
  std::shared_ptr<std::vector<unsigned char>> buffer;
  try {
    buffer = std::make_shared<std::vector<unsigned char>>(size);
  } catch (const std::bad_alloc&) {
    return Status::IOError("archive too large to buffer (" +
                           std::to_string(size) + " bytes): " + path);
  }
  if (size > 0) {
    in.seekg(0);
    in.read(reinterpret_cast<char*>(buffer->data()),
            static_cast<std::streamsize>(size));
    if (!in) {
      return Status::IOError("error reading file: " + path);
    }
  }
  const unsigned char* base = buffer->data();
  const uint64_t num_versions = header.num_versions;

  // Archive-level content verification before any section is interpreted
  // (the embedded snapshot/delta images additionally self-validate).
  for (uint64_t s = 0; s < header.num_sections; ++s) {
    if (Checksum64(base + table[s].offset, table[s].size) !=
        table[s].checksum) {
      return Status::Corruption(
          "archive section " + std::to_string(s) + " (" +
          std::string(ArchiveSectionName(
              ExpectedSectionId(num_versions, s))) +
          ") checksum mismatch: " + path);
    }
  }

  // Materialize every version by patch replay, all sharing one dictionary
  // (the VersionArchive invariant). The base snapshot adopts its arrays
  // zero-copy from the archive buffer; deltas build fresh arrays.
  auto dict = std::make_shared<Dictionary>();
  std::vector<TripleGraph> versions;
  versions.reserve(num_versions);
  for (uint64_t v = 0; v < num_versions; ++v) {
    const SectionEntry& sec = table[v];
    const std::string name =
        path + " (section " + std::string(ArchiveSectionName(
                                  ExpectedSectionId(num_versions, v))) +
        " " + std::to_string(v) + ")";
    if (v == 0) {
      RDFALIGN_ASSIGN_OR_RETURN(
          TripleGraph g,
          LoadSnapshotFromMemory(buffer, base + sec.offset, sec.size, dict,
                                 {}, nullptr, name));
      versions.push_back(std::move(g));
    } else {
      RDFALIGN_ASSIGN_OR_RETURN(
          TripleGraph g,
          ApplyDeltaFromMemory(versions.back(), base + sec.offset, sec.size,
                               dict, {}, nullptr, name));
      versions.push_back(std::move(g));
    }
  }
  std::vector<std::vector<EntityId>> entity_of;
  entity_of.reserve(num_versions);
  for (uint64_t v = 0; v < num_versions; ++v) {
    const SectionEntry& sec = table[num_versions + v];
    const uint64_t count = sec.size / sizeof(EntityId);
    if (count != versions[v].NumNodes()) {
      return Status::Corruption(
          "archive entity column size does not match version " +
          std::to_string(v) + ": " + path);
    }
    std::vector<EntityId> ids(count);
    if (sec.size > 0) {
      std::memcpy(ids.data(), base + sec.offset, sec.size);
    }
    entity_of.push_back(std::move(ids));
  }
  if (stats != nullptr) {
    stats->file_bytes = size;
    stats->versions = num_versions;
  }
  return VersionArchive::Restore(options, std::move(versions),
                                 std::move(entity_of));
}

Result<ArchiveInfo> ReadArchiveInfo(const std::string& path) {
  std::ifstream in;
  ArchiveHeader header;
  std::vector<SectionEntry> table;
  RDFALIGN_RETURN_IF_ERROR(
      OpenAndValidateArchivePrefix(path, in, &header, &table).status());
  ArchiveInfo info;
  info.version = header.version;
  info.num_versions = header.num_versions;
  info.file_size = header.file_size;
  for (uint64_t s = 0; s < header.num_sections; ++s) {
    info.sections.push_back(ArchiveSectionInfo{
        ExpectedSectionId(header.num_versions, s), table[s].offset,
        table[s].size, table[s].checksum});
  }
  return info;
}

Result<uint64_t> ArchiveBaseFingerprint(const std::string& path) {
  std::ifstream in;
  ArchiveHeader header;
  std::vector<SectionEntry> table;
  RDFALIGN_RETURN_IF_ERROR(
      OpenAndValidateArchivePrefix(path, in, &header, &table).status());
  if (header.num_versions == 0) {
    return Status::InvalidArgument("empty archive has no base snapshot: " +
                                   path);
  }
  const SectionEntry& sec = table[0];
  auto buffer = std::make_shared<std::vector<unsigned char>>(sec.size);
  in.seekg(static_cast<std::streamoff>(sec.offset));
  in.read(reinterpret_cast<char*>(buffer->data()),
          static_cast<std::streamsize>(sec.size));
  if (!in) {
    return Status::IOError("error reading file: " + path);
  }
  if (Checksum64(buffer->data(), sec.size) != sec.checksum) {
    return Status::Corruption(
        "archive section 0 (base_snapshot) checksum mismatch: " + path);
  }
  RDFALIGN_ASSIGN_OR_RETURN(
      TripleGraph base,
      LoadSnapshotFromMemory(buffer, buffer->data(), sec.size, nullptr, {},
                             nullptr, path + " (section base_snapshot 0)"));
  return GraphFingerprint(base);
}

bool LooksLikeArchive(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::array<char, 8> magic = {};
  in.read(magic.data(), magic.size());
  return in.gcount() == static_cast<std::streamsize>(magic.size()) &&
         magic == kArchiveMagic;
}

}  // namespace rdfalign::store
