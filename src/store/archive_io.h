// Persistence of a VersionArchive (§6): one file holding the base
// snapshot, a chain of incremental deltas, and the per-version entity-id
// columns.
//
// SaveArchive embeds version 0 as a verbatim snapshot image and every
// later version as a delta image against its predecessor (derived from
// the archive's own entity chaining — no re-alignment), each a checksummed
// section in the RDFARCH1 layout of store/format.h. LoadArchive
// materializes every version by patch replay — LoadSnapshotFromMemory for
// the base (zero-copy into the archive buffer), ApplyDeltaFromMemory for
// each successor, all sharing one dictionary — and rebuilds the interval
// records through VersionArchive::Restore, so the loaded archive
// reproduces the saved one exactly: same stats, same entities, same
// materialized graphs.

#ifndef RDFALIGN_STORE_ARCHIVE_IO_H_
#define RDFALIGN_STORE_ARCHIVE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/archive.h"
#include "store/format.h"
#include "util/result.h"

namespace rdfalign::store {

/// Telemetry of an archive save.
struct ArchiveSaveStats {
  uint64_t file_bytes = 0;
  uint64_t base_bytes = 0;     ///< embedded base snapshot image
  uint64_t delta_bytes = 0;    ///< all embedded delta images
  uint64_t entity_bytes = 0;   ///< all entity columns
};

/// Serializes `archive` to `path`, overwriting any existing file.
/// `options` is forwarded to the embedded snapshot and delta writers (the
/// archive container format itself is unversioned by compression — only
/// the embedded images change layout).
Status SaveArchive(const VersionArchive& archive, const std::string& path,
                   ArchiveSaveStats* stats = nullptr,
                   const StoreWriteOptions& options = {});

/// Telemetry of an archive load.
struct ArchiveLoadStats {
  uint64_t file_bytes = 0;
  uint64_t versions = 0;
};

/// Loads an archive saved by SaveArchive, materializing every version by
/// patch replay. `options` configures the restored archive's future
/// Appends (the persisted data is alignment-method independent — the
/// chaining is already baked into the entity columns).
Result<VersionArchive> LoadArchive(const std::string& path,
                                   AlignerOptions options = {},
                                   ArchiveLoadStats* stats = nullptr);

/// Section metadata as reported by `rdfalign info` for archive files.
struct ArchiveSectionInfo {
  ArchiveSectionId id;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

/// Header-level archive metadata (no payload is read).
struct ArchiveInfo {
  uint32_t version = 0;
  uint64_t num_versions = 0;
  uint64_t file_size = 0;
  std::vector<ArchiveSectionInfo> sections;
};

/// Reads and validates the archive header and section table only.
Result<ArchiveInfo> ReadArchiveInfo(const std::string& path);

/// Content fingerprint (GraphFingerprint) of the archive's base snapshot
/// (version 0), computed from the embedded base image alone — no delta is
/// replayed and no other section is read. InvalidArgument for an empty
/// archive.
Result<uint64_t> ArchiveBaseFingerprint(const std::string& path);

/// Human-readable archive section name ("base_snapshot", "delta", ...).
std::string_view ArchiveSectionName(ArchiveSectionId id);

/// True when `path` starts with the archive magic.
bool LooksLikeArchive(const std::string& path);

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_ARCHIVE_IO_H_
