#include "store/atomic_writer.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/fault_injector.h"

namespace rdfalign::store {

namespace {

std::string ErrnoText(int err) {
  return std::string(std::strerror(err));
}

/// Parent directory of `path` ("." for a bare filename).
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

int WriteWithFaults(int fd, const void* data, size_t n) {
  const FaultAction a = FaultInjector::Hit("store.write");
  switch (a.kind) {
    case FaultAction::kNone:
      break;
    case FaultAction::kError:
      errno = a.error_errno;
      return -1;
    case FaultAction::kEintr:
      errno = EINTR;
      return -1;
    case FaultAction::kShort:
      n = n > 0 ? 1 : 0;
      break;
  }
  return static_cast<int>(::write(fd, data, n));
}

}  // namespace

/// A std::streambuf over a file descriptor with an internal buffer. The
/// first syscall failure is latched into `error_errno` and every later
/// operation fails fast; the owning stream's failbit fires through the
/// usual overflow/sync return codes.
class AtomicFileWriter::FdStreamBuf : public std::streambuf {
 public:
  static constexpr size_t kBufBytes = 1 << 16;

  explicit FdStreamBuf(int fd) : fd_(fd), buf_(kBufBytes) {
    setp(buf_.data(), buf_.data() + buf_.size());
  }

  int error_errno() const { return error_errno_; }
  int fd() const { return fd_; }

  bool FlushBuffer() {
    if (error_errno_ != 0) return false;
    const char* p = pbase();
    size_t left = static_cast<size_t>(pptr() - pbase());
    while (left > 0) {
      const int n = WriteWithFaults(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        error_errno_ = errno != 0 ? errno : EIO;
        return false;
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    setp(buf_.data(), buf_.data() + buf_.size());
    return true;
  }

 protected:
  int overflow(int ch) override {
    if (!FlushBuffer()) return traits_type::eof();
    if (ch != traits_type::eof()) {
      *pptr() = static_cast<char>(ch);
      pbump(1);
    }
    return ch == traits_type::eof() ? 0 : ch;
  }

  std::streamsize xsputn(const char* s, std::streamsize count) override {
    // Large writes bypass the buffer once it would spill.
    std::streamsize done = 0;
    while (done < count) {
      const std::streamsize room = epptr() - pptr();
      if (room == 0) {
        if (!FlushBuffer()) return done;
        continue;
      }
      const std::streamsize take = std::min(room, count - done);
      std::memcpy(pptr(), s + done, static_cast<size_t>(take));
      pbump(static_cast<int>(take));
      done += take;
    }
    return done;
  }

  int sync() override { return FlushBuffer() ? 0 : -1; }

 private:
  int fd_;
  std::vector<char> buf_;
  int error_errno_ = 0;
};

AtomicFileWriter::AtomicFileWriter(std::string path, std::string kind)
    : path_(std::move(path)), kind_(std::move(kind)) {
  temp_path_ = path_ + ".tmp." + std::to_string(::getpid());
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_) Abort();
}

Status AtomicFileWriter::Open() {
  CleanupStaleTemps(path_);
  const FaultAction a = FaultInjector::Hit("store.open");
  int fd = -1;
  if (a.kind == FaultAction::kError) {
    errno = a.error_errno;
  } else {
    fd = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }
  if (fd < 0) {
    return Status::IOError("cannot open file for writing: " + path_ + ": " +
                           ErrnoText(errno));
  }
  if (FaultInjector::Hit("store.alloc").kind == FaultAction::kError) {
    ::close(fd);
    ::unlink(temp_path_.c_str());
    return Status::IOError("cannot allocate write buffer for " + kind_ +
                           ": " + path_);
  }
  buf_ = std::make_unique<FdStreamBuf>(fd);
  stream_ = std::make_unique<std::ostream>(buf_.get());
  return Status::OK();
}

Status AtomicFileWriter::status() const {
  if (buf_ == nullptr) return Status::OK();
  if (buf_->error_errno() != 0) {
    return Status::IOError("error writing " + kind_ + ": " + path_ + ": " +
                           ErrnoText(buf_->error_errno()));
  }
  return Status::OK();
}

Status AtomicFileWriter::Commit() {
  if (buf_ == nullptr) {
    return Status::Internal("AtomicFileWriter::Commit before Open: " + path_);
  }
  stream_->flush();
  Status st = status();
  if (!st.ok()) {
    Abort();
    return st;
  }

  // fsync the temp file: its bytes must be durable BEFORE the rename can
  // publish them — otherwise a crash after the rename could expose a
  // complete-looking file with unwritten pages.
  const FaultAction fsync_fault = FaultInjector::Hit("store.fsync");
  int rc;
  if (fsync_fault.kind == FaultAction::kError) {
    errno = fsync_fault.error_errno;
    rc = -1;
  } else {
    do {
      rc = ::fsync(buf_->fd());
    } while (rc != 0 && errno == EINTR);
  }
  if (rc != 0) {
    const int err = errno;
    Abort();
    return Status::IOError("fsync failed for " + kind_ + ": " + path_ +
                           ": " + ErrnoText(err));
  }
  if (::close(buf_->fd()) != 0 && errno != EINTR) {
    const int err = errno;
    buf_.reset();  // fd already gone; do not close it again in Abort
    stream_.reset();
    ::unlink(temp_path_.c_str());
    return Status::IOError("close failed for " + kind_ + ": " + path_ +
                           ": " + ErrnoText(err));
  }
  // The fd is closed; drop the buffer so Abort (if rename fails) only
  // unlinks.
  buf_.reset();
  stream_.reset();

  const FaultAction rename_fault = FaultInjector::Hit("store.rename");
  if (rename_fault.kind == FaultAction::kError) {
    errno = rename_fault.error_errno;
    rc = -1;
  } else {
    rc = ::rename(temp_path_.c_str(), path_.c_str());
  }
  if (rc != 0) {
    const int err = errno;
    ::unlink(temp_path_.c_str());
    return Status::IOError("rename failed for " + kind_ + ": " + path_ +
                           ": " + ErrnoText(err));
  }
  committed_ = true;

  // fsync the directory so the rename itself survives a crash. A failure
  // here is reported but the new file is already in place (rename done);
  // the caller may retry the save.
  const std::string dir = DirOf(path_);
  const FaultAction dir_fault = FaultInjector::Hit("store.dirsync");
  int dfd = -1;
  if (dir_fault.kind == FaultAction::kError) {
    errno = dir_fault.error_errno;
  } else {
    dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  }
  if (dfd < 0) {
    return Status::IOError("cannot fsync directory of " + kind_ + ": " +
                           path_ + ": " + ErrnoText(errno));
  }
  do {
    rc = ::fsync(dfd);
  } while (rc != 0 && errno == EINTR);
  const int err = errno;
  ::close(dfd);
  if (rc != 0) {
    return Status::IOError("cannot fsync directory of " + kind_ + ": " +
                           path_ + ": " + ErrnoText(err));
  }
  return Status::OK();
}

void AtomicFileWriter::Abort() {
  if (buf_ != nullptr) {
    ::close(buf_->fd());
    buf_.reset();
    stream_.reset();
  }
  if (!committed_) ::unlink(temp_path_.c_str());
}

size_t CleanupStaleTemps(const std::string& target) {
  namespace fs = std::filesystem;
  const std::string dir = DirOf(target);
  const std::string base =
      target.substr(target.find_last_of('/') + 1) + ".tmp.";
  size_t removed = 0;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.rfind(base, 0) != 0) continue;
    const std::string pid_text = name.substr(base.size());
    char* endp = nullptr;
    errno = 0;
    const long pid = std::strtol(pid_text.c_str(), &endp, 10);
    const bool parsable = !pid_text.empty() && *endp == '\0' &&
                          errno != ERANGE && pid > 0;
    if (parsable) {
      if (pid == static_cast<long>(::getpid())) continue;  // our own temp
      // A live pid may still be writing; leave its temp alone.
      if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM) {
        continue;
      }
    }
    if (::unlink(it->path().c_str()) == 0) ++removed;
  }
  return removed;
}

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size, const char* kind) {
  AtomicFileWriter writer(path, kind);
  RDFALIGN_RETURN_IF_ERROR(writer.Open());
  if (size > 0) {
    writer.stream().write(static_cast<const char*>(data),
                          static_cast<std::streamsize>(size));
  }
  RDFALIGN_RETURN_IF_ERROR(writer.status());
  return writer.Commit();
}

}  // namespace rdfalign::store
