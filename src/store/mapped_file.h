// Read-only memory-mapped files for the snapshot store's zero-copy path.

#ifndef RDFALIGN_STORE_MAPPED_FILE_H_
#define RDFALIGN_STORE_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "util/result.h"

namespace rdfalign::store {

/// A whole file mapped read-only. The mapping lives until the object is
/// destroyed; LoadSnapshot pins a shared_ptr<MappedFile> into the graph's
/// SharedArrays and the dictionary, so the mapping outlives the file handle
/// scope and is released when the last graph referencing it goes away.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with IOError when the file cannot be
  /// opened or mapped (empty files map successfully with size() == 0).
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  MappedFile(const unsigned char* data, size_t size)
      : data_(data), size_(size) {}

  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_MAPPED_FILE_H_
