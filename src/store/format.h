// On-disk layout of the rdfalign binary snapshot format (version 1).
//
// A snapshot serializes one TripleGraph — term dictionary, node labels,
// triple list, and both CSR indexes — so that it reloads with zero parsing:
// every array section is a verbatim little-endian memory image that the
// loader can reference in place (buffered read or mmap). See docs/store.md
// for the normative description.
//
// File layout:
//
//   [ SnapshotHeader            64 bytes                       ]
//   [ SectionEntry * kNumSections                              ]
//   [ section payloads, each 8-byte aligned, zero-padded gaps  ]
//
// All integers are little-endian. The format is only written/read on
// little-endian hosts (the loader rejects the file otherwise via the
// endian tag); the structs below are laid out so that their in-memory
// representation *is* the on-disk representation (static_asserts enforce
// size and triviality).

#ifndef RDFALIGN_STORE_FORMAT_H_
#define RDFALIGN_STORE_FORMAT_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "rdf/term.h"

namespace rdfalign::store {

/// "RDFSNAP1" — identifies an rdfalign snapshot file.
inline constexpr std::array<char, 8> kMagic = {'R', 'D', 'F', 'S',
                                               'N', 'A', 'P', '1'};

/// Version 1: raw dictionary (whole terms, ascending original-id order).
/// Still written by `--no-dict-compress` and read bit-identically.
inline constexpr uint32_t kFormatVersion = 1;

/// Version 2: front-coded dictionary (terms sorted lexicographically,
/// shared prefixes elided — see store/front_coding.h). The default for
/// new files; readers accept versions 1 and 2.
inline constexpr uint32_t kFormatVersionFrontCoded = 2;

/// Fixed byte-order tag. Written in native order; a reader on a host of
/// the other endianness sees the reversed pattern and rejects the file.
inline constexpr uint32_t kEndianTag = 0x0a0b0c0d;

/// The payload sections of a snapshot, in file order. Version 1 files
/// carry sections 1-9; version 2 appends kTermPrefixLens and reinterprets
/// kTermOffsets/kTermBlob as suffix offsets / suffix tails of the
/// front-coded dictionary (sorted lexicographically).
enum class SectionId : uint32_t {
  kTermOffsets = 1,  ///< (num_terms + 1) x u64: byte offsets into kTermBlob
                     ///< (v2: offsets of the suffix tails)
  kTermBlob = 2,     ///< concatenated UTF-8 lexical forms, unterminated
                     ///< (v2: concatenated suffix tails)
  kNodeKinds = 3,    ///< num_nodes x u8: TermKind of each node
  kNodeLex = 4,      ///< num_nodes x u32: term index of each node's label
  kTriples = 5,      ///< num_triples x {s,p,o u32}, sorted, deduplicated
  kOutOffsets = 6,   ///< (num_nodes + 1) x u64: CSR out-index offsets
  kOutPairs = 7,     ///< num_triples x {p,o u32}: CSR out-index payload
  kInOffsets = 8,    ///< (num_nodes + 1) x u64: reverse-CSR offsets
  kInSubjects = 9,   ///< in_offsets[num_nodes] x u32: reverse-CSR payload
  kTermPrefixLens = 10,  ///< v2 only: num_terms x u32 shared-prefix lengths
};

inline constexpr size_t kNumSections = 9;       ///< version 1
inline constexpr size_t kNumSectionsV2 = 10;    ///< version 2

/// Every section payload starts at a multiple of this (so u64 arrays can be
/// referenced in place from an mmap).
inline constexpr size_t kSectionAlignment = 8;

/// The fixed-size file header.
struct SnapshotHeader {
  std::array<char, 8> magic;  ///< kMagic
  uint32_t version;           ///< kFormatVersion
  uint32_t endian_tag;        ///< kEndianTag
  uint64_t num_nodes;         ///< |N_G|
  uint64_t num_triples;       ///< |E_G| (sorted, deduplicated)
  uint64_t num_terms;         ///< dictionary entries referenced by the graph
  uint64_t num_sections;      ///< kNumSections
  uint64_t file_size;         ///< total snapshot size in bytes
  uint64_t header_checksum;   ///< Checksum64 of header + section table,
                              ///< computed with this field set to zero
};
static_assert(sizeof(SnapshotHeader) == 64);
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);

/// One section-table entry.
struct SectionEntry {
  uint32_t id;        ///< SectionId
  uint32_t reserved;  ///< zero
  uint64_t offset;    ///< absolute byte offset of the payload
  uint64_t size;      ///< payload size in bytes (before padding)
  uint64_t checksum;  ///< Checksum64 of the payload bytes
};
static_assert(sizeof(SectionEntry) == 32);
static_assert(std::is_trivially_copyable_v<SectionEntry>);

/// Byte offset of the first section payload, per format version.
inline constexpr size_t kPayloadStart =
    sizeof(SnapshotHeader) + kNumSections * sizeof(SectionEntry);
inline constexpr size_t kPayloadStartV2 =
    sizeof(SnapshotHeader) + kNumSectionsV2 * sizeof(SectionEntry);

/// Options honored by every dictionary-bearing writer (snapshot, delta,
/// update fragment, archive — the archive inherits them into its embedded
/// images). `compress_dict` selects the front-coded version-2 dictionary
/// encoding; clearing it (`--no-dict-compress`) writes the version-1
/// layout byte-identically to pre-front-coding builds.
struct StoreWriteOptions {
  bool compress_dict = true;
};

// The array sections are memory images of these in-memory types; pin their
// layout so the zero-copy load path is sound.
static_assert(sizeof(Triple) == 12 && std::is_trivially_copyable_v<Triple>);
static_assert(sizeof(PredicateObject) == 8 &&
              std::is_trivially_copyable_v<PredicateObject>);
static_assert(sizeof(NodeId) == 4 && sizeof(LexId) == 4);

// ------------------------------------------------------------------------
// Delta files (version 1): the incremental change between two snapshots.
//
// A delta serializes everything needed to reconstruct the *next* version
// from a materialized *base* graph with no parsing and no sorting:
// dictionary additions, the next version's node columns, the
// alignment-derived node remap, and the triple change expressed as runs
// over the base triple list plus a sorted added-triple list. The file
// shares the snapshot conventions — fixed header, section table, 8-byte
// aligned checksummed payloads. See docs/store.md ("Delta format").

/// "RDFDELT1" — identifies an rdfalign delta file.
inline constexpr std::array<char, 8> kDeltaMagic = {'R', 'D', 'F', 'D',
                                                    'E', 'L', 'T', '1'};

/// Delta version 1: raw new-term blob. Still written by
/// `--no-dict-compress` and read bit-identically.
inline constexpr uint32_t kDeltaFormatVersion = 1;

/// Delta version 2: front-coded new-term blob (the new-term list is
/// already lexicographically sorted by construction). The default for
/// new files; readers accept versions 1 and 2.
inline constexpr uint32_t kDeltaFormatVersionFrontCoded = 2;

/// The payload sections of a delta, in file order. Version 1 files carry
/// sections 1-9; version 2 appends kNewTermPrefixLens and reinterprets
/// kNewTermOffsets/kNewTermBlob as suffix offsets / suffix tails.
enum class DeltaSectionId : uint32_t {
  kTermSources = 1,     ///< next_terms x u32: base term index, or
                        ///< kNewTermFlag | new-term index
  kNewTermOffsets = 2,  ///< (num_new_terms + 1) x u64 into kNewTermBlob
                        ///< (v2: offsets of the suffix tails)
  kNewTermBlob = 3,     ///< concatenated UTF-8 lexical forms of new terms
                        ///< (v2: concatenated suffix tails)
  kNodeKinds = 4,       ///< next_nodes x u8: TermKind per next node
  kNodeLex = 5,         ///< next_nodes x u32: next-dense term index
  kNodeRemap = 6,       ///< next_nodes x u32: aligned base node or
                        ///< kInvalidNode (injective on mapped entries)
  kRemovedRuns = 7,     ///< RunEntry[]: base triple indexes absent in next,
                        ///< ascending, non-overlapping
  kKeptRuns = 8,        ///< RunEntry[]: surviving base triple index runs,
                        ///< ordered by the mapped triples' next-space sort
                        ///< position
  kAddedTriples = 9,    ///< Triple[]: next-space triples new in next, sorted
  kNewTermPrefixLens = 10,  ///< v2 only: num_new_terms x u32 prefix lengths
};

inline constexpr size_t kNumDeltaSections = 9;       ///< version 1
inline constexpr size_t kNumDeltaSectionsV2 = 10;    ///< version 2

/// Marks a kTermSources entry as referencing the delta's new-term table
/// (low 31 bits index it) instead of the base term table.
inline constexpr uint32_t kNewTermFlag = 0x80000000u;

/// Term counts in delta files are bounded so kNewTermFlag can never collide
/// with a base term index.
inline constexpr uint64_t kMaxDeltaTerms = 0x7fffffffull;

/// A run of `count` consecutive base triple indexes starting at `start`.
struct RunEntry {
  uint64_t start;
  uint64_t count;
};
static_assert(sizeof(RunEntry) == 16);
static_assert(std::is_trivially_copyable_v<RunEntry>);

/// The fixed-size delta file header.
struct DeltaHeader {
  std::array<char, 8> magic;  ///< kDeltaMagic
  uint32_t version;           ///< kDeltaFormatVersion
  uint32_t endian_tag;        ///< kEndianTag
  uint64_t base_nodes;        ///< |N| of the base version
  uint64_t base_triples;      ///< |E| of the base version
  uint64_t base_terms;        ///< referenced dictionary terms of the base
  uint64_t base_fingerprint;  ///< GraphFingerprint(base) — binds the delta
                              ///< to exactly one base graph
  uint64_t next_nodes;        ///< |N| of the reconstructed version
  uint64_t next_triples;      ///< |E| of the reconstructed version
  uint64_t next_terms;        ///< referenced terms of the next version
  uint64_t num_new_terms;     ///< terms of next absent from the base
  uint64_t num_sections;      ///< kNumDeltaSections
  uint64_t file_size;         ///< total delta size in bytes
  uint64_t header_checksum;   ///< Checksum64 of header + section table,
                              ///< computed with this field set to zero
};
static_assert(sizeof(DeltaHeader) == 104);
static_assert(std::is_trivially_copyable_v<DeltaHeader>);

/// Byte offset of the first delta section payload, per format version.
inline constexpr size_t kDeltaPayloadStart =
    sizeof(DeltaHeader) + kNumDeltaSections * sizeof(SectionEntry);
inline constexpr size_t kDeltaPayloadStartV2 =
    sizeof(DeltaHeader) + kNumDeltaSectionsV2 * sizeof(SectionEntry);

// ------------------------------------------------------------------------
// Archive files (version 1): a base snapshot plus a delta chain plus the
// per-version entity-id columns of a VersionArchive (§6). Sections are a
// verbatim embedded snapshot image, one embedded delta image per later
// version, then one u64 entity array per version.

/// "RDFARCH1" — identifies an rdfalign version-archive file.
inline constexpr std::array<char, 8> kArchiveMagic = {'R', 'D', 'F', 'A',
                                                      'R', 'C', 'H', '1'};

inline constexpr uint32_t kArchiveFormatVersion = 1;

/// Archive section kinds (ids repeat; order is base, deltas, entities).
enum class ArchiveSectionId : uint32_t {
  kBaseSnapshot = 1,  ///< embedded snapshot image of version 0
  kDelta = 2,         ///< embedded delta image v-1 -> v, ascending v
  kEntities = 3,      ///< num_nodes(v) x u64 entity ids, ascending v
};

/// The fixed-size archive file header.
struct ArchiveHeader {
  std::array<char, 8> magic;  ///< kArchiveMagic
  uint32_t version;           ///< kArchiveFormatVersion
  uint32_t endian_tag;        ///< kEndianTag
  uint64_t num_versions;      ///< V; sections = 2V (V >= 1), 0 when V == 0
  uint64_t num_sections;
  uint64_t file_size;
  uint64_t header_checksum;  ///< Checksum64 of header + section table,
                             ///< computed with this field set to zero
};
static_assert(sizeof(ArchiveHeader) == 48);
static_assert(std::is_trivially_copyable_v<ArchiveHeader>);

/// Content checksum: multiply-xor mixing over 8-byte words, tail bytes
/// zero-padded into a final word, total length folded in at the end. Not
/// cryptographic — detects torn writes, truncation, and bit rot. Incremental
/// (the writer streams the term blob through it); word assembly is
/// little-endian by construction since only little-endian hosts read or
/// write snapshots.
class Checksummer {
 public:
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    total_ += n;
    if (carry_len_ > 0) {
      // Complete the pending partial word first.
      while (carry_len_ < 8 && n > 0) {
        carry_[carry_len_++] = *p++;
        --n;
      }
      if (carry_len_ < 8) return;
      MixWord(LoadWord(carry_, 8));
      carry_len_ = 0;
    }
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      MixWord(LoadWord(p + i, 8));
    }
    for (; i < n; ++i) {
      carry_[carry_len_++] = p[i];
    }
  }

  uint64_t Finish() const {
    uint64_t h = h_;
    if (carry_len_ > 0) {
      uint64_t w = LoadWord(carry_, carry_len_);
      h = (h ^ (w + 0x9e3779b97f4a7c15ULL)) * 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 29;
    }
    // Fold the length so trailing-zero payloads of different sizes differ,
    // then avalanche.
    h ^= total_ * 0xff51afd7ed558ccdULL;
    h ^= h >> 32;
    h *= 0x94d049bb133111ebULL;
    return h ^ (h >> 31);
  }

 private:
  static uint64_t LoadWord(const unsigned char* p, size_t n) {
    uint64_t w = 0;
    std::memcpy(&w, p, n);  // zero-padded partial word
    return w;
  }
  void MixWord(uint64_t w) {
    h_ = (h_ ^ (w + 0x9e3779b97f4a7c15ULL)) * 0xbf58476d1ce4e5b9ULL;
    h_ ^= h_ >> 29;
  }

  uint64_t h_ = 0x9e3779b97f4a7c15ULL;
  unsigned char carry_[8] = {};
  size_t carry_len_ = 0;
  uint64_t total_ = 0;
};

/// One-shot convenience over Checksummer.
inline uint64_t Checksum64(const void* data, size_t n) {
  Checksummer c;
  c.Update(data, n);
  return c.Finish();
}

/// Rounds `offset` up to the next section boundary.
inline uint64_t AlignUp(uint64_t offset) {
  return (offset + kSectionAlignment - 1) & ~uint64_t{kSectionAlignment - 1};
}

}  // namespace rdfalign::store

#endif  // RDFALIGN_STORE_FORMAT_H_
