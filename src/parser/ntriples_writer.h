// N-Triples serialization (canonical form, one triple per line, sorted).

#ifndef RDFALIGN_PARSER_NTRIPLES_WRITER_H_
#define RDFALIGN_PARSER_NTRIPLES_WRITER_H_

#include <ostream>
#include <string>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfalign {

/// Writes the graph as N-Triples. Blank nodes are emitted as `_:<local>`
/// using their per-graph local names; literals are escaped. Triples come
/// out in the graph's canonical (sorted, deduplicated) order.
Status WriteNTriples(const TripleGraph& g, std::ostream& out);

/// Serializes to a string (convenience for tests and small graphs).
std::string NTriplesToString(const TripleGraph& g);

/// Writes to a file.
Status WriteNTriplesFile(const TripleGraph& g, const std::string& path);

}  // namespace rdfalign

#endif  // RDFALIGN_PARSER_NTRIPLES_WRITER_H_
