#include "parser/turtle_writer.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "store/atomic_writer.h"
#include "util/string_util.h"

namespace rdfalign {

namespace {

/// A Turtle "PN_LOCAL"-safe local name (conservative: alphanumerics, '_',
/// '-', '.').
bool IsSafeLocalName(std::string_view s) {
  if (s.empty() || s.back() == '.') return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

/// The stem of an IRI: everything up to and including the last '/' or '#'.
std::string_view IriStem(std::string_view iri) {
  size_t pos = iri.find_last_of("/#");
  if (pos == std::string_view::npos || pos + 1 >= iri.size()) return {};
  return iri.substr(0, pos + 1);
}

class PrefixTable {
 public:
  PrefixTable(const TripleGraph& g, const TurtleWriteOptions& options) {
    if (!options.prefixes.empty()) {
      for (const auto& [name, iri] : options.prefixes) {
        by_stem_.emplace(iri, name);
      }
      return;
    }
    // Infer: count IRI stems; frequent ones get p0, p1, ... names.
    std::unordered_map<std::string, size_t> counts;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (!g.IsUri(n)) continue;
      std::string_view stem = IriStem(g.Lexical(n));
      if (stem.empty()) continue;
      if (!IsSafeLocalName(g.Lexical(n).substr(stem.size()))) continue;
      ++counts[std::string(stem)];
    }
    std::vector<std::pair<std::string, size_t>> frequent(counts.begin(),
                                                         counts.end());
    std::sort(frequent.begin(), frequent.end(), [](auto& a, auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    size_t index = 0;
    for (const auto& [stem, count] : frequent) {
      if (count < options.min_prefix_uses) break;
      by_stem_.emplace(stem, "p" + std::to_string(index++));
    }
  }

  /// Prefixed form of an IRI, or empty when no prefix applies.
  std::string Compress(std::string_view iri) const {
    std::string_view stem = IriStem(iri);
    if (stem.empty()) return {};
    auto it = by_stem_.find(std::string(stem));
    if (it == by_stem_.end()) return {};
    std::string_view local = iri.substr(stem.size());
    if (!IsSafeLocalName(local)) return {};
    return it->second + ":" + std::string(local);
  }

  /// name -> IRI pairs, sorted by name (deterministic header).
  std::vector<std::pair<std::string, std::string>> Entries() const {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& [stem, name] : by_stem_) {
      out.emplace_back(name, stem);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  std::unordered_map<std::string, std::string> by_stem_;
};

void WriteTerm(const TripleGraph& g, NodeId n, const PrefixTable& prefixes,
               std::ostream& out, bool as_predicate = false) {
  switch (g.KindOf(n)) {
    case TermKind::kUri: {
      // The 'a' abbreviation is only grammatical in predicate position; a
      // graph can also carry rdf:type as a subject or object (schema
      // introspection), which must stay a full IRI to round-trip.
      if (as_predicate &&
          g.Lexical(n) ==
              "http://www.w3.org/1999/02/22-rdf-syntax-ns#type") {
        out << "a";
        return;
      }
      std::string compressed = prefixes.Compress(g.Lexical(n));
      if (!compressed.empty()) {
        out << compressed;
      } else {
        out << '<' << EscapeNTriplesString(g.Lexical(n)) << '>';
      }
      break;
    }
    case TermKind::kLiteral:
      out << '"' << EscapeNTriplesString(g.Lexical(n)) << '"';
      break;
    case TermKind::kBlank:
      out << "_:" << g.Lexical(n);
      break;
  }
}

}  // namespace

Status WriteTurtle(const TripleGraph& g, std::ostream& out,
                   const TurtleWriteOptions& options) {
  PrefixTable prefixes(g, options);
  for (const auto& [name, iri] : prefixes.Entries()) {
    out << "@prefix " << name << ": <" << EscapeNTriplesString(iri)
        << "> .\n";
  }
  if (!prefixes.Entries().empty()) out << "\n";

  // triples() is sorted by (s, p, o): group by subject, then predicate.
  const auto& triples = g.triples();
  size_t i = 0;
  while (i < triples.size()) {
    const NodeId subject = triples[i].s;
    WriteTerm(g, subject, prefixes, out);
    out << " ";
    bool first_predicate = true;
    while (i < triples.size() && triples[i].s == subject) {
      const NodeId predicate = triples[i].p;
      if (!first_predicate) {
        out << " ;\n    ";
      }
      first_predicate = false;
      WriteTerm(g, predicate, prefixes, out, /*as_predicate=*/true);
      out << " ";
      bool first_object = true;
      while (i < triples.size() && triples[i].s == subject &&
             triples[i].p == predicate) {
        if (!first_object) out << ", ";
        first_object = false;
        WriteTerm(g, triples[i].o, prefixes, out);
        ++i;
      }
    }
    out << " .\n";
  }
  if (!out) {
    return Status::IOError("stream error while writing Turtle");
  }
  return Status::OK();
}

std::string TurtleToString(const TripleGraph& g,
                           const TurtleWriteOptions& options) {
  std::ostringstream out;
  WriteTurtle(g, out, options).ok();
  return out.str();
}

Status WriteTurtleFile(const TripleGraph& g, const std::string& path,
                       const TurtleWriteOptions& options) {
  store::AtomicFileWriter writer(path, "Turtle");
  RDFALIGN_RETURN_IF_ERROR(writer.Open());
  Status st = WriteTurtle(g, writer.stream(), options);
  if (!st.ok()) {
    Status io = writer.status();
    return io.ok() ? st : io;
  }
  return writer.Commit();
}

}  // namespace rdfalign
