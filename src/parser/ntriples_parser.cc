#include "parser/ntriples_parser.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace rdfalign {

namespace {

/// Cursor over one line of N-Triples input.
class LineCursor {
 public:
  LineCursor(std::string_view line, size_t line_no)
      : line_(line), line_no_(line_no) {}

  void SkipWs() {
    while (pos_ < line_.size() &&
           (line_[pos_] == ' ' || line_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool AtEnd() const { return pos_ >= line_.size(); }
  char Peek() const { return line_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(std::string msg) const {
    return Status::ParseError("line " + std::to_string(line_no_) + ", col " +
                              std::to_string(pos_ + 1) + ": " +
                              std::move(msg));
  }

  /// Parses `<...>`; returns the IRI body unescaped.
  Result<std::string> ParseIriRef() {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    Advance();
    std::string raw;
    while (!AtEnd() && Peek() != '>') {
      raw.push_back(Peek());
      Advance();
    }
    if (AtEnd()) return Error("unterminated IRI");
    Advance();  // consume '>'
    std::string out;
    if (!UnescapeNTriplesString(raw, &out)) {
      return Error("bad escape in IRI <" + raw + ">");
    }
    return out;
  }

  /// Parses `_:label`.
  Result<std::string> ParseBlankLabel() {
    if (AtEnd() || Peek() != '_') return Error("expected '_:'");
    Advance();
    if (AtEnd() || Peek() != ':') return Error("expected ':' after '_'");
    Advance();
    std::string label;
    while (!AtEnd() && !IsWs(Peek()) && Peek() != '.') {
      label.push_back(Peek());
      Advance();
    }
    if (label.empty()) return Error("empty blank node label");
    return label;
  }

  /// Parses `"..."` with optional `@lang` or `^^<datatype>`; folds the
  /// suffix into the returned label string.
  Result<std::string> ParseLiteral() {
    if (AtEnd() || Peek() != '"') return Error("expected '\"'");
    Advance();
    std::string raw;
    bool closed = false;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\') {
        raw.push_back(c);
        Advance();
        if (AtEnd()) return Error("dangling backslash in literal");
        raw.push_back(Peek());
        Advance();
        continue;
      }
      if (c == '"') {
        closed = true;
        Advance();
        break;
      }
      raw.push_back(c);
      Advance();
    }
    if (!closed) return Error("unterminated literal");
    std::string value;
    if (!UnescapeNTriplesString(raw, &value)) {
      return Error("bad escape in literal");
    }
    // Optional language tag or datatype; folded into the label (see header).
    if (!AtEnd() && Peek() == '@') {
      std::string tag;
      tag.push_back('@');
      Advance();
      while (!AtEnd() && !IsWs(Peek()) && Peek() != '.') {
        tag.push_back(Peek());
        Advance();
      }
      if (tag.size() == 1) return Error("empty language tag");
      value += tag;
    } else if (!AtEnd() && Peek() == '^') {
      Advance();
      if (AtEnd() || Peek() != '^') return Error("expected '^^'");
      Advance();
      RDFALIGN_ASSIGN_OR_RETURN(std::string dt, ParseIriRef());
      value += "^^<" + dt + ">";
    }
    return value;
  }

  static bool IsWs(char c) { return c == ' ' || c == '\t'; }

 private:
  std::string_view line_;
  size_t line_no_;
  size_t pos_ = 0;
};

/// Parses one line (already stripped of the trailing newline / CR) into the
/// builder. Shared by the string and streaming entry points.
Status ParseLine(std::string_view line, size_t line_no, GraphBuilder& builder,
                 NTriplesParseStats& stats) {
  ++stats.lines;

  LineCursor cur(line, line_no);
  cur.SkipWs();
  if (cur.AtEnd()) return Status::OK();
  if (cur.Peek() == '#') {
    ++stats.comments;
    return Status::OK();
  }

  // Subject: IRI or blank node.
  NodeId s;
  if (cur.Peek() == '<') {
    RDFALIGN_ASSIGN_OR_RETURN(std::string iri, cur.ParseIriRef());
    s = builder.AddUri(iri);
  } else if (cur.Peek() == '_') {
    RDFALIGN_ASSIGN_OR_RETURN(std::string label, cur.ParseBlankLabel());
    s = builder.AddBlank(label);
  } else {
    return cur.Error("subject must be an IRI or blank node");
  }

  cur.SkipWs();
  if (cur.AtEnd() || cur.Peek() != '<') {
    return cur.Error("predicate must be an IRI");
  }
  RDFALIGN_ASSIGN_OR_RETURN(std::string pred, cur.ParseIriRef());
  NodeId p = builder.AddUri(pred);

  cur.SkipWs();
  if (cur.AtEnd()) return cur.Error("missing object");
  NodeId o;
  if (cur.Peek() == '<') {
    RDFALIGN_ASSIGN_OR_RETURN(std::string iri, cur.ParseIriRef());
    o = builder.AddUri(iri);
  } else if (cur.Peek() == '_') {
    RDFALIGN_ASSIGN_OR_RETURN(std::string label, cur.ParseBlankLabel());
    o = builder.AddBlank(label);
  } else if (cur.Peek() == '"') {
    RDFALIGN_ASSIGN_OR_RETURN(std::string lit, cur.ParseLiteral());
    o = builder.AddLiteral(lit);
  } else {
    return cur.Error("object must be an IRI, blank node, or literal");
  }

  cur.SkipWs();
  if (cur.AtEnd() || cur.Peek() != '.') {
    return cur.Error("expected '.' terminating the triple");
  }
  cur.Advance();
  cur.SkipWs();
  if (!cur.AtEnd() && cur.Peek() == '#') {
    ++stats.comments;
  } else if (!cur.AtEnd()) {
    return cur.Error("trailing content after '.'");
  }

  builder.AddTriple(s, p, o);
  ++stats.triples;
  return Status::OK();
}

}  // namespace

Result<TripleGraph> ParseNTriplesString(std::string_view text,
                                        std::shared_ptr<Dictionary> dict,
                                        NTriplesParseStats* stats,
                                        size_t threads) {
  GraphBuilder builder(std::move(dict));
  NTriplesParseStats local;

  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    RDFALIGN_RETURN_IF_ERROR(ParseLine(line, line_no, builder, local));
  }

  if (stats != nullptr) *stats = local;
  return builder.Build(/*validate_rdf=*/true, threads);
}

Result<TripleGraph> ParseNTriplesStream(std::istream& in,
                                        std::shared_ptr<Dictionary> dict,
                                        NTriplesParseStats* stats,
                                        size_t threads) {
  GraphBuilder builder(std::move(dict));
  NTriplesParseStats local;

  std::string buffer;  // reused across lines — one allocation steady-state
  size_t line_no = 0;
  while (std::getline(in, buffer)) {
    ++line_no;
    std::string_view line = buffer;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    RDFALIGN_RETURN_IF_ERROR(ParseLine(line, line_no, builder, local));
  }
  if (in.bad()) {
    return Status::IOError("stream error while reading N-Triples at line " +
                           std::to_string(line_no + 1));
  }

  if (stats != nullptr) *stats = local;
  return builder.Build(/*validate_rdf=*/true, threads);
}

Result<TripleGraph> ParseNTriplesFile(const std::string& path,
                                      std::shared_ptr<Dictionary> dict,
                                      NTriplesParseStats* stats,
                                      size_t threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  return ParseNTriplesStream(in, std::move(dict), stats, threads);
}

}  // namespace rdfalign
