// Turtle parser (pragmatic subset).
//
// Supported: `@prefix` / `PREFIX`, `@base` / `BASE`, prefixed names,
// the `a` keyword, predicate-object lists (`;`), object lists (`,`),
// labeled blank nodes (`_:x`), anonymous blank nodes (`[ ... ]`), string
// literals with escapes / language tags / datatypes, and numeric & boolean
// abbreviations (kept as their lexical form in the literal label, datatype
// folded as in the N-Triples parser).
//
// Not supported (rejected with ParseError/NotSupported): collections
// `( ... )`, triple-quoted long strings, and relative IRI resolution beyond
// simple base concatenation.

#ifndef RDFALIGN_PARSER_TURTLE_PARSER_H_
#define RDFALIGN_PARSER_TURTLE_PARSER_H_

#include <memory>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/result.h"

namespace rdfalign {

/// Parses Turtle text into an RDF graph; see header comment for the
/// supported subset. Shares `dict` across versions like the N-Triples
/// parser. `threads` parallelizes the final edge sort and CSR index
/// build, bit-identical to the serial result.
Result<TripleGraph> ParseTurtleString(std::string_view text,
                                      std::shared_ptr<Dictionary> dict,
                                      size_t threads = 1);

/// Reads and parses a file.
Result<TripleGraph> ParseTurtleFile(const std::string& path,
                                    std::shared_ptr<Dictionary> dict,
                                    size_t threads = 1);

}  // namespace rdfalign

#endif  // RDFALIGN_PARSER_TURTLE_PARSER_H_
