// Turtle serialization with automatic prefix compression and
// subject/predicate grouping (`;` and `,` lists) — the compact form curated
// ontologies are usually published in.

#ifndef RDFALIGN_PARSER_TURTLE_WRITER_H_
#define RDFALIGN_PARSER_TURTLE_WRITER_H_

#include <map>
#include <ostream>
#include <string>

#include "rdf/graph.h"
#include "util/status.h"

namespace rdfalign {

/// Serialization options.
struct TurtleWriteOptions {
  /// Explicit prefix table (name -> IRI prefix). When empty, prefixes are
  /// inferred from common IRI stems (up to the last '/' or '#').
  std::map<std::string, std::string> prefixes;
  /// Minimum number of IRIs sharing a stem before a prefix is inferred.
  size_t min_prefix_uses = 3;
};

/// Writes the graph as Turtle: @prefix header, one subject block per
/// subject with `;`/`,` grouping, sorted deterministically.
Status WriteTurtle(const TripleGraph& g, std::ostream& out,
                   const TurtleWriteOptions& options = {});

/// Serializes to a string.
std::string TurtleToString(const TripleGraph& g,
                           const TurtleWriteOptions& options = {});

/// Writes to a file.
Status WriteTurtleFile(const TripleGraph& g, const std::string& path,
                       const TurtleWriteOptions& options = {});

}  // namespace rdfalign

#endif  // RDFALIGN_PARSER_TURTLE_WRITER_H_
