#include "parser/ntriples_writer.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace rdfalign {

namespace {

void WriteTerm(const TripleGraph& g, NodeId n, std::ostream& out) {
  switch (g.KindOf(n)) {
    case TermKind::kUri:
      out << '<' << EscapeNTriplesString(g.Lexical(n)) << '>';
      break;
    case TermKind::kLiteral:
      out << '"' << EscapeNTriplesString(g.Lexical(n)) << '"';
      break;
    case TermKind::kBlank:
      out << "_:" << g.Lexical(n);
      break;
  }
}

}  // namespace

Status WriteNTriples(const TripleGraph& g, std::ostream& out) {
  for (const Triple& t : g.triples()) {
    WriteTerm(g, t.s, out);
    out << ' ';
    WriteTerm(g, t.p, out);
    out << ' ';
    WriteTerm(g, t.o, out);
    out << " .\n";
  }
  if (!out) {
    return Status::IOError("stream error while writing N-Triples");
  }
  return Status::OK();
}

std::string NTriplesToString(const TripleGraph& g) {
  std::ostringstream out;
  WriteNTriples(g, out).ok();
  return out.str();
}

Status WriteNTriplesFile(const TripleGraph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  return WriteNTriples(g, out);
}

}  // namespace rdfalign
