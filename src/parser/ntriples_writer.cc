#include "parser/ntriples_writer.h"

#include <fstream>
#include <sstream>

#include "store/atomic_writer.h"
#include "util/string_util.h"

namespace rdfalign {

namespace {

void WriteTerm(const TripleGraph& g, NodeId n, std::ostream& out) {
  switch (g.KindOf(n)) {
    case TermKind::kUri:
      out << '<' << EscapeNTriplesString(g.Lexical(n)) << '>';
      break;
    case TermKind::kLiteral:
      out << '"' << EscapeNTriplesString(g.Lexical(n)) << '"';
      break;
    case TermKind::kBlank:
      out << "_:" << g.Lexical(n);
      break;
  }
}

}  // namespace

Status WriteNTriples(const TripleGraph& g, std::ostream& out) {
  for (const Triple& t : g.triples()) {
    WriteTerm(g, t.s, out);
    out << ' ';
    WriteTerm(g, t.p, out);
    out << ' ';
    WriteTerm(g, t.o, out);
    out << " .\n";
  }
  if (!out) {
    return Status::IOError("stream error while writing N-Triples");
  }
  return Status::OK();
}

std::string NTriplesToString(const TripleGraph& g) {
  std::ostringstream out;
  WriteNTriples(g, out).ok();
  return out.str();
}

Status WriteNTriplesFile(const TripleGraph& g, const std::string& path) {
  store::AtomicFileWriter writer(path, "N-Triples");
  RDFALIGN_RETURN_IF_ERROR(writer.Open());
  Status st = WriteNTriples(g, writer.stream());
  if (!st.ok()) {
    Status io = writer.status();
    return io.ok() ? st : io;
  }
  return writer.Commit();
}

}  // namespace rdfalign
