#include "parser/turtle_parser.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "util/string_util.h"

namespace rdfalign {

namespace {

/// Recursive-descent parser over the whole document (Turtle is not
/// line-oriented).
class TurtleParser {
 public:
  TurtleParser(std::string_view text, std::shared_ptr<Dictionary> dict,
               size_t threads)
      : text_(text), builder_(std::move(dict)), threads_(threads) {}

  Result<TripleGraph> Parse() {
    while (true) {
      SkipWsAndComments();
      if (AtEnd()) break;
      RDFALIGN_RETURN_IF_ERROR(ParseStatement());
    }
    return builder_.Build(/*validate_rdf=*/true, threads_);
  }

 private:
  // --- character-level helpers -------------------------------------------

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char PeekAt(size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void SkipWsAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else {
        break;
      }
    }
  }

  Status Error(std::string msg) const {
    return Status::ParseError("line " + std::to_string(line_) + ", col " +
                              std::to_string(col_) + ": " + std::move(msg));
  }

  bool ConsumeChar(char c) {
    if (!AtEnd() && Peek() == c) {
      Advance();
      return true;
    }
    return false;
  }

  /// Case-insensitive keyword match at the cursor, followed by a
  /// non-name character.
  bool ConsumeKeyword(std::string_view kw) {
    if (pos_ + kw.size() > text_.size()) return false;
    for (size_t i = 0; i < kw.size(); ++i) {
      if (std::tolower(static_cast<unsigned char>(text_[pos_ + i])) !=
          std::tolower(static_cast<unsigned char>(kw[i]))) {
        return false;
      }
    }
    char next = PeekAt(kw.size());
    if (std::isalnum(static_cast<unsigned char>(next)) || next == '_') {
      return false;
    }
    for (size_t i = 0; i < kw.size(); ++i) Advance();
    return true;
  }

  // --- grammar ------------------------------------------------------------

  Status ParseStatement() {
    if (Peek() == '@') {
      Advance();
      if (ConsumeKeyword("prefix")) {
        RDFALIGN_RETURN_IF_ERROR(ParsePrefixDecl());
        SkipWsAndComments();
        if (!ConsumeChar('.')) return Error("expected '.' after @prefix");
        return Status::OK();
      }
      if (ConsumeKeyword("base")) {
        RDFALIGN_RETURN_IF_ERROR(ParseBaseDecl());
        SkipWsAndComments();
        if (!ConsumeChar('.')) return Error("expected '.' after @base");
        return Status::OK();
      }
      return Error("unknown @-directive");
    }
    // SPARQL-style directives (no trailing dot).
    if ((Peek() == 'p' || Peek() == 'P') && ConsumeKeyword("prefix")) {
      return ParsePrefixDecl();
    }
    if ((Peek() == 'b' || Peek() == 'B') && ConsumeKeyword("base")) {
      return ParseBaseDecl();
    }
    return ParseTriples();
  }

  Status ParsePrefixDecl() {
    SkipWsAndComments();
    std::string prefix;
    while (!AtEnd() && Peek() != ':') {
      if (std::isspace(static_cast<unsigned char>(Peek()))) {
        return Error("whitespace in prefix name");
      }
      prefix.push_back(Peek());
      Advance();
    }
    if (!ConsumeChar(':')) return Error("expected ':' in prefix declaration");
    SkipWsAndComments();
    RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
    prefixes_[prefix] = iri;
    return Status::OK();
  }

  Status ParseBaseDecl() {
    SkipWsAndComments();
    RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
    base_ = iri;
    return Status::OK();
  }

  Status ParseTriples() {
    RDFALIGN_ASSIGN_OR_RETURN(NodeId subject, ParseSubject());
    RDFALIGN_RETURN_IF_ERROR(ParsePredicateObjectList(subject));
    SkipWsAndComments();
    if (!ConsumeChar('.')) return Error("expected '.' terminating triples");
    return Status::OK();
  }

  Result<NodeId> ParseSubject() {
    SkipWsAndComments();
    if (AtEnd()) return Error("expected subject");
    char c = Peek();
    if (c == '<') {
      RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return builder_.AddUri(iri);
    }
    if (c == '_') {
      RDFALIGN_ASSIGN_OR_RETURN(std::string label, ParseBlankLabel());
      return builder_.AddBlank(label);
    }
    if (c == '[') {
      return ParseAnonBlank();
    }
    if (c == '(') {
      return Status::NotSupported("Turtle collections '(...)' not supported");
    }
    RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParsePrefixedName());
    return builder_.AddUri(iri);
  }

  Status ParsePredicateObjectList(NodeId subject) {
    while (true) {
      SkipWsAndComments();
      RDFALIGN_ASSIGN_OR_RETURN(NodeId predicate, ParsePredicate());
      RDFALIGN_RETURN_IF_ERROR(ParseObjectList(subject, predicate));
      SkipWsAndComments();
      if (ConsumeChar(';')) {
        SkipWsAndComments();
        // A dangling ';' before '.' or ']' is permitted.
        if (AtEnd() || Peek() == '.' || Peek() == ']') return Status::OK();
        continue;
      }
      return Status::OK();
    }
  }

  Result<NodeId> ParsePredicate() {
    SkipWsAndComments();
    if (AtEnd()) return Error("expected predicate");
    if (Peek() == 'a') {
      char next = PeekAt(1);
      if (std::isspace(static_cast<unsigned char>(next))) {
        Advance();
        return builder_.AddUri(
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
      }
    }
    if (Peek() == '<') {
      RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return builder_.AddUri(iri);
    }
    RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParsePrefixedName());
    return builder_.AddUri(iri);
  }

  Status ParseObjectList(NodeId subject, NodeId predicate) {
    while (true) {
      RDFALIGN_ASSIGN_OR_RETURN(NodeId object, ParseObject());
      builder_.AddTriple(subject, predicate, object);
      SkipWsAndComments();
      if (!ConsumeChar(',')) return Status::OK();
    }
  }

  Result<NodeId> ParseObject() {
    SkipWsAndComments();
    if (AtEnd()) return Error("expected object");
    char c = Peek();
    if (c == '<') {
      RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
      return builder_.AddUri(iri);
    }
    if (c == '_') {
      RDFALIGN_ASSIGN_OR_RETURN(std::string label, ParseBlankLabel());
      return builder_.AddBlank(label);
    }
    if (c == '[') {
      return ParseAnonBlank();
    }
    if (c == '(') {
      return Status::NotSupported("Turtle collections '(...)' not supported");
    }
    if (c == '"' || c == '\'') {
      return ParseLiteralNode();
    }
    if (c == '+' || c == '-' || c == '.' ||
        std::isdigit(static_cast<unsigned char>(c))) {
      return ParseNumericLiteral();
    }
    if (ConsumeKeyword("true")) return builder_.AddLiteral("true");
    if (ConsumeKeyword("false")) return builder_.AddLiteral("false");
    RDFALIGN_ASSIGN_OR_RETURN(std::string iri, ParsePrefixedName());
    return builder_.AddUri(iri);
  }

  Result<NodeId> ParseAnonBlank() {
    // '[' predicateObjectList? ']'
    if (!ConsumeChar('[')) return Error("expected '['");
    NodeId blank = builder_.AddBlank();
    SkipWsAndComments();
    if (ConsumeChar(']')) return blank;
    RDFALIGN_RETURN_IF_ERROR(ParsePredicateObjectList(blank));
    SkipWsAndComments();
    if (!ConsumeChar(']')) return Error("expected ']'");
    return blank;
  }

  Result<std::string> ParseIriRef() {
    if (AtEnd() || Peek() != '<') return Error("expected '<'");
    Advance();
    std::string raw;
    while (!AtEnd() && Peek() != '>') {
      if (Peek() == '\n') return Error("newline inside IRI");
      raw.push_back(Peek());
      Advance();
    }
    if (!ConsumeChar('>')) return Error("unterminated IRI");
    std::string out;
    if (!UnescapeNTriplesString(raw, &out)) {
      return Error("bad escape in IRI");
    }
    // Rudimentary base resolution: prepend the base to relative IRIs.
    if (!base_.empty() && out.find("://") == std::string::npos &&
        !StartsWith(out, "urn:") && !StartsWith(out, "mailto:")) {
      return base_ + out;
    }
    return out;
  }

  Result<std::string> ParseBlankLabel() {
    if (!ConsumeChar('_')) return Error("expected '_:'");
    if (!ConsumeChar(':')) return Error("expected ':' after '_'");
    std::string label;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-')) {
      label.push_back(Peek());
      Advance();
    }
    if (label.empty()) return Error("empty blank node label");
    return label;
  }

  Result<std::string> ParsePrefixedName() {
    std::string prefix;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.')) {
      prefix.push_back(Peek());
      Advance();
    }
    if (!ConsumeChar(':')) {
      return Error("expected prefixed name (missing ':' after '" + prefix +
                   "')");
    }
    std::string local;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_' || Peek() == '-' || Peek() == '.' ||
                        Peek() == '%')) {
      local.push_back(Peek());
      Advance();
    }
    // A trailing '.' terminates the statement, not the name.
    while (!local.empty() && local.back() == '.') {
      local.pop_back();
      --pos_;  // un-consume; safe because '.' is single-byte, not '\n'
      --col_;
    }
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Error("undeclared prefix '" + prefix + ":'");
    }
    return it->second + local;
  }

  Result<NodeId> ParseLiteralNode() {
    char quote = Peek();
    if (quote == '\'' && PeekAt(1) == '\'' && PeekAt(2) == '\'') {
      return Status::NotSupported("triple-quoted long strings not supported");
    }
    if (quote == '"' && PeekAt(1) == '"' && PeekAt(2) == '"') {
      return Status::NotSupported("triple-quoted long strings not supported");
    }
    Advance();
    std::string raw;
    bool closed = false;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '\\') {
        raw.push_back(c);
        Advance();
        if (AtEnd()) return Error("dangling backslash in literal");
        raw.push_back(Peek());
        Advance();
        continue;
      }
      if (c == quote) {
        closed = true;
        Advance();
        break;
      }
      if (c == '\n') return Error("newline in single-quoted literal");
      raw.push_back(c);
      Advance();
    }
    if (!closed) return Error("unterminated literal");
    std::string value;
    if (!UnescapeNTriplesString(raw, &value)) {
      return Error("bad escape in literal");
    }
    if (!AtEnd() && Peek() == '@') {
      std::string tag = "@";
      Advance();
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '-')) {
        tag.push_back(Peek());
        Advance();
      }
      if (tag.size() == 1) return Error("empty language tag");
      value += tag;
    } else if (!AtEnd() && Peek() == '^') {
      Advance();
      if (!ConsumeChar('^')) return Error("expected '^^'");
      SkipWsAndComments();
      std::string dt;
      if (Peek() == '<') {
        RDFALIGN_ASSIGN_OR_RETURN(dt, ParseIriRef());
      } else {
        RDFALIGN_ASSIGN_OR_RETURN(dt, ParsePrefixedName());
      }
      value += "^^<" + dt + ">";
    }
    return builder_.AddLiteral(value);
  }

  Result<NodeId> ParseNumericLiteral() {
    std::string lex;
    if (Peek() == '+' || Peek() == '-') {
      lex.push_back(Peek());
      Advance();
    }
    bool saw_digit = false;
    bool saw_dot = false;
    bool saw_exp = false;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        saw_digit = true;
        lex.push_back(c);
        Advance();
      } else if (c == '.' && !saw_dot && !saw_exp &&
                 std::isdigit(static_cast<unsigned char>(PeekAt(1)))) {
        saw_dot = true;
        lex.push_back(c);
        Advance();
      } else if ((c == 'e' || c == 'E') && saw_digit && !saw_exp) {
        saw_exp = true;
        lex.push_back(c);
        Advance();
        if (!AtEnd() && (Peek() == '+' || Peek() == '-')) {
          lex.push_back(Peek());
          Advance();
        }
      } else {
        break;
      }
    }
    if (!saw_digit) return Error("malformed numeric literal");
    return builder_.AddLiteral(lex);
  }

  std::string_view text_;
  GraphBuilder builder_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t col_ = 1;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
  size_t threads_ = 1;
};

}  // namespace

Result<TripleGraph> ParseTurtleString(std::string_view text,
                                      std::shared_ptr<Dictionary> dict,
                                      size_t threads) {
  TurtleParser parser(text, std::move(dict), threads);
  return parser.Parse();
}

Result<TripleGraph> ParseTurtleFile(const std::string& path,
                                    std::shared_ptr<Dictionary> dict,
                                    size_t threads) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("error reading file: " + path);
  }
  return ParseTurtleString(buf.str(), std::move(dict), threads);
}

}  // namespace rdfalign
