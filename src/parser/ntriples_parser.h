// N-Triples parser (W3C N-Triples, one triple per line).
//
// This replaces the external RDF parsing library the paper's pipeline relied
// on (Serd); see DESIGN.md S3. Supported: IRIREF, blank node labels,
// literals with language tags and datatypes, \-escapes (including \uXXXX /
// \UXXXXXXXX), comments, blank lines.
//
// Datatype/language information is folded into the literal label string
// (e.g. `"5"^^<.../integer>` becomes the label `5^^<.../integer>`), because
// the paper's data model (§2.1) has plain string literal labels. Folding
// keeps distinct typed literals distinct under label equality, which is all
// the alignment algorithms require.

#ifndef RDFALIGN_PARSER_NTRIPLES_PARSER_H_
#define RDFALIGN_PARSER_NTRIPLES_PARSER_H_

#include <istream>
#include <memory>
#include <string>
#include <string_view>

#include "rdf/graph.h"
#include "util/result.h"

namespace rdfalign {

/// Counters filled during parsing (for diagnostics and tests).
struct NTriplesParseStats {
  size_t lines = 0;
  size_t triples = 0;
  size_t comments = 0;
};

/// Parses N-Triples text into an RDF graph. A shared `dict` lets two files
/// destined for alignment live in one label space; pass nullptr for a fresh
/// dictionary. On error, the Status message includes the 1-based line.
/// `threads` > 1 parallelizes the final edge sort and CSR index build
/// (bit-identical to the serial result); parsing itself stays serial.
Result<TripleGraph> ParseNTriplesString(std::string_view text,
                                        std::shared_ptr<Dictionary> dict,
                                        NTriplesParseStats* stats = nullptr,
                                        size_t threads = 1);

/// Streaming entry point: parses N-Triples line by line from `in` without
/// materializing the document — `rdfalign build` ingests multi-million-
/// triple files through this with memory proportional to the graph, not to
/// the text. Reads until EOF; a stream error mid-file is an IOError.
Result<TripleGraph> ParseNTriplesStream(std::istream& in,
                                        std::shared_ptr<Dictionary> dict,
                                        NTriplesParseStats* stats = nullptr,
                                        size_t threads = 1);

/// Reads and parses a file (streaming; the text is never fully resident).
Result<TripleGraph> ParseNTriplesFile(const std::string& path,
                                      std::shared_ptr<Dictionary> dict,
                                      NTriplesParseStats* stats = nullptr,
                                      size_t threads = 1);

}  // namespace rdfalign

#endif  // RDFALIGN_PARSER_NTRIPLES_PARSER_H_
