// Core identifiers and label types of the data model (§2.1 of the paper).
//
// Nodes are dense integer identifiers, independent of their labels, so two
// versions of a graph can carry the same URI on different nodes. Labels are
// drawn from I = U ∪ L ∪ {⊥b}: URI labels, literal values, and the single
// blank label.

#ifndef RDFALIGN_RDF_TERM_H_
#define RDFALIGN_RDF_TERM_H_

#include <cstdint>
#include <string_view>

namespace rdfalign {

/// Dense node identifier within one TripleGraph (or a combined graph).
using NodeId = uint32_t;

/// Dictionary identifier of an interned lexical form.
using LexId = uint32_t;

inline constexpr NodeId kInvalidNode = 0xffffffffu;
inline constexpr LexId kInvalidLex = 0xffffffffu;

/// The three kinds of RDF node labels.
enum class TermKind : uint8_t {
  kUri = 0,
  kLiteral = 1,
  kBlank = 2,
};

std::string_view TermKindToString(TermKind kind);

/// A node label: the kind plus the interned lexical form.
///
/// For blank nodes `lex` stores the *local* blank identifier (e.g. "b1"),
/// which is not part of the label semantically — all blank nodes share the
/// single blank label ⊥b and alignment code must never distinguish blanks by
/// `lex`. It is kept for parsing round-trips and diagnostics only.
struct NodeLabel {
  TermKind kind;
  LexId lex;

  bool operator==(const NodeLabel& other) const = default;
};

/// A triple (s, p, o) of node identifiers. The predicate is itself a node
/// and participates in bisimulation (§2.3).
struct Triple {
  NodeId s;
  NodeId p;
  NodeId o;

  bool operator==(const Triple& other) const = default;
  auto operator<=>(const Triple& other) const = default;
};

/// An element of a node's outbound neighborhood: out(n) = {(p,o) | (n,p,o)}.
struct PredicateObject {
  NodeId p;
  NodeId o;

  bool operator==(const PredicateObject& other) const = default;
  auto operator<=>(const PredicateObject& other) const = default;
};

}  // namespace rdfalign

#endif  // RDFALIGN_RDF_TERM_H_
