// TripleGraph: the node-identifier graph model of §2.1, plus GraphBuilder.
//
// A triple graph G = (N_G, E_G, ℓ_G) has a finite node set (dense ids),
// edges that are node triples, and a labeling function into
// I = URIs ∪ Literals ∪ {⊥b}. An *RDF graph* is a triple graph where no two
// nodes share a URI or literal label, literals occur only in object
// position, and predicates are never blank; GraphBuilder enforces the
// uniqueness by construction and Build() validates the positional rules.
//
// Storage: the triple list and the CSR indexes are SharedArrays — normally
// owned vectors, but the snapshot store (src/store) can hand them in as
// zero-copy views into a pinned load buffer or file mapping.

#ifndef RDFALIGN_RDF_GRAPH_H_
#define RDFALIGN_RDF_GRAPH_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "util/result.h"
#include "util/shared_array.h"
#include "util/status.h"

namespace rdfalign {

/// An immutable triple graph with a CSR index of outbound neighborhoods.
class TripleGraph {
 public:
  TripleGraph() : dict_(std::make_shared<Dictionary>()) {}

  /// Builds a graph from parts. Does NOT deduplicate nodes (callers such as
  /// the disjoint-union constructor rely on that). Sorts and deduplicates
  /// edges and builds the out-index. When `validate_rdf` is set, checks the
  /// RDF positional constraints (literals only as objects, predicates never
  /// blank or literal). `threads` > 1 sorts the edges and builds the CSR
  /// indexes on the shared pool; the result is bit-identical to threads=1
  /// (see docs/parallelism.md).
  static Result<TripleGraph> FromParts(std::shared_ptr<Dictionary> dict,
                                       std::vector<NodeLabel> labels,
                                       std::vector<Triple> triples,
                                       bool validate_rdf, size_t threads = 1);

  /// Assembles a graph from *pre-indexed* parts: the triple list must be
  /// sorted and deduplicated and the two CSR indexes must be exactly what
  /// BuildIndexes() would produce for it. No sorting, index construction,
  /// or validation happens — only the label lookup map is rebuilt. This is
  /// the snapshot store's zero-parse load path; the loader is responsible
  /// for having validated the arrays (see store/snapshot.cc). Passing
  /// inconsistent arrays is undefined behavior.
  static TripleGraph FromIndexedParts(std::shared_ptr<Dictionary> dict,
                                      std::vector<NodeLabel> labels,
                                      SharedArray<Triple> triples,
                                      SharedArray<uint64_t> out_offsets,
                                      SharedArray<PredicateObject> out_pairs,
                                      SharedArray<uint64_t> in_offsets,
                                      SharedArray<NodeId> in_subjects);

  /// Builds both CSR indexes for an already sorted and deduplicated triple
  /// list over `num_nodes` nodes, into the output vectors — exactly the
  /// arrays BuildIndexes() would produce, without sorting the triples.
  /// This is the single CSR constructor shared by graph building and the
  /// delta store's patch replay (src/store/delta.cc), so a graph spliced
  /// from pre-sorted runs is bit-identical to one built from scratch.
  /// Triple node ids must be < num_nodes. `threads` > 1 runs the counting,
  /// scatter, and per-slice dedup passes as chunked kernels on the shared
  /// pool; every array comes out bit-identical to the threads=1 (legacy
  /// serial) path for any thread count.
  static void BuildCsrArrays(std::span<const Triple> sorted_triples,
                             size_t num_nodes,
                             std::vector<uint64_t>* out_offsets,
                             std::vector<PredicateObject>* out_pairs,
                             std::vector<uint64_t>* in_offsets,
                             std::vector<NodeId>* in_subjects,
                             size_t threads = 1);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumEdges() const { return triples_.size(); }

  TermKind KindOf(NodeId n) const { return labels_[n].kind; }
  bool IsUri(NodeId n) const { return KindOf(n) == TermKind::kUri; }
  bool IsLiteral(NodeId n) const { return KindOf(n) == TermKind::kLiteral; }
  bool IsBlank(NodeId n) const { return KindOf(n) == TermKind::kBlank; }

  const NodeLabel& LabelOf(NodeId n) const { return labels_[n]; }

  /// Lexical form: the URI, the literal value, or the blank's local name.
  std::string_view Lexical(NodeId n) const {
    return dict_->Get(labels_[n].lex);
  }
  LexId LexicalId(NodeId n) const { return labels_[n].lex; }

  /// Outbound neighborhood out(n), sorted by (p, o).
  std::span<const PredicateObject> Out(NodeId n) const {
    return {out_pairs_.data() + out_offsets_[n],
            out_offsets_[n + 1] - out_offsets_[n]};
  }
  size_t OutDegree(NodeId n) const {
    return out_offsets_[n + 1] - out_offsets_[n];
  }

  /// Inbound neighborhood in(n): the distinct subjects s having a triple
  /// (s, p, o) in which n occurs as the predicate or as the object,
  /// ascending. This is the split-propagation index of the incremental
  /// refinement engine: when n's color changes, exactly the nodes in In(n)
  /// can observe the change through their signatures.
  std::span<const NodeId> In(NodeId n) const {
    return {in_subjects_.data() + in_offsets_[n],
            in_offsets_[n + 1] - in_offsets_[n]};
  }
  size_t InDegree(NodeId n) const {
    return in_offsets_[n + 1] - in_offsets_[n];
  }

  std::span<const Triple> triples() const { return triples_.span(); }
  const std::vector<NodeLabel>& labels() const { return labels_; }

  // Bulk access to the raw CSR arrays (the snapshot writer serializes these
  // verbatim; see docs/store.md for their on-disk layout).
  std::span<const uint64_t> OutOffsets() const { return out_offsets_.span(); }
  std::span<const PredicateObject> OutPairs() const {
    return out_pairs_.span();
  }
  std::span<const uint64_t> InOffsets() const { return in_offsets_.span(); }
  std::span<const NodeId> InSubjects() const { return in_subjects_.span(); }

  const Dictionary& dict() const { return *dict_; }
  const std::shared_ptr<Dictionary>& dict_ptr() const { return dict_; }

  /// Node lookup by label; kInvalidNode when absent. Unique-label graphs
  /// (built via GraphBuilder) have at most one match.
  NodeId FindUri(std::string_view uri) const;
  NodeId FindLiteral(std::string_view value) const;
  /// Blank lookup is by *local* name, a per-graph convenience.
  NodeId FindBlank(std::string_view local_name) const;

  /// Counts nodes of each kind.
  size_t CountOfKind(TermKind kind) const;

  /// All node ids of a kind, ascending.
  std::vector<NodeId> NodesOfKind(TermKind kind) const;

 private:
  friend class GraphBuilder;

  std::shared_ptr<Dictionary> dict_;
  std::vector<NodeLabel> labels_;
  SharedArray<Triple> triples_;  // sorted, deduplicated
  // CSR out-neighborhood index.
  SharedArray<uint64_t> out_offsets_;       // size NumNodes()+1
  SharedArray<PredicateObject> out_pairs_;  // size NumEdges()
  // Reverse CSR in-neighborhood index (subjects per predicate/object node,
  // deduplicated).
  SharedArray<uint64_t> in_offsets_;  // size NumNodes()+1
  SharedArray<NodeId> in_subjects_;   // size <= 2 * NumEdges()
  // Label -> node maps for lookup (kind-tagged).
  std::unordered_map<uint64_t, NodeId> node_by_label_;

  void BuildIndexes(std::vector<Triple> triples, size_t threads = 1);
  void BuildLabelMap();
  Status ValidateRdf() const;
  static uint64_t LabelKey(TermKind kind, LexId lex);
};

/// Structural equality of two graphs by *lexical* labels: same node count,
/// node i of `a` and node i of `b` carry the same kind and lexical form
/// (for blanks, the same local name), and the same triple list. Works
/// across distinct dictionaries — the snapshot round-trip tests and the
/// CLI use it to compare a reloaded graph against the original.
bool LabeledGraphsEqual(const TripleGraph& a, const TripleGraph& b);

/// Bit-level storage equality: labels as in LabeledGraphsEqual, plus the
/// triple list and all four CSR index arrays compared byte for byte — the
/// delta store's patch-replay acceptance invariant, shared by the tests
/// and the delta_bench gate so it cannot drift. Returns nullptr when
/// identical, else the name of the first differing component ("labels",
/// "triples", "out_offsets", ...).
const char* GraphsBitDiffer(const TripleGraph& a, const TripleGraph& b);

/// Incremental construction of an RDF graph with label deduplication:
/// adding the same URI or literal twice returns the same node.
class GraphBuilder {
 public:
  /// Starts a builder; when `dict` is null a fresh dictionary is created.
  /// Two versions that will be aligned should share one dictionary.
  explicit GraphBuilder(std::shared_ptr<Dictionary> dict = nullptr);

  /// Returns the node labeled with this URI, creating it on first use.
  NodeId AddUri(std::string_view uri);

  /// Returns the node holding this literal value, creating it on first use.
  NodeId AddLiteral(std::string_view value);

  /// Returns the blank node with this local name, creating it on first use.
  /// An empty name always creates a fresh anonymous blank node.
  NodeId AddBlank(std::string_view local_name = "");

  /// Adds the triple (s, p, o); ids must have been returned by this builder.
  void AddTriple(NodeId s, NodeId p, NodeId o);

  /// Convenience: interns all three terms as URIs and adds the triple.
  void AddUriTriple(std::string_view s, std::string_view p,
                    std::string_view o);

  /// Convenience: subject/predicate URIs with a literal object.
  void AddLiteralTriple(std::string_view s, std::string_view p,
                        std::string_view literal);

  size_t NumNodes() const { return labels_.size(); }
  size_t NumTriples() const { return triples_.size(); }

  /// Finalizes into an immutable TripleGraph. `validate_rdf` rejects graphs
  /// violating RDF positional constraints. The builder is consumed.
  /// `threads` parallelizes the edge sort and index build (bit-identical
  /// to the serial result).
  Result<TripleGraph> Build(bool validate_rdf = true, size_t threads = 1);

 private:
  std::shared_ptr<Dictionary> dict_;
  std::vector<NodeLabel> labels_;
  std::vector<Triple> triples_;
  std::unordered_map<uint64_t, NodeId> node_by_label_;
  uint64_t anon_counter_ = 0;
};

}  // namespace rdfalign

#endif  // RDFALIGN_RDF_GRAPH_H_
