#include "rdf/term.h"

namespace rdfalign {

std::string_view TermKindToString(TermKind kind) {
  switch (kind) {
    case TermKind::kUri:
      return "uri";
    case TermKind::kLiteral:
      return "literal";
    case TermKind::kBlank:
      return "blank";
  }
  return "unknown";
}

}  // namespace rdfalign
