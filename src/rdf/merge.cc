#include "rdf/merge.h"

#include "util/thread_pool.h"

namespace rdfalign {

namespace {

constexpr size_t kMergeParallelMin = 1 << 15;
constexpr size_t kMergeGrain = 1 << 15;

// Writes `a` followed by `b` shifted into out (already sized): each chunk
// is a positionwise transform of disjoint output ranges, so the bytes are
// identical for any thread count.
template <typename T, typename ShiftFn>
void ParallelConcatShift(std::span<const T> a, std::span<const T> b,
                         const ShiftFn& shift, size_t threads,
                         std::vector<T>& out) {
  out.resize(a.size() + b.size());
  ParallelChunks(a.size(), threads, kMergeGrain,
                 [&](size_t, size_t begin, size_t end) {
                   std::copy(a.begin() + begin, a.begin() + end,
                             out.begin() + begin);
                 });
  ParallelChunks(b.size(), threads, kMergeGrain,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     out[a.size() + i] = shift(b[i]);
                   }
                 });
}

/// Concatenates two CSR offset arrays: g2's offsets continue after g1's
/// last entry. Both inputs end/begin with the shared boundary value.
std::vector<uint64_t> ConcatOffsets(std::span<const uint64_t> a,
                                    std::span<const uint64_t> b) {
  std::vector<uint64_t> out;
  out.reserve(a.size() + b.size() - 1);
  out.insert(out.end(), a.begin(), a.end());
  const uint64_t base = a.empty() ? 0 : a.back();
  for (size_t i = 1; i < b.size(); ++i) {
    out.push_back(base + b[i]);
  }
  return out;
}

}  // namespace

Result<CombinedGraph> CombinedGraph::Build(const TripleGraph& g1,
                                           const TripleGraph& g2,
                                           size_t threads) {
  if (g1.dict_ptr().get() != g2.dict_ptr().get()) {
    return Status::InvalidArgument(
        "CombinedGraph::Build requires both graphs to share one Dictionary");
  }
  const NodeId n1 = static_cast<NodeId>(g1.NumNodes());
  const NodeId n2 = static_cast<NodeId>(g2.NumNodes());
  threads = EffectiveLanes(threads);
  if (g1.NumEdges() + g2.NumEdges() < kMergeParallelMin) threads = 1;

  std::vector<NodeLabel> labels;
  labels.reserve(n1 + n2);
  labels.insert(labels.end(), g1.labels().begin(), g1.labels().end());
  labels.insert(labels.end(), g2.labels().begin(), g2.labels().end());

  // Both triple lists are sorted by (s, p, o) and deduplicated, and every
  // shifted target subject (>= n1) sorts after every source subject (< n1),
  // so the union's sorted triple list is the concatenation. The same holds
  // per node for both CSR indexes: source slices reference only source
  // nodes, shifted target slices only target nodes, and in-slice order is
  // preserved by adding the constant offset.
  std::vector<Triple> triples;
  if (threads > 1) {
    ParallelConcatShift<Triple>(
        g1.triples(), g2.triples(),
        [n1](const Triple& t) {
          return Triple{t.s + n1, t.p + n1, t.o + n1};
        },
        threads, triples);
  } else {
    triples.reserve(g1.NumEdges() + g2.NumEdges());
    triples.insert(triples.end(), g1.triples().begin(), g1.triples().end());
    for (const Triple& t : g2.triples()) {
      triples.push_back(Triple{t.s + n1, t.p + n1, t.o + n1});
    }
  }

  std::vector<PredicateObject> out_pairs;
  if (threads > 1) {
    ParallelConcatShift<PredicateObject>(
        g1.OutPairs(), g2.OutPairs(),
        [n1](const PredicateObject& po) {
          return PredicateObject{po.p + n1, po.o + n1};
        },
        threads, out_pairs);
  } else {
    out_pairs.reserve(g1.OutPairs().size() + g2.OutPairs().size());
    out_pairs.insert(out_pairs.end(), g1.OutPairs().begin(),
                     g1.OutPairs().end());
    for (const PredicateObject& po : g2.OutPairs()) {
      out_pairs.push_back(PredicateObject{po.p + n1, po.o + n1});
    }
  }

  std::vector<NodeId> in_subjects;
  if (threads > 1) {
    ParallelConcatShift<NodeId>(
        g1.InSubjects(), g2.InSubjects(),
        [n1](NodeId s) { return static_cast<NodeId>(s + n1); }, threads,
        in_subjects);
  } else {
    in_subjects.reserve(g1.InSubjects().size() + g2.InSubjects().size());
    in_subjects.insert(in_subjects.end(), g1.InSubjects().begin(),
                       g1.InSubjects().end());
    for (const NodeId s : g2.InSubjects()) {
      in_subjects.push_back(s + n1);
    }
  }

  CombinedGraph out;
  out.graph_ = TripleGraph::FromIndexedParts(
      g1.dict_ptr(), std::move(labels), SharedArray<Triple>(std::move(triples)),
      SharedArray<uint64_t>(ConcatOffsets(g1.OutOffsets(), g2.OutOffsets())),
      SharedArray<PredicateObject>(std::move(out_pairs)),
      SharedArray<uint64_t>(ConcatOffsets(g1.InOffsets(), g2.InOffsets())),
      SharedArray<NodeId>(std::move(in_subjects)));
  out.n1_ = n1;
  out.n2_ = n2;
  out.e1_ = g1.NumEdges();
  out.e2_ = g2.NumEdges();
  return out;
}

Result<CombinedGraph> CombinedGraph::BuildLegacy(const TripleGraph& g1,
                                                 const TripleGraph& g2) {
  if (g1.dict_ptr().get() != g2.dict_ptr().get()) {
    return Status::InvalidArgument(
        "CombinedGraph::Build requires both graphs to share one Dictionary");
  }
  const NodeId n1 = static_cast<NodeId>(g1.NumNodes());
  const NodeId n2 = static_cast<NodeId>(g2.NumNodes());

  std::vector<NodeLabel> labels;
  labels.reserve(n1 + n2);
  labels.insert(labels.end(), g1.labels().begin(), g1.labels().end());
  labels.insert(labels.end(), g2.labels().begin(), g2.labels().end());

  std::vector<Triple> triples;
  triples.reserve(g1.NumEdges() + g2.NumEdges());
  triples.insert(triples.end(), g1.triples().begin(), g1.triples().end());
  for (const Triple& t : g2.triples()) {
    triples.push_back(Triple{t.s + n1, t.p + n1, t.o + n1});
  }

  // The union is a triple graph, not an RDF graph: skip RDF validation
  // (label uniqueness does not hold across sides by design).
  RDFALIGN_ASSIGN_OR_RETURN(
      TripleGraph combined,
      TripleGraph::FromParts(g1.dict_ptr(), std::move(labels),
                             std::move(triples), /*validate_rdf=*/false));

  CombinedGraph out;
  out.graph_ = std::move(combined);
  out.n1_ = n1;
  out.n2_ = n2;
  out.e1_ = g1.NumEdges();
  out.e2_ = g2.NumEdges();
  return out;
}

}  // namespace rdfalign
