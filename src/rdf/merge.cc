#include "rdf/merge.h"

namespace rdfalign {

Result<CombinedGraph> CombinedGraph::Build(const TripleGraph& g1,
                                           const TripleGraph& g2) {
  if (g1.dict_ptr().get() != g2.dict_ptr().get()) {
    return Status::InvalidArgument(
        "CombinedGraph::Build requires both graphs to share one Dictionary");
  }
  const NodeId n1 = static_cast<NodeId>(g1.NumNodes());
  const NodeId n2 = static_cast<NodeId>(g2.NumNodes());

  std::vector<NodeLabel> labels;
  labels.reserve(n1 + n2);
  labels.insert(labels.end(), g1.labels().begin(), g1.labels().end());
  labels.insert(labels.end(), g2.labels().begin(), g2.labels().end());

  std::vector<Triple> triples;
  triples.reserve(g1.NumEdges() + g2.NumEdges());
  triples.insert(triples.end(), g1.triples().begin(), g1.triples().end());
  for (const Triple& t : g2.triples()) {
    triples.push_back(Triple{t.s + n1, t.p + n1, t.o + n1});
  }

  // The union is a triple graph, not an RDF graph: skip RDF validation
  // (label uniqueness does not hold across sides by design).
  RDFALIGN_ASSIGN_OR_RETURN(
      TripleGraph combined,
      TripleGraph::FromParts(g1.dict_ptr(), std::move(labels),
                             std::move(triples), /*validate_rdf=*/false));

  CombinedGraph out;
  out.graph_ = std::move(combined);
  out.n1_ = n1;
  out.n2_ = n2;
  out.e1_ = g1.NumEdges();
  out.e2_ = g2.NumEdges();
  return out;
}

}  // namespace rdfalign
