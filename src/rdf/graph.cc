#include "rdf/graph.h"

#include <algorithm>

#include "util/hash.h"

namespace rdfalign {

uint64_t TripleGraph::LabelKey(TermKind kind, LexId lex) {
  return (static_cast<uint64_t>(kind) << 32) | lex;
}

Result<TripleGraph> TripleGraph::FromParts(std::shared_ptr<Dictionary> dict,
                                           std::vector<NodeLabel> labels,
                                           std::vector<Triple> triples,
                                           bool validate_rdf) {
  TripleGraph g;
  g.dict_ = dict ? std::move(dict) : std::make_shared<Dictionary>();
  g.labels_ = std::move(labels);
  g.triples_ = std::move(triples);
  const NodeId n = static_cast<NodeId>(g.labels_.size());
  for (const Triple& t : g.triples_) {
    if (t.s >= n || t.p >= n || t.o >= n) {
      return Status::InvalidArgument("triple references node out of range");
    }
  }
  std::sort(g.triples_.begin(), g.triples_.end());
  g.triples_.erase(std::unique(g.triples_.begin(), g.triples_.end()),
                   g.triples_.end());
  g.BuildIndexes();
  if (validate_rdf) {
    RDFALIGN_RETURN_IF_ERROR(g.ValidateRdf());
  }
  return g;
}

void TripleGraph::BuildIndexes() {
  const size_t n = labels_.size();
  out_offsets_.assign(n + 1, 0);
  for (const Triple& t : triples_) {
    ++out_offsets_[t.s + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    out_offsets_[i + 1] += out_offsets_[i];
  }
  out_pairs_.resize(triples_.size());
  // triples_ is sorted by (s, p, o), so a single pass fills each node's
  // slice in (p, o) order.
  {
    std::vector<uint64_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
    for (const Triple& t : triples_) {
      out_pairs_[cursor[t.s]++] = PredicateObject{t.p, t.o};
    }
  }
  // Reverse CSR: in(n) = subjects of the triples in which n occurs as the
  // predicate or the object. The buffer is sized exactly by one counting
  // pass (two slots per triple), filled, then deduplicated per node with an
  // in-place left compaction — no push_back growth, one allocation.
  in_offsets_.assign(n + 1, 0);
  for (const Triple& t : triples_) {
    ++in_offsets_[t.p + 1];
    ++in_offsets_[t.o + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    in_offsets_[i + 1] += in_offsets_[i];
  }
  in_subjects_.resize(in_offsets_[n]);
  {
    std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (const Triple& t : triples_) {
      in_subjects_[cursor[t.p]++] = t.s;
      in_subjects_[cursor[t.o]++] = t.s;
    }
  }
  {
    // A node reached through several roles (or several predicates) appears
    // once: sort each slice, drop duplicates, and slide the survivors left.
    uint64_t write = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t begin = in_offsets_[i];
      const uint64_t end = in_offsets_[i + 1];
      auto first = in_subjects_.begin() + static_cast<ptrdiff_t>(begin);
      auto last = in_subjects_.begin() + static_cast<ptrdiff_t>(end);
      std::sort(first, last);
      last = std::unique(first, last);
      const uint64_t len = static_cast<uint64_t>(last - first);
      if (write != begin) {
        std::move(first, last,
                  in_subjects_.begin() + static_cast<ptrdiff_t>(write));
      }
      in_offsets_[i] = write;
      write += len;
    }
    in_offsets_[n] = write;
    in_subjects_.resize(write);
    in_subjects_.shrink_to_fit();  // release the pre-dedup slack
  }
  node_by_label_.clear();
  node_by_label_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    // Later nodes do not overwrite earlier ones; for unique-label graphs
    // there is no collision anyway, and for combined graphs lookup by label
    // is not meaningful (we keep the first, i.e. the source-graph node).
    node_by_label_.emplace(LabelKey(labels_[i].kind, labels_[i].lex), i);
  }
}

Status TripleGraph::ValidateRdf() const {
  for (const Triple& t : triples_) {
    if (IsLiteral(t.s)) {
      return Status::InvalidArgument(
          "literal node used as subject: \"" + std::string(Lexical(t.s)) +
          "\"");
    }
    if (IsLiteral(t.p)) {
      return Status::InvalidArgument(
          "literal node used as predicate: \"" + std::string(Lexical(t.p)) +
          "\"");
    }
    if (IsBlank(t.p)) {
      return Status::InvalidArgument("blank node used as predicate");
    }
  }
  return Status::OK();
}

NodeId TripleGraph::FindUri(std::string_view uri) const {
  LexId lex = dict_->Find(uri);
  if (lex == kInvalidLex) return kInvalidNode;
  auto it = node_by_label_.find(LabelKey(TermKind::kUri, lex));
  return it == node_by_label_.end() ? kInvalidNode : it->second;
}

NodeId TripleGraph::FindLiteral(std::string_view value) const {
  LexId lex = dict_->Find(value);
  if (lex == kInvalidLex) return kInvalidNode;
  auto it = node_by_label_.find(LabelKey(TermKind::kLiteral, lex));
  return it == node_by_label_.end() ? kInvalidNode : it->second;
}

NodeId TripleGraph::FindBlank(std::string_view local_name) const {
  LexId lex = dict_->Find(local_name);
  if (lex == kInvalidLex) return kInvalidNode;
  auto it = node_by_label_.find(LabelKey(TermKind::kBlank, lex));
  return it == node_by_label_.end() ? kInvalidNode : it->second;
}

size_t TripleGraph::CountOfKind(TermKind kind) const {
  size_t count = 0;
  for (const NodeLabel& l : labels_) {
    if (l.kind == kind) ++count;
  }
  return count;
}

std::vector<NodeId> TripleGraph::NodesOfKind(TermKind kind) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < labels_.size(); ++i) {
    if (labels_[i].kind == kind) out.push_back(i);
  }
  return out;
}

GraphBuilder::GraphBuilder(std::shared_ptr<Dictionary> dict)
    : dict_(dict ? std::move(dict) : std::make_shared<Dictionary>()) {}

NodeId GraphBuilder::AddUri(std::string_view uri) {
  LexId lex = dict_->Intern(uri);
  uint64_t key = TripleGraph::LabelKey(TermKind::kUri, lex);
  auto [it, inserted] =
      node_by_label_.emplace(key, static_cast<NodeId>(labels_.size()));
  if (inserted) {
    labels_.push_back(NodeLabel{TermKind::kUri, lex});
  }
  return it->second;
}

NodeId GraphBuilder::AddLiteral(std::string_view value) {
  LexId lex = dict_->Intern(value);
  uint64_t key = TripleGraph::LabelKey(TermKind::kLiteral, lex);
  auto [it, inserted] =
      node_by_label_.emplace(key, static_cast<NodeId>(labels_.size()));
  if (inserted) {
    labels_.push_back(NodeLabel{TermKind::kLiteral, lex});
  }
  return it->second;
}

NodeId GraphBuilder::AddBlank(std::string_view local_name) {
  std::string anon;
  if (local_name.empty()) {
    anon = "__anon" + std::to_string(anon_counter_++);
    local_name = anon;
  }
  LexId lex = dict_->Intern(local_name);
  uint64_t key = TripleGraph::LabelKey(TermKind::kBlank, lex);
  auto [it, inserted] =
      node_by_label_.emplace(key, static_cast<NodeId>(labels_.size()));
  if (inserted) {
    labels_.push_back(NodeLabel{TermKind::kBlank, lex});
  }
  return it->second;
}

void GraphBuilder::AddTriple(NodeId s, NodeId p, NodeId o) {
  triples_.push_back(Triple{s, p, o});
}

void GraphBuilder::AddUriTriple(std::string_view s, std::string_view p,
                                std::string_view o) {
  NodeId sn = AddUri(s);
  NodeId pn = AddUri(p);
  NodeId on = AddUri(o);
  AddTriple(sn, pn, on);
}

void GraphBuilder::AddLiteralTriple(std::string_view s, std::string_view p,
                                    std::string_view literal) {
  NodeId sn = AddUri(s);
  NodeId pn = AddUri(p);
  NodeId on = AddLiteral(literal);
  AddTriple(sn, pn, on);
}

Result<TripleGraph> GraphBuilder::Build(bool validate_rdf) {
  return TripleGraph::FromParts(std::move(dict_), std::move(labels_),
                                std::move(triples_), validate_rdf);
}

}  // namespace rdfalign
