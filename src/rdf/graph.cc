#include "rdf/graph.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "util/hash.h"
#include "util/thread_pool.h"

namespace rdfalign {
namespace {

// Below this many triples the chunk bookkeeping costs more than it saves;
// the parallel path also needs at least two chunks to matter.
constexpr size_t kCsrParallelMinTriples = 1 << 15;
// Triples per chunk in the counting/scatter passes.
constexpr size_t kCsrTripleGrain = 1 << 15;
// Nodes per chunk in the per-slice dedup and gather passes.
constexpr size_t kCsrNodeGrain = 1 << 14;

// The chunked twin of the serial BuildCsrArrays body. Determinism: the
// forward CSR is a positionwise transform of the sorted triple list; the
// reverse CSR's counting pass uses relaxed atomic additions (sums do not
// depend on order), the scatter fills each node slice in arbitrary order,
// and the per-slice sort+unique erases that order again — so every output
// array is bit-identical to the serial pass for any thread count.
void BuildCsrArraysParallel(std::span<const Triple> triples, size_t n,
                            std::vector<uint64_t>* out_offsets_p,
                            std::vector<PredicateObject>* out_pairs_p,
                            std::vector<uint64_t>* in_offsets_p,
                            std::vector<NodeId>* in_subjects_p,
                            size_t threads) {
  const size_t m = triples.size();
  std::vector<uint64_t>& out_offsets = *out_offsets_p;
  out_offsets.resize(n + 1);
  std::vector<PredicateObject>& out_pairs = *out_pairs_p;
  out_pairs.resize(m);
  // Forward CSR. The triple list is sorted by (s, p, o), so triple i *is*
  // position i of out_pairs, and out_offsets[v] — the index of the first
  // triple whose subject is >= v — is determined at each subject change:
  // triple i with previous subject ps writes i into every v in (ps, s].
  // Those ranges are disjoint across i (hence across chunks) and cover
  // [0, last subject]; the tail (last subject, n] is m.
  ParallelChunks(m, threads, kCsrTripleGrain,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     const Triple& t = triples[i];
                     out_pairs[i] = PredicateObject{t.p, t.o};
                     const NodeId ps = i == 0 ? 0 : triples[i - 1].s;
                     if (i == 0 || t.s != ps) {
                       const NodeId lo = i == 0 ? 0 : ps + 1;
                       for (NodeId v = lo; v <= t.s; ++v) out_offsets[v] = i;
                     }
                   }
                 });
  const size_t tail_from = m == 0 ? 0 : triples[m - 1].s + 1;
  std::fill(out_offsets.begin() + static_cast<ptrdiff_t>(tail_from),
            out_offsets.end(), m);
  // Reverse CSR: count both roles with relaxed atomic increments, prefix
  // sum, scatter under atomic per-node cursors, then sort and deduplicate
  // each node's slice and gather the survivors into the exact-size array.
  std::vector<uint64_t>& in_offsets = *in_offsets_p;
  in_offsets.assign(n + 1, 0);
  ParallelChunks(m, threads, kCsrTripleGrain,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t i = begin; i < end; ++i) {
                     const Triple& t = triples[i];
                     std::atomic_ref<uint64_t>(in_offsets[t.p + 1])
                         .fetch_add(1, std::memory_order_relaxed);
                     std::atomic_ref<uint64_t>(in_offsets[t.o + 1])
                         .fetch_add(1, std::memory_order_relaxed);
                   }
                 });
  for (size_t i = 0; i < n; ++i) {
    in_offsets[i + 1] += in_offsets[i];
  }
  std::vector<NodeId> raw(in_offsets[n]);
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    ParallelChunks(m, threads, kCsrTripleGrain,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       const Triple& t = triples[i];
                       raw[std::atomic_ref<uint64_t>(cursor[t.p])
                               .fetch_add(1, std::memory_order_relaxed)] = t.s;
                       raw[std::atomic_ref<uint64_t>(cursor[t.o])
                               .fetch_add(1, std::memory_order_relaxed)] = t.s;
                     }
                   });
  }
  std::vector<uint64_t> lens(n);
  ParallelChunks(n, threads, kCsrNodeGrain,
                 [&](size_t, size_t begin, size_t end) {
                   for (size_t v = begin; v < end; ++v) {
                     auto first =
                         raw.begin() + static_cast<ptrdiff_t>(in_offsets[v]);
                     auto last = raw.begin() +
                                 static_cast<ptrdiff_t>(in_offsets[v + 1]);
                     std::sort(first, last);
                     lens[v] =
                         static_cast<uint64_t>(std::unique(first, last) - first);
                   }
                 });
  std::vector<uint64_t> final_offsets(n + 1);
  final_offsets[0] = 0;
  for (size_t v = 0; v < n; ++v) {
    final_offsets[v + 1] = final_offsets[v] + lens[v];
  }
  std::vector<NodeId>& in_subjects = *in_subjects_p;
  in_subjects.resize(final_offsets[n]);
  in_subjects.shrink_to_fit();
  ParallelChunks(
      n, threads, kCsrNodeGrain, [&](size_t, size_t begin, size_t end) {
        for (size_t v = begin; v < end; ++v) {
          std::copy(raw.begin() + static_cast<ptrdiff_t>(in_offsets[v]),
                    raw.begin() +
                        static_cast<ptrdiff_t>(in_offsets[v] + lens[v]),
                    in_subjects.begin() +
                        static_cast<ptrdiff_t>(final_offsets[v]));
        }
      });
  in_offsets.swap(final_offsets);
}

}  // namespace

uint64_t TripleGraph::LabelKey(TermKind kind, LexId lex) {
  return (static_cast<uint64_t>(kind) << 32) | lex;
}

Result<TripleGraph> TripleGraph::FromParts(std::shared_ptr<Dictionary> dict,
                                           std::vector<NodeLabel> labels,
                                           std::vector<Triple> triples,
                                           bool validate_rdf, size_t threads) {
  TripleGraph g;
  g.dict_ = dict ? std::move(dict) : std::make_shared<Dictionary>();
  g.labels_ = std::move(labels);
  const NodeId n = static_cast<NodeId>(g.labels_.size());
  for (const Triple& t : triples) {
    if (t.s >= n || t.p >= n || t.o >= n) {
      return Status::InvalidArgument("triple references node out of range");
    }
  }
  // Triple's ordering is total over (s, p, o), so the sorted list is the
  // unique sorted permutation for any thread count.
  ParallelSort(triples, threads);
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  g.BuildIndexes(std::move(triples), threads);
  g.BuildLabelMap();
  if (validate_rdf) {
    RDFALIGN_RETURN_IF_ERROR(g.ValidateRdf());
  }
  return g;
}

TripleGraph TripleGraph::FromIndexedParts(
    std::shared_ptr<Dictionary> dict, std::vector<NodeLabel> labels,
    SharedArray<Triple> triples, SharedArray<uint64_t> out_offsets,
    SharedArray<PredicateObject> out_pairs, SharedArray<uint64_t> in_offsets,
    SharedArray<NodeId> in_subjects) {
  TripleGraph g;
  g.dict_ = dict ? std::move(dict) : std::make_shared<Dictionary>();
  g.labels_ = std::move(labels);
  g.triples_ = std::move(triples);
  g.out_offsets_ = std::move(out_offsets);
  g.out_pairs_ = std::move(out_pairs);
  g.in_offsets_ = std::move(in_offsets);
  g.in_subjects_ = std::move(in_subjects);
  g.BuildLabelMap();
  return g;
}

void TripleGraph::BuildCsrArrays(std::span<const Triple> triples,
                                 size_t num_nodes,
                                 std::vector<uint64_t>* out_offsets_p,
                                 std::vector<PredicateObject>* out_pairs_p,
                                 std::vector<uint64_t>* in_offsets_p,
                                 std::vector<NodeId>* in_subjects_p,
                                 size_t threads) {
  threads = EffectiveLanes(threads);
  if (threads > 1 && triples.size() >= kCsrParallelMinTriples) {
    BuildCsrArraysParallel(triples, num_nodes, out_offsets_p, out_pairs_p,
                           in_offsets_p, in_subjects_p, threads);
    return;
  }
  const size_t n = num_nodes;
  std::vector<uint64_t>& out_offsets = *out_offsets_p;
  out_offsets.assign(n + 1, 0);
  for (const Triple& t : triples) {
    ++out_offsets[t.s + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    out_offsets[i + 1] += out_offsets[i];
  }
  std::vector<PredicateObject>& out_pairs = *out_pairs_p;
  out_pairs.resize(triples.size());
  // `triples` is sorted by (s, p, o), so a single pass fills each node's
  // slice in (p, o) order.
  {
    std::vector<uint64_t> cursor(out_offsets.begin(), out_offsets.end() - 1);
    for (const Triple& t : triples) {
      out_pairs[cursor[t.s]++] = PredicateObject{t.p, t.o};
    }
  }
  // Reverse CSR: in(n) = subjects of the triples in which n occurs as the
  // predicate or the object. The buffer is sized exactly by one counting
  // pass (two slots per triple), filled, then deduplicated per node with an
  // in-place left compaction — no push_back growth, one allocation.
  std::vector<uint64_t>& in_offsets = *in_offsets_p;
  in_offsets.assign(n + 1, 0);
  for (const Triple& t : triples) {
    ++in_offsets[t.p + 1];
    ++in_offsets[t.o + 1];
  }
  for (size_t i = 0; i < n; ++i) {
    in_offsets[i + 1] += in_offsets[i];
  }
  std::vector<NodeId>& in_subjects = *in_subjects_p;
  in_subjects.assign(in_offsets[n], 0);
  {
    std::vector<uint64_t> cursor(in_offsets.begin(), in_offsets.end() - 1);
    for (const Triple& t : triples) {
      in_subjects[cursor[t.p]++] = t.s;
      in_subjects[cursor[t.o]++] = t.s;
    }
  }
  {
    // A node reached through several roles (or several predicates) appears
    // once: sort each slice, drop duplicates, and slide the survivors left.
    uint64_t write = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t begin = in_offsets[i];
      const uint64_t end = in_offsets[i + 1];
      auto first = in_subjects.begin() + static_cast<ptrdiff_t>(begin);
      auto last = in_subjects.begin() + static_cast<ptrdiff_t>(end);
      std::sort(first, last);
      last = std::unique(first, last);
      const uint64_t len = static_cast<uint64_t>(last - first);
      if (write != begin) {
        std::move(first, last,
                  in_subjects.begin() + static_cast<ptrdiff_t>(write));
      }
      in_offsets[i] = write;
      write += len;
    }
    in_offsets[n] = write;
    in_subjects.resize(write);
    in_subjects.shrink_to_fit();  // release the pre-dedup slack
  }
}

void TripleGraph::BuildIndexes(std::vector<Triple> triples, size_t threads) {
  std::vector<uint64_t> out_offsets;
  std::vector<PredicateObject> out_pairs;
  std::vector<uint64_t> in_offsets;
  std::vector<NodeId> in_subjects;
  BuildCsrArrays(triples, labels_.size(), &out_offsets, &out_pairs,
                 &in_offsets, &in_subjects, threads);
  triples_ = SharedArray<Triple>(std::move(triples));
  out_offsets_ = SharedArray<uint64_t>(std::move(out_offsets));
  out_pairs_ = SharedArray<PredicateObject>(std::move(out_pairs));
  in_offsets_ = SharedArray<uint64_t>(std::move(in_offsets));
  in_subjects_ = SharedArray<NodeId>(std::move(in_subjects));
}

void TripleGraph::BuildLabelMap() {
  const size_t n = labels_.size();
  node_by_label_.clear();
  node_by_label_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    // Later nodes do not overwrite earlier ones; for unique-label graphs
    // there is no collision anyway, and for combined graphs lookup by label
    // is not meaningful (we keep the first, i.e. the source-graph node).
    node_by_label_.emplace(LabelKey(labels_[i].kind, labels_[i].lex), i);
  }
}

Status TripleGraph::ValidateRdf() const {
  for (const Triple& t : triples_) {
    if (IsLiteral(t.s)) {
      return Status::InvalidArgument(
          "literal node used as subject: \"" + std::string(Lexical(t.s)) +
          "\"");
    }
    if (IsLiteral(t.p)) {
      return Status::InvalidArgument(
          "literal node used as predicate: \"" + std::string(Lexical(t.p)) +
          "\"");
    }
    if (IsBlank(t.p)) {
      return Status::InvalidArgument("blank node used as predicate");
    }
  }
  return Status::OK();
}

NodeId TripleGraph::FindUri(std::string_view uri) const {
  LexId lex = dict_->Find(uri);
  if (lex == kInvalidLex) return kInvalidNode;
  auto it = node_by_label_.find(LabelKey(TermKind::kUri, lex));
  return it == node_by_label_.end() ? kInvalidNode : it->second;
}

NodeId TripleGraph::FindLiteral(std::string_view value) const {
  LexId lex = dict_->Find(value);
  if (lex == kInvalidLex) return kInvalidNode;
  auto it = node_by_label_.find(LabelKey(TermKind::kLiteral, lex));
  return it == node_by_label_.end() ? kInvalidNode : it->second;
}

NodeId TripleGraph::FindBlank(std::string_view local_name) const {
  LexId lex = dict_->Find(local_name);
  if (lex == kInvalidLex) return kInvalidNode;
  auto it = node_by_label_.find(LabelKey(TermKind::kBlank, lex));
  return it == node_by_label_.end() ? kInvalidNode : it->second;
}

size_t TripleGraph::CountOfKind(TermKind kind) const {
  size_t count = 0;
  for (const NodeLabel& l : labels_) {
    if (l.kind == kind) ++count;
  }
  return count;
}

std::vector<NodeId> TripleGraph::NodesOfKind(TermKind kind) const {
  std::vector<NodeId> out;
  for (NodeId i = 0; i < labels_.size(); ++i) {
    if (labels_[i].kind == kind) out.push_back(i);
  }
  return out;
}

namespace {

template <typename T>
bool SpansEqual(std::span<const T> x, std::span<const T> y) {
  return x.size() == y.size() &&
         (x.empty() ||
          std::memcmp(x.data(), y.data(), x.size() * sizeof(T)) == 0);
}

}  // namespace

const char* GraphsBitDiffer(const TripleGraph& a, const TripleGraph& b) {
  if (a.NumNodes() != b.NumNodes()) return "node counts";
  for (NodeId i = 0; i < a.NumNodes(); ++i) {
    if (a.KindOf(i) != b.KindOf(i) || a.Lexical(i) != b.Lexical(i)) {
      return "labels";
    }
  }
  if (!SpansEqual(a.triples(), b.triples())) return "triples";
  if (!SpansEqual(a.OutOffsets(), b.OutOffsets())) return "out_offsets";
  if (!SpansEqual(a.OutPairs(), b.OutPairs())) return "out_pairs";
  if (!SpansEqual(a.InOffsets(), b.InOffsets())) return "in_offsets";
  if (!SpansEqual(a.InSubjects(), b.InSubjects())) return "in_subjects";
  return nullptr;
}

bool LabeledGraphsEqual(const TripleGraph& a, const TripleGraph& b) {
  if (a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (NodeId i = 0; i < a.NumNodes(); ++i) {
    if (a.KindOf(i) != b.KindOf(i) || a.Lexical(i) != b.Lexical(i)) {
      return false;
    }
  }
  std::span<const Triple> ta = a.triples();
  std::span<const Triple> tb = b.triples();
  return std::equal(ta.begin(), ta.end(), tb.begin(), tb.end());
}

GraphBuilder::GraphBuilder(std::shared_ptr<Dictionary> dict)
    : dict_(dict ? std::move(dict) : std::make_shared<Dictionary>()) {}

NodeId GraphBuilder::AddUri(std::string_view uri) {
  LexId lex = dict_->Intern(uri);
  uint64_t key = TripleGraph::LabelKey(TermKind::kUri, lex);
  auto [it, inserted] =
      node_by_label_.emplace(key, static_cast<NodeId>(labels_.size()));
  if (inserted) {
    labels_.push_back(NodeLabel{TermKind::kUri, lex});
  }
  return it->second;
}

NodeId GraphBuilder::AddLiteral(std::string_view value) {
  LexId lex = dict_->Intern(value);
  uint64_t key = TripleGraph::LabelKey(TermKind::kLiteral, lex);
  auto [it, inserted] =
      node_by_label_.emplace(key, static_cast<NodeId>(labels_.size()));
  if (inserted) {
    labels_.push_back(NodeLabel{TermKind::kLiteral, lex});
  }
  return it->second;
}

NodeId GraphBuilder::AddBlank(std::string_view local_name) {
  std::string anon;
  if (local_name.empty()) {
    anon = "__anon" + std::to_string(anon_counter_++);
    local_name = anon;
  }
  LexId lex = dict_->Intern(local_name);
  uint64_t key = TripleGraph::LabelKey(TermKind::kBlank, lex);
  auto [it, inserted] =
      node_by_label_.emplace(key, static_cast<NodeId>(labels_.size()));
  if (inserted) {
    labels_.push_back(NodeLabel{TermKind::kBlank, lex});
  }
  return it->second;
}

void GraphBuilder::AddTriple(NodeId s, NodeId p, NodeId o) {
  triples_.push_back(Triple{s, p, o});
}

void GraphBuilder::AddUriTriple(std::string_view s, std::string_view p,
                                std::string_view o) {
  NodeId sn = AddUri(s);
  NodeId pn = AddUri(p);
  NodeId on = AddUri(o);
  AddTriple(sn, pn, on);
}

void GraphBuilder::AddLiteralTriple(std::string_view s, std::string_view p,
                                    std::string_view literal) {
  NodeId sn = AddUri(s);
  NodeId pn = AddUri(p);
  NodeId on = AddLiteral(literal);
  AddTriple(sn, pn, on);
}

Result<TripleGraph> GraphBuilder::Build(bool validate_rdf, size_t threads) {
  return TripleGraph::FromParts(std::move(dict_), std::move(labels_),
                                std::move(triples_), validate_rdf, threads);
}

}  // namespace rdfalign
