// Per-graph statistics reported by the dataset figures (Figs. 9, 12, 16).

#ifndef RDFALIGN_RDF_STATISTICS_H_
#define RDFALIGN_RDF_STATISTICS_H_

#include <cstddef>

#include "rdf/graph.h"

namespace rdfalign {

/// Node/edge counts by kind plus structural measures.
struct GraphStatistics {
  size_t nodes = 0;
  size_t edges = 0;
  size_t uris = 0;
  size_t literals = 0;
  size_t blanks = 0;
  /// URIs that occur only in predicate position (the error-prone nodes
  /// discussed at the end of §5.1).
  size_t predicate_only_uris = 0;
  /// Nodes with no outgoing edges (sinks: literals and leaf URIs).
  size_t sinks = 0;
  size_t max_out_degree = 0;
  double avg_out_degree = 0.0;
};

/// Computes statistics in one pass over the graph. `threads` > 1 runs the
/// flag and accumulation passes as chunked kernels whose thread-local
/// partial counters are merged in chunk order — every counter comes out
/// bit-identical to the serial (threads=1) pass.
GraphStatistics ComputeStatistics(const TripleGraph& g, size_t threads = 1);

}  // namespace rdfalign

#endif  // RDFALIGN_RDF_STATISTICS_H_
