// String interning: lexical forms -> dense LexId.
//
// A Dictionary is shared between the two versions being aligned so that
// label equality is an integer comparison — the trivial alignment (§3.1)
// and the initial bisimulation coloring both reduce to comparing LexIds.

#ifndef RDFALIGN_RDF_DICTIONARY_H_
#define RDFALIGN_RDF_DICTIONARY_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "rdf/term.h"

namespace rdfalign {

/// Append-only interner of lexical forms. Not thread-safe.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: interned string_views point into strings_.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns `s`, returning its id; repeated calls with equal strings return
  /// the same id.
  LexId Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    strings_.emplace_back(s);
    LexId id = static_cast<LexId>(strings_.size() - 1);
    index_.emplace(strings_.back(), id);
    return id;
  }

  /// Returns the id of `s` or kInvalidLex when not interned.
  LexId Find(std::string_view s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kInvalidLex : it->second;
  }

  /// The lexical form for an id. id must be valid.
  std::string_view Get(LexId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

 private:
  // std::deque keeps element references stable under growth, so the
  // string_view keys of index_ remain valid.
  std::deque<std::string> strings_;
  std::unordered_map<std::string_view, LexId> index_;
};

}  // namespace rdfalign

#endif  // RDFALIGN_RDF_DICTIONARY_H_
