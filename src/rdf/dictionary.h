// String interning: lexical forms -> dense LexId.
//
// A Dictionary is shared between the two versions being aligned so that
// label equality is an integer comparison — the trivial alignment (§3.1)
// and the initial bisimulation coloring both reduce to comparing LexIds.
//
// Two storage modes coexist per entry: Intern() copies the string into the
// dictionary, while InternPinned() records a view into an externally owned
// buffer registered with PinArena() (the snapshot store's zero-copy load
// path — term bytes stay in the load buffer / file mapping and are never
// copied).

#ifndef RDFALIGN_RDF_DICTIONARY_H_
#define RDFALIGN_RDF_DICTIONARY_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace rdfalign {

/// Append-only interner of lexical forms. Not thread-safe.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: interned string_views point into strings_
  // (deque nodes and pinned arenas survive a move).
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns `s`, returning its id; repeated calls with equal strings return
  /// the same id. The bytes are copied into the dictionary.
  LexId Intern(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    strings_.emplace_back(s);
    return Append(strings_.back());
  }

  /// Keeps `arena` alive for the lifetime of this dictionary so that views
  /// into it may be interned without copying.
  void PinArena(std::shared_ptr<const void> arena) {
    arenas_.push_back(std::move(arena));
  }

  /// Interns `s` *by reference*: the dictionary stores the view itself, not
  /// a copy. `s` must point into memory registered with PinArena() (or
  /// otherwise outlive the dictionary). Used by the snapshot loader.
  LexId InternPinned(std::string_view s) {
    auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    return Append(s);
  }

  /// Returns the id of `s` or kInvalidLex when not interned.
  LexId Find(std::string_view s) const {
    auto it = index_.find(s);
    return it == index_.end() ? kInvalidLex : it->second;
  }

  /// The lexical form for an id. id must be valid.
  std::string_view Get(LexId id) const { return views_[id]; }

  size_t size() const { return views_.size(); }

 private:
  LexId Append(std::string_view view) {
    views_.push_back(view);
    LexId id = static_cast<LexId>(views_.size() - 1);
    index_.emplace(view, id);
    return id;
  }

  // std::deque keeps element references stable under growth, so views into
  // strings_ remain valid.
  std::deque<std::string> strings_;
  // id -> lexical form; points into strings_ or into a pinned arena.
  std::vector<std::string_view> views_;
  // External buffers (snapshot load buffers / file mappings) whose bytes
  // back InternPinned() entries.
  std::vector<std::shared_ptr<const void>> arenas_;
  std::unordered_map<std::string_view, LexId> index_;
};

}  // namespace rdfalign

#endif  // RDFALIGN_RDF_DICTIONARY_H_
