// Disjoint union G = G1 ⊎ G2 of the source and target versions (§2.1/§3).
//
// All alignment methods operate on one combined triple graph in which node
// ids [0, n1) come from the source and [n1, n1+n2) from the target. The
// combined graph intentionally violates label uniqueness (the same URI may
// label one node per side) — that is the whole point of the identifier-based
// data model.

#ifndef RDFALIGN_RDF_MERGE_H_
#define RDFALIGN_RDF_MERGE_H_

#include <vector>

#include "rdf/graph.h"
#include "util/result.h"

namespace rdfalign {

/// The disjoint union of two versions, with provenance helpers.
class CombinedGraph {
 public:
  /// Builds G1 ⊎ G2. The two graphs must share a Dictionary object (build
  /// them from one GraphBuilder dictionary, or parse with a shared
  /// dictionary); otherwise the label spaces are not comparable and an
  /// InvalidArgument status is returned.
  ///
  /// Because both inputs are already sorted and CSR-indexed and the shifted
  /// target ids all exceed the source ids, the union's triple list and both
  /// CSR indexes are plain concatenations (with the id offset applied) —
  /// no re-sort, re-dedup, or re-index. Bit-identical to re-indexing from
  /// scratch; BuildLegacy keeps that path for the A/B bench and tests.
  /// `threads` > 1 runs the shifted copies as chunked positionwise
  /// transforms on the shared pool — same bytes for any thread count.
  static Result<CombinedGraph> Build(const TripleGraph& g1,
                                     const TripleGraph& g2,
                                     size_t threads = 1);

  /// The pre-rewrite implementation: concatenate parts and rebuild every
  /// index through TripleGraph::FromParts. Reference baseline for
  /// bench/pipeline_bench.cc and the equivalence tests only.
  static Result<CombinedGraph> BuildLegacy(const TripleGraph& g1,
                                           const TripleGraph& g2);

  const TripleGraph& graph() const { return graph_; }

  /// Number of source-graph nodes; ids below this are source nodes.
  NodeId n1() const { return n1_; }
  /// Number of target-graph nodes.
  NodeId n2() const { return n2_; }

  bool InSource(NodeId n) const { return n < n1_; }
  bool InTarget(NodeId n) const { return n >= n1_; }

  /// Maps a source-graph node id into the combined graph (identity).
  NodeId FromSource(NodeId n) const { return n; }
  /// Maps a target-graph node id into the combined graph (offset by n1).
  NodeId FromTarget(NodeId n) const { return n + n1_; }

  /// Maps a combined id back to its original graph-local id.
  NodeId ToLocal(NodeId n) const { return InSource(n) ? n : n - n1_; }

  /// Number of edges contributed by each side.
  size_t e1() const { return e1_; }
  size_t e2() const { return e2_; }

 private:
  TripleGraph graph_;
  NodeId n1_ = 0;
  NodeId n2_ = 0;
  size_t e1_ = 0;
  size_t e2_ = 0;
};

}  // namespace rdfalign

#endif  // RDFALIGN_RDF_MERGE_H_
