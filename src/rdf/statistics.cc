#include "rdf/statistics.h"

#include <atomic>
#include <vector>

#include "util/thread_pool.h"

namespace rdfalign {
namespace {

// Below this node count the partial-merge scaffolding costs more than the
// pass itself.
constexpr size_t kStatsParallelMin = 1 << 15;
constexpr size_t kStatsGrain = 1 << 15;

// The node-kind accumulation over one node range; merged in chunk order.
// All fields are integer sums and maxes, so the fold is exact for any
// chunking.
struct PartialStats {
  size_t uris = 0;
  size_t literals = 0;
  size_t blanks = 0;
  size_t predicate_only_uris = 0;
  size_t sinks = 0;
  size_t max_out_degree = 0;
};

}  // namespace

GraphStatistics ComputeStatistics(const TripleGraph& g, size_t threads) {
  threads = EffectiveLanes(threads);
  GraphStatistics s;
  s.nodes = g.NumNodes();
  s.edges = g.NumEdges();

  const size_t n = g.NumNodes();
  std::vector<uint8_t> as_subject_or_object(n, 0);
  std::vector<uint8_t> as_predicate(n, 0);
  if (threads > 1 && g.NumEdges() + n >= kStatsParallelMin) {
    // Flag stores are order-insensitive (every writer stores 1); relaxed
    // atomics keep concurrent same-cell writes defined without changing
    // the outcome.
    std::span<const Triple> triples = g.triples();
    ParallelChunks(triples.size(), threads, kStatsGrain,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       const Triple& t = triples[i];
                       std::atomic_ref<uint8_t>(as_subject_or_object[t.s])
                           .store(1, std::memory_order_relaxed);
                       std::atomic_ref<uint8_t>(as_subject_or_object[t.o])
                           .store(1, std::memory_order_relaxed);
                       std::atomic_ref<uint8_t>(as_predicate[t.p])
                           .store(1, std::memory_order_relaxed);
                     }
                   });
    PartialStats total = ChunkedReduce<PartialStats>(
        n, threads, kStatsGrain, PartialStats{},
        [&](size_t, size_t begin, size_t end) {
          PartialStats p;
          for (size_t i = begin; i < end; ++i) {
            switch (g.KindOf(static_cast<NodeId>(i))) {
              case TermKind::kUri:
                ++p.uris;
                if (as_predicate[i] && !as_subject_or_object[i]) {
                  ++p.predicate_only_uris;
                }
                break;
              case TermKind::kLiteral:
                ++p.literals;
                break;
              case TermKind::kBlank:
                ++p.blanks;
                break;
            }
            const size_t deg = g.OutDegree(static_cast<NodeId>(i));
            if (deg == 0) ++p.sinks;
            if (deg > p.max_out_degree) p.max_out_degree = deg;
          }
          return p;
        },
        [](PartialStats& acc, PartialStats&& p) {
          acc.uris += p.uris;
          acc.literals += p.literals;
          acc.blanks += p.blanks;
          acc.predicate_only_uris += p.predicate_only_uris;
          acc.sinks += p.sinks;
          if (p.max_out_degree > acc.max_out_degree) {
            acc.max_out_degree = p.max_out_degree;
          }
        });
    s.uris = total.uris;
    s.literals = total.literals;
    s.blanks = total.blanks;
    s.predicate_only_uris = total.predicate_only_uris;
    s.sinks = total.sinks;
    s.max_out_degree = total.max_out_degree;
    s.avg_out_degree = n == 0 ? 0.0 : static_cast<double>(s.edges) / n;
    return s;
  }
  for (const Triple& t : g.triples()) {
    as_subject_or_object[t.s] = 1;
    as_subject_or_object[t.o] = 1;
    as_predicate[t.p] = 1;
  }

  for (NodeId i = 0; i < n; ++i) {
    switch (g.KindOf(i)) {
      case TermKind::kUri:
        ++s.uris;
        if (as_predicate[i] && !as_subject_or_object[i]) {
          ++s.predicate_only_uris;
        }
        break;
      case TermKind::kLiteral:
        ++s.literals;
        break;
      case TermKind::kBlank:
        ++s.blanks;
        break;
    }
    size_t deg = g.OutDegree(i);
    if (deg == 0) ++s.sinks;
    if (deg > s.max_out_degree) s.max_out_degree = deg;
  }
  s.avg_out_degree = n == 0 ? 0.0 : static_cast<double>(s.edges) / n;
  return s;
}

}  // namespace rdfalign
