#include "rdf/statistics.h"

#include <vector>

namespace rdfalign {

GraphStatistics ComputeStatistics(const TripleGraph& g) {
  GraphStatistics s;
  s.nodes = g.NumNodes();
  s.edges = g.NumEdges();

  const size_t n = g.NumNodes();
  std::vector<uint8_t> as_subject_or_object(n, 0);
  std::vector<uint8_t> as_predicate(n, 0);
  for (const Triple& t : g.triples()) {
    as_subject_or_object[t.s] = 1;
    as_subject_or_object[t.o] = 1;
    as_predicate[t.p] = 1;
  }

  for (NodeId i = 0; i < n; ++i) {
    switch (g.KindOf(i)) {
      case TermKind::kUri:
        ++s.uris;
        if (as_predicate[i] && !as_subject_or_object[i]) {
          ++s.predicate_only_uris;
        }
        break;
      case TermKind::kLiteral:
        ++s.literals;
        break;
      case TermKind::kBlank:
        ++s.blanks;
        break;
    }
    size_t deg = g.OutDegree(i);
    if (deg == 0) ++s.sinks;
    if (deg > s.max_out_degree) s.max_out_degree = deg;
  }
  s.avg_out_degree = n == 0 ? 0.0 : static_cast<double>(s.edges) / n;
  return s;
}

}  // namespace rdfalign
