#include "relational/direct_mapping.h"

namespace rdfalign::relational {

namespace {
constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}  // namespace

std::string RowUri(const DirectMappingOptions& options,
                   const TableSchema& schema, int64_t key) {
  return options.base_uri + schema.name + "/" +
         schema.columns[schema.primary_key].name + "=" + std::to_string(key);
}

std::string ColumnPredicateUri(const DirectMappingOptions& options,
                               const TableSchema& schema, size_t column) {
  return options.base_uri + schema.name + "#" + schema.columns[column].name;
}

std::string RefPredicateUri(const DirectMappingOptions& options,
                            const TableSchema& schema, size_t column) {
  return options.base_uri + schema.name + "#ref-" +
         schema.columns[column].name;
}

std::string TableTypeUri(const DirectMappingOptions& options,
                         const TableSchema& schema) {
  return options.base_uri + schema.name;
}

Result<rdfalign::TripleGraph> ExportDirectMapping(
    const Database& db, const DirectMappingOptions& options,
    std::shared_ptr<rdfalign::Dictionary> dict) {
  rdfalign::GraphBuilder builder(std::move(dict));
  const rdfalign::NodeId type_pred =
      options.emit_type_triples ? builder.AddUri(kRdfType) : 0;

  for (const Table& table : db.tables()) {
    const TableSchema& schema = table.schema();

    // Predicate nodes are interned lazily: a column whose cells are all
    // NULL contributes no node, matching the Direct Mapping's output.
    std::vector<rdfalign::NodeId> column_pred(schema.columns.size(),
                                              rdfalign::kInvalidNode);
    auto predicate_of = [&](size_t c) {
      if (column_pred[c] == rdfalign::kInvalidNode) {
        column_pred[c] =
            schema.IsForeignKeyColumn(c)
                ? builder.AddUri(RefPredicateUri(options, schema, c))
                : builder.AddUri(ColumnPredicateUri(options, schema, c));
      }
      return column_pred[c];
    };
    rdfalign::NodeId type_node = 0;
    if (options.emit_type_triples) {
      type_node = builder.AddUri(TableTypeUri(options, schema));
    }

    Status status = Status::OK();
    table.ForEachRow([&](const Row& row) {
      const int64_t key = table.KeyOf(row);
      rdfalign::NodeId subject =
          builder.AddUri(RowUri(options, schema, key));
      if (options.emit_type_triples) {
        builder.AddTriple(subject, type_pred, type_node);
      }
      for (size_t c = 0; c < schema.columns.size(); ++c) {
        if (c == schema.primary_key) continue;
        const Value& cell = row[c];
        if (IsNull(cell)) {
          if (!options.skip_nulls) {
            builder.AddTriple(subject, predicate_of(c), builder.AddLiteral(""));
          }
          continue;
        }
        if (schema.IsForeignKeyColumn(c)) {
          // Resolve the referenced tuple's URI.
          const ForeignKey* fk = nullptr;
          for (const ForeignKey& candidate : schema.foreign_keys) {
            if (candidate.column == c) {
              fk = &candidate;
              break;
            }
          }
          const Table* ref = db.GetTable(fk->ref_table);
          if (ref == nullptr) {
            status = Status::Corruption("FK references missing table " +
                                        fk->ref_table);
            return;
          }
          rdfalign::NodeId object = builder.AddUri(
              RowUri(options, ref->schema(), std::get<int64_t>(cell)));
          builder.AddTriple(subject, predicate_of(c), object);
        } else {
          builder.AddTriple(subject, predicate_of(c),
                            builder.AddLiteral(ValueToLexical(cell)));
        }
      }
    });
    RDFALIGN_RETURN_IF_ERROR(status);
  }
  return builder.Build(/*validate_rdf=*/true);
}

}  // namespace rdfalign::relational
