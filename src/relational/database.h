// A database: named tables with enforced referential integrity.

#ifndef RDFALIGN_RELATIONAL_DATABASE_H_
#define RDFALIGN_RELATIONAL_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relational/table.h"
#include "util/result.h"

namespace rdfalign::relational {

/// Tables in creation order with FK-checked mutation.
class Database {
 public:
  /// Adds a table; FK target tables must already exist.
  Status CreateTable(TableSchema schema);

  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  /// Tables in creation order (deterministic exports).
  const std::vector<Table>& tables() const { return tables_; }
  std::vector<Table>& tables() { return tables_; }

  /// Inserts with FK validation: every non-null referential cell must point
  /// at an existing row.
  Status Insert(const std::string& table, Row row);

  /// Deletes a row and cascades to referencing rows.
  Status DeleteCascade(const std::string& table, int64_t key);

  /// Full referential-integrity audit (tests; O(total cells)).
  Status ValidateIntegrity() const;

  /// Total live rows across tables.
  size_t TotalRows() const;

 private:
  std::vector<Table> tables_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace rdfalign::relational

#endif  // RDFALIGN_RELATIONAL_DATABASE_H_
