#include "relational/value.h"

#include <cstdio>

namespace rdfalign::relational {

std::string ValueToLexical(const Value& v) {
  if (std::holds_alternative<Null>(v)) return "";
  if (const auto* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

}  // namespace rdfalign::relational
