// A table: schema + rows with a primary-key index.

#ifndef RDFALIGN_RELATIONAL_TABLE_H_
#define RDFALIGN_RELATIONAL_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/status.h"

namespace rdfalign::relational {

using Row = std::vector<Value>;

/// An in-memory table. Rows are stored dense; deletion tombstones a row and
/// Compact() reclaims. Key lookups go through the PK hash index.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }

  /// Inserts a row (arity and PK uniqueness are checked; type checking is
  /// per-column kind).
  Status Insert(Row row);

  /// Deletes the row with the given primary key; NotFound when absent.
  Status Delete(int64_t key);

  /// Updates one cell of the row with the given key.
  Status UpdateCell(int64_t key, size_t column, Value value);

  /// Fetches a row by key; nullptr when absent.
  const Row* Find(int64_t key) const;

  /// The primary key of a stored row.
  int64_t KeyOf(const Row& row) const {
    return std::get<int64_t>(row[schema_.primary_key]);
  }

  /// Number of live rows.
  size_t NumRows() const { return pk_index_.size(); }

  /// Live rows in insertion order (skips tombstones).
  template <typename Fn>
  void ForEachRow(Fn&& fn) const {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (!tombstone_[i]) fn(rows_[i]);
    }
  }

  /// All live primary keys in insertion order.
  std::vector<int64_t> Keys() const;

  /// The largest key ever inserted (0 when empty) — key allocation helper.
  int64_t MaxKey() const { return max_key_; }

  /// Drops tombstoned rows and rebuilds the index.
  void Compact();

 private:
  Status CheckRow(const Row& row) const;

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<uint8_t> tombstone_;
  std::unordered_map<int64_t, size_t> pk_index_;
  int64_t max_key_ = 0;
};

}  // namespace rdfalign::relational

#endif  // RDFALIGN_RELATIONAL_TABLE_H_
