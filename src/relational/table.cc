#include "relational/table.h"

#include <algorithm>

namespace rdfalign::relational {

Status Table::CheckRow(const Row& row) const {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.columns.size()) + " for table " +
        schema_.name);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = schema_.columns[i];
    if (IsNull(row[i])) {
      if (!col.nullable || i == schema_.primary_key) {
        return Status::InvalidArgument("NULL in non-nullable column " +
                                       col.name);
      }
      continue;
    }
    bool ok = false;
    switch (col.type) {
      case ColumnType::kInteger:
        ok = std::holds_alternative<int64_t>(row[i]);
        break;
      case ColumnType::kReal:
        ok = std::holds_alternative<double>(row[i]) ||
             std::holds_alternative<int64_t>(row[i]);
        break;
      case ColumnType::kText:
        ok = std::holds_alternative<std::string>(row[i]);
        break;
    }
    if (!ok) {
      return Status::InvalidArgument("type mismatch in column " + col.name +
                                     " of table " + schema_.name);
    }
  }
  if (!std::holds_alternative<int64_t>(row[schema_.primary_key])) {
    return Status::InvalidArgument("primary key of table " + schema_.name +
                                   " must be an integer");
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  RDFALIGN_RETURN_IF_ERROR(CheckRow(row));
  int64_t key = std::get<int64_t>(row[schema_.primary_key]);
  if (pk_index_.count(key) > 0) {
    return Status::AlreadyExists("duplicate primary key " +
                                 std::to_string(key) + " in table " +
                                 schema_.name);
  }
  pk_index_.emplace(key, rows_.size());
  rows_.push_back(std::move(row));
  tombstone_.push_back(0);
  max_key_ = std::max(max_key_, key);
  return Status::OK();
}

Status Table::Delete(int64_t key) {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) {
    return Status::NotFound("no row with key " + std::to_string(key) +
                            " in table " + schema_.name);
  }
  tombstone_[it->second] = 1;
  pk_index_.erase(it);
  return Status::OK();
}

Status Table::UpdateCell(int64_t key, size_t column, Value value) {
  auto it = pk_index_.find(key);
  if (it == pk_index_.end()) {
    return Status::NotFound("no row with key " + std::to_string(key) +
                            " in table " + schema_.name);
  }
  if (column >= schema_.columns.size()) {
    return Status::OutOfRange("column index out of range");
  }
  if (column == schema_.primary_key) {
    return Status::InvalidArgument(
        "primary keys are persistent; updating them is not supported");
  }
  Row candidate = rows_[it->second];
  candidate[column] = std::move(value);
  RDFALIGN_RETURN_IF_ERROR(CheckRow(candidate));
  rows_[it->second] = std::move(candidate);
  return Status::OK();
}

const Row* Table::Find(int64_t key) const {
  auto it = pk_index_.find(key);
  return it == pk_index_.end() ? nullptr : &rows_[it->second];
}

std::vector<int64_t> Table::Keys() const {
  std::vector<int64_t> keys;
  keys.reserve(pk_index_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstone_[i]) keys.push_back(KeyOf(rows_[i]));
  }
  return keys;
}

void Table::Compact() {
  std::vector<Row> rows;
  rows.reserve(pk_index_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!tombstone_[i]) rows.push_back(std::move(rows_[i]));
  }
  rows_ = std::move(rows);
  tombstone_.assign(rows_.size(), 0);
  pk_index_.clear();
  for (size_t i = 0; i < rows_.size(); ++i) {
    pk_index_.emplace(KeyOf(rows_[i]), i);
  }
}

}  // namespace rdfalign::relational
