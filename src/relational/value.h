// Cell values of the relational substrate (DESIGN.md S12).

#ifndef RDFALIGN_RELATIONAL_VALUE_H_
#define RDFALIGN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace rdfalign::relational {

/// NULL marker.
struct Null {
  bool operator==(const Null&) const = default;
};

/// A cell: NULL, integer, real, or text.
using Value = std::variant<Null, int64_t, double, std::string>;

inline bool IsNull(const Value& v) {
  return std::holds_alternative<Null>(v);
}

/// Lexical form used by the Direct Mapping (plain literal label).
std::string ValueToLexical(const Value& v);

}  // namespace rdfalign::relational

#endif  // RDFALIGN_RELATIONAL_VALUE_H_
