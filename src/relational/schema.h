// Table schemas: columns, single-column integer primary keys, and foreign
// keys — the shape GtoPdb-style curated relational databases take and the
// input of the W3C Direct Mapping.

#ifndef RDFALIGN_RELATIONAL_SCHEMA_H_
#define RDFALIGN_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

namespace rdfalign::relational {

enum class ColumnType {
  kInteger,
  kReal,
  kText,
};

/// One column of a table.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool nullable = false;
};

/// A foreign key: `column` (by index) references the primary key of
/// `ref_table`.
struct ForeignKey {
  size_t column;
  std::string ref_table;
};

/// A table schema. The primary key is a single integer column (index
/// `primary_key`), which matches both GtoPdb's conventions and the paper's
/// "key values are generally persistent" ground-truth construction.
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  size_t primary_key = 0;
  std::vector<ForeignKey> foreign_keys;

  /// Index of a column by name; columns.size() when absent.
  size_t ColumnIndex(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) return i;
    }
    return columns.size();
  }

  /// True when `column` is referential (part of some foreign key).
  bool IsForeignKeyColumn(size_t column) const {
    for (const ForeignKey& fk : foreign_keys) {
      if (fk.column == column) return true;
    }
    return false;
  }
};

}  // namespace rdfalign::relational

#endif  // RDFALIGN_RELATIONAL_SCHEMA_H_
