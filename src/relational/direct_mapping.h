// W3C Direct Mapping of relational data to RDF [18] — the export scheme the
// paper applies to GtoPdb (§5.2):
//
//   1. every tuple gets a URI built from a base prefix, the table name and
//      the primary-key value:        <base><table>/<pk-col>=<key>
//   2. value attributes become literal triples with predicate
//      <base><table>#<column>
//   3. referential attributes become edges to the referenced tuple's URI
//      with predicate                <base><table>#ref-<column>
//   4. every tuple is typed:         <row> rdf:type <base><table>
//
// Exporting two versions with *different* base prefixes reproduces the
// paper's controlled setting: no URIs are shared across versions, so only
// the hybrid/overlap methods can align them, while (table, key) pairs give
// exact ground truth.

#ifndef RDFALIGN_RELATIONAL_DIRECT_MAPPING_H_
#define RDFALIGN_RELATIONAL_DIRECT_MAPPING_H_

#include <memory>
#include <string>

#include "rdf/graph.h"
#include "relational/database.h"
#include "util/result.h"

namespace rdfalign::relational {

/// Export configuration.
struct DirectMappingOptions {
  /// Version-specific URI prefix, e.g. "http://gtopdb.example/ver3/".
  std::string base_uri = "http://example.org/db/";
  /// Emit rdf:type triples (rule 4).
  bool emit_type_triples = true;
  /// Skip NULL cells (the standard behaviour).
  bool skip_nulls = true;
};

/// The URI of a tuple under the mapping (rule 1).
std::string RowUri(const DirectMappingOptions& options,
                   const TableSchema& schema, int64_t key);

/// The predicate URI of a value column (rule 2).
std::string ColumnPredicateUri(const DirectMappingOptions& options,
                               const TableSchema& schema, size_t column);

/// The predicate URI of a referential column (rule 3).
std::string RefPredicateUri(const DirectMappingOptions& options,
                            const TableSchema& schema, size_t column);

/// The class URI of a table (rule 4).
std::string TableTypeUri(const DirectMappingOptions& options,
                         const TableSchema& schema);

/// Exports the whole database as one RDF graph. Pass a shared dictionary so
/// two versions can be aligned afterwards.
Result<rdfalign::TripleGraph> ExportDirectMapping(
    const Database& db, const DirectMappingOptions& options,
    std::shared_ptr<rdfalign::Dictionary> dict);

}  // namespace rdfalign::relational

#endif  // RDFALIGN_RELATIONAL_DIRECT_MAPPING_H_
