#include "relational/database.h"

namespace rdfalign::relational {

Status Database::CreateTable(TableSchema schema) {
  if (index_.count(schema.name) > 0) {
    return Status::AlreadyExists("table " + schema.name + " already exists");
  }
  for (const ForeignKey& fk : schema.foreign_keys) {
    if (index_.count(fk.ref_table) == 0 && fk.ref_table != schema.name) {
      return Status::InvalidArgument("foreign key of " + schema.name +
                                     " references unknown table " +
                                     fk.ref_table);
    }
    if (fk.column >= schema.columns.size()) {
      return Status::OutOfRange("foreign key column index out of range");
    }
  }
  index_.emplace(schema.name, tables_.size());
  tables_.emplace_back(std::move(schema));
  return Status::OK();
}

Table* Database::GetTable(const std::string& name) {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &tables_[it->second];
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &tables_[it->second];
}

Status Database::Insert(const std::string& table, Row row) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table " + table);
  for (const ForeignKey& fk : t->schema().foreign_keys) {
    const Value& cell = row.size() > fk.column ? row[fk.column] : Value{Null{}};
    if (IsNull(cell)) continue;
    const Table* ref = GetTable(fk.ref_table);
    if (ref == nullptr || !std::holds_alternative<int64_t>(cell) ||
        ref->Find(std::get<int64_t>(cell)) == nullptr) {
      return Status::InvalidArgument(
          "foreign key violation: " + table + "." +
          t->schema().columns[fk.column].name + " -> " + fk.ref_table);
    }
  }
  return t->Insert(std::move(row));
}

Status Database::DeleteCascade(const std::string& table, int64_t key) {
  Table* t = GetTable(table);
  if (t == nullptr) return Status::NotFound("no table " + table);
  RDFALIGN_RETURN_IF_ERROR(t->Delete(key));
  // Cascade: delete rows in any table whose FK cell referenced this row.
  for (Table& other : tables_) {
    for (const ForeignKey& fk : other.schema().foreign_keys) {
      if (fk.ref_table != table) continue;
      std::vector<int64_t> doomed;
      other.ForEachRow([&](const Row& row) {
        const Value& cell = row[fk.column];
        if (!IsNull(cell) && std::get<int64_t>(cell) == key) {
          doomed.push_back(other.KeyOf(row));
        }
      });
      for (int64_t k : doomed) {
        RDFALIGN_RETURN_IF_ERROR(DeleteCascade(other.schema().name, k));
      }
    }
  }
  return Status::OK();
}

Status Database::ValidateIntegrity() const {
  for (const Table& t : tables_) {
    for (const ForeignKey& fk : t.schema().foreign_keys) {
      const Table* ref = GetTable(fk.ref_table);
      if (ref == nullptr) {
        return Status::Corruption("dangling FK table " + fk.ref_table);
      }
      Status status = Status::OK();
      t.ForEachRow([&](const Row& row) {
        const Value& cell = row[fk.column];
        if (IsNull(cell)) return;
        if (ref->Find(std::get<int64_t>(cell)) == nullptr) {
          status = Status::Corruption(
              "FK violation in " + t.schema().name + "." +
              t.schema().columns[fk.column].name + ": key " +
              ValueToLexical(cell) + " missing in " + fk.ref_table);
        }
      });
      RDFALIGN_RETURN_IF_ERROR(status);
    }
  }
  return Status::OK();
}

size_t Database::TotalRows() const {
  size_t n = 0;
  for (const Table& t : tables_) n += t.NumRows();
  return n;
}

}  // namespace rdfalign::relational
