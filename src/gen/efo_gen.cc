#include "gen/efo_gen.h"

#include <algorithm>

#include "gen/textgen.h"

namespace rdfalign::gen {

namespace {

constexpr char kOldPrefix[] = "http://purl.org/obo/owl/EFO#EFO_";
constexpr char kNewPrefix[] = "http://purl.obolibrary.org/obo/EFO_";

// Vocabulary predicates/classes (stable across versions, as in real EFO).
constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr char kRdfsLabel[] = "http://www.w3.org/2000/01/rdf-schema#label";
constexpr char kRdfsSubClassOf[] =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
constexpr char kOwlClass[] = "http://www.w3.org/2002/07/owl#Class";
constexpr char kOwlAxiom[] = "http://www.w3.org/2002/07/owl#Axiom";
constexpr char kAnnotatedSource[] =
    "http://www.w3.org/2002/07/owl#annotatedSource";
constexpr char kAnnotatedProperty[] =
    "http://www.w3.org/2002/07/owl#annotatedProperty";
constexpr char kAnnotatedTarget[] =
    "http://www.w3.org/2002/07/owl#annotatedTarget";
constexpr char kDefinition[] = "http://purl.obolibrary.org/obo/IAO_0000115";
constexpr char kHasExactSynonym[] =
    "http://www.geneontology.org/formats/oboInOwl#hasExactSynonym";
constexpr char kHasDbXref[] =
    "http://www.geneontology.org/formats/oboInOwl#hasDbXref";
constexpr char kDcCreator[] = "http://purl.org/dc/elements/1.1/creator";
constexpr char kDcDate[] = "http://purl.org/dc/elements/1.1/date";
constexpr char kHasMetadata[] = "http://efo.example/vocab#hasMetadata";

}  // namespace

std::string EfoChain::ClassUri(const ClassEntity& e, size_t version) const {
  return (e.MigratedAt(version) ? kNewPrefix : kOldPrefix) +
         std::to_string(1000000 + e.id);
}

EfoChain EfoChain::Generate(const EfoOptions& options) {
  EfoChain chain;
  chain.options_ = options;
  chain.dict_ = std::make_shared<rdfalign::Dictionary>();
  Rng rng(options.seed);

  // --- create the initial entity population -----------------------------
  auto new_entity = [&](size_t born) {
    ClassEntity e;
    e.id = chain.entities_.size();
    e.label = RandomName(rng) + " " + RandomWord(rng, 2, 3);
    e.definition = RandomSentence(rng, 8, 18);
    e.comment = RandomSentence(rng, 5, 12);
    const size_t syns = 2 + rng.Uniform(3);  // 2-4 synonyms
    for (size_t s = 0; s < syns; ++s) {
      e.synonyms.push_back(RandomSentence(rng, 1, 3));
    }
    e.born = born;
    if (!chain.entities_.empty() && rng.Bernoulli(0.85)) {
      e.parent = chain.entities_[rng.Uniform(chain.entities_.size())].id;
    }
    if (rng.Bernoulli(0.35)) {
      e.has_record = true;
      e.record_creator = RandomName(rng);
      e.record_date = std::to_string(2005 + rng.Uniform(20)) + "-" +
                      std::to_string(1 + rng.Uniform(12));
    }
    chain.entities_.push_back(std::move(e));
  };
  for (size_t i = 0; i < options.initial_classes; ++i) new_entity(0);

  // --- schedule ontology changes -----------------------------------------
  {
    // Big migration batch between big_migration_version and +1.
    const size_t batch = static_cast<size_t>(
        static_cast<double>(chain.entities_.size()) *
        options.big_migration_fraction);
    std::vector<uint64_t> idx =
        rng.SampleDistinct(chain.entities_.size(), batch);
    for (uint64_t i : idx) {
      chain.entities_[i].migrate_at = options.big_migration_version + 1;
    }
    // Hiatus cohort: hidden in [hiatus_start, hiatus_end), reappears
    // migrated.
    const size_t hiatus = static_cast<size_t>(
        static_cast<double>(chain.entities_.size()) *
        options.hiatus_fraction);
    std::vector<uint64_t> hidx =
        rng.SampleDistinct(chain.entities_.size(), hiatus);
    for (uint64_t i : hidx) {
      ClassEntity& e = chain.entities_[i];
      if (e.migrate_at != SIZE_MAX) continue;  // keep cohorts disjoint
      e.hide_from = options.hiatus_start;
      e.hide_until = options.hiatus_end;
      e.migrate_at = options.hiatus_end;
    }
  }

  // --- emit versions while evolving ---------------------------------------
  for (size_t v = 0; v < options.versions; ++v) {
    if (v > 0) {
      // Retire some classes.
      std::vector<size_t> alive;
      for (size_t i = 0; i < chain.entities_.size(); ++i) {
        if (chain.entities_[i].AliveAt(v - 1) &&
            chain.entities_[i].died == SIZE_MAX) {
          alive.push_back(i);
        }
      }
      const size_t deaths = static_cast<size_t>(
          static_cast<double>(alive.size()) * options.delete_rate);
      for (uint64_t k : rng.SampleDistinct(alive.size(), deaths)) {
        chain.entities_[alive[k]].died = v;
      }
      // Insert new classes.
      const size_t births = static_cast<size_t>(
          static_cast<double>(alive.size()) * options.insert_rate);
      for (size_t i = 0; i < births; ++i) new_entity(v);
      // Edit literals.
      for (ClassEntity& e : chain.entities_) {
        if (!e.AliveAt(v)) continue;
        if (rng.Bernoulli(options.literal_edit_rate)) {
          switch (rng.Uniform(4)) {
            case 0:
              e.label = ApplyTypo(e.label, rng);
              break;
            case 1:
              e.definition = ApplyTypo(e.definition, rng);
              break;
            case 2:
              e.comment = ApplyTypo(e.comment, rng);
              break;
            default:
              if (!e.synonyms.empty()) {
                auto& syn = e.synonyms[rng.Uniform(e.synonyms.size())];
                syn = ApplyTypo(syn, rng);
              }
          }
        }
      }
    }
    chain.EmitVersion(v, rng);
  }
  return chain;
}

void EfoChain::EmitVersion(size_t v, Rng& rng) {
  rdfalign::GraphBuilder builder(dict_);
  std::unordered_map<uint64_t, rdfalign::NodeId> class_nodes;

  const rdfalign::NodeId type_p = builder.AddUri(kRdfType);
  const rdfalign::NodeId label_p = builder.AddUri(kRdfsLabel);
  const rdfalign::NodeId comment_p =
      builder.AddUri("http://www.w3.org/2000/01/rdf-schema#comment");
  const rdfalign::NodeId subclass_p = builder.AddUri(kRdfsSubClassOf);
  const rdfalign::NodeId owl_class = builder.AddUri(kOwlClass);
  const rdfalign::NodeId owl_axiom = builder.AddUri(kOwlAxiom);
  const rdfalign::NodeId ann_source = builder.AddUri(kAnnotatedSource);
  const rdfalign::NodeId ann_property = builder.AddUri(kAnnotatedProperty);
  const rdfalign::NodeId ann_target = builder.AddUri(kAnnotatedTarget);
  const rdfalign::NodeId def_p = builder.AddUri(kDefinition);
  const rdfalign::NodeId synonym_p = builder.AddUri(kHasExactSynonym);
  const rdfalign::NodeId xref_p = builder.AddUri(kHasDbXref);
  const rdfalign::NodeId creator_p = builder.AddUri(kDcCreator);
  const rdfalign::NodeId date_p = builder.AddUri(kDcDate);
  const rdfalign::NodeId metadata_p = builder.AddUri(kHasMetadata);

  // Per-version blank duplication rate fluctuates (the paper's observed
  // 7-15% swings in blank counts).
  const double dup_rate =
      options_.blank_dup_base +
      options_.blank_dup_amplitude * rng.UniformReal();

  size_t blank_counter = 0;
  auto fresh_blank = [&]() {
    // Local names are version-scoped — they carry no cross-version identity.
    return builder.AddBlank("b" + std::to_string(blank_counter++));
  };

  for (const ClassEntity& e : entities_) {
    if (!e.AliveAt(v)) continue;
    const rdfalign::NodeId cls = builder.AddUri(ClassUri(e, v));
    class_nodes[e.id] = cls;
    builder.AddTriple(cls, type_p, owl_class);
    builder.AddTriple(cls, label_p, builder.AddLiteral(e.label));
    builder.AddTriple(cls, def_p, builder.AddLiteral(e.definition));
    builder.AddTriple(cls, comment_p, builder.AddLiteral(e.comment));
    if (e.parent != UINT64_MAX) {
      const ClassEntity& parent = entities_[e.parent];
      if (parent.AliveAt(v)) {
        builder.AddTriple(cls, subclass_p,
                          builder.AddUri(ClassUri(parent, v)));
      }
    }
    for (size_t s = 0; s < e.synonyms.size(); ++s) {
      const rdfalign::NodeId syn_lit = builder.AddLiteral(e.synonyms[s]);
      builder.AddTriple(cls, synonym_p, syn_lit);
      // A stable subset of synonyms carries a reified annotation axiom
      // (blank record), sometimes duplicated into a bisimilar twin — the
      // duplication rate fluctuates per version while reification itself is
      // an entity property (so blank *contents* persist across versions).
      if ((e.id * 7 + s) % 10 >= 3) continue;
      const size_t copies = rng.Bernoulli(dup_rate) ? 2 : 1;
      const std::string xref =
          "EFO:" + std::to_string(e.id) + "-" + std::to_string(s);
      for (size_t copy = 0; copy < copies; ++copy) {
        const rdfalign::NodeId ax = fresh_blank();
        builder.AddTriple(ax, type_p, owl_axiom);
        builder.AddTriple(ax, ann_source, cls);
        builder.AddTriple(ax, ann_property, synonym_p);
        builder.AddTriple(ax, ann_target, syn_lit);
        builder.AddTriple(ax, xref_p, builder.AddLiteral(xref));
      }
    }
    if (e.has_record) {
      const rdfalign::NodeId rec = fresh_blank();
      builder.AddTriple(cls, metadata_p, rec);
      builder.AddTriple(rec, creator_p,
                        builder.AddLiteral(e.record_creator));
      builder.AddTriple(rec, date_p, builder.AddLiteral(e.record_date));
    }
  }

  auto graph = builder.Build(/*validate_rdf=*/true);
  // Generation cannot produce invalid RDF; surface violations loudly in
  // debug builds.
  versions_.push_back(std::move(graph).value());
  class_nodes_.push_back(std::move(class_nodes));
}

GroundTruth EfoChain::ClassGroundTruth(size_t v1, size_t v2) const {
  GroundTruth gt;
  for (const ClassEntity& e : entities_) {
    if (!e.AliveAt(v1) || !e.AliveAt(v2)) continue;
    auto it1 = class_nodes_[v1].find(e.id);
    auto it2 = class_nodes_[v2].find(e.id);
    if (it1 != class_nodes_[v1].end() && it2 != class_nodes_[v2].end()) {
      gt.AddPair(it1->second, it2->second);
    }
  }
  return gt;
}

size_t EfoChain::AliveClasses(size_t v) const {
  size_t count = 0;
  for (const ClassEntity& e : entities_) {
    if (e.AliveAt(v)) ++count;
  }
  return count;
}

}  // namespace rdfalign::gen
