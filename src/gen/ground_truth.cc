#include "gen/ground_truth.h"

namespace rdfalign::gen {

using rdfalign::ColorId;
using rdfalign::CombinedGraph;
using rdfalign::NodeId;
using rdfalign::Partition;

PrecisionStats EvaluatePrecision(const CombinedGraph& cg, const Partition& p,
                                 const GroundTruth& gt,
                                 bool non_literals_only) {
  // Per class: how many members on each side.
  std::vector<uint32_t> source_count(p.NumColors(), 0);
  std::vector<uint32_t> target_count(p.NumColors(), 0);
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    if (cg.InSource(n)) {
      ++source_count[p.ColorOf(n)];
    } else {
      ++target_count[p.ColorOf(n)];
    }
  }

  const rdfalign::TripleGraph& g = cg.graph();
  PrecisionStats stats;

  auto classify = [&](NodeId node_combined, NodeId partner_combined,
                      uint32_t opposite_count) {
    ++stats.evaluated;
    const bool has_partner = partner_combined != rdfalign::kInvalidNode;
    const bool aligned = opposite_count > 0;
    if (!has_partner) {
      aligned ? ++stats.false_matches : ++stats.true_negatives;
      return;
    }
    if (!aligned) {
      ++stats.missing;
      return;
    }
    const bool partner_in_class =
        p.ColorOf(partner_combined) == p.ColorOf(node_combined);
    if (!partner_in_class) {
      ++stats.missing;
    } else if (opposite_count == 1) {
      ++stats.exact;
    } else {
      ++stats.inclusive;
    }
  };

  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    if (non_literals_only && g.IsLiteral(n)) continue;
    if (cg.InSource(n)) {
      NodeId partner = gt.TargetOf(cg.ToLocal(n));
      classify(n,
               partner == rdfalign::kInvalidNode ? rdfalign::kInvalidNode
                                                 : cg.FromTarget(partner),
               target_count[p.ColorOf(n)]);
    } else {
      NodeId partner = gt.SourceOf(cg.ToLocal(n));
      classify(n,
               partner == rdfalign::kInvalidNode ? rdfalign::kInvalidNode
                                                 : cg.FromSource(partner),
               source_count[p.ColorOf(n)]);
    }
  }
  return stats;
}

PrecisionStats EvaluatePrecisionCovered(const CombinedGraph& cg,
                                        const Partition& p,
                                        const GroundTruth& gt) {
  std::vector<uint32_t> source_count(p.NumColors(), 0);
  std::vector<uint32_t> target_count(p.NumColors(), 0);
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    if (cg.InSource(n)) {
      ++source_count[p.ColorOf(n)];
    } else {
      ++target_count[p.ColorOf(n)];
    }
  }
  PrecisionStats stats;
  for (const auto& [a, b] : gt.pairs()) {
    NodeId n = cg.FromSource(a);
    NodeId m = cg.FromTarget(b);
    ++stats.evaluated;
    if (target_count[p.ColorOf(n)] == 0) {
      ++stats.missing;
    } else if (p.ColorOf(n) != p.ColorOf(m)) {
      ++stats.missing;
    } else if (target_count[p.ColorOf(n)] == 1 &&
               source_count[p.ColorOf(m)] == 1) {
      ++stats.exact;
    } else {
      ++stats.inclusive;
    }
  }
  return stats;
}

}  // namespace rdfalign::gen
