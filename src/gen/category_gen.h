// The DBpedia-categories simulation (§5.3; DESIGN.md substitution table).
//
// Fig. 16 only needs a *scalability* workload: a chain of progressively
// growing versions whose alignment cost can be timed. The generator builds
// a SKOS-style category hierarchy (preferential attachment) plus article
// categorization edges, growing each version and churning a small fraction
// of labels/URIs. Scale is a single knob; the default is far below
// DBpedia's millions of nodes so the whole bench suite stays fast, and
// benches accept a scale multiplier.

#ifndef RDFALIGN_GEN_CATEGORY_GEN_H_
#define RDFALIGN_GEN_CATEGORY_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "util/random.h"

namespace rdfalign::gen {

/// Generation parameters.
struct CategoryOptions {
  size_t initial_categories = 2500;
  size_t initial_articles = 12000;
  size_t versions = 6;
  double growth = 1.11;          ///< per-version node growth factor
  double label_edit_rate = 0.02; ///< labels touched per version
  double rename_rate = 0.01;     ///< categories renamed (URI change)
  uint64_t seed = 5;

  /// The shared bench/CLI sizing convention: scale 1.0 is the base point
  /// (2500 categories / 12000 articles), floored so tiny smoke scales
  /// stay well-formed. Used by refinement_bench, store_bench, and
  /// `rdfalign gen` so their workloads stay in lockstep.
  static CategoryOptions FromScale(double scale, size_t versions,
                                   uint64_t seed) {
    CategoryOptions options;
    options.initial_categories =
        static_cast<size_t>(2500 * scale < 8 ? 8 : 2500 * scale);
    options.initial_articles =
        static_cast<size_t>(12000 * scale < 16 ? 16 : 12000 * scale);
    options.versions = versions;
    options.seed = seed;
    return options;
  }
};

/// A generated chain of category-graph versions sharing one dictionary.
class CategoryChain {
 public:
  static CategoryChain Generate(const CategoryOptions& options = {});

  size_t NumVersions() const { return versions_.size(); }
  const rdfalign::TripleGraph& Version(size_t v) const {
    return versions_[v];
  }
  const std::shared_ptr<rdfalign::Dictionary>& dict() const { return dict_; }

 private:
  std::shared_ptr<rdfalign::Dictionary> dict_;
  std::vector<rdfalign::TripleGraph> versions_;
};

}  // namespace rdfalign::gen

#endif  // RDFALIGN_GEN_CATEGORY_GEN_H_
