#include "gen/gtopdb_gen.h"

#include <algorithm>

#include "gen/textgen.h"

namespace rdfalign::gen {

using relational::ColumnDef;
using relational::ColumnType;
using relational::Database;
using relational::DirectMappingOptions;
using relational::ForeignKey;
using relational::Null;
using relational::Row;
using relational::Table;
using relational::TableSchema;
using relational::Value;

namespace {

TableSchema LigandSchema() {
  return TableSchema{
      .name = "ligand",
      .columns = {{"ligand_id", ColumnType::kInteger, false},
                  {"name", ColumnType::kText, false},
                  {"type", ColumnType::kText, false},
                  {"approved", ColumnType::kInteger, false},
                  {"comment", ColumnType::kText, true}},
      .primary_key = 0,
      .foreign_keys = {}};
}

TableSchema TargetSchema() {
  return TableSchema{
      .name = "target",
      .columns = {{"target_id", ColumnType::kInteger, false},
                  {"name", ColumnType::kText, false},
                  {"family", ColumnType::kText, false},
                  {"species", ColumnType::kText, false}},
      .primary_key = 0,
      .foreign_keys = {}};
}

TableSchema InteractionSchema() {
  return TableSchema{
      .name = "interaction",
      .columns = {{"interaction_id", ColumnType::kInteger, false},
                  {"ligand_id", ColumnType::kInteger, false},
                  {"target_id", ColumnType::kInteger, false},
                  {"affinity", ColumnType::kReal, true},
                  {"units", ColumnType::kText, true},
                  {"action", ColumnType::kText, false}},
      .primary_key = 0,
      .foreign_keys = {{1, "ligand"}, {2, "target"}}};
}

TableSchema ReferenceSchema() {
  return TableSchema{
      .name = "reference",
      .columns = {{"reference_id", ColumnType::kInteger, false},
                  {"title", ColumnType::kText, false},
                  {"journal", ColumnType::kText, false},
                  {"year", ColumnType::kInteger, false}},
      .primary_key = 0,
      .foreign_keys = {}};
}

TableSchema InteractionRefSchema() {
  return TableSchema{
      .name = "interaction_ref",
      .columns = {{"link_id", ColumnType::kInteger, false},
                  {"interaction_id", ColumnType::kInteger, false},
                  {"reference_id", ColumnType::kInteger, false}},
      .primary_key = 0,
      .foreign_keys = {{1, "interaction"}, {2, "reference"}}};
}

const char* kLigandTypes[] = {"Synthetic organic", "Peptide", "Antibody",
                              "Natural product", "Inorganic"};
const char* kFamilies[] = {"GPCR", "Ion channel", "Kinase", "Transporter",
                           "Nuclear receptor", "Enzyme"};
const char* kSpecies[] = {"Human", "Mouse", "Rat"};
const char* kActions[] = {"Agonist", "Antagonist", "Inhibitor",
                          "Activator", "Modulator"};
const char* kUnits[] = {"pKi", "pIC50", "pEC50", "pKd"};
const char* kJournals[] = {"Br J Pharmacol", "Nucleic Acids Res",
                           "Mol Pharmacol", "J Med Chem"};

template <size_t N>
std::string Pick(Rng& rng, const char* const (&arr)[N]) {
  return arr[rng.Uniform(N)];
}

void InsertLigand(Database& db, int64_t key, Rng& rng) {
  Row row{key, Value{RandomName(rng)}, Value{Pick(rng, kLigandTypes)},
          Value{static_cast<int64_t>(rng.Uniform(2))},
          rng.Bernoulli(0.6) ? Value{RandomSentence(rng, 4, 12)}
                             : Value{Null{}}};
  db.Insert("ligand", std::move(row)).ok();
}

void InsertTarget(Database& db, int64_t key, Rng& rng) {
  Row row{key, Value{RandomName(rng) + " receptor"},
          Value{Pick(rng, kFamilies)}, Value{Pick(rng, kSpecies)}};
  db.Insert("target", std::move(row)).ok();
}

void InsertReference(Database& db, int64_t key, Rng& rng) {
  Row row{key, Value{RandomSentence(rng, 5, 11)}, Value{Pick(rng, kJournals)},
          Value{static_cast<int64_t>(1990 + rng.Uniform(35))}};
  db.Insert("reference", std::move(row)).ok();
}

bool InsertInteraction(Database& db, int64_t key, Rng& rng) {
  std::vector<int64_t> ligands = db.GetTable("ligand")->Keys();
  std::vector<int64_t> targets = db.GetTable("target")->Keys();
  if (ligands.empty() || targets.empty()) return false;
  Row row{key,
          Value{ligands[rng.Uniform(ligands.size())]},
          Value{targets[rng.Uniform(targets.size())]},
          Value{4.0 + rng.UniformReal() * 6.0},
          Value{Pick(rng, kUnits)},
          Value{Pick(rng, kActions)}};
  return db.Insert("interaction", std::move(row)).ok();
}

bool InsertInteractionRef(Database& db, int64_t key, Rng& rng) {
  std::vector<int64_t> interactions = db.GetTable("interaction")->Keys();
  std::vector<int64_t> refs = db.GetTable("reference")->Keys();
  if (interactions.empty() || refs.empty()) return false;
  Row row{key, Value{interactions[rng.Uniform(interactions.size())]},
          Value{refs[rng.Uniform(refs.size())]}};
  return db.Insert("interaction_ref", std::move(row)).ok();
}

Database MakeBaseDatabase(const GtoPdbOptions& options, Rng& rng) {
  Database db;
  db.CreateTable(LigandSchema()).ok();
  db.CreateTable(TargetSchema()).ok();
  db.CreateTable(InteractionSchema()).ok();
  db.CreateTable(ReferenceSchema()).ok();
  db.CreateTable(InteractionRefSchema()).ok();

  const size_t ligands = options.num_ligands;
  const size_t targets = std::max<size_t>(1, ligands / 3);
  const size_t references = std::max<size_t>(1, ligands / 2);
  const size_t interactions = ligands + ligands / 2;
  const size_t links = interactions;

  for (size_t i = 1; i <= ligands; ++i) {
    InsertLigand(db, static_cast<int64_t>(i), rng);
  }
  for (size_t i = 1; i <= targets; ++i) {
    InsertTarget(db, static_cast<int64_t>(i), rng);
  }
  for (size_t i = 1; i <= references; ++i) {
    InsertReference(db, static_cast<int64_t>(i), rng);
  }
  for (size_t i = 1; i <= interactions; ++i) {
    InsertInteraction(db, static_cast<int64_t>(i), rng);
  }
  for (size_t i = 1; i <= links; ++i) {
    InsertInteractionRef(db, static_cast<int64_t>(i), rng);
  }
  return db;
}

}  // namespace

void EvolveGtoPdb(Database& db, const GtoPdbEvolveRates& rates, Rng& rng) {
  // Deletions first (cascade), over the entity tables.
  for (const char* table : {"ligand", "target", "reference"}) {
    std::vector<int64_t> keys = db.GetTable(table)->Keys();
    const size_t doomed = static_cast<size_t>(
        static_cast<double>(keys.size()) * rates.delete_rate);
    for (uint64_t idx : rng.SampleDistinct(keys.size(),
                                           std::min(doomed, keys.size()))) {
      db.DeleteCascade(table, keys[idx]).ok();
    }
  }

  // Literal edits: typos in text cells, jitter in numeric cells.
  for (relational::Table& table : db.tables()) {
    const TableSchema& schema = table.schema();
    std::vector<int64_t> keys = table.Keys();
    for (int64_t key : keys) {
      const Row* row = table.Find(key);
      for (size_t c = 0; c < schema.columns.size(); ++c) {
        if (c == schema.primary_key || schema.IsForeignKeyColumn(c)) continue;
        const Value& cell = (*row)[c];
        if (IsNull(cell)) continue;
        if (schema.columns[c].type == ColumnType::kText &&
            rng.Bernoulli(rates.text_edit_rate)) {
          table
              .UpdateCell(key, c,
                          Value{ApplyTypo(std::get<std::string>(cell), rng)})
              .ok();
          row = table.Find(key);
        } else if (schema.columns[c].type == ColumnType::kReal &&
                   std::holds_alternative<double>(cell) &&
                   rng.Bernoulli(rates.numeric_edit_rate)) {
          table
              .UpdateCell(key, c,
                          Value{std::get<double>(cell) +
                                (rng.UniformReal() - 0.5) * 0.2})
              .ok();
          row = table.Find(key);
        }
      }
    }
  }

  // Insertions, respecting FK order. New keys continue beyond MaxKey so
  // keys stay persistent.
  auto grow = [&](const char* table, auto&& insert_fn) {
    Table* t = db.GetTable(table);
    const size_t additions = static_cast<size_t>(
        static_cast<double>(t->NumRows()) * rates.insert_rate);
    int64_t next = t->MaxKey() + 1;
    for (size_t i = 0; i < additions; ++i) {
      insert_fn(db, next++, rng);
    }
  };
  grow("ligand", [](Database& d, int64_t k, Rng& r) { InsertLigand(d, k, r); });
  grow("target", [](Database& d, int64_t k, Rng& r) { InsertTarget(d, k, r); });
  grow("reference",
       [](Database& d, int64_t k, Rng& r) { InsertReference(d, k, r); });
  grow("interaction",
       [](Database& d, int64_t k, Rng& r) { InsertInteraction(d, k, r); });
  grow("interaction_ref",
       [](Database& d, int64_t k, Rng& r) { InsertInteractionRef(d, k, r); });
}

GtoPdbChain GenerateGtoPdbChain(const GtoPdbOptions& options) {
  Rng rng(options.seed);
  GtoPdbChain chain;
  chain.versions.push_back(MakeBaseDatabase(options, rng));
  for (size_t v = 1; v < options.versions; ++v) {
    Database next = chain.versions.back();
    GtoPdbEvolveRates rates = options.rates;
    if (options.churn_burst_version != 0 &&
        v == options.churn_burst_version) {
      rates.insert_rate *= 4.0;  // the paper's high-churn 3->4 transition
      rates.delete_rate *= 2.0;
    }
    EvolveGtoPdb(next, rates, rng);
    chain.versions.push_back(std::move(next));
  }
  return chain;
}

std::string GtoPdbVersionPrefix(size_t version) {
  return "http://gtopdb.example/ver" + std::to_string(version + 1) + "/";
}

Result<rdfalign::TripleGraph> ExportGtoPdbVersion(
    const Database& db, size_t version,
    std::shared_ptr<rdfalign::Dictionary> dict) {
  DirectMappingOptions options;
  options.base_uri = GtoPdbVersionPrefix(version);
  return relational::ExportDirectMapping(db, options, std::move(dict));
}

GroundTruth RelationalGroundTruth(const Database& db1,
                                  const rdfalign::TripleGraph& g1,
                                  size_t version1, const Database& db2,
                                  const rdfalign::TripleGraph& g2,
                                  size_t version2) {
  DirectMappingOptions opt1;
  opt1.base_uri = GtoPdbVersionPrefix(version1);
  DirectMappingOptions opt2;
  opt2.base_uri = GtoPdbVersionPrefix(version2);

  GroundTruth gt;
  auto add_if_present = [&](const std::string& uri1,
                            const std::string& uri2) {
    rdfalign::NodeId a = g1.FindUri(uri1);
    rdfalign::NodeId b = g2.FindUri(uri2);
    if (a != rdfalign::kInvalidNode && b != rdfalign::kInvalidNode) {
      gt.AddPair(a, b);
    }
  };

  for (const Table& t1 : db1.tables()) {
    const Table* t2 = db2.GetTable(t1.schema().name);
    if (t2 == nullptr) continue;
    const TableSchema& s1 = t1.schema();
    const TableSchema& s2 = t2->schema();
    // Schema objects: type node and per-column predicates.
    add_if_present(TableTypeUri(opt1, s1), TableTypeUri(opt2, s2));
    for (size_t c = 0; c < s1.columns.size(); ++c) {
      if (c == s1.primary_key) continue;
      if (s1.IsForeignKeyColumn(c)) {
        add_if_present(RefPredicateUri(opt1, s1, c),
                       RefPredicateUri(opt2, s2, c));
      } else {
        add_if_present(ColumnPredicateUri(opt1, s1, c),
                       ColumnPredicateUri(opt2, s2, c));
      }
    }
    // Tuples by persistent key.
    for (int64_t key : t1.Keys()) {
      if (t2->Find(key) == nullptr) continue;
      add_if_present(RowUri(opt1, s1, key), RowUri(opt2, s2, key));
    }
  }
  return gt;
}

}  // namespace rdfalign::gen
