// The EFO simulation (§5.1; DESIGN.md substitution table).
//
// An ontology-shaped evolving RDF chain with the phenomena the EFO
// experiments exercise:
//   * literal-heavy content (>75% of nodes are literals, ~10% URIs,
//     fluctuating 5-15% blanks — Fig. 9's proportions),
//   * blank-node reification (axiom and metadata records) whose local names
//     are fresh in every version, so only deblanking can align them,
//   * bisimilar blank duplication at a per-version fluctuating rate (the
//     paper's observed duplicate blanks),
//   * staged URI-prefix migration (old purl -> new purl), including a
//     cohort that disappears for two versions and reappears migrated — the
//     §5.1 ontology-change story that hybrid/overlap recover,
//   * literal typos between versions (absorbed only by overlap).

#ifndef RDFALIGN_GEN_EFO_GEN_H_
#define RDFALIGN_GEN_EFO_GEN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gen/ground_truth.h"
#include "rdf/graph.h"
#include "util/random.h"

namespace rdfalign::gen {

/// Generation parameters.
struct EfoOptions {
  size_t initial_classes = 300;
  size_t versions = 10;
  uint64_t seed = 11;
  double insert_rate = 0.05;        ///< new classes per version
  double delete_rate = 0.02;        ///< retired classes per version
  double literal_edit_rate = 0.03;  ///< class literals touched per version
  double blank_dup_base = 0.03;     ///< bisimilar duplicate blanks, base
  double blank_dup_amplitude = 0.30;///< per-version fluctuation
  /// Fraction of classes migrating URI prefix in the big batch (which
  /// happens between versions 7 and 8, as in the paper).
  double big_migration_fraction = 0.25;
  size_t big_migration_version = 7;
  /// Fraction hidden for versions [hiatus_start, hiatus_end) and
  /// reappearing already migrated.
  double hiatus_fraction = 0.05;
  size_t hiatus_start = 2;
  size_t hiatus_end = 4;
};

/// A generated chain of ontology versions plus entity bookkeeping.
class EfoChain {
 public:
  static EfoChain Generate(const EfoOptions& options = {});

  size_t NumVersions() const { return versions_.size(); }
  const rdfalign::TripleGraph& Version(size_t v) const {
    return versions_[v];
  }
  const std::shared_ptr<rdfalign::Dictionary>& dict() const { return dict_; }

  /// Ground truth over class-URI nodes between two versions (entities alive
  /// in both).
  GroundTruth ClassGroundTruth(size_t v1, size_t v2) const;

  /// Number of class entities alive in a version.
  size_t AliveClasses(size_t v) const;

 private:
  struct ClassEntity {
    uint64_t id = 0;
    std::string label;
    std::string definition;
    std::string comment;
    std::vector<std::string> synonyms;
    uint64_t parent = UINT64_MAX;
    size_t born = 0;
    size_t died = SIZE_MAX;          ///< first version it is absent from
    size_t migrate_at = SIZE_MAX;    ///< first version using the new prefix
    size_t hide_from = SIZE_MAX;
    size_t hide_until = SIZE_MAX;
    bool has_record = false;         ///< metadata record blank
    std::string record_creator;
    std::string record_date;

    bool AliveAt(size_t v) const {
      if (v < born || v >= died) return false;
      if (hide_from != SIZE_MAX && v >= hide_from && v < hide_until) {
        return false;
      }
      return true;
    }
    bool MigratedAt(size_t v) const { return v >= migrate_at; }
  };

  std::string ClassUri(const ClassEntity& e, size_t version) const;
  void EmitVersion(size_t v, Rng& rng);

  EfoOptions options_;
  std::shared_ptr<rdfalign::Dictionary> dict_;
  std::vector<ClassEntity> entities_;
  std::vector<rdfalign::TripleGraph> versions_;
  /// Per version: node id of each alive entity's class URI.
  std::vector<std::unordered_map<uint64_t, rdfalign::NodeId>> class_nodes_;
};

}  // namespace rdfalign::gen

#endif  // RDFALIGN_GEN_EFO_GEN_H_
