#include "gen/textgen.h"

#include <cstddef>
#include <utility>

namespace rdfalign::gen {

namespace {

constexpr const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "k",
                                   "l",  "m",  "n",  "p",  "r",  "s",
                                   "t",  "v",  "z",  "br", "cl", "dr",
                                   "gl", "pr", "st", "tr", "th", "ph"};
constexpr const char* kNuclei[] = {"a", "e", "i", "o", "u", "ae", "ia", "io"};
constexpr const char* kCodas[] = {"",  "",  "n", "r", "s",  "l",
                                  "x", "m", "t", "d", "ne", "ze"};

template <size_t N>
const char* Pick(Rng& rng, const char* const (&arr)[N]) {
  return arr[rng.Uniform(N)];
}

}  // namespace

std::string RandomWord(Rng& rng, size_t min_syllables, size_t max_syllables) {
  const size_t syllables =
      min_syllables +
      rng.Uniform(max_syllables - min_syllables + 1);
  std::string out;
  for (size_t i = 0; i < syllables; ++i) {
    out += Pick(rng, kOnsets);
    out += Pick(rng, kNuclei);
    if (i + 1 == syllables || rng.Bernoulli(0.35)) {
      out += Pick(rng, kCodas);
    }
  }
  return out;
}

std::string RandomName(Rng& rng) {
  std::string w = RandomWord(rng, 2, 4);
  w[0] = static_cast<char>(w[0] - 'a' + 'A');
  return w;
}

std::string RandomSentence(Rng& rng, size_t min_words, size_t max_words) {
  const size_t n = min_words + rng.Uniform(max_words - min_words + 1);
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += RandomWord(rng, 1, 3);
  }
  return out;
}

std::string ApplyTypo(const std::string& s, Rng& rng) {
  std::string out = s;
  if (out.empty()) {
    out.push_back(static_cast<char>('a' + rng.Uniform(26)));
    return out;
  }
  const uint64_t op = rng.Uniform(4);
  const size_t pos = rng.Uniform(out.size());
  const char c = static_cast<char>('a' + rng.Uniform(26));
  switch (op) {
    case 0:  // insert
      out.insert(out.begin() + static_cast<ptrdiff_t>(pos), c);
      break;
    case 1:  // delete
      out.erase(out.begin() + static_cast<ptrdiff_t>(pos));
      break;
    case 2:  // substitute
      out[pos] = c;
      break;
    case 3:  // adjacent swap
      if (out.size() >= 2) {
        size_t p = pos + 1 < out.size() ? pos : pos - 1;
        std::swap(out[p], out[p + 1]);
      } else {
        out[pos] = c;
      }
      break;
  }
  return out;
}

std::string ApplyTypos(std::string s, size_t n, Rng& rng) {
  for (size_t i = 0; i < n; ++i) s = ApplyTypo(s, rng);
  return s;
}

}  // namespace rdfalign::gen
