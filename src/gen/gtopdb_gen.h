// The GtoPdb simulation (§5.2; DESIGN.md substitution table).
//
// A pharmacology-shaped relational database — ligands, targets,
// interactions, references and a link table — is generated, evolved through
// versions (inserts, cascaded deletes, literal edits), and exported to RDF
// via the W3C Direct Mapping with a *different URI prefix per version*, so
// no URIs are shared across versions and only hybrid/overlap can align
// them. Persistent keys give exact ground truth, as in the paper.

#ifndef RDFALIGN_GEN_GTOPDB_GEN_H_
#define RDFALIGN_GEN_GTOPDB_GEN_H_

#include <memory>
#include <string>
#include <vector>

#include "gen/ground_truth.h"
#include "rdf/graph.h"
#include "relational/database.h"
#include "relational/direct_mapping.h"
#include "util/random.h"
#include "util/result.h"

namespace rdfalign::gen {

/// Evolution rates per version step.
struct GtoPdbEvolveRates {
  double insert_rate = 0.08;        ///< new rows per existing row
  double delete_rate = 0.025;       ///< deleted entity rows (cascading)
  double text_edit_rate = 0.04;     ///< text cells mutated by typos
  double numeric_edit_rate = 0.02;  ///< numeric cells jittered
};

/// Generation parameters.
struct GtoPdbOptions {
  size_t num_ligands = 600;  ///< base scale; other tables are proportional
  size_t versions = 10;
  uint64_t seed = 7;
  GtoPdbEvolveRates rates;
  /// One burst version gets ~4x the insert rate, reproducing the paper's
  /// high-churn pair (versions 3-4 in Fig. 13/14); 0 disables.
  size_t churn_burst_version = 3;
};

/// A chain of database versions.
struct GtoPdbChain {
  std::vector<relational::Database> versions;
};

/// Builds the version-0 database and evolves it through
/// `options.versions - 1` steps.
GtoPdbChain GenerateGtoPdbChain(const GtoPdbOptions& options);

/// The per-version Direct Mapping prefix ("http://gtopdb.example/ver3/").
std::string GtoPdbVersionPrefix(size_t version);

/// Exports version `version` of the chain with its version prefix.
Result<rdfalign::TripleGraph> ExportGtoPdbVersion(
    const relational::Database& db, size_t version,
    std::shared_ptr<rdfalign::Dictionary> dict);

/// Key-based ground truth between two exported versions: row URIs by
/// (table, key), plus the schema URIs (column predicates, type nodes) that
/// denote the same schema object under both prefixes.
GroundTruth RelationalGroundTruth(const relational::Database& db1,
                                  const rdfalign::TripleGraph& g1,
                                  size_t version1,
                                  const relational::Database& db2,
                                  const rdfalign::TripleGraph& g2,
                                  size_t version2);

/// One evolution step (exposed for tests).
void EvolveGtoPdb(relational::Database& db, const GtoPdbEvolveRates& rates,
                  Rng& rng);

}  // namespace rdfalign::gen

#endif  // RDFALIGN_GEN_GTOPDB_GEN_H_
