#include "gen/category_gen.h"

#include <algorithm>

#include "gen/textgen.h"

namespace rdfalign::gen {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr char kSkosConcept[] =
    "http://www.w3.org/2004/02/skos/core#Concept";
constexpr char kSkosBroader[] =
    "http://www.w3.org/2004/02/skos/core#broader";
constexpr char kSkosPrefLabel[] =
    "http://www.w3.org/2004/02/skos/core#prefLabel";
constexpr char kDctSubject[] = "http://purl.org/dc/terms/subject";

struct Category {
  uint64_t id;
  std::string name;      // URI slug; renames change it
  std::string label;
  uint64_t parent;       // index into categories, self for roots
};

struct Article {
  uint64_t id;
  std::string title;
  std::vector<uint64_t> subjects;  // category indices
};

std::string CategoryUri(const Category& c) {
  return "http://dbpedia.example/resource/Category:" + c.name + "_" +
         std::to_string(c.id);
}

std::string ArticleUri(const Article& a) {
  return "http://dbpedia.example/resource/" + a.title + "_" +
         std::to_string(a.id);
}

}  // namespace

CategoryChain CategoryChain::Generate(const CategoryOptions& options) {
  CategoryChain chain;
  chain.dict_ = std::make_shared<rdfalign::Dictionary>();
  Rng rng(options.seed);

  std::vector<Category> categories;
  std::vector<Article> articles;

  auto add_category = [&]() {
    Category c;
    c.id = categories.size();
    c.name = RandomName(rng);
    c.label = c.name + " " + RandomWord(rng, 1, 2);
    // Preferential attachment: earlier categories are likelier parents.
    c.parent = categories.empty()
                   ? c.id
                   : rng.Uniform(std::max<uint64_t>(1, categories.size()));
    categories.push_back(std::move(c));
  };
  auto add_article = [&]() {
    Article a;
    a.id = articles.size();
    a.title = RandomName(rng) + "_" + RandomWord(rng, 1, 3);
    const size_t n_subjects = 1 + rng.Uniform(3);
    for (size_t s = 0; s < n_subjects; ++s) {
      a.subjects.push_back(rng.Uniform(categories.size()));
    }
    std::sort(a.subjects.begin(), a.subjects.end());
    a.subjects.erase(std::unique(a.subjects.begin(), a.subjects.end()),
                     a.subjects.end());
    articles.push_back(std::move(a));
  };

  for (size_t i = 0; i < options.initial_categories; ++i) add_category();
  for (size_t i = 0; i < options.initial_articles; ++i) add_article();

  for (size_t v = 0; v < options.versions; ++v) {
    if (v > 0) {
      // Growth.
      const size_t new_categories = static_cast<size_t>(
          static_cast<double>(categories.size()) * (options.growth - 1.0));
      const size_t new_articles = static_cast<size_t>(
          static_cast<double>(articles.size()) * (options.growth - 1.0));
      for (size_t i = 0; i < new_categories; ++i) add_category();
      for (size_t i = 0; i < new_articles; ++i) add_article();
      // Churn: renames (URI changes) and label edits.
      for (Category& c : categories) {
        if (rng.Bernoulli(options.rename_rate)) {
          c.name = RandomName(rng);
        }
        if (rng.Bernoulli(options.label_edit_rate)) {
          c.label = ApplyTypo(c.label, rng);
        }
      }
    }

    rdfalign::GraphBuilder builder(chain.dict_);
    const rdfalign::NodeId type_p = builder.AddUri(kRdfType);
    const rdfalign::NodeId concept_node = builder.AddUri(kSkosConcept);
    const rdfalign::NodeId broader_p = builder.AddUri(kSkosBroader);
    const rdfalign::NodeId label_p = builder.AddUri(kSkosPrefLabel);
    const rdfalign::NodeId subject_p = builder.AddUri(kDctSubject);

    std::vector<rdfalign::NodeId> category_nodes(categories.size());
    for (size_t i = 0; i < categories.size(); ++i) {
      category_nodes[i] = builder.AddUri(CategoryUri(categories[i]));
    }
    for (size_t i = 0; i < categories.size(); ++i) {
      const Category& c = categories[i];
      builder.AddTriple(category_nodes[i], type_p, concept_node);
      builder.AddTriple(category_nodes[i], label_p,
                        builder.AddLiteral(c.label));
      if (c.parent != c.id) {
        builder.AddTriple(category_nodes[i], broader_p,
                          category_nodes[c.parent]);
      }
    }
    for (const Article& a : articles) {
      const rdfalign::NodeId art = builder.AddUri(ArticleUri(a));
      for (uint64_t s : a.subjects) {
        builder.AddTriple(art, subject_p, category_nodes[s]);
      }
    }
    chain.versions_.push_back(std::move(builder.Build(true)).value());
  }
  return chain;
}

}  // namespace rdfalign::gen
