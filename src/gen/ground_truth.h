// Ground-truth alignments and the precision metrics of Fig. 14.
//
// The GtoPdb experiment's ground truth maps nodes across versions by
// (table, persistent key); an alignment is then scored per node as
//   exact     — aligned to exactly the ground-truth partner,
//   inclusive — aligned to a set properly including the partner,
//   missing   — the partner is not in the aligned set,
//   false     — aligned to a nonempty set though the truth aligns nothing.

#ifndef RDFALIGN_GEN_GROUND_TRUTH_H_
#define RDFALIGN_GEN_GROUND_TRUTH_H_

#include <unordered_map>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "rdf/merge.h"

namespace rdfalign::gen {

/// A (partial) one-to-one correspondence between the node sets of two
/// versions, stored with graph-local ids.
class GroundTruth {
 public:
  /// Records that source-graph node `a` and target-graph node `b` are the
  /// same entity.
  void AddPair(rdfalign::NodeId a, rdfalign::NodeId b) {
    source_to_target_.emplace(a, b);
    target_to_source_.emplace(b, a);
    pairs_.emplace_back(a, b);
  }

  size_t NumPairs() const { return pairs_.size(); }

  /// kInvalidNode when the node has no partner.
  rdfalign::NodeId TargetOf(rdfalign::NodeId a) const {
    auto it = source_to_target_.find(a);
    return it == source_to_target_.end() ? rdfalign::kInvalidNode
                                         : it->second;
  }
  rdfalign::NodeId SourceOf(rdfalign::NodeId b) const {
    auto it = target_to_source_.find(b);
    return it == target_to_source_.end() ? rdfalign::kInvalidNode
                                         : it->second;
  }

  const std::vector<std::pair<rdfalign::NodeId, rdfalign::NodeId>>& pairs()
      const {
    return pairs_;
  }

 private:
  std::unordered_map<rdfalign::NodeId, rdfalign::NodeId> source_to_target_;
  std::unordered_map<rdfalign::NodeId, rdfalign::NodeId> target_to_source_;
  std::vector<std::pair<rdfalign::NodeId, rdfalign::NodeId>> pairs_;
};

/// Per-node match categories (counted over the nodes of both versions).
struct PrecisionStats {
  size_t exact = 0;
  size_t inclusive = 0;
  size_t missing = 0;
  size_t false_matches = 0;
  size_t true_negatives = 0;  ///< unaligned and truly new/removed
  size_t evaluated = 0;

  double ExactRate() const {
    return evaluated == 0 ? 0 : static_cast<double>(exact) / evaluated;
  }
};

/// Scores a partition-based alignment against the ground truth. Literal
/// nodes are skipped by default (they are aligned by label equality and the
/// ground truth tracks entities).
PrecisionStats EvaluatePrecision(const rdfalign::CombinedGraph& cg,
                                 const rdfalign::Partition& p,
                                 const GroundTruth& gt,
                                 bool non_literals_only = true);

/// As EvaluatePrecision, but only over nodes the ground truth covers —
/// appropriate when the truth is deliberately partial (e.g. the EFO chain
/// tracks class URIs but not axiom blanks), where uncovered-but-aligned
/// nodes must not count as false matches.
PrecisionStats EvaluatePrecisionCovered(const rdfalign::CombinedGraph& cg,
                                        const rdfalign::Partition& p,
                                        const GroundTruth& gt);

}  // namespace rdfalign::gen

#endif  // RDFALIGN_GEN_GROUND_TRUTH_H_
