// Deterministic synthetic text: pronounceable words, names, sentences, and
// typo edits — the literal content of the simulated datasets and the "small
// changes in the data values" the paper's similarity methods must absorb.

#ifndef RDFALIGN_GEN_TEXTGEN_H_
#define RDFALIGN_GEN_TEXTGEN_H_

#include <string>

#include "util/random.h"

namespace rdfalign::gen {

/// A pronounceable lowercase word of `min_syllables`..`max_syllables`.
std::string RandomWord(Rng& rng, size_t min_syllables = 2,
                       size_t max_syllables = 4);

/// A capitalized name ("Veltrazine").
std::string RandomName(Rng& rng);

/// A space-separated sentence of `min_words`..`max_words` words.
std::string RandomSentence(Rng& rng, size_t min_words, size_t max_words);

/// Applies one small random edit (insert / delete / substitute a character,
/// or swap two adjacent characters) — a typo. Empty strings gain one char.
std::string ApplyTypo(const std::string& s, Rng& rng);

/// Applies `n` typos.
std::string ApplyTypos(std::string s, size_t n, Rng& rng);

}  // namespace rdfalign::gen

#endif  // RDFALIGN_GEN_TEXTGEN_H_
