#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace rdfalign {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWords(std::string_view s) {
  std::vector<std::string> out;
  std::string scratch;
  ForEachWord(s, scratch,
              [&](std::string_view word) { out.emplace_back(word); });
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string EscapeNTriplesString(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

bool UnescapeNTriplesString(std::string_view s, std::string* out) {
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (i + 1 >= s.size()) return false;
    char e = s[++i];
    switch (e) {
      case '\\':
        out->push_back('\\');
        break;
      case '"':
        out->push_back('"');
        break;
      case 'n':
        out->push_back('\n');
        break;
      case 'r':
        out->push_back('\r');
        break;
      case 't':
        out->push_back('\t');
        break;
      case 'u':
      case 'U': {
        // \uXXXX or \UXXXXXXXX: decode to UTF-8.
        const size_t digits = (e == 'u') ? 4 : 8;
        if (i + digits >= s.size()) return false;
        uint32_t cp = 0;
        for (size_t d = 0; d < digits; ++d) {
          char h = s[++i];
          cp <<= 4;
          if (h >= '0' && h <= '9') {
            cp |= static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            cp |= static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            cp |= static_cast<uint32_t>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        if (cp <= 0x7f) {
          out->push_back(static_cast<char>(cp));
        } else if (cp <= 0x7ff) {
          out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp <= 0xffff) {
          out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp <= 0x10ffff) {
          out->push_back(static_cast<char>(0xf0 | (cp >> 18)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
          return false;
        }
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

std::string FormatWithCommas(uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace rdfalign
