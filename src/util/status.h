// Status: lightweight error propagation for fallible operations.
//
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or a Result<T>, see result.h) instead of throwing. Exceptions are
// never thrown across the public API boundary.

#ifndef RDFALIGN_UTIL_STATUS_H_
#define RDFALIGN_UTIL_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace rdfalign {

/// Machine-readable category of a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kParseError = 5,
  kIOError = 6,
  kCorruption = 7,
  kNotSupported = 8,
  kInternal = 9,
};

/// Returns a stable human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: either OK, or a code plus a
/// human-readable message. Cheap to move; an OK status allocates nothing.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define RDFALIGN_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::rdfalign::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_STATUS_H_
