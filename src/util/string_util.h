// String helpers shared by the parser, the overlap heuristic's word
// splitter (§4.7 `split`), and the workload generators.

#ifndef RDFALIGN_UTIL_STRING_UTIL_H_
#define RDFALIGN_UTIL_STRING_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>
#include <vector>

namespace rdfalign {

/// Splits on a single character; empty fields are kept.
std::vector<std::string_view> Split(std::string_view s, char sep);

/// The single definition of the Algorithm 2 `split` tokenization: invokes
/// `fn(word)` for each maximal run of alphanumeric characters of `s`,
/// lower-cased into `scratch` (reused between words, cleared on return).
/// SplitWords and the overlap aligner's streaming word interner are both
/// built on this so their word boundaries can never diverge.
template <typename Fn>
void ForEachWord(std::string_view s, std::string& scratch, Fn&& fn) {
  scratch.clear();
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      scratch.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!scratch.empty()) {
      fn(std::string_view(scratch));
      scratch.clear();
    }
  }
  if (!scratch.empty()) {
    fn(std::string_view(scratch));
    scratch.clear();
  }
}

/// Splits into maximal runs of alphanumeric characters, lower-cased.
/// This is the `split` node-characterizing function of Algorithm 2: a
/// literal label becomes the set of its words.
std::vector<std::string> SplitWords(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Escapes a literal value for N-Triples output ("\n", "\"", "\\", ...).
std::string EscapeNTriplesString(std::string_view s);

/// Reverses EscapeNTriplesString. Returns false on a malformed escape.
bool UnescapeNTriplesString(std::string_view s, std::string* out);

/// Renders n with thousands separators ("1,234,567") for harness tables.
std::string FormatWithCommas(uint64_t n);

/// Renders a double with fixed precision.
std::string FormatDouble(double v, int precision);

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_STRING_UTIL_H_
