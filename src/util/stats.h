// Small shared statistics helpers. Percentile started life in
// bench/service_bench.cc; it moved here when the daemon's per-verb
// latency metrics (service/metrics.h) needed the same definition — one
// implementation, so the bench tables and the `stats` verb cannot
// disagree about what a p50 is.

#ifndef RDFALIGN_UTIL_STATS_H_
#define RDFALIGN_UTIL_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace rdfalign {

/// Nearest-rank percentile of `samples` (p in [0, 1]); 0 when empty.
/// The nearest-rank definition: the value at (1-based) rank ceil(p * n)
/// in the sorted list, so p95 of 10 samples is the 10th (the smallest
/// value with at least 95% of the mass at or below it), p=0 the minimum,
/// p=1 the maximum. Takes the vector by value — the sort must not
/// disturb the caller's recording order.
inline double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<size_t>(
      std::ceil(p * static_cast<double>(samples.size())));
  const size_t idx = std::min(samples.size() - 1, std::max<size_t>(rank, 1) - 1);
  return samples[idx];
}

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_STATS_H_
