// Reused thread-local scratch buffers: the dense-ID pipeline keeps its key
// and table buffers in function-static thread_local vectors so that
// steady-state calls allocate nothing. The flip side is high-water-mark
// retention: one huge alignment would otherwise pin its capacity for the
// rest of the thread's life. TrimScratch bounds that — call it on a scratch
// vector after its last use in a pass, while it still holds this call's
// working set.

#ifndef RDFALIGN_UTIL_SCRATCH_H_
#define RDFALIGN_UTIL_SCRATCH_H_

#include <vector>

namespace rdfalign {

/// Releases a scratch vector's memory when its capacity vastly exceeds the
/// size this call actually used (8x, with slack so tiny buffers are left
/// alone). Same-magnitude workloads keep their buffers; a small call after
/// a huge one returns the huge allocation.
template <typename T>
void TrimScratch(std::vector<T>& v) {
  if (v.capacity() > 8 * (v.size() + 64)) {
    v.shrink_to_fit();
  }
}

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_SCRATCH_H_
