// Hashing utilities: 64-bit mixing, combination, and hashing of sequences.
//
// Used pervasively by the partition-refinement engine (hash-consing of color
// signatures, §3.2 of the paper: "implemented with a simple hashing
// technique") and by the overlap heuristic's inverted indexes (§4.6).

#ifndef RDFALIGN_UTIL_HASH_H_
#define RDFALIGN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace rdfalign {

/// Finalizer from SplitMix64: bijective, avalanching 64-bit mix.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines an existing hash with a new 64-bit value (order-dependent).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  // boost::hash_combine generalized to 64 bits.
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// FNV-1a over raw bytes; stable across platforms.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Hashes a sequence of 32-bit words (used for color signatures).
inline uint64_t HashU32Span(const uint32_t* data, size_t n) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (n * 0xff51afd7ed558ccdULL);
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, data[i]);
  }
  return h;
}

inline uint64_t HashU32Vector(const std::vector<uint32_t>& v) {
  return HashU32Span(v.data(), v.size());
}

/// Packs two 32-bit values into one 64-bit key (e.g. a (predicate-color,
/// object-color) pair used as an inverted-index object, §4.7).
inline uint64_t PackPair(uint32_t hi, uint32_t lo) {
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

inline uint32_t UnpackHi(uint64_t packed) {
  return static_cast<uint32_t>(packed >> 32);
}

inline uint32_t UnpackLo(uint64_t packed) {
  return static_cast<uint32_t>(packed & 0xffffffffULL);
}

/// Hash functor for std::vector<uint32_t> keys (color signatures).
struct U32VectorHash {
  size_t operator()(const std::vector<uint32_t>& v) const {
    return static_cast<size_t>(HashU32Vector(v));
  }
};

/// Hash functor for 64-bit keys that require avalanching (dense packed ids).
struct U64Hash {
  size_t operator()(uint64_t v) const { return static_cast<size_t>(Mix64(v)); }
};

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_HASH_H_
