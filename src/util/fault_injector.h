// FaultInjector: process-wide named failpoints for fault-tolerance tests.
//
// Production code marks the syscall sites that can fail — store writes,
// fsync, rename, socket reads/writes, connect — with a named failpoint:
//
//   FaultAction a = FaultInjector::Hit("store.write");
//   switch (a.kind) { ... }
//
// When nothing is armed, Hit is one relaxed atomic load (the process-wide
// enable flag) — the hooks stay compiled into release builds at
// effectively zero cost, so the fault tests exercise the exact binaries
// that ship.
//
// Failpoints are armed either through the test API (Arm / Reset) or the
// RDFALIGN_FAULTS environment variable, read once at first use:
//
//   RDFALIGN_FAULTS="store.fsync@1=kill"            die at the 1st fsync
//   RDFALIGN_FAULTS="store.write@3=error:ENOSPC"    3rd write fails ENOSPC
//   RDFALIGN_FAULTS="socket.write@2=short"          2nd send is truncated
//   RDFALIGN_FAULTS="socket.read@1=eintr4"          4-deep EINTR storm
//   RDFALIGN_FAULTS="client.connect@1=error;store.rename@1=error"
//
// Grammar: `point@N=mode[;point@N=mode...]` — the failpoint fires at the
// Nth hit (1-based) of that point. Modes:
//
//   error[:ERRNAME]   the operation fails with errno (default EIO;
//                     ERRNAME one of EIO, ENOSPC, EDQUOT, EPIPE,
//                     ECONNRESET, ETIMEDOUT, EACCES, EMFILE)
//   short             a write transfers only one byte (callers must loop)
//   eintr[K]          the next K hits (default 1) fail with EINTR
//   kill              SIGKILL the process at the hit — the crash-
//                     consistency driver's "power cut at this syscall"
//
// The spec is the cross-process arming channel: the crash-consistency
// tests fork a child with a kill-mode spec and assert the survivor state,
// and CI arms client-side socket faults on a live `rdfalign stream`
// without touching the daemon's environment.

#ifndef RDFALIGN_UTIL_FAULT_INJECTOR_H_
#define RDFALIGN_UTIL_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace rdfalign {

/// What the code at a failpoint must simulate for this hit.
struct FaultAction {
  enum Kind : uint8_t {
    kNone = 0,   ///< proceed normally
    kError,      ///< fail the operation with `error_errno`
    kShort,      ///< transfer at most one byte (writes/reads)
    kEintr,      ///< fail with EINTR (callers are expected to retry)
  } kind = kNone;
  int error_errno = 0;
};

class FaultInjector {
 public:
  /// Consumes one hit of `point`. Returns the action armed for this hit
  /// (kNone when disarmed). A kill-mode failpoint never returns: the
  /// process raises SIGKILL in place.
  static FaultAction Hit(const char* point);

  /// Arms failpoints from a spec string (see the grammar above), adding
  /// to whatever is already armed. InvalidArgument on a malformed spec.
  static Status ArmFromSpec(const std::string& spec);

  /// Disarms everything and zeroes all hit counters.
  static void Reset();

  /// Total hits recorded for `point` (counted armed or not once any
  /// failpoint has ever been armed; 0 while fully disarmed).
  static uint64_t Hits(const std::string& point);

  /// True when any failpoint is (or was) armed in this process — the
  /// fast-path gate.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<bool> enabled_;
};

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_FAULT_INJECTOR_H_
