// One process-wide work-stealing thread pool plus the deterministic
// chunking convention every parallel kernel in this codebase follows.
//
// Scheduling and determinism are kept strictly apart:
//
//   * PlanChunks/ChunkBound decompose [0, n) into contiguous chunks as a
//     pure function of (n, grain) — never of the thread count and never of
//     scheduling. Combining per-chunk results in ascending chunk order is
//     therefore bit-identical for every thread count, including 1.
//   * ThreadPool::Run only decides *which lane executes which chunk*
//     (contiguous lane ranges, idle lanes steal single chunks from the
//     back of busy lanes). Kernels must not let results depend on
//     execution order: write disjoint chunk-indexed slots, update shared
//     cells only through order-insensitive atomics (sums, ORs, flag
//     stores), and fold slots in chunk order afterwards.
//
// The pool is a lazy singleton. Workers are spawned on demand up to the
// requested lane count (so `--threads 8` exercises eight real lanes even
// on a single-core box, matching the per-call spawning it replaces) and
// persist for the life of the process — short incremental refinement
// rounds no longer pay a thread create/join per round. Re-entrant or
// concurrent Run calls degrade to inline serial execution of the caller's
// chunks; they never deadlock and never change results.

#ifndef RDFALIGN_UTIL_THREAD_POOL_H_
#define RDFALIGN_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rdfalign {

/// Resolves a requested thread count: 0 means "auto" (the hardware
/// concurrency, at least 1); any other value is taken literally.
size_t ResolveThreads(size_t requested);

/// Lanes that can make real progress: min(requested, hardware). Chunk
/// plans never see the lane count, so kernels gating their parallel
/// layout on this produce the same bytes — it only spares a single-core
/// box the scheduling and scratch cost of lanes that cannot help. Raw
/// ThreadPool::Run is deliberately not clamped (the worklist engine and
/// the pool tests field every requested lane).
size_t EffectiveLanes(size_t threads);

/// The process-wide pool. All parallel kernels share it via Instance().
class ThreadPool {
 public:
  /// The shared instance (created on first use, workers spawned lazily).
  static ThreadPool& Instance();

  /// Executes body(chunk) exactly once for every chunk in [0, num_chunks),
  /// on up to `threads` lanes including the calling thread, and returns
  /// only when every invocation has returned. `body` must not throw.
  /// Chunk execution order is unspecified — see the file comment for the
  /// determinism contract kernels must follow. Nested or concurrent calls
  /// run the caller's chunks inline on the calling thread.
  void Run(size_t num_chunks, size_t threads,
           const std::function<void(size_t chunk)>& body);

  /// Workers spawned so far (telemetry/tests; grows on demand).
  size_t WorkersSpawned() const;

  /// True on a pool worker thread, or inside a Run on the calling thread.
  static bool InParallelRegion();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;
  ~ThreadPool();

  void EnsureWorkersLocked(size_t target);
  void WorkerLoop();
  // Drains lane `my_lane` front-to-back, then steals single chunks from
  // the back of the fullest remaining lane until no work is left.
  void WorkChunks(size_t my_lane, size_t num_lanes,
                  const std::function<void(size_t)>& body);

  // Lane ranges packed as (begin << 32) | end over chunk indexes; claimed
  // front (owner) and back (thieves) by compare-exchange.
  std::unique_ptr<std::atomic<uint64_t>[]> lanes_;
  size_t lane_capacity_ = 0;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(size_t)>* job_body_ = nullptr;
  size_t job_lanes_ = 0;
  uint64_t job_generation_ = 0;
  bool job_active_ = false;
  bool shutdown_ = false;
  size_t active_workers_ = 0;
  std::atomic<size_t> next_lane_{0};
};

/// Hard cap on chunks per plan, so per-chunk dispatch overhead stays
/// negligible next to `grain` elements of real work.
inline constexpr size_t kMaxPlannedChunks = 1u << 14;

/// Number of chunks covering [0, n) with at least `grain` elements each
/// (except possibly when n < grain). Depends only on (n, grain).
inline size_t PlanChunks(size_t n, size_t grain) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  return std::min((n + grain - 1) / grain, kMaxPlannedChunks);
}

/// Boundary `c` of the balanced split of [0, n) into `chunks` chunks:
/// chunk c covers [ChunkBound(n, chunks, c), ChunkBound(n, chunks, c+1)).
inline size_t ChunkBound(size_t n, size_t chunks, size_t c) {
  return (n / chunks) * c + std::min(c, n % chunks);
}

/// Runs body(chunk, begin, end) over the deterministic decomposition of
/// [0, n). With threads <= 1 (or a single chunk) the chunks run inline on
/// the caller, in ascending order.
void ParallelChunks(size_t n, size_t threads, size_t grain,
                    const std::function<void(size_t chunk, size_t begin,
                                             size_t end)>& body);

/// Chunk-ordered reduction: map(chunk, begin, end) fills one slot per
/// chunk in parallel, then fold(acc, slot) combines the slots in
/// ascending chunk order — the fixed-order convention that makes the
/// result independent of the thread count even for non-commutative folds.
template <typename T, typename Map, typename Fold>
T ChunkedReduce(size_t n, size_t threads, size_t grain, T init,
                const Map& map, const Fold& fold) {
  const size_t chunks = PlanChunks(n, grain);
  if (chunks == 0) return init;
  // Same hardware clamp as ParallelChunks: slots and fold order depend
  // only on the chunk plan, never on the lane count.
  threads = EffectiveLanes(threads);
  if (threads <= 1 || chunks == 1) {
    T acc = std::move(init);
    for (size_t c = 0; c < chunks; ++c) {
      fold(acc, map(c, ChunkBound(n, chunks, c), ChunkBound(n, chunks, c + 1)));
    }
    return acc;
  }
  std::vector<T> slots(chunks);
  ThreadPool::Instance().Run(chunks, threads, [&](size_t c) {
    slots[c] = map(c, ChunkBound(n, chunks, c), ChunkBound(n, chunks, c + 1));
  });
  T acc = std::move(init);
  for (size_t c = 0; c < chunks; ++c) fold(acc, std::move(slots[c]));
  return acc;
}

/// Minimum size below which ParallelSort falls back to std::sort.
inline constexpr size_t kParallelSortGrain = size_t{1} << 14;

/// Sorts `v` with `less`, bit-identical to std::sort for any thread count
/// provided `less` is a total order on the element *values* (ties only
/// between identical values) — true for the packed keys this codebase
/// sorts. Chunk-sorts on the pool, then pairwise-merges runs in rounds.
template <typename T, typename Less = std::less<T>>
void ParallelSort(std::vector<T>& v, size_t threads, Less less = Less{}) {
  const size_t n = v.size();
  size_t chunks = PlanChunks(n, kParallelSortGrain);
  // Unlike the chunked loops, extra sort lanes add *work* (each merge
  // round copies the whole range), so lanes beyond the hardware can only
  // lose. The clamp cannot change bytes: the output is the unique sorted
  // permutation for any decomposition.
  threads = EffectiveLanes(threads);
  if (threads <= 1 || chunks <= 1) {
    std::sort(v.begin(), v.end(), less);
    return;
  }
  // Sorting is the one kernel whose run boundaries *may* depend on the
  // thread count: the fully sorted output of a total order is the unique
  // sorted permutation of the values, so any decomposition converges to
  // the same bytes. Fewer, larger runs mean fewer merge rounds.
  chunks = std::min(chunks, std::max<size_t>(2, 2 * threads));
  std::vector<size_t> bounds(chunks + 1);
  for (size_t c = 0; c <= chunks; ++c) bounds[c] = ChunkBound(n, chunks, c);
  ThreadPool& pool = ThreadPool::Instance();
  pool.Run(chunks, threads, [&](size_t c) {
    std::sort(v.begin() + bounds[c], v.begin() + bounds[c + 1], less);
  });
  std::vector<T> tmp(n);
  std::vector<T>* src = &v;
  std::vector<T>* dst = &tmp;
  while (bounds.size() > 2) {
    const size_t runs = bounds.size() - 1;
    const size_t pairs = runs / 2;
    const size_t jobs = pairs + runs % 2;
    std::vector<size_t> merged(jobs + 1);
    merged[0] = 0;
    for (size_t p = 0; p < pairs; ++p) merged[p + 1] = bounds[2 * p + 2];
    if (runs % 2 != 0) merged[jobs] = bounds[runs];
    pool.Run(jobs, threads, [&](size_t p) {
      if (p < pairs) {
        std::merge(src->begin() + bounds[2 * p],
                   src->begin() + bounds[2 * p + 1],
                   src->begin() + bounds[2 * p + 1],
                   src->begin() + bounds[2 * p + 2],
                   dst->begin() + bounds[2 * p], less);
      } else {
        std::copy(src->begin() + bounds[2 * p], src->begin() + bounds[runs],
                  dst->begin() + bounds[2 * p]);
      }
    });
    std::swap(src, dst);
    bounds = std::move(merged);
  }
  if (src != &v) v.swap(tmp);
}

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_THREAD_POOL_H_
