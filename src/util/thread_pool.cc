#include "util/thread_pool.h"

#include <cassert>
#include <limits>

namespace rdfalign {
namespace {

// Workers are persistent; this bounds runaway --threads requests, not
// parallelism (extra lanes beyond the worker count still make progress —
// their chunk ranges get stolen).
constexpr size_t kMaxWorkers = 256;

constexpr size_t kNoLane = std::numeric_limits<size_t>::max();

constexpr uint64_t PackRange(size_t begin, size_t end) {
  return (static_cast<uint64_t>(begin) << 32) | static_cast<uint64_t>(end);
}
constexpr size_t RangeBegin(uint64_t r) { return static_cast<size_t>(r >> 32); }
constexpr size_t RangeEnd(uint64_t r) {
  return static_cast<size_t>(r & 0xffffffffu);
}

// True on pool workers always, and on a caller thread while it is inside
// Run — a nested Run must execute inline rather than wait for the pool.
thread_local bool tls_in_parallel_region = false;

// Serializes parallel jobs: one Run drives the pool at a time; a
// concurrent Run from another user thread degrades to inline execution.
std::mutex g_run_mutex;

}  // namespace

size_t ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

size_t EffectiveLanes(size_t threads) {
  return std::min(ResolveThreads(threads), ResolveThreads(0));
}

ThreadPool& ThreadPool::Instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t ThreadPool::WorkersSpawned() const {
  std::lock_guard<std::mutex> lk(mu_);
  return workers_.size();
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel_region; }

void ThreadPool::EnsureWorkersLocked(size_t target) {
  target = std::min(target, kMaxWorkers);
  while (workers_.size() < target) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

void ThreadPool::Run(size_t num_chunks, size_t threads,
                     const std::function<void(size_t)>& body) {
  if (num_chunks == 0) return;
  const size_t lanes = std::min(threads == 0 ? 1 : threads, num_chunks);
  assert(num_chunks < (size_t{1} << 32));
  std::unique_lock<std::mutex> run_lock(g_run_mutex, std::defer_lock);
  if (lanes <= 1 || tls_in_parallel_region || !run_lock.try_lock()) {
    for (size_t c = 0; c < num_chunks; ++c) body(c);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    EnsureWorkersLocked(lanes - 1);
    if (lane_capacity_ < lanes) {
      // Safe to reallocate: no job is active, so no worker touches lanes_.
      lanes_ = std::make_unique<std::atomic<uint64_t>[]>(lanes);
      lane_capacity_ = lanes;
    }
    for (size_t l = 0; l < lanes; ++l) {
      lanes_[l].store(PackRange(ChunkBound(num_chunks, lanes, l),
                                ChunkBound(num_chunks, lanes, l + 1)),
                      std::memory_order_relaxed);
    }
    next_lane_.store(1, std::memory_order_relaxed);
    job_body_ = &body;
    job_lanes_ = lanes;
    ++job_generation_;
    job_active_ = true;
  }
  work_cv_.notify_all();
  tls_in_parallel_region = true;
  WorkChunks(0, lanes, body);
  tls_in_parallel_region = false;
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return active_workers_ == 0; });
  job_active_ = false;
  job_body_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  tls_in_parallel_region = true;
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    work_cv_.wait(lk, [&] {
      return shutdown_ || (job_active_ && job_generation_ != seen_generation);
    });
    if (shutdown_) return;
    seen_generation = job_generation_;
    const std::function<void(size_t)>* body = job_body_;
    const size_t lanes = job_lanes_;
    ++active_workers_;
    lk.unlock();
    const size_t lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
    WorkChunks(lane < lanes ? lane : kNoLane, lanes, *body);
    lk.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::WorkChunks(size_t my_lane, size_t num_lanes,
                            const std::function<void(size_t)>& body) {
  if (my_lane != kNoLane) {
    // Drain the own lane front-to-back.
    std::atomic<uint64_t>& lane = lanes_[my_lane];
    uint64_t r = lane.load(std::memory_order_acquire);
    while (RangeBegin(r) < RangeEnd(r)) {
      const size_t chunk = RangeBegin(r);
      if (lane.compare_exchange_weak(r, PackRange(chunk + 1, RangeEnd(r)),
                                     std::memory_order_acq_rel)) {
        body(chunk);
        r = lane.load(std::memory_order_acquire);
      }
    }
  }
  // Steal single chunks from the back of the fullest remaining lane.
  while (true) {
    size_t victim = kNoLane;
    size_t victim_left = 0;
    for (size_t l = 0; l < num_lanes; ++l) {
      const uint64_t r = lanes_[l].load(std::memory_order_acquire);
      const size_t left =
          RangeEnd(r) > RangeBegin(r) ? RangeEnd(r) - RangeBegin(r) : 0;
      if (left > victim_left) {
        victim = l;
        victim_left = left;
      }
    }
    if (victim == kNoLane) return;
    std::atomic<uint64_t>& lane = lanes_[victim];
    uint64_t r = lane.load(std::memory_order_acquire);
    if (RangeBegin(r) >= RangeEnd(r)) continue;  // lost the race, rescan
    const size_t chunk = RangeEnd(r) - 1;
    if (lane.compare_exchange_weak(r, PackRange(RangeBegin(r), chunk),
                                   std::memory_order_acq_rel)) {
      body(chunk);
    }
  }
}

void ParallelChunks(size_t n, size_t threads, size_t grain,
                    const std::function<void(size_t chunk, size_t begin,
                                             size_t end)>& body) {
  const size_t chunks = PlanChunks(n, grain);
  if (chunks == 0) return;
  // Lanes beyond the hardware only add scheduling overhead to a chunked
  // loop; the decomposition (and thus the result) never depends on the
  // lane count, so the clamp is invisible except in wall clock. Raw
  // ThreadPool::Run stays unclamped for callers that want real lanes.
  threads = EffectiveLanes(threads);
  if (threads <= 1 || chunks == 1) {
    for (size_t c = 0; c < chunks; ++c) {
      body(c, ChunkBound(n, chunks, c), ChunkBound(n, chunks, c + 1));
    }
    return;
  }
  ThreadPool::Instance().Run(chunks, threads, [&](size_t c) {
    body(c, ChunkBound(n, chunks, c), ChunkBound(n, chunks, c + 1));
  });
}

}  // namespace rdfalign
