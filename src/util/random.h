// Deterministic pseudo-random generation for reproducible workloads.
//
// All generators, evolution operators, and benches take an explicit seed so
// every experiment in EXPERIMENTS.md can be re-run bit-identically.

#ifndef RDFALIGN_UTIL_RANDOM_H_
#define RDFALIGN_UTIL_RANDOM_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rdfalign {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
/// Seeded via SplitMix64 so that any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Lemire's nearly-divisionless bounded generation (rejection-free in the
    // common case).
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformReal() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// its weight. Weights must be non-negative with a positive sum.
  size_t PickWeighted(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    assert(total > 0);
    double r = UniformReal() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct values from [0, n) in selection order (k <= n).
  std::vector<uint64_t> SampleDistinct(uint64_t n, uint64_t k) {
    assert(k <= n);
    // Floyd's algorithm would need a set; for our sizes a partial
    // Fisher-Yates over an index vector is simpler and still O(n).
    std::vector<uint64_t> idx(n);
    for (uint64_t i = 0; i < n; ++i) idx[i] = i;
    std::vector<uint64_t> out;
    out.reserve(k);
    for (uint64_t i = 0; i < k; ++i) {
      uint64_t j = i + Uniform(n - i);
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_RANDOM_H_
