// SharedArray<T>: an immutable array that either owns its elements (a
// std::vector) or views memory owned by a pinned buffer (a mapped snapshot
// file or a load buffer). The snapshot store's zero-copy load path hands
// TripleGraph its CSR arrays as views into the mapping; everything else
// keeps owning vectors. Copying a view copies only the span and the pin.

#ifndef RDFALIGN_UTIL_SHARED_ARRAY_H_
#define RDFALIGN_UTIL_SHARED_ARRAY_H_

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace rdfalign {

/// Read-only array storage with shared ownership semantics.
///
/// Two states:
///  * owning — holds a std::vector<T> (the default for built graphs);
///  * pinned — holds a span over external memory plus a shared_ptr keeping
///    that memory alive (the snapshot loader's zero-copy path).
template <typename T>
class SharedArray {
 public:
  SharedArray() = default;

  /// Owning: adopts the vector.
  SharedArray(std::vector<T> owned)  // NOLINT(runtime/explicit)
      : owned_(std::move(owned)), view_(owned_) {}

  /// Pinned: views [data, data+size) kept alive by `pin`.
  SharedArray(std::shared_ptr<const void> pin, const T* data, size_t size)
      : pin_(std::move(pin)), view_(data, size) {}

  SharedArray(const SharedArray& other) { *this = other; }
  SharedArray& operator=(const SharedArray& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    pin_ = other.pin_;
    view_ = other.pin_ ? other.view_ : std::span<const T>(owned_);
    return *this;
  }
  SharedArray(SharedArray&& other) noexcept { *this = std::move(other); }
  SharedArray& operator=(SharedArray&& other) noexcept {
    if (this == &other) return *this;
    owned_ = std::move(other.owned_);
    pin_ = std::move(other.pin_);
    // A moved-from vector's buffer moves with it, so the span stays valid
    // for the pinned case and must be rebuilt for the owning case.
    view_ = pin_ ? other.view_ : std::span<const T>(owned_);
    other.view_ = {};
    return *this;
  }

  std::span<const T> span() const { return view_; }
  const T* data() const { return view_.data(); }
  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T& operator[](size_t i) const { return view_[i]; }
  auto begin() const { return view_.begin(); }
  auto end() const { return view_.end(); }

  /// True when backed by external pinned memory rather than an owned vector.
  bool pinned() const { return pin_ != nullptr; }

 private:
  std::vector<T> owned_;
  std::shared_ptr<const void> pin_;
  std::span<const T> view_;
};

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_SHARED_ARRAY_H_
