// Result<T>: value-or-Status, the return type of fallible constructors and
// parsers. Mirrors arrow::Result / rocksdb-style StatusOr.

#ifndef RDFALIGN_UTIL_RESULT_H_
#define RDFALIGN_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace rdfalign {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, so `return value;` works).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit, so `return status;` works).
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK iff a value is held.
  const Status& status() const { return status_; }

  /// The held value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK when value_ holds a value.
  std::optional<T> value_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define RDFALIGN_ASSIGN_OR_RETURN(lhs, expr)      \
  RDFALIGN_ASSIGN_OR_RETURN_IMPL_(                \
      RDFALIGN_CONCAT_(_res_, __LINE__), lhs, expr)
#define RDFALIGN_CONCAT_INNER_(a, b) a##b
#define RDFALIGN_CONCAT_(a, b) RDFALIGN_CONCAT_INNER_(a, b)
#define RDFALIGN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_RESULT_H_
