#include "util/fault_injector.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace rdfalign {

std::atomic<bool> FaultInjector::enabled_{false};

namespace {

enum class ArmMode : uint8_t { kError, kShort, kEintr, kKill };

struct ArmedFault {
  uint64_t nth = 1;     ///< fires when the hit counter reaches this
  ArmMode mode = ArmMode::kError;
  int error_errno = EIO;
  uint64_t repeat = 1;  ///< eintr storm depth
  uint64_t fired = 0;   ///< how many times this arm has fired
};

struct Registry {
  std::mutex mu;
  std::map<std::string, std::vector<ArmedFault>> arms;
  std::map<std::string, uint64_t> hits;
  bool env_loaded = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during teardown
  return *r;
}

bool ParseErrno(const std::string& name, int* out) {
  static const std::pair<const char*, int> kNames[] = {
      {"EIO", EIO},           {"ENOSPC", ENOSPC},
      {"EDQUOT", EDQUOT},     {"EPIPE", EPIPE},
      {"ECONNRESET", ECONNRESET}, {"ETIMEDOUT", ETIMEDOUT},
      {"EACCES", EACCES},     {"EMFILE", EMFILE},
  };
  for (const auto& [n, v] : kNames) {
    if (name == n) {
      *out = v;
      return true;
    }
  }
  return false;
}

Status ParseOneArm(const std::string& clause, std::string* point,
                   ArmedFault* arm) {
  const size_t at = clause.find('@');
  const size_t eq = clause.find('=');
  if (at == std::string::npos || eq == std::string::npos || eq < at ||
      at == 0) {
    return Status::InvalidArgument("bad failpoint clause '" + clause +
                                   "' (expected point@N=mode)");
  }
  *point = clause.substr(0, at);
  const std::string nth_text = clause.substr(at + 1, eq - at - 1);
  char* end = nullptr;
  errno = 0;
  const unsigned long long nth = std::strtoull(nth_text.c_str(), &end, 10);
  if (nth_text.empty() || *end != '\0' || errno == ERANGE || nth == 0) {
    return Status::InvalidArgument("bad failpoint ordinal in '" + clause +
                                   "' (expected a positive integer)");
  }
  arm->nth = nth;
  std::string mode = clause.substr(eq + 1);
  if (mode == "kill") {
    arm->mode = ArmMode::kKill;
    return Status::OK();
  }
  if (mode == "short") {
    arm->mode = ArmMode::kShort;
    return Status::OK();
  }
  if (mode.rfind("eintr", 0) == 0) {
    arm->mode = ArmMode::kEintr;
    arm->error_errno = EINTR;
    const std::string depth = mode.substr(5);
    if (!depth.empty()) {
      errno = 0;
      const unsigned long long k = std::strtoull(depth.c_str(), &end, 10);
      if (*end != '\0' || errno == ERANGE || k == 0) {
        return Status::InvalidArgument("bad eintr depth in '" + clause + "'");
      }
      arm->repeat = k;
    }
    return Status::OK();
  }
  if (mode.rfind("error", 0) == 0) {
    arm->mode = ArmMode::kError;
    arm->error_errno = EIO;
    if (mode.size() > 5) {
      if (mode[5] != ':' ||
          !ParseErrno(mode.substr(6), &arm->error_errno)) {
        return Status::InvalidArgument("bad errno name in '" + clause + "'");
      }
    }
    return Status::OK();
  }
  return Status::InvalidArgument("unknown failpoint mode in '" + clause +
                                 "' (error|short|eintr|kill)");
}

void LoadEnvLocked(Registry& r);

Status ArmFromSpecLocked(Registry& r, const std::string& spec) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    if (semi > start) {
      const std::string clause = spec.substr(start, semi - start);
      std::string point;
      ArmedFault arm;
      RDFALIGN_RETURN_IF_ERROR(ParseOneArm(clause, &point, &arm));
      r.arms[point].push_back(arm);
    }
    if (semi == spec.size()) break;
    start = semi + 1;
  }
  return Status::OK();
}

/// True when the process was launched with RDFALIGN_FAULTS set — the only
/// case where a Hit must take the slow path before ArmFromSpec ran.
bool EnvRequested() {
  static const bool requested = [] {
    const char* s = std::getenv("RDFALIGN_FAULTS");
    return s != nullptr && s[0] != '\0';
  }();
  return requested;
}

void LoadEnvLocked(Registry& r) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  const char* spec = std::getenv("RDFALIGN_FAULTS");
  if (spec != nullptr && spec[0] != '\0') {
    // An unparsable env spec aborts loudly: silently running a fault test
    // with nothing armed would pass vacuously.
    Status st = ArmFromSpecLocked(r, spec);
    if (!st.ok()) {
      std::fprintf(stderr, "RDFALIGN_FAULTS: %s\n", st.ToString().c_str());
      std::abort();
    }
  }
}

}  // namespace

FaultAction FaultInjector::Hit(const char* point) {
  if (!Enabled() && !EnvRequested()) return FaultAction{};
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  LoadEnvLocked(r);
  const uint64_t count = ++r.hits[point];
  auto it = r.arms.find(point);
  if (it == r.arms.end()) return FaultAction{};
  for (ArmedFault& arm : it->second) {
    const bool in_window =
        count >= arm.nth && count < arm.nth + arm.repeat;
    if (!in_window || arm.fired >= arm.repeat) continue;
    ++arm.fired;
    switch (arm.mode) {
      case ArmMode::kKill:
        // Simulate a power cut / kill -9 at exactly this syscall: no
        // flushing, no atexit, no unwinding.
        ::kill(::getpid(), SIGKILL);
        ::_exit(137);  // unreachable; belt for blocked SIGKILL races
      case ArmMode::kShort:
        return FaultAction{FaultAction::kShort, 0};
      case ArmMode::kEintr:
        return FaultAction{FaultAction::kEintr, EINTR};
      case ArmMode::kError:
        return FaultAction{FaultAction::kError, arm.error_errno};
    }
  }
  return FaultAction{};
}

Status FaultInjector::ArmFromSpec(const std::string& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  RDFALIGN_RETURN_IF_ERROR(ArmFromSpecLocked(r, spec));
  enabled_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.arms.clear();
  r.hits.clear();
  r.env_loaded = true;  // an explicit Reset also discards the env spec
  enabled_.store(false, std::memory_order_relaxed);
}

uint64_t FaultInjector::Hits(const std::string& point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.hits.find(point);
  return it == r.hits.end() ? 0 : it->second;
}

}  // namespace rdfalign
