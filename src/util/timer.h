// Wall-clock timing for the scalability experiments (Fig. 16).

#ifndef RDFALIGN_UTIL_TIMER_H_
#define RDFALIGN_UTIL_TIMER_H_

#include <chrono>

namespace rdfalign {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds since construction or the last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rdfalign

#endif  // RDFALIGN_UTIL_TIMER_H_
