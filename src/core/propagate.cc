#include "core/propagate.h"

#include <algorithm>
#include <cmath>

#include "core/alignment.h"

namespace rdfalign {

double ReweightStep(const TripleGraph& g, const std::vector<NodeId>& x,
                    std::vector<double>& weight) {
  double max_delta = 0.0;
  std::vector<double> updated;
  updated.reserve(x.size());
  // Jacobi-style update: all new weights are computed from the previous
  // vector, then installed, so the result is independent of the order of x.
  for (NodeId n : x) {
    auto out = g.Out(n);
    if (out.empty()) {
      updated.push_back(weight[n]);  // reweight is undefined; keep ω(n)
      continue;
    }
    const double inv_deg = 1.0 / static_cast<double>(out.size());
    double acc = 0.0;
    for (const PredicateObject& po : out) {
      acc += OPlus(weight[po.p], weight[po.o]) * inv_deg;
      if (acc >= 1.0) {
        acc = 1.0;
        break;
      }
    }
    updated.push_back(acc);
  }
  for (size_t i = 0; i < x.size(); ++i) {
    max_delta = std::max(max_delta, std::abs(updated[i] - weight[x[i]]));
    weight[x[i]] = updated[i];
  }
  return max_delta;
}

WeightedPartition WeightedBisimRefineFixpoint(const TripleGraph& g,
                                              WeightedPartition xi,
                                              const std::vector<NodeId>& x,
                                              const PropagateOptions& options,
                                              RefinementStats* stats) {
  // Colors do not depend on weights, so the color fixpoint can be computed
  // first; the weight iteration then runs to its own (least) fixpoint.
  xi.partition = BisimRefineFixpoint(g, std::move(xi.partition), x, stats,
                                     options.refinement);
  for (size_t iter = 0; iter < options.max_weight_iterations; ++iter) {
    double delta = ReweightStep(g, x, xi.weight);
    if (delta < options.epsilon) break;
  }
  return xi;
}

WeightedPartition Propagate(const CombinedGraph& cg, WeightedPartition xi,
                            const PropagateOptions& options,
                            RefinementStats* stats) {
  std::vector<NodeId> un = UnalignedNonLiterals(cg, xi.partition);
  xi.partition = BlankColors(xi.partition, un);
  for (NodeId n : un) xi.weight[n] = 0.0;
  return WeightedBisimRefineFixpoint(cg.graph(), std::move(xi), un, options,
                                     stats);
}

}  // namespace rdfalign
