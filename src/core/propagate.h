// Weighted propagation (§4.5).
//
// After enrichment, the new alignment information is pushed to the
// remaining unaligned nodes by the weighted refinement: colors evolve
// exactly as in BisimRefine, and the weight of a recolored node becomes the
// ⊕-average of its out-edge weights,
//
//   reweight_ω(n) = ⊕ { (ω(p) ⊕ ω(o)) / |out(n)| : (p,o) ∈ out(n) }.
//
// Weights on the recolored set start at 0 and only increase, so the
// iteration stabilizes; it stops when the partition is at a fixpoint and no
// weight moves by more than ε.
//
// Propagate(ξ) = BisimRefine*_{UN(ξ)}(Blank(ξ, UN(ξ))) with zeroed weights
// on UN(ξ); Propagate((λ_Trivial, 0)) ≡ (λ_Hybrid, 0) (§4.5).

#ifndef RDFALIGN_CORE_PROPAGATE_H_
#define RDFALIGN_CORE_PROPAGATE_H_

#include <vector>

#include "core/refinement.h"
#include "core/weighted_partition.h"
#include "rdf/merge.h"

namespace rdfalign {

/// Stabilization knobs for weighted refinement.
struct PropagateOptions {
  /// Weight-stabilization tolerance ε.
  double epsilon = 1e-4;
  /// Safety cap on weight iterations after the partition stabilizes.
  size_t max_weight_iterations = 1000;
  /// Engine selection for the color fixpoint.
  RefinementOptions refinement;
};

/// One weight update pass over X; returns the largest change.
double ReweightStep(const TripleGraph& g, const std::vector<NodeId>& x,
                    std::vector<double>& weight);

/// BisimRefine*_X(ξ) for weighted partitions: color fixpoint plus weight
/// stabilization.
WeightedPartition WeightedBisimRefineFixpoint(
    const TripleGraph& g, WeightedPartition xi, const std::vector<NodeId>& x,
    const PropagateOptions& options = {}, RefinementStats* stats = nullptr);

/// Propagate(ξ): blank out the unaligned non-literal nodes (colors to ⊥b,
/// weights to 0) and run the weighted refinement on them.
WeightedPartition Propagate(const CombinedGraph& cg, WeightedPartition xi,
                            const PropagateOptions& options = {},
                            RefinementStats* stats = nullptr);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_PROPAGATE_H_
