// High-level alignment API: one entry point over all methods of the paper.
//
//   Aligner aligner(options);
//   auto outcome = aligner.Align(v1, v2);           // two RDF versions
//   outcome->edge_stats.Ratio();                    // Fig. 10 metric
//
// Methods form the §3.4 hierarchy Trivial ⊆ Deblank ⊆ Hybrid, with Overlap
// (§4.7) as the edit-robust refinement on top.

#ifndef RDFALIGN_CORE_ALIGNER_H_
#define RDFALIGN_CORE_ALIGNER_H_

#include <string_view>

#include "core/alignment.h"
#include "core/overlap_align.h"
#include "core/partition.h"
#include "core/refinement.h"
#include "core/weighted_partition.h"
#include "rdf/graph.h"
#include "rdf/merge.h"
#include "util/result.h"

namespace rdfalign {

/// The alignment methods of the paper, in increasing power, plus the
/// predicate-aware extension.
enum class AlignMethod {
  kTrivial,           ///< label equality on non-blank nodes (§3.1)
  kDeblank,           ///< + bisimulation on blank nodes (§3.3)
  kHybrid,            ///< + re-identification of renamed URIs (§3.4)
  kHybridContextual,  ///< + mediation signatures for predicate-only URIs
                      ///<   (the §5.1 suggested fix; core/context.h)
  kOverlap,           ///< + edit-robust similarity via weighted partitions
                      ///<   (§4.7)
};

std::string_view AlignMethodToString(AlignMethod method);

/// Configuration of an Aligner.
struct AlignerOptions {
  AlignMethod method = AlignMethod::kHybrid;
  /// Engine selection and signing-thread count for the refinement
  /// fixpoints (kDeblank/kHybrid/kHybridContextual; kOverlap takes the
  /// setting from `overlap.propagate.refinement`).
  RefinementOptions refinement;
  /// Used when method == kOverlap.
  OverlapAlignOptions overlap;
};

/// Wall-clock breakdown of one alignment run, milliseconds. Phases that a
/// method does not execute stay 0 (enrich/index/match are kOverlap-only).
struct AlignPhaseTimings {
  double merge_ms = 0;          ///< CombinedGraph::Build (Align() only)
  double refine_ms = 0;         ///< partition construction (method core)
  double enrich_ms = 0;         ///< Enrich + Propagate rounds
  double overlap_index_ms = 0;  ///< characterizing sets + inverted index
  double match_ms = 0;          ///< candidate probing + σ verification
  double stats_ms = 0;          ///< edge + node alignment statistics
};

/// The result of aligning two versions.
struct AlignmentOutcome {
  /// Class structure (for kOverlap: the ξ_Overlap partition).
  Partition partition;
  /// Confidence weights; empty unless method == kOverlap.
  std::vector<double> weights;
  /// Aggregates of the final refinement run.
  RefinementStats refinement;
  /// Edge- and node-level metrics (Figs. 10-13).
  EdgeAlignmentStats edge_stats;
  NodeAlignmentStats node_stats;
  /// Wall-clock seconds of the alignment proper (excl. graph merging).
  double seconds = 0.0;
  /// Per-phase wall-clock breakdown (the CLI's --json `phases` object and
  /// bench/pipeline_bench.cc read this).
  AlignPhaseTimings phases;
};

/// Facade that runs a configured alignment method end to end.
class Aligner {
 public:
  explicit Aligner(AlignerOptions options = {}) : options_(options) {}

  /// Aligns two RDF graphs (they must share a Dictionary).
  Result<AlignmentOutcome> Align(const TripleGraph& g1,
                                 const TripleGraph& g2) const;

  /// Aligns a pre-built combined graph.
  AlignmentOutcome AlignCombined(const CombinedGraph& cg) const;

  const AlignerOptions& options() const { return options_; }

 private:
  AlignerOptions options_;
};

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_ALIGNER_H_
