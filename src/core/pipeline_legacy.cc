#include "core/pipeline_legacy.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace rdfalign::legacy {

namespace {

/// 96-bit edge key packed into two 64-bit words for hashing.
struct TripleKey {
  uint64_t hi;
  uint64_t lo;
  bool operator==(const TripleKey&) const = default;
};

struct TripleKeyHash {
  size_t operator()(const TripleKey& k) const {
    return static_cast<size_t>(HashCombine(Mix64(k.hi), k.lo));
  }
};

TripleKey MakeColorKey(const Partition& p, const Triple& t) {
  return TripleKey{PackPair(p.ColorOf(t.s), p.ColorOf(t.p)),
                   static_cast<uint64_t>(p.ColorOf(t.o))};
}

}  // namespace

std::pair<std::vector<ColorId>, size_t> RenumberFirstOccurrence(
    std::vector<ColorId> colors) {
  std::unordered_map<ColorId, ColorId> renumber;
  renumber.reserve(colors.size() / 4 + 8);
  for (ColorId& c : colors) {
    auto [it, inserted] =
        renumber.emplace(c, static_cast<ColorId>(renumber.size()));
    c = it->second;
  }
  return {std::move(colors), renumber.size()};
}

bool PartitionEquivalent(const Partition& a, const Partition& b) {
  if (a.NumNodes() != b.NumNodes()) return false;
  if (a.NumColors() != b.NumColors()) return false;
  std::unordered_map<ColorId, ColorId> a_to_b;
  std::unordered_map<ColorId, ColorId> b_to_a;
  a_to_b.reserve(a.NumColors());
  b_to_a.reserve(b.NumColors());
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    ColorId ca = a.ColorOf(static_cast<NodeId>(i));
    ColorId cb = b.ColorOf(static_cast<NodeId>(i));
    auto [it1, ins1] = a_to_b.emplace(ca, cb);
    if (!ins1 && it1->second != cb) return false;
    auto [it2, ins2] = b_to_a.emplace(cb, ca);
    if (!ins2 && it2->second != ca) return false;
  }
  return true;
}

bool PartitionIsFinerOrEqual(const Partition& fine, const Partition& coarse) {
  if (fine.NumNodes() != coarse.NumNodes()) return false;
  std::unordered_map<ColorId, ColorId> fine_to_coarse;
  fine_to_coarse.reserve(fine.NumColors());
  for (size_t i = 0; i < fine.NumNodes(); ++i) {
    auto [it, inserted] =
        fine_to_coarse.emplace(fine.ColorOf(static_cast<NodeId>(i)),
                               coarse.ColorOf(static_cast<NodeId>(i)));
    if (!inserted && it->second != coarse.ColorOf(static_cast<NodeId>(i))) {
      return false;
    }
  }
  return true;
}

std::vector<std::vector<NodeId>> PartitionClassesVectors(const Partition& p) {
  std::vector<std::vector<NodeId>> out(p.NumColors());
  for (NodeId i = 0; i < p.NumNodes(); ++i) {
    out[p.ColorOf(i)].push_back(i);
  }
  return out;
}

Partition LabelPartition(const TripleGraph& g) {
  std::vector<ColorId> colors(g.NumNodes());
  std::unordered_map<uint64_t, ColorId> by_label;
  by_label.reserve(g.NumNodes());
  constexpr uint64_t kBlankKey = ~0ULL;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    uint64_t key;
    if (g.IsBlank(i)) {
      key = kBlankKey;
    } else {
      key = (static_cast<uint64_t>(g.KindOf(i)) << 33) | g.LexicalId(i);
    }
    auto [it, inserted] =
        by_label.emplace(key, static_cast<ColorId>(by_label.size()));
    colors[i] = it->second;
  }
  return Partition::FromColors(std::move(colors));
}

Partition TrivialPartition(const TripleGraph& g) {
  std::vector<ColorId> colors(g.NumNodes());
  std::unordered_map<uint64_t, ColorId> by_label;
  by_label.reserve(g.NumNodes());
  ColorId next = 0;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (g.IsBlank(i)) {
      colors[i] = next++;
      continue;
    }
    uint64_t key = (static_cast<uint64_t>(g.KindOf(i)) << 33) | g.LexicalId(i);
    auto it = by_label.find(key);
    if (it == by_label.end()) {
      it = by_label.emplace(key, next++).first;
    }
    colors[i] = it->second;
  }
  return Partition::FromColors(std::move(colors));
}

EdgeAlignmentStats ComputeEdgeAlignment(const CombinedGraph& cg,
                                        const Partition& p) {
  const TripleGraph& g = cg.graph();

  auto label_key = [&](const Triple& t) -> TripleKey {
    return TripleKey{PackPair(g.LexicalId(t.s), g.LexicalId(t.p)),
                     static_cast<uint64_t>(g.LexicalId(t.o)) |
                         (static_cast<uint64_t>(g.KindOf(t.o)) << 32)};
  };
  auto has_blank = [&](const Triple& t) {
    return g.IsBlank(t.s) || g.IsBlank(t.p) || g.IsBlank(t.o);
  };

  std::unordered_set<TripleKey, TripleKeyHash> source_label_edges;
  source_label_edges.reserve(cg.e1());
  for (const Triple& t : g.triples()) {
    if (cg.InSource(t.s) && !has_blank(t)) {
      source_label_edges.insert(label_key(t));
    }
  }
  size_t merged = 0;
  for (const Triple& t : g.triples()) {
    if (cg.InTarget(t.s) && !has_blank(t) &&
        source_label_edges.count(label_key(t)) > 0) {
      ++merged;
    }
  }

  std::unordered_set<TripleKey, TripleKeyHash> source_colors;
  std::unordered_set<TripleKey, TripleKeyHash> target_colors;
  source_colors.reserve(cg.e1());
  target_colors.reserve(cg.e2());
  for (const Triple& t : g.triples()) {
    if (cg.InSource(t.s)) {
      source_colors.insert(MakeColorKey(p, t));
    } else {
      target_colors.insert(MakeColorKey(p, t));
    }
  }
  size_t aligned = 0;
  for (const Triple& t : g.triples()) {
    const auto& opposite = cg.InSource(t.s) ? target_colors : source_colors;
    if (opposite.count(MakeColorKey(p, t)) > 0) ++aligned;
  }
  aligned -= merged;

  EdgeAlignmentStats stats;
  stats.total_edges = cg.e1() + cg.e2() - merged;
  stats.aligned_edges = aligned;
  return stats;
}

RdfDelta ComputeDelta(const CombinedGraph& cg, const Partition& p) {
  const TripleGraph& g = cg.graph();
  RdfDelta delta;

  std::unordered_map<TripleKey, size_t, TripleKeyHash> target_counts;
  for (const Triple& t : g.triples()) {
    if (cg.InTarget(t.s)) ++target_counts[MakeColorKey(p, t)];
  }
  std::unordered_map<TripleKey, size_t, TripleKeyHash> consumed;
  for (const Triple& t : g.triples()) {
    if (!cg.InSource(t.s)) continue;
    TripleKey key = MakeColorKey(p, t);
    auto it = target_counts.find(key);
    size_t& used = consumed[key];
    if (it != target_counts.end() && used < it->second) {
      ++used;
      ++delta.unchanged;
    } else {
      delta.deleted.push_back(t);
    }
  }
  std::unordered_map<TripleKey, size_t, TripleKeyHash> seen;
  for (const Triple& t : g.triples()) {
    if (!cg.InTarget(t.s)) continue;
    TripleKey key = MakeColorKey(p, t);
    size_t& cnt = seen[key];
    ++cnt;
    auto it = consumed.find(key);
    size_t matched = it == consumed.end() ? 0 : it->second;
    if (cnt > matched) delta.added.push_back(t);
  }

  std::unordered_map<ColorId,
                     std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      uri_classes;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (!g.IsUri(n)) continue;
    auto& entry = uri_classes[p.ColorOf(n)];
    (cg.InSource(n) ? entry.first : entry.second).push_back(n);
  }
  for (auto& [color, nodes] : uri_classes) {
    for (NodeId a : nodes.first) {
      for (NodeId b : nodes.second) {
        if (g.LexicalId(a) != g.LexicalId(b)) {
          delta.renamed_uris.push_back(UriRename{
              a, b, std::string(g.Lexical(a)), std::string(g.Lexical(b))});
        }
      }
    }
  }
  return delta;
}

std::vector<std::pair<NodeId, NodeId>> EnumerateAlignedPairs(
    const CombinedGraph& cg, const Partition& p, size_t limit) {
  std::unordered_map<ColorId,
                     std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      classes;
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    auto& entry = classes[p.ColorOf(n)];
    (cg.InSource(n) ? entry.first : entry.second).push_back(n);
  }
  std::vector<std::pair<NodeId, NodeId>> out;
  for (auto& [color, nodes] : classes) {
    for (NodeId a : nodes.first) {
      for (NodeId b : nodes.second) {
        if (out.size() >= limit) return out;
        out.emplace_back(a, b);
      }
    }
  }
  return out;
}

bool HasCrossoverProperty(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  std::set<std::pair<NodeId, NodeId>> set(pairs.begin(), pairs.end());
  std::multimap<NodeId, NodeId> by_source;
  std::multimap<NodeId, NodeId> by_target;
  for (const auto& [n, m] : pairs) {
    by_source.emplace(n, m);
    by_target.emplace(m, n);
  }
  for (const auto& [n, m] : pairs) {
    auto ms = by_source.equal_range(n);
    auto ns = by_target.equal_range(m);
    for (auto it1 = ns.first; it1 != ns.second; ++it1) {
      for (auto it2 = ms.first; it2 != ms.second; ++it2) {
        if (set.count({it1->second, it2->second}) == 0) return false;
      }
    }
  }
  return true;
}

BipartiteMatching OverlapMatch(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const VectorCharSets& a_char, const VectorCharSets& b_char, double theta,
    const std::function<double(size_t, size_t)>& sigma,
    const OverlapMatchOptions& options, OverlapMatchStats* stats) {
  BipartiteMatching h;
  OverlapMatchStats local;
  if (a_nodes.empty() || b_nodes.empty()) {
    if (stats != nullptr) *stats = local;
    return h;
  }

  std::unordered_map<uint64_t, std::vector<uint32_t>, U64Hash> inv;
  for (uint32_t bi = 0; bi < b_nodes.size(); ++bi) {
    for (uint64_t o : b_char[bi]) {
      inv[o].push_back(bi);
    }
  }
  auto freq = [&](uint64_t o) -> size_t {
    auto it = inv.find(o);
    return it == inv.end() ? 0 : it->second.size();
  };

  std::vector<uint32_t> stamp(b_nodes.size(), 0);
  uint32_t round = 0;

  std::vector<uint64_t> objects;
  for (uint32_t ai = 0; ai < a_nodes.size(); ++ai) {
    const std::vector<uint64_t>& chars = a_char[ai];
    if (chars.empty()) continue;
    const size_t k = chars.size();

    objects.assign(chars.begin(), chars.end());
    std::sort(objects.begin(), objects.end(),
              [&](uint64_t x, uint64_t y) {
                size_t fx = freq(x);
                size_t fy = freq(y);
                return fx != fy ? fx < fy : x < y;
              });

    const size_t paper_len = static_cast<size_t>(
        std::ceil(static_cast<double>(k) * theta));
    size_t prefix_len = paper_len;
    if (!options.paper_prefix) {
      const size_t theta_k = static_cast<size_t>(
          std::ceil(static_cast<double>(k) * theta));
      const size_t sound_len = k >= theta_k ? k - theta_k + 1 : 1;
      prefix_len = std::max(paper_len, sound_len);
    }
    prefix_len = std::min(prefix_len, k);

    ++round;
    for (size_t i = 0; i < prefix_len; ++i) {
      auto it = inv.find(objects[i]);
      if (it == inv.end()) continue;
      for (uint32_t bi : it->second) {
        ++local.candidates_probed;
        if (stamp[bi] == round) continue;
        stamp[bi] = round;
        ++local.overlap_checked;
        if (OverlapMeasure(std::span<const uint64_t>(chars),
                           std::span<const uint64_t>(b_char[bi])) < theta) {
          continue;
        }
        ++local.sigma_checked;
        double d = sigma(ai, bi);
        if (d < theta) {
          h.edges.push_back(MatchEdge{a_nodes[ai], b_nodes[bi], d});
          ++local.matched;
        }
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return h;
}

}  // namespace rdfalign::legacy
