// The partition-refinement engine (§3.2, Definitions 3 & 4).
//
// One refinement step recolors every node n in a chosen subset X with the
// hash-consed signature
//     recolor_λ(n) = (λ(n), { (λ(p), λ(o)) | (p,o) ∈ out_G(n) })      (1)
// while nodes outside X keep their color (2). The fixpoint driver iterates
// until the induced equivalence stops changing; because a step only splits
// classes, the fixpoint is detected by a stable class count.
//
// This is the paper's "derivation tree as a DAG with simple hashing": a
// dense ColorId stands for the whole derivation tree rooted at the node.

#ifndef RDFALIGN_CORE_REFINEMENT_H_
#define RDFALIGN_CORE_REFINEMENT_H_

#include <vector>

#include "core/partition.h"
#include "rdf/graph.h"

namespace rdfalign {

/// Telemetry of a refinement run.
struct RefinementStats {
  size_t iterations = 0;      ///< steps executed (incl. the stabilizing one)
  size_t final_classes = 0;   ///< classes in the fixpoint partition
  size_t initial_classes = 0; ///< classes in the input partition
};

/// One-step refinement BisimRefine_X(λ): recolors exactly the nodes in X by
/// signature; all other nodes keep their class. X entries must be valid node
/// ids of `g`.
Partition BisimRefineStep(const TripleGraph& g, const Partition& p,
                          const std::vector<NodeId>& x);

/// Fixpoint refinement BisimRefine*_X(λ) (Definition 4): applies the step
/// until the partition stabilizes.
Partition BisimRefineFixpoint(const TripleGraph& g, Partition initial,
                              const std::vector<NodeId>& x,
                              RefinementStats* stats = nullptr);

/// Blank(λ, X): resets the color of every node in X to one shared fresh
/// "blank" color (eq. 3) — the precursor of the hybrid alignment and of
/// weighted propagation.
Partition BlankColors(const Partition& p, const std::vector<NodeId>& x);

// --- key-restricted refinement (§6 future work) ----------------------------
//
// "variants of our approach where only selected parts of the outbound
//  neighborhood are used, for instance specified by a notion of a key for
//  graph databases, possibly allowing to align nodes of graphs following
//  different structure."
//
// A *graph key* is a set of predicates; keyed refinement identifies a node
// by the key attributes only, so nodes agreeing on the key align even when
// their non-key attributes changed.

/// Builds a per-node mask marking the nodes whose URI label is one of
/// `predicate_uris` (the key predicates).
std::vector<uint8_t> BuildPredicateMask(
    const TripleGraph& g, const std::vector<std::string>& predicate_uris);

/// One-step keyed refinement: as BisimRefineStep, but only out-pairs whose
/// predicate node is marked in `predicate_mask` enter the signature.
Partition BisimRefineStepKeyed(const TripleGraph& g, const Partition& p,
                               const std::vector<NodeId>& x,
                               const std::vector<uint8_t>& predicate_mask);

/// Fixpoint of the keyed step.
Partition BisimRefineFixpointKeyed(const TripleGraph& g, Partition initial,
                                   const std::vector<NodeId>& x,
                                   const std::vector<uint8_t>& predicate_mask,
                                   RefinementStats* stats = nullptr);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_REFINEMENT_H_
