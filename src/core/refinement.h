// The partition-refinement engine (§3.2, Definitions 3 & 4).
//
// One refinement step recolors every node n in a chosen subset X with the
// hash-consed signature
//     recolor_λ(n) = (λ(n), { (λ(p), λ(o)) | (p,o) ∈ out_G(n) })      (1)
// while nodes outside X keep their color (2). The fixpoint driver iterates
// until the induced equivalence stops changing; because a step only splits
// classes, the fixpoint is detected by a stable class count.
//
// This is the paper's "derivation tree as a DAG with simple hashing": a
// dense ColorId stands for the whole derivation tree rooted at the node.
//
// Two fixpoint engines are available (RefinementOptions::incremental):
//
//  * The incremental worklist engine (default; core/worklist_engine.h).
//    After the first pass over X, only nodes with an out-neighbor whose
//    color changed in the previous round are re-signed; every other node
//    keeps its color with zero work. Signatures are consed through a 64-bit
//    hash into a shared arena with collision verification, so steady-state
//    rounds perform no per-node heap allocation. Large rounds — the first
//    round especially, which signs all of X — can be signed by a worker
//    pool (RefinementOptions::threads) with a deterministic merge that
//    keeps the partition bit-identical across thread counts. See
//    docs/refinement.md for the invariants.
//  * The legacy full-rescan engine, which re-signs all of X every
//    iteration. It is retained for A/B comparisons (bench/refinement_bench
//    and the randomized equivalence tests); both engines produce identical
//    partitions.

#ifndef RDFALIGN_CORE_REFINEMENT_H_
#define RDFALIGN_CORE_REFINEMENT_H_

#include <vector>

#include "core/partition.h"
#include "rdf/graph.h"

namespace rdfalign {

/// Engine selection for the fixpoint drivers.
struct RefinementOptions {
  /// Use the incremental worklist engine (default); false selects the
  /// legacy full-rescan step, kept for A/B testing.
  bool incremental = true;
  /// Signing workers for wide refinement rounds under the incremental
  /// engine. 1 = sequential (default); 0 = one worker per hardware thread.
  /// Any setting yields a bit-identical partition: workers sign into
  /// thread-local arenas and a single deterministic merge conses the
  /// signatures in worklist order.
  size_t threads = 1;
  /// Minimum worklist width before the worker pool engages; narrower
  /// rounds are signed inline (thread spawn would dominate). Tests lower
  /// this to force the parallel path on small graphs.
  size_t parallel_min_round = 4096;
};

/// Telemetry of a refinement run.
struct RefinementStats {
  size_t iterations = 0;      ///< steps executed (incl. the stabilizing one)
  size_t final_classes = 0;   ///< classes in the fixpoint partition
  size_t initial_classes = 0; ///< classes in the input partition
  /// Nodes re-signed per iteration: the worklist sizes for the incremental
  /// engine, |X| every iteration for the legacy engine.
  std::vector<size_t> dirty_per_iteration;
  /// Total bytes of signature words built while signing nodes (counted per
  /// re-signing, including signatures deduplicated by the cons table — a
  /// measure of signing work, not of cons-table memory). Reported by the
  /// incremental engine only (0 under the legacy engine).
  size_t signature_bytes = 0;
  /// Wall-clock of the first refinement round, the one that signs all of X
  /// (incremental engine only; the parallel-signing target).
  double first_round_ms = 0.0;
  /// Resolved signing-worker count (incremental engine only; >= 1).
  size_t threads_used = 0;

  /// Sum of dirty_per_iteration: total node re-signings performed.
  size_t TotalDirty() const {
    size_t total = 0;
    for (size_t d : dirty_per_iteration) total += d;
    return total;
  }
};

/// One-step refinement BisimRefine_X(λ): recolors exactly the nodes in X by
/// signature; all other nodes keep their class. X entries must be valid node
/// ids of `g`. This is the legacy full-rescan step.
Partition BisimRefineStep(const TripleGraph& g, const Partition& p,
                          const std::vector<NodeId>& x);

/// Fixpoint refinement BisimRefine*_X(λ) (Definition 4): applies the step
/// until the partition stabilizes, using the engine selected by `options`.
Partition BisimRefineFixpoint(const TripleGraph& g, Partition initial,
                              const std::vector<NodeId>& x,
                              RefinementStats* stats = nullptr,
                              const RefinementOptions& options = {});

/// Blank(λ, X): resets the color of every node in X to one shared fresh
/// "blank" color (eq. 3) — the precursor of the hybrid alignment and of
/// weighted propagation.
Partition BlankColors(const Partition& p, const std::vector<NodeId>& x);

// --- key-restricted refinement (§6 future work) ----------------------------
//
// "variants of our approach where only selected parts of the outbound
//  neighborhood are used, for instance specified by a notion of a key for
//  graph databases, possibly allowing to align nodes of graphs following
//  different structure."
//
// A *graph key* is a set of predicates; keyed refinement identifies a node
// by the key attributes only, so nodes agreeing on the key align even when
// their non-key attributes changed.

/// Builds a per-node mask marking the nodes whose URI label is one of
/// `predicate_uris` (the key predicates).
std::vector<uint8_t> BuildPredicateMask(
    const TripleGraph& g, const std::vector<std::string>& predicate_uris);

/// One-step keyed refinement: as BisimRefineStep, but only out-pairs whose
/// predicate node is marked in `predicate_mask` enter the signature.
Partition BisimRefineStepKeyed(const TripleGraph& g, const Partition& p,
                               const std::vector<NodeId>& x,
                               const std::vector<uint8_t>& predicate_mask);

/// Fixpoint of the keyed step, using the engine selected by `options`.
Partition BisimRefineFixpointKeyed(const TripleGraph& g, Partition initial,
                                   const std::vector<NodeId>& x,
                                   const std::vector<uint8_t>& predicate_mask,
                                   RefinementStats* stats = nullptr,
                                   const RefinementOptions& options = {});

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_REFINEMENT_H_
