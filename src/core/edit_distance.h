// String edit distance (Levenshtein) and its normalized form, the literal
// distance of §4.2: two unaligned literals are at distance ed(s,t)/max(|s|,
// |t|) — e.g. "abc" vs "ac" is 1/3 in Example 5.

#ifndef RDFALIGN_CORE_EDIT_DISTANCE_H_
#define RDFALIGN_CORE_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace rdfalign {

/// Unit-cost Levenshtein distance (insert / delete / substitute), O(|a|·|b|)
/// time, O(min(|a|,|b|)) space. Operates on bytes.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// Levenshtein with early exit: returns the exact distance when it is
/// <= `bound`, and any value > `bound` otherwise (banded computation,
/// O(bound·min(|a|,|b|)) time).
size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t bound);

/// ed(a,b) / max(|a|,|b|); 0 when both strings are empty. A metric on
/// strings with values in [0,1].
double NormalizedEditDistance(std::string_view a, std::string_view b);

/// Threshold variant: returns the exact normalized distance when it is
/// < `theta`, and 1.0 otherwise (uses the banded computation — the overlap
/// heuristic only needs distances below its threshold).
double NormalizedEditDistanceBounded(std::string_view a, std::string_view b,
                                     double theta);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_EDIT_DISTANCE_H_
