// Similarity flooding [Melnik, Garcia-Molina, Rahm; ICDE 2002] — the
// related-work baseline the paper contrasts its similarity measure with
// (§1, Related Work):
//
//   "when defining the similarity of two nodes, the similarity flooding
//    takes a weighted average over the Cartesian product of sets of
//    outgoing edges of the two nodes while our approach identifies the
//    optimal matching among the outgoing edges."
//
// This implementation follows the classic fixpoint formulation adapted to
// triple graphs: the pairwise connectivity graph has a node for every
// candidate pair (n, m) ∈ N1×N2; an edge links (s1, s2) to (o1, o2) when
// triples (s1, p1, o1) ∈ E1 and (s2, p2, o2) ∈ E2 share a predicate label.
// Similarities seed from label equality / literal string similarity and
// flood along the edges with inverse-degree weights until stable, then are
// normalized by the global maximum.
//
// Like σEdit this is quadratic in the worst case and exists as a baseline:
// bench/ablation_baselines compares its alignment quality and cost against
// Hybrid/Overlap/σEdit on a ground-truthed workload.

#ifndef RDFALIGN_CORE_SIMILARITY_FLOODING_H_
#define RDFALIGN_CORE_SIMILARITY_FLOODING_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/merge.h"
#include "util/result.h"

namespace rdfalign {

/// Knobs of the flooding fixpoint.
struct SimilarityFloodingOptions {
  size_t max_iterations = 50;
  double epsilon = 1e-4;
  /// Initial similarity of label-equal non-blank pairs.
  double seed_equal = 1.0;
  /// Initial similarity floor for same-kind pairs (lets structure alone
  /// bootstrap blank-node matches).
  double seed_floor = 0.001;
  /// Safety cap on pairwise-graph nodes.
  size_t max_pairs = 4ull * 1024 * 1024;
};

/// The computed similarity function plus its support.
class SimilarityFlooding {
 public:
  /// Runs similarity flooding over the combined graph.
  static Result<SimilarityFlooding> Compute(
      const CombinedGraph& cg, const SimilarityFloodingOptions& options = {});

  /// Normalized similarity in [0, 1]; 0 for pairs outside the support.
  double Similarity(NodeId n, NodeId m) const;

  /// Greedy one-to-one matching: repeatedly takes the highest-similarity
  /// pair with both endpoints unmatched, stopping below `min_similarity`.
  std::vector<std::pair<NodeId, NodeId>> GreedyMatching(
      double min_similarity) const;

  size_t NumPairs() const { return pairs_.size(); }
  size_t iterations() const { return iterations_; }

 private:
  std::vector<std::pair<NodeId, NodeId>> pairs_;
  std::vector<double> similarity_;
  std::unordered_map<uint64_t, uint32_t> index_;
  size_t iterations_ = 0;
};

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_SIMILARITY_FLOODING_H_
