#include "core/worklist_engine.h"

namespace rdfalign {
namespace internal {

size_t ResolveThreads(size_t requested) {
  return rdfalign::ResolveThreads(requested);
}

Partition RunWorklistFixpoint(const TripleGraph& g, const Partition& initial,
                              const std::vector<NodeId>& x,
                              const WorklistConfig& config,
                              RefinementStats* stats) {
  WorklistConfig resolved = config;
  resolved.threads = ResolveThreads(config.threads);
  WorklistEngine<TripleGraph> engine(g, initial, x, resolved);
  return engine.Run(stats);
}

}  // namespace internal
}  // namespace rdfalign
