#include "core/archive.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "core/alignment.h"

namespace rdfalign {

VersionArchive::VersionArchive(AlignerOptions options) : options_(options) {}

Result<uint32_t> VersionArchive::Append(const TripleGraph& version) {
  const uint32_t v = static_cast<uint32_t>(versions_.size());
  if (v == 0) {
    versions_.push_back(version);
    std::vector<EntityId> ids(version.NumNodes());
    for (NodeId n = 0; n < version.NumNodes(); ++n) ids[n] = next_entity_++;
    entity_of_.push_back(std::move(ids));
    RecordTriples(v);
    return v;
  }

  const TripleGraph& prev = versions_.back();
  if (prev.dict_ptr().get() != version.dict_ptr().get()) {
    return Status::InvalidArgument(
        "archived versions must share one Dictionary");
  }
  RDFALIGN_ASSIGN_OR_RETURN(CombinedGraph cg,
                            CombinedGraph::Build(prev, version));
  Aligner aligner(options_);
  AlignmentOutcome outcome = aligner.AlignCombined(cg);

  // Entity inheritance: a class containing nodes of both versions hands the
  // smallest previous entity id to all its new-version members (blank
  // duplicates merge deliberately); unmatched nodes found new entities.
  std::unordered_map<ColorId, EntityId> class_entity;
  const std::vector<EntityId>& prev_ids = entity_of_.back();
  for (NodeId n = 0; n < cg.n1(); ++n) {
    ColorId c = outcome.partition.ColorOf(n);
    EntityId e = prev_ids[cg.ToLocal(n)];
    auto [it, inserted] = class_entity.emplace(c, e);
    if (!inserted && e < it->second) it->second = e;
  }
  std::vector<EntityId> ids(version.NumNodes());
  for (NodeId local = 0; local < version.NumNodes(); ++local) {
    ColorId c = outcome.partition.ColorOf(cg.FromTarget(local));
    auto it = class_entity.find(c);
    ids[local] = it != class_entity.end() ? it->second : next_entity_++;
  }

  versions_.push_back(version);
  entity_of_.push_back(std::move(ids));
  RecordTriples(v);
  return v;
}

Result<VersionArchive> VersionArchive::Restore(
    AlignerOptions options, std::vector<TripleGraph> versions,
    std::vector<std::vector<EntityId>> entity_of) {
  if (versions.size() != entity_of.size()) {
    return Status::InvalidArgument(
        "restore requires one entity column per version");
  }
  for (size_t v = 0; v < versions.size(); ++v) {
    if (entity_of[v].size() != versions[v].NumNodes()) {
      return Status::InvalidArgument(
          "restore entity column size does not match version " +
          std::to_string(v));
    }
    if (v > 0 &&
        versions[v].dict_ptr().get() != versions[0].dict_ptr().get()) {
      return Status::InvalidArgument(
          "restored versions must share one Dictionary");
    }
  }
  VersionArchive archive(options);
  archive.versions_ = std::move(versions);
  archive.entity_of_ = std::move(entity_of);
  for (const std::vector<EntityId>& ids : archive.entity_of_) {
    for (EntityId e : ids) {
      if (e >= archive.next_entity_) archive.next_entity_ = e + 1;
    }
  }
  for (uint32_t v = 0; v < archive.versions_.size(); ++v) {
    archive.RecordTriples(v);
  }
  return archive;
}

void VersionArchive::RecordTriples(uint32_t version) {
  const TripleGraph& g = versions_[version];
  const std::vector<EntityId>& ids = entity_of_[version];
  triple_version_pairs_ += g.NumEdges();
  // Entity-level deduplication within a version (merged blank duplicates
  // can map distinct node triples onto one entity triple).
  std::set<std::tuple<EntityId, EntityId, EntityId>> present;
  for (const Triple& t : g.triples()) {
    present.emplace(ids[t.s], ids[t.p], ids[t.o]);
  }
  for (const auto& key : present) {
    std::vector<VersionInterval>& intervals = records_[key];
    if (!intervals.empty() && intervals.back().to == version) {
      ++intervals.back().to;  // extend the open interval
    } else {
      intervals.push_back(VersionInterval{version, version + 1});
    }
  }
}

EntityId VersionArchive::EntityOf(uint32_t version, NodeId node) const {
  return entity_of_[version][node];
}

std::vector<ArchivedTriple> VersionArchive::TriplesAt(
    uint32_t version) const {
  std::vector<ArchivedTriple> out;
  for (const auto& [key, intervals] : records_) {
    for (const VersionInterval& iv : intervals) {
      if (iv.from <= version && version < iv.to) {
        out.push_back(ArchivedTriple{std::get<0>(key), std::get<1>(key),
                                     std::get<2>(key), intervals});
        break;
      }
    }
  }
  return out;
}

ArchiveStats VersionArchive::Stats() const {
  ArchiveStats s;
  s.versions = versions_.size();
  s.triple_version_pairs = triple_version_pairs_;
  s.distinct_triples = records_.size();
  s.entities = next_entity_;
  for (const auto& [key, intervals] : records_) {
    s.interval_records += intervals.size();
  }
  return s;
}

}  // namespace rdfalign
