#include "core/overlap_align.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "core/alignment.h"
#include "core/edit_distance.h"
#include "core/hybrid.h"
#include "util/hash.h"
#include "util/string_util.h"

namespace rdfalign {

std::vector<uint64_t> OutColorSet(const TripleGraph& g,
                                  const WeightedPartition& xi, NodeId n) {
  std::vector<uint64_t> out;
  out.reserve(g.OutDegree(n));
  for (const PredicateObject& po : g.Out(n)) {
    out.push_back(PackPair(xi.partition.ColorOf(po.p),
                           xi.partition.ColorOf(po.o)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// One out-edge annotated with its color key and endpoint weights.
struct KeyedEdge {
  uint64_t key;
  double wp;
  double wo;

  bool operator<(const KeyedEdge& other) const {
    if (key != other.key) return key < other.key;
    return (wp + wo) < (other.wp + other.wo);
  }
};

void CollectKeyedEdges(const TripleGraph& g, const WeightedPartition& xi,
                       NodeId n, std::vector<KeyedEdge>& out) {
  out.clear();
  for (const PredicateObject& po : g.Out(n)) {
    out.push_back(KeyedEdge{PackPair(xi.partition.ColorOf(po.p),
                                     xi.partition.ColorOf(po.o)),
                            xi.weight[po.p], xi.weight[po.o]});
  }
  std::sort(out.begin(), out.end());
}

}  // namespace

double SigmaNonLiteral(const TripleGraph& g, const WeightedPartition& xi,
                       NodeId n, NodeId m) {
  const size_t deg_n = g.OutDegree(n);
  const size_t deg_m = g.OutDegree(m);
  const size_t f = std::max(deg_n, deg_m);
  if (f == 0) return 0.0;

  static thread_local std::vector<KeyedEdge> en;
  static thread_local std::vector<KeyedEdge> em;
  CollectKeyedEdges(g, xi, n, en);
  CollectKeyedEdges(g, xi, m, em);

  // Two-pointer merge over color-key runs; within one run both sides are
  // weight-sorted, so rank coupling is the optimal same-color assignment.
  double total = 0.0;
  size_t coupled = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < en.size() && j < em.size()) {
    if (en[i].key < em[j].key) {
      ++i;
    } else if (em[j].key < en[i].key) {
      ++j;
    } else {
      const uint64_t key = en[i].key;
      size_t i_end = i;
      while (i_end < en.size() && en[i_end].key == key) ++i_end;
      size_t j_end = j;
      while (j_end < em.size() && em[j_end].key == key) ++j_end;
      const size_t c = std::min(i_end - i, j_end - j);
      for (size_t t = 0; t < c; ++t) {
        // σ_ξ on same-color nodes is the ⊕ of their weights (eq. 5).
        double sigma_p = OPlus(en[i + t].wp, em[j + t].wp);
        double sigma_o = OPlus(en[i + t].wo, em[j + t].wo);
        total += OPlus(sigma_p, sigma_o);
      }
      coupled += c;
      i = i_end;
      j = j_end;
    }
  }
  const double r = static_cast<double>((deg_n - coupled) + (deg_m - coupled));
  return std::min(1.0, (total + r) / static_cast<double>(f));
}

OverlapAlignResult OverlapAlign(const CombinedGraph& cg,
                                const OverlapAlignOptions& options,
                                const Partition* hybrid) {
  const TripleGraph& g = cg.graph();
  OverlapAlignResult result;

  // Line 1: ξ0 = (λ_Hybrid, 0).
  WeightedPartition xi =
      MakeZeroWeighted(hybrid != nullptr ? *hybrid : HybridPartition(cg));

  // Lines 2-4: match unaligned literals by word sets + edit distance.
  std::vector<NodeId> a0;
  std::vector<NodeId> b0;
  {
    std::vector<ClassSides> sides = ComputeClassSides(cg, xi.partition);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (!g.IsLiteral(n)) continue;
      if (sides[xi.partition.ColorOf(n)] == ClassSides::kBoth) continue;
      (cg.InSource(n) ? a0 : b0).push_back(n);
    }
  }
  CharacterizingSets a0_char(a0.size());
  CharacterizingSets b0_char(b0.size());
  {
    // Word ids shared across both sides via one interning map.
    std::unordered_map<std::string, uint64_t> words;
    auto charset = [&](NodeId n) {
      std::vector<uint64_t> ids;
      for (std::string& w : SplitWords(g.Lexical(n))) {
        auto [it, inserted] = words.emplace(std::move(w), words.size());
        ids.push_back(it->second);
      }
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      return ids;
    };
    for (size_t i = 0; i < a0.size(); ++i) a0_char[i] = charset(a0[i]);
    for (size_t i = 0; i < b0.size(); ++i) b0_char[i] = charset(b0[i]);
  }
  OverlapMatchStats h0_stats;
  BipartiteMatching h = OverlapMatch(
      a0, b0, a0_char, b0_char, options.theta,
      [&](size_t ai, size_t bi) {
        return NormalizedEditDistanceBounded(g.Lexical(a0[ai]),
                                             g.Lexical(b0[bi]),
                                             options.theta);
      },
      options.match, &h0_stats);
  result.literal_matches = h.NumEdges();
  result.round_stats.push_back(h0_stats);

  // Lines 5-12: enrich, propagate, match non-literals; repeat until dry.
  for (size_t round = 1; round <= options.max_rounds; ++round) {
    xi = Propagate(cg, Enrich(xi, h), options.propagate);
    result.rounds = round;

    std::vector<NodeId> ai;
    std::vector<NodeId> bi;
    {
      std::vector<ClassSides> sides = ComputeClassSides(cg, xi.partition);
      for (NodeId n = 0; n < g.NumNodes(); ++n) {
        if (g.IsLiteral(n)) continue;
        if (sides[xi.partition.ColorOf(n)] == ClassSides::kBoth) continue;
        (cg.InSource(n) ? ai : bi).push_back(n);
      }
    }
    CharacterizingSets ai_char(ai.size());
    CharacterizingSets bi_char(bi.size());
    for (size_t i = 0; i < ai.size(); ++i) {
      ai_char[i] = OutColorSet(g, xi, ai[i]);
    }
    for (size_t i = 0; i < bi.size(); ++i) {
      bi_char[i] = OutColorSet(g, xi, bi[i]);
    }

    OverlapMatchStats round_stats;
    h = OverlapMatch(
        ai, bi, ai_char, bi_char, options.theta,
        [&](size_t x, size_t y) {
          return SigmaNonLiteral(g, xi, ai[x], bi[y]);
        },
        options.match, &round_stats);
    result.round_stats.push_back(round_stats);
    result.nonliteral_matches += h.NumEdges();
    if (h.Empty()) break;
  }

  result.xi = std::move(xi);
  return result;
}

}  // namespace rdfalign
