#include "core/overlap_align.h"

#include <algorithm>
#include <string>

#include "core/alignment.h"
#include "core/edit_distance.h"
#include "core/hybrid.h"
#include "rdf/dictionary.h"
#include "util/hash.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace rdfalign {

std::vector<uint64_t> OutColorSet(const TripleGraph& g,
                                  const WeightedPartition& xi, NodeId n) {
  std::vector<uint64_t> out;
  out.reserve(g.OutDegree(n));
  for (const PredicateObject& po : g.Out(n)) {
    out.push_back(PackPair(xi.partition.ColorOf(po.p),
                           xi.partition.ColorOf(po.o)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

/// One out-edge annotated with its color key and endpoint weights.
struct KeyedEdge {
  uint64_t key;
  double wp;
  double wo;

  bool operator<(const KeyedEdge& other) const {
    if (key != other.key) return key < other.key;
    return (wp + wo) < (other.wp + other.wo);
  }
};

void CollectKeyedEdges(const TripleGraph& g, const WeightedPartition& xi,
                       NodeId n, std::vector<KeyedEdge>& out) {
  out.clear();
  for (const PredicateObject& po : g.Out(n)) {
    out.push_back(KeyedEdge{PackPair(xi.partition.ColorOf(po.p),
                                     xi.partition.ColorOf(po.o)),
                            xi.weight[po.p], xi.weight[po.o]});
  }
  std::sort(out.begin(), out.end());
}

/// Streams the word set of a literal into `sets` (Algorithm 2's `split`,
/// via the shared ForEachWord tokenizer): each word is interned to a dense
/// id through `words`. Word-id assignment order matches SplitWords +
/// first-occurrence interning; no per-literal vector<string> is
/// materialized.
void AppendWordSet(std::string_view text, Dictionary& words,
                   std::string& word_buf, CharacterizingSets& sets) {
  sets.BeginSet();
  ForEachWord(text, word_buf,
              [&](std::string_view word) { sets.Add(words.Intern(word)); });
  sets.EndSetSortedUnique();
}

}  // namespace

void AppendOutColorSet(const TripleGraph& g, const WeightedPartition& xi,
                       NodeId n, CharacterizingSets& sets) {
  sets.BeginSet();
  for (const PredicateObject& po : g.Out(n)) {
    sets.Add(PackPair(xi.partition.ColorOf(po.p),
                      xi.partition.ColorOf(po.o)));
  }
  sets.EndSetSortedUnique();
}

double SigmaNonLiteral(const TripleGraph& g, const WeightedPartition& xi,
                       NodeId n, NodeId m) {
  const size_t deg_n = g.OutDegree(n);
  const size_t deg_m = g.OutDegree(m);
  const size_t f = std::max(deg_n, deg_m);
  if (f == 0) return 0.0;

  static thread_local std::vector<KeyedEdge> en;
  static thread_local std::vector<KeyedEdge> em;
  CollectKeyedEdges(g, xi, n, en);
  CollectKeyedEdges(g, xi, m, em);

  // Two-pointer merge over color-key runs; within one run both sides are
  // weight-sorted, so rank coupling is the optimal same-color assignment.
  double total = 0.0;
  size_t coupled = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < en.size() && j < em.size()) {
    if (en[i].key < em[j].key) {
      ++i;
    } else if (em[j].key < en[i].key) {
      ++j;
    } else {
      const uint64_t key = en[i].key;
      size_t i_end = i;
      while (i_end < en.size() && en[i_end].key == key) ++i_end;
      size_t j_end = j;
      while (j_end < em.size() && em[j_end].key == key) ++j_end;
      const size_t c = std::min(i_end - i, j_end - j);
      for (size_t t = 0; t < c; ++t) {
        // σ_ξ on same-color nodes is the ⊕ of their weights (eq. 5).
        double sigma_p = OPlus(en[i + t].wp, em[j + t].wp);
        double sigma_o = OPlus(en[i + t].wo, em[j + t].wo);
        total += OPlus(sigma_p, sigma_o);
      }
      coupled += c;
      i = i_end;
      j = j_end;
    }
  }
  const double r = static_cast<double>((deg_n - coupled) + (deg_m - coupled));
  return std::min(1.0, (total + r) / static_cast<double>(f));
}

OverlapAlignResult OverlapAlign(const CombinedGraph& cg,
                                const OverlapAlignOptions& options,
                                const Partition* hybrid) {
  const TripleGraph& g = cg.graph();
  OverlapAlignResult result;

  // Line 1: ξ0 = (λ_Hybrid, 0).
  WeightedPartition xi =
      MakeZeroWeighted(hybrid != nullptr ? *hybrid : HybridPartition(cg));

  // Lines 2-4: match unaligned literals by word sets + edit distance.
  WallTimer literal_index_timer;
  std::vector<NodeId> a0;
  std::vector<NodeId> b0;
  {
    std::vector<ClassSides> sides =
        ComputeClassSides(cg, xi.partition, options.threads);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (!g.IsLiteral(n)) continue;
      if (sides[xi.partition.ColorOf(n)] == ClassSides::kBoth) continue;
      (cg.InSource(n) ? a0 : b0).push_back(n);
    }
  }
  CharacterizingSets a0_char;
  CharacterizingSets b0_char;
  {
    // Word ids shared across both sides via one interning dictionary.
    Dictionary words;
    std::string word_buf;
    a0_char.Reserve(a0.size(), 4 * a0.size());
    b0_char.Reserve(b0.size(), 4 * b0.size());
    for (NodeId n : a0) AppendWordSet(g.Lexical(n), words, word_buf, a0_char);
    for (NodeId n : b0) AppendWordSet(g.Lexical(n), words, word_buf, b0_char);
  }
  result.index_ms += literal_index_timer.ElapsedMillis();
  OverlapMatchStats h0_stats;
  BipartiteMatching h = OverlapMatch(
      a0, b0, a0_char, b0_char, options.theta,
      [&](size_t ai, size_t bi) {
        return NormalizedEditDistanceBounded(g.Lexical(a0[ai]),
                                             g.Lexical(b0[bi]),
                                             options.theta);
      },
      options.match, &h0_stats, options.threads);
  result.literal_matches = h.NumEdges();
  result.index_ms += h0_stats.index_ms;
  result.match_ms += h0_stats.probe_ms;
  result.round_stats.push_back(h0_stats);

  // Lines 5-12: enrich, propagate, match non-literals; repeat until dry.
  for (size_t round = 1; round <= options.max_rounds; ++round) {
    WallTimer enrich_timer;
    xi = Propagate(cg, Enrich(xi, h), options.propagate);
    result.enrich_ms += enrich_timer.ElapsedMillis();
    result.rounds = round;

    WallTimer round_index_timer;
    std::vector<NodeId> ai;
    std::vector<NodeId> bi;
    {
      std::vector<ClassSides> sides =
        ComputeClassSides(cg, xi.partition, options.threads);
      for (NodeId n = 0; n < g.NumNodes(); ++n) {
        if (g.IsLiteral(n)) continue;
        if (sides[xi.partition.ColorOf(n)] == ClassSides::kBoth) continue;
        (cg.InSource(n) ? ai : bi).push_back(n);
      }
    }
    CharacterizingSets ai_char;
    CharacterizingSets bi_char;
    ai_char.Reserve(ai.size(), ai.size());
    bi_char.Reserve(bi.size(), bi.size());
    for (NodeId n : ai) AppendOutColorSet(g, xi, n, ai_char);
    for (NodeId n : bi) AppendOutColorSet(g, xi, n, bi_char);
    result.index_ms += round_index_timer.ElapsedMillis();

    OverlapMatchStats round_stats;
    h = OverlapMatch(
        ai, bi, ai_char, bi_char, options.theta,
        [&](size_t x, size_t y) {
          return SigmaNonLiteral(g, xi, ai[x], bi[y]);
        },
        options.match, &round_stats, options.threads);
    result.index_ms += round_stats.index_ms;
    result.match_ms += round_stats.probe_ms;
    result.round_stats.push_back(round_stats);
    result.nonliteral_matches += h.NumEdges();
    if (h.Empty()) break;
  }

  result.xi = std::move(xi);
  return result;
}

}  // namespace rdfalign
