// Interval-based multi-version archive (§6, future work).
//
// "Can the constructed alignments be used to construct compact
// representations of all versions of an RDF database? One way ... would be
// to decorate triples with intervals that represent versions where the
// triple was present."
//
// VersionArchive realizes that idea: versions are appended one at a time;
// consecutive versions are aligned (configurable method) and every
// alignment class is folded into a persistent *entity id*, so a triple that
// survives across versions — even under blank relabeling or URI renaming —
// occupies a single record with a version-interval set instead of one copy
// per version.

#ifndef RDFALIGN_CORE_ARCHIVE_H_
#define RDFALIGN_CORE_ARCHIVE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "rdf/graph.h"
#include "util/result.h"

namespace rdfalign {

/// Persistent identity of an aligned chain of nodes across versions.
using EntityId = uint64_t;

/// A half-open version interval [from, to).
struct VersionInterval {
  uint32_t from;
  uint32_t to;

  bool operator==(const VersionInterval&) const = default;
};

/// A triple of entities with the intervals in which it was present.
struct ArchivedTriple {
  EntityId s;
  EntityId p;
  EntityId o;
  std::vector<VersionInterval> intervals;
};

/// Space accounting for the archive (the §6 hypothesis: triples enter and
/// leave with their subject, so intervals compress well).
struct ArchiveStats {
  size_t versions = 0;
  size_t triple_version_pairs = 0;  ///< naive storage: Σ_v |E_v|
  size_t interval_records = 0;      ///< archive storage: Σ_t |intervals(t)|
  size_t distinct_triples = 0;      ///< archived triple records
  size_t entities = 0;
  double CompressionRatio() const {
    return interval_records == 0
               ? 1.0
               : static_cast<double>(triple_version_pairs) /
                     static_cast<double>(interval_records);
  }
};

/// Append-only archive of an evolving RDF graph.
class VersionArchive {
 public:
  /// `method` controls how consecutive versions are aligned when entities
  /// are chained (Hybrid by default; Overlap tolerates literal edits).
  explicit VersionArchive(AlignerOptions options = {});

  /// Appends the next version. Returns the version index (0-based). The
  /// graph must share the archive's dictionary after the first Append (the
  /// first call adopts the graph's dictionary).
  Result<uint32_t> Append(const TripleGraph& version);

  /// Reconstitutes an archive from persisted state (the store's
  /// LoadArchive): the materialized versions (sharing one dictionary) and
  /// the per-version entity columns. The interval records and statistics
  /// are rebuilt by replaying the same recording pass Append runs, so a
  /// restored archive is indistinguishable from the one saved — no
  /// re-alignment happens. `options` configures future Appends.
  static Result<VersionArchive> Restore(
      AlignerOptions options, std::vector<TripleGraph> versions,
      std::vector<std::vector<EntityId>> entity_of);

  size_t NumVersions() const { return versions_.size(); }

  /// The materialized graph of version `v`.
  const TripleGraph& Version(uint32_t version) const {
    return versions_[version];
  }

  /// The entity id of every node of version `v`.
  const std::vector<EntityId>& Entities(uint32_t version) const {
    return entity_of_[version];
  }

  const AlignerOptions& options() const { return options_; }

  /// The entity id a node of version `v` was assigned.
  EntityId EntityOf(uint32_t version, NodeId node) const;

  /// Entity triples active in version `v` (reconstruction).
  std::vector<ArchivedTriple> TriplesAt(uint32_t version) const;

  /// All archived records.
  const std::map<std::tuple<EntityId, EntityId, EntityId>,
                 std::vector<VersionInterval>>&
  records() const {
    return records_;
  }

  ArchiveStats Stats() const;

 private:
  AlignerOptions options_;
  std::vector<TripleGraph> versions_;
  std::vector<std::vector<EntityId>> entity_of_;  // per version, per node
  std::map<std::tuple<EntityId, EntityId, EntityId>,
           std::vector<VersionInterval>>
      records_;
  EntityId next_entity_ = 0;
  size_t triple_version_pairs_ = 0;

  void RecordTriples(uint32_t version);
};

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_ARCHIVE_H_
