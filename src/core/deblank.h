// Deblanking alignment (§3.3): λ_Deblank = BisimRefine*_{Blanks(G)}(ℓ_G).
//
// Every blank node receives a color characterizing its contents — the URIs
// and data values reachable from it — so blank nodes with identical contents
// align across versions (nodes b2/b3 vs b4 in Fig. 3). Non-blank nodes keep
// label equality, i.e. the trivial alignment.

#ifndef RDFALIGN_CORE_DEBLANK_H_
#define RDFALIGN_CORE_DEBLANK_H_

#include "core/partition.h"
#include "core/refinement.h"
#include "rdf/merge.h"

namespace rdfalign {

/// Computes λ_Deblank over the combined graph.
Partition DeblankPartition(const CombinedGraph& cg,
                           RefinementStats* stats = nullptr,
                           const RefinementOptions& options = {});

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_DEBLANK_H_
