// Alignments defined by partitions (§3.1) and the evaluation metrics of §5.
//
// Align(λ) = {(n,m) ∈ N1×N2 | λ(n) = λ(m)} is never materialized for large
// graphs; the functions here compute the statistics the paper reports
// (aligned-edge ratios of Fig. 10/11, deduplicated aligned-node counts of
// Fig. 13) directly from class membership.

#ifndef RDFALIGN_CORE_ALIGNMENT_H_
#define RDFALIGN_CORE_ALIGNMENT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "rdf/merge.h"

namespace rdfalign {

/// Which side(s) of the combined graph a class touches.
enum class ClassSides : uint8_t {
  kNeither = 0,
  kSourceOnly = 1,
  kTargetOnly = 2,
  kBoth = 3,
};

/// For each color, whether the class contains source and/or target nodes.
/// `threads` > 1 accumulates the side bits with order-insensitive atomic
/// ORs on the shared pool; the result is bit-identical to serial.
std::vector<ClassSides> ComputeClassSides(const CombinedGraph& cg,
                                          const Partition& p,
                                          size_t threads = 1);

/// Unaligned(λ): nodes whose class contains no node of the opposite side
/// (§3.1). Sorted ascending.
std::vector<NodeId> UnalignedNodes(const CombinedGraph& cg,
                                   const Partition& p);

/// UN(λ) = Unaligned(λ) \ Literals(G) (eq. 4): the nodes the hybrid method
/// re-identifies.
std::vector<NodeId> UnalignedNonLiterals(const CombinedGraph& cg,
                                         const Partition& p);

/// Aligned-edge statistics for the Fig. 10/11 metric: the ratio of aligned
/// edges to all edges of both graphs, counting an edge that uses precisely
/// the same (non-blank) identifiers in both versions only once.
struct EdgeAlignmentStats {
  size_t total_edges = 0;    ///< deduplicated edge count of both versions
  size_t aligned_edges = 0;  ///< of those, edges aligned by the partition
  double Ratio() const {
    return total_edges == 0
               ? 1.0
               : static_cast<double>(aligned_edges) / total_edges;
  }
};

/// `threads` > 1 builds the packed-key multisets in deterministic chunk
/// order and sorts them with ParallelSort; all counters are bit-identical
/// to the serial (threads=1) pass. See docs/parallelism.md.
EdgeAlignmentStats ComputeEdgeAlignment(const CombinedGraph& cg,
                                        const Partition& p,
                                        size_t threads = 1);

/// Aligned-node statistics for Fig. 13. `aligned_classes` counts classes
/// containing nodes of both sides — the deduplicated "number of aligned
/// nodes" (two URIs representing the same entity count once).
struct NodeAlignmentStats {
  size_t aligned_classes = 0;
  size_t aligned_source_nodes = 0;
  size_t aligned_target_nodes = 0;
  size_t unaligned_source_nodes = 0;
  size_t unaligned_target_nodes = 0;
};

NodeAlignmentStats ComputeNodeAlignment(const CombinedGraph& cg,
                                        const Partition& p,
                                        size_t threads = 1);

/// Materializes Align(λ) as (source-combined-id, target-combined-id) pairs.
/// Intended for tests and small graphs; stops after `limit` pairs.
std::vector<std::pair<NodeId, NodeId>> EnumerateAlignedPairs(
    const CombinedGraph& cg, const Partition& p, size_t limit = SIZE_MAX);

/// Checks the crossover property (§3.1): (n,m),(n,m'),(n',m) aligned imply
/// (n',m') aligned. Partition-defined alignments always satisfy it; the
/// checker exists for tests and for externally supplied alignments.
bool HasCrossoverProperty(
    const std::vector<std::pair<NodeId, NodeId>>& pairs);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_ALIGNMENT_H_
