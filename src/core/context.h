// Predicate-aware (contextual) refinement — the fix the paper sketches for
// its one observed error class (§5.1):
//
//   "our methods make errors by incorrectly aligning URIs that are used as
//    predicates only ... A better solution would identify URIs that are
//    predominantly used as predicates and use a different refinement
//    process, for instance, one that incorporates the colors of the subject
//    and the object in any triple that uses the given predicate."
//
// Plain hybrid refinement sees a predicate-only URI as a sink (empty
// out-neighborhood), so all unaligned predicate-only URIs collapse into one
// class. The contextual variant gives such nodes a *mediation signature*:
// the set of (λ(s), λ(o)) pairs over the triples they mediate. Predicates
// that connect the same kinds of things align; unrelated ones split.

#ifndef RDFALIGN_CORE_CONTEXT_H_
#define RDFALIGN_CORE_CONTEXT_H_

#include <vector>

#include "core/partition.h"
#include "core/refinement.h"
#include "rdf/graph.h"
#include "rdf/merge.h"

namespace rdfalign {

/// URIs that occur in predicate position and never as subject or object.
std::vector<NodeId> PredicateOnlyUris(const TripleGraph& g);

/// An index from predicate node to the (subject, object) pairs of the
/// triples it mediates (CSR layout, pairs sorted), plus the reverse
/// direction: from a node to the distinct predicates mediating it. The
/// reverse index is the dirtiness relation of the incremental contextual
/// engine — when a node's color changes, exactly the predicates in
/// MediatingPredicates() can observe the change through their mediation
/// signatures.
class MediationIndex {
 public:
  explicit MediationIndex(const TripleGraph& g);

  std::span<const PredicateObject> Mediated(NodeId p) const {
    return {pairs_.data() + offsets_[p], offsets_[p + 1] - offsets_[p]};
  }

  /// Distinct predicates p with a triple (n, p, o) or (s, p, n), ascending.
  std::span<const NodeId> MediatingPredicates(NodeId n) const {
    return {rev_predicates_.data() + rev_offsets_[n],
            rev_offsets_[n + 1] - rev_offsets_[n]};
  }

 private:
  std::vector<uint64_t> offsets_;
  // Reuses PredicateObject as a plain (subject, object) pair.
  std::vector<PredicateObject> pairs_;
  // Reverse CSR: distinct predicates per subject-or-object node.
  std::vector<uint64_t> rev_offsets_;
  std::vector<NodeId> rev_predicates_;
};

/// One contextual refinement step: nodes in X are recolored by the usual
/// out-neighborhood signature, and nodes in X that are predicate-only URIs
/// additionally carry their mediation signature.
Partition ContextualRefineStep(const TripleGraph& g, const Partition& p,
                               const std::vector<NodeId>& x,
                               const MediationIndex& mediation,
                               const std::vector<uint8_t>& predicate_only);

/// Fixpoint of the contextual step, using the engine selected by `options`:
/// the incremental worklist engine (default) re-signs only dirty nodes,
/// with dirtiness following both the out-neighborhood (TripleGraph::In) and
/// the mediation index; the legacy engine full-rescans every iteration.
/// Both produce bit-identical partitions, and both honor
/// RefinementOptions::threads for parallel signing of wide rounds
/// (incremental engine only).
Partition ContextualRefineFixpoint(const TripleGraph& g, Partition initial,
                                   const std::vector<NodeId>& x,
                                   const MediationIndex& mediation,
                                   const std::vector<uint8_t>& predicate_only,
                                   RefinementStats* stats = nullptr,
                                   const RefinementOptions& options = {});

/// The prepared inputs of the predicate-aware hybrid alignment: the
/// blanked base partition, the refinable set (unaligned non-literals plus
/// every blank), the predicate-only flags, and the mediation index.
struct ContextualHybridInputs {
  Partition blanked;
  std::vector<NodeId> x;
  std::vector<uint8_t> predicate_only;
  MediationIndex mediation;
};

/// Builds the inputs PredicateAwareHybridPartition refines over. Exposed so
/// the refinement bench can A/B the contextual engines on exactly the
/// production shape.
ContextualHybridInputs BuildContextualHybridInputs(const CombinedGraph& cg);

/// The hybrid alignment with predicate-aware refinement: identical to
/// HybridPartition except that unaligned predicate-only URIs are identified
/// by what they *connect* instead of collapsing into one sink class.
Partition PredicateAwareHybridPartition(const CombinedGraph& cg,
                                        RefinementStats* stats = nullptr,
                                        const RefinementOptions& options = {});

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_CONTEXT_H_
