#include "core/edit_distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace rdfalign {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();

  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // row[i-1][0]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t up = row[j];
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, sub});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t LevenshteinDistanceBounded(std::string_view a, std::string_view b,
                                  size_t bound) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t len_diff = a.size() - b.size();
  if (len_diff > bound) return bound + 1;
  if (b.empty()) return a.size();

  // Banded DP: only cells with |i-j| <= bound can stay within the bound.
  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  std::vector<size_t> row(b.size() + 1, kInf);
  std::vector<size_t> next(b.size() + 1, kInf);
  for (size_t j = 0; j <= std::min(b.size(), bound); ++j) row[j] = j;

  for (size_t i = 1; i <= a.size(); ++i) {
    std::fill(next.begin(), next.end(), kInf);
    const size_t lo = i > bound ? i - bound : 0;
    const size_t hi = std::min(b.size(), i + bound);
    if (lo == 0) next[0] = i;
    size_t row_min = kInf;
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      size_t best = kInf;
      if (next[j - 1] != kInf) best = std::min(best, next[j - 1] + 1);
      if (row[j] != kInf) best = std::min(best, row[j] + 1);
      if (row[j - 1] != kInf) {
        best = std::min(best, row[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1));
      }
      next[j] = best;
      row_min = std::min(row_min, best);
    }
    if (lo == 0) row_min = std::min(row_min, next[0]);
    if (row_min > bound) return bound + 1;  // the band can only grow
    std::swap(row, next);
  }
  return row[b.size()] <= bound ? row[b.size()] : bound + 1;
}

double NormalizedEditDistance(std::string_view a, std::string_view b) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 0.0;
  return static_cast<double>(LevenshteinDistance(a, b)) /
         static_cast<double>(max_len);
}

double NormalizedEditDistanceBounded(std::string_view a, std::string_view b,
                                     double theta) {
  const size_t max_len = std::max(a.size(), b.size());
  if (max_len == 0) return 0.0;
  // d/max_len < theta  <=>  d < theta*max_len, so the largest admissible
  // distance is ceil(theta*max_len) - 1; anything above maps to 1.
  const double limit = theta * static_cast<double>(max_len);
  size_t bound = static_cast<size_t>(std::ceil(limit));
  if (bound > 0) bound -= 1;
  size_t d = LevenshteinDistanceBounded(a, b, bound);
  if (d > bound) return 1.0;
  double norm = static_cast<double>(d) / static_cast<double>(max_len);
  return norm < theta ? norm : 1.0;
}

}  // namespace rdfalign
