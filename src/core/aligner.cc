#include "core/aligner.h"

#include <algorithm>

#include "core/context.h"
#include "core/deblank.h"
#include "core/hybrid.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfalign {

std::string_view AlignMethodToString(AlignMethod method) {
  switch (method) {
    case AlignMethod::kTrivial:
      return "trivial";
    case AlignMethod::kDeblank:
      return "deblank";
    case AlignMethod::kHybrid:
      return "hybrid";
    case AlignMethod::kHybridContextual:
      return "hybrid-contextual";
    case AlignMethod::kOverlap:
      return "overlap";
  }
  return "unknown";
}

Result<AlignmentOutcome> Aligner::Align(const TripleGraph& g1,
                                        const TripleGraph& g2) const {
  WallTimer merge_timer;
  RDFALIGN_ASSIGN_OR_RETURN(
      CombinedGraph cg,
      CombinedGraph::Build(g1, g2, ResolveThreads(options_.refinement.threads)));
  const double merge_ms = merge_timer.ElapsedMillis();
  Result<AlignmentOutcome> outcome = AlignCombined(cg);
  if (outcome.ok()) outcome->phases.merge_ms = merge_ms;
  return outcome;
}

AlignmentOutcome Aligner::AlignCombined(const CombinedGraph& cg) const {
  AlignmentOutcome outcome;
  WallTimer timer;
  switch (options_.method) {
    case AlignMethod::kTrivial:
      outcome.partition = TrivialPartition(cg.graph());
      break;
    case AlignMethod::kDeblank:
      outcome.partition =
          DeblankPartition(cg, &outcome.refinement, options_.refinement);
      break;
    case AlignMethod::kHybrid:
      outcome.partition =
          HybridPartition(cg, &outcome.refinement, options_.refinement);
      break;
    case AlignMethod::kHybridContextual:
      outcome.partition = PredicateAwareHybridPartition(
          cg, &outcome.refinement, options_.refinement);
      break;
    case AlignMethod::kOverlap: {
      OverlapAlignOptions oopt = options_.overlap;
      oopt.threads = ResolveThreads(options_.refinement.threads);
      OverlapAlignResult r = OverlapAlign(cg, oopt);
      outcome.partition = std::move(r.xi.partition);
      outcome.weights = std::move(r.xi.weight);
      outcome.phases.enrich_ms = r.enrich_ms;
      outcome.phases.overlap_index_ms = r.index_ms;
      outcome.phases.match_ms = r.match_ms;
      break;
    }
  }
  outcome.seconds = timer.ElapsedSeconds();
  // refine_ms is the method core minus the overlap sub-phases (for the
  // non-overlap methods that difference is the whole method); clamp the
  // tiny negative values double rounding can produce.
  outcome.phases.refine_ms =
      std::max(0.0, 1000.0 * outcome.seconds - outcome.phases.enrich_ms -
                        outcome.phases.overlap_index_ms -
                        outcome.phases.match_ms);
  WallTimer stats_timer;
  const size_t threads = ResolveThreads(options_.refinement.threads);
  outcome.edge_stats = ComputeEdgeAlignment(cg, outcome.partition, threads);
  outcome.node_stats = ComputeNodeAlignment(cg, outcome.partition, threads);
  outcome.phases.stats_ms = stats_timer.ElapsedMillis();
  return outcome;
}

}  // namespace rdfalign
