#include "core/aligner.h"

#include "core/context.h"
#include "core/deblank.h"
#include "core/hybrid.h"
#include "util/timer.h"

namespace rdfalign {

std::string_view AlignMethodToString(AlignMethod method) {
  switch (method) {
    case AlignMethod::kTrivial:
      return "trivial";
    case AlignMethod::kDeblank:
      return "deblank";
    case AlignMethod::kHybrid:
      return "hybrid";
    case AlignMethod::kHybridContextual:
      return "hybrid-contextual";
    case AlignMethod::kOverlap:
      return "overlap";
  }
  return "unknown";
}

Result<AlignmentOutcome> Aligner::Align(const TripleGraph& g1,
                                        const TripleGraph& g2) const {
  RDFALIGN_ASSIGN_OR_RETURN(CombinedGraph cg, CombinedGraph::Build(g1, g2));
  return AlignCombined(cg);
}

AlignmentOutcome Aligner::AlignCombined(const CombinedGraph& cg) const {
  AlignmentOutcome outcome;
  WallTimer timer;
  switch (options_.method) {
    case AlignMethod::kTrivial:
      outcome.partition = TrivialPartition(cg.graph());
      break;
    case AlignMethod::kDeblank:
      outcome.partition =
          DeblankPartition(cg, &outcome.refinement, options_.refinement);
      break;
    case AlignMethod::kHybrid:
      outcome.partition =
          HybridPartition(cg, &outcome.refinement, options_.refinement);
      break;
    case AlignMethod::kHybridContextual:
      outcome.partition = PredicateAwareHybridPartition(
          cg, &outcome.refinement, options_.refinement);
      break;
    case AlignMethod::kOverlap: {
      OverlapAlignResult r = OverlapAlign(cg, options_.overlap);
      outcome.partition = std::move(r.xi.partition);
      outcome.weights = std::move(r.xi.weight);
      break;
    }
  }
  outcome.seconds = timer.ElapsedSeconds();
  outcome.edge_stats = ComputeEdgeAlignment(cg, outcome.partition);
  outcome.node_stats = ComputeNodeAlignment(cg, outcome.partition);
  return outcome;
}

}  // namespace rdfalign
