// Hybrid alignment (§3.4).
//
// Deblanking cannot align URI nodes whose label changed between versions
// (e.g. an ontology renames ed-uni to uoe) because the URI label re-enters
// the color at every refinement step. The hybrid method therefore resets
// the colors of all *unaligned non-literal* nodes to the neutral blank
// color and lets bisimulation refinement re-derive their identity from
// their contents:
//
//   λ_Hybrid = BisimRefine*_{UN(λ_Deblank)}(Blank(λ_Deblank, UN(λ_Deblank)))
//
// Starting from λ_Trivial instead of λ_Deblank yields the same partition
// (noted in §3.4 and verified by a property test).

#ifndef RDFALIGN_CORE_HYBRID_H_
#define RDFALIGN_CORE_HYBRID_H_

#include "core/partition.h"
#include "core/refinement.h"
#include "rdf/merge.h"

namespace rdfalign {

/// Computes λ_Hybrid over the combined graph.
Partition HybridPartition(const CombinedGraph& cg,
                          RefinementStats* stats = nullptr,
                          const RefinementOptions& options = {});

/// Computes λ_Hybrid starting from an arbitrary base partition (used by the
/// equivalence property test and by callers that already computed Deblank).
Partition HybridPartitionFrom(const CombinedGraph& cg, const Partition& base,
                              RefinementStats* stats = nullptr,
                              const RefinementOptions& options = {});

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_HYBRID_H_
