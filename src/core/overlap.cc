#include "core/overlap.h"

#include <algorithm>
#include <cmath>

#include "util/scratch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfalign {

double OverlapMeasure(std::span<const uint64_t> o1,
                      std::span<const uint64_t> o2) {
  if (o1.empty() && o2.empty()) return 1.0;
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < o1.size() && j < o2.size()) {
    if (o1[i] == o2[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (o1[i] < o2[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = o1.size() + o2.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiffMeasure(std::span<const uint64_t> o1,
                   std::span<const uint64_t> o2) {
  return 1.0 - OverlapMeasure(o1, o2);
}

BipartiteMatching OverlapMatch(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma,
    const OverlapMatchOptions& options, OverlapMatchStats* stats,
    size_t threads) {
  BipartiteMatching h;
  OverlapMatchStats local;
  if (a_nodes.empty() || b_nodes.empty()) {
    if (stats != nullptr) *stats = local;
    return h;
  }
  // Lanes beyond the cores cannot help, and the probe path allocates
  // per-chunk stamp arrays that are not worth it for an effectively
  // serial run. Edges and counters are chunk-order folded either way,
  // so the clamp is invisible in the output.
  threads = EffectiveLanes(threads);

  // Lines 1-6: inverted index Inv over B's objects, as a counting-sort CSR:
  // (object, bi) pairs sorted by object, then run boundaries. Postings of
  // one object keep ascending bi — the same order the hash-map index's
  // insertion produced — and freq[o] is the run length.
  WallTimer index_timer;
  static thread_local std::vector<std::pair<uint64_t, uint32_t>> postings;
  static thread_local std::vector<uint64_t> inv_objects;  // distinct, sorted
  static thread_local std::vector<uint64_t> inv_offsets;  // runs in postings
  postings.clear();
  postings.reserve(b_char.TotalItems());
  for (uint32_t bi = 0; bi < b_nodes.size(); ++bi) {
    for (uint64_t o : b_char[bi]) {
      postings.emplace_back(o, bi);
    }
  }
  // (object, bi) pairs are distinct (characterizing sets are deduplicated),
  // so their total order has one sorted permutation for any thread count.
  ParallelSort(postings, threads);
  inv_objects.clear();
  inv_offsets.clear();
  for (size_t i = 0; i < postings.size();) {
    size_t j = i;
    while (j < postings.size() && postings[j].first == postings[i].first) ++j;
    inv_objects.push_back(postings[i].first);
    inv_offsets.push_back(i);
    i = j;
  }
  inv_offsets.push_back(postings.size());
  // Plain references to this thread's index: the probe bodies below may
  // run on pool workers, where naming the thread_local directly would
  // resolve to the *worker's* (empty) instance.
  const std::vector<std::pair<uint64_t, uint32_t>>& postings_ref = postings;
  const std::vector<uint64_t>& inv_objects_ref = inv_objects;
  const std::vector<uint64_t>& inv_offsets_ref = inv_offsets;
  // Index of o's posting run, or SIZE_MAX when o indexes nothing.
  auto find_run = [&](uint64_t o) -> size_t {
    auto it = std::lower_bound(inv_objects_ref.begin(), inv_objects_ref.end(),
                               o);
    if (it == inv_objects_ref.end() || *it != o) return SIZE_MAX;
    return static_cast<size_t>(it - inv_objects_ref.begin());
  };
  local.index_ms = index_timer.ElapsedMillis();

  WallTimer probe_timer;
  // Probe order of char(n): ascending (frequency, object) — precomputed per
  // node instead of hash lookups inside the sort comparator. The run index
  // rides along so probing needs no second lookup.
  struct ProbeObject {
    uint64_t freq;
    uint64_t object;
    size_t run;
    auto operator<=>(const ProbeObject&) const = default;
  };
  // One A-side node's probes. All mutable state (the per-B visited stamp
  // that deduplicates the candidate set C, the probe-order scratch, the
  // counters, the emitted edges) is passed in so the parallel path can hand
  // each chunk its own copies; per node the body is identical either way.
  auto probe_node = [&](uint32_t ai, std::vector<uint32_t>& stamp,
                        uint32_t& round, std::vector<ProbeObject>& objects,
                        OverlapMatchStats& st, std::vector<MatchEdge>& edges) {
    const std::span<const uint64_t> chars = a_char[ai];
    if (chars.empty()) return;
    const size_t k = chars.size();

    // Line 11: objects of char(n) ordered by ascending frequency (the rare,
    // discriminating objects first).
    objects.clear();
    for (uint64_t o : chars) {
      const size_t run = find_run(o);
      const uint64_t freq =
          run == SIZE_MAX ? 0 : inv_offsets_ref[run + 1] - inv_offsets_ref[run];
      objects.push_back(ProbeObject{freq, o, run});
    }
    std::sort(objects.begin(), objects.end());

    // Line 12: the prefix that must contain a shared object of any node
    // with overlap >= θ (see header comment).
    const size_t paper_len = static_cast<size_t>(
        std::ceil(static_cast<double>(k) * theta));
    size_t prefix_len = paper_len;
    if (!options.paper_prefix) {
      const size_t theta_k = static_cast<size_t>(
          std::ceil(static_cast<double>(k) * theta));
      const size_t sound_len = k >= theta_k ? k - theta_k + 1 : 1;
      prefix_len = std::max(paper_len, sound_len);
    }
    prefix_len = std::min(prefix_len, k);

    // Lines 12-15: gather candidates sharing a prefix object, screen by
    // overlap.
    ++round;
    for (size_t i = 0; i < prefix_len; ++i) {
      if (objects[i].run == SIZE_MAX) continue;
      const size_t run_begin = inv_offsets_ref[objects[i].run];
      const size_t run_end = inv_offsets_ref[objects[i].run + 1];
      for (size_t r = run_begin; r < run_end; ++r) {
        const uint32_t bi = postings_ref[r].second;
        ++st.candidates_probed;
        if (stamp[bi] == round) continue;
        stamp[bi] = round;
        ++st.overlap_checked;
        if (OverlapMeasure(chars, b_char[bi]) < theta) continue;
        // Lines 16-19: verify with the distance function.
        ++st.sigma_checked;
        double d = sigma(ai, bi);
        if (d < theta) {
          edges.push_back(MatchEdge{a_nodes[ai], b_nodes[bi], d});
          ++st.matched;
        }
      }
    }
  };

  constexpr size_t kProbeGrain = 256;
  const size_t probe_chunks = PlanChunks(a_nodes.size(), kProbeGrain);
  if (threads > 1 && probe_chunks > 1) {
    // Chunks of ascending ai are independent (the stamp/round dedup resets
    // per node); folding per-chunk counters and edge buffers in chunk order
    // reproduces the serial counters and edge order exactly.
    struct ProbeChunk {
      OverlapMatchStats st;
      std::vector<MatchEdge> edges;
    };
    std::vector<ProbeChunk> parts(probe_chunks);
    ParallelChunks(a_nodes.size(), threads, kProbeGrain,
                   [&](size_t c, size_t begin, size_t end) {
                     ProbeChunk& part = parts[c];
                     std::vector<uint32_t> stamp(b_nodes.size(), 0);
                     std::vector<ProbeObject> objects;
                     uint32_t round = 0;
                     for (size_t ai = begin; ai < end; ++ai) {
                       probe_node(static_cast<uint32_t>(ai), stamp, round,
                                  objects, part.st, part.edges);
                     }
                   });
    for (ProbeChunk& part : parts) {
      local.candidates_probed += part.st.candidates_probed;
      local.overlap_checked += part.st.overlap_checked;
      local.sigma_checked += part.st.sigma_checked;
      local.matched += part.st.matched;
      h.edges.insert(h.edges.end(), part.edges.begin(), part.edges.end());
    }
  } else {
    static thread_local std::vector<uint32_t> stamp;
    static thread_local std::vector<ProbeObject> objects;
    stamp.assign(b_nodes.size(), 0);
    uint32_t round = 0;
    for (uint32_t ai = 0; ai < a_nodes.size(); ++ai) {
      probe_node(ai, stamp, round, objects, local, h.edges);
    }
    TrimScratch(stamp);
  }
  local.probe_ms = probe_timer.ElapsedMillis();
  TrimScratch(postings);
  TrimScratch(inv_objects);
  TrimScratch(inv_offsets);
  if (stats != nullptr) *stats = local;
  return h;
}

BipartiteMatching OverlapMatchBruteForce(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma) {
  BipartiteMatching h;
  for (uint32_t ai = 0; ai < a_nodes.size(); ++ai) {
    if (a_char[ai].empty()) continue;
    for (uint32_t bi = 0; bi < b_nodes.size(); ++bi) {
      if (OverlapMeasure(a_char[ai], b_char[bi]) < theta) continue;
      double d = sigma(ai, bi);
      if (d < theta) {
        h.edges.push_back(MatchEdge{a_nodes[ai], b_nodes[bi], d});
      }
    }
  }
  return h;
}

}  // namespace rdfalign
