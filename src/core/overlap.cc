#include "core/overlap.h"

#include <algorithm>
#include <cmath>

#include "util/scratch.h"
#include "util/timer.h"

namespace rdfalign {

double OverlapMeasure(std::span<const uint64_t> o1,
                      std::span<const uint64_t> o2) {
  if (o1.empty() && o2.empty()) return 1.0;
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < o1.size() && j < o2.size()) {
    if (o1[i] == o2[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (o1[i] < o2[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = o1.size() + o2.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiffMeasure(std::span<const uint64_t> o1,
                   std::span<const uint64_t> o2) {
  return 1.0 - OverlapMeasure(o1, o2);
}

BipartiteMatching OverlapMatch(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma,
    const OverlapMatchOptions& options, OverlapMatchStats* stats) {
  BipartiteMatching h;
  OverlapMatchStats local;
  if (a_nodes.empty() || b_nodes.empty()) {
    if (stats != nullptr) *stats = local;
    return h;
  }

  // Lines 1-6: inverted index Inv over B's objects, as a counting-sort CSR:
  // (object, bi) pairs sorted by object, then run boundaries. Postings of
  // one object keep ascending bi — the same order the hash-map index's
  // insertion produced — and freq[o] is the run length.
  WallTimer index_timer;
  static thread_local std::vector<std::pair<uint64_t, uint32_t>> postings;
  static thread_local std::vector<uint64_t> inv_objects;  // distinct, sorted
  static thread_local std::vector<uint64_t> inv_offsets;  // runs in postings
  postings.clear();
  postings.reserve(b_char.TotalItems());
  for (uint32_t bi = 0; bi < b_nodes.size(); ++bi) {
    for (uint64_t o : b_char[bi]) {
      postings.emplace_back(o, bi);
    }
  }
  std::sort(postings.begin(), postings.end());
  inv_objects.clear();
  inv_offsets.clear();
  for (size_t i = 0; i < postings.size();) {
    size_t j = i;
    while (j < postings.size() && postings[j].first == postings[i].first) ++j;
    inv_objects.push_back(postings[i].first);
    inv_offsets.push_back(i);
    i = j;
  }
  inv_offsets.push_back(postings.size());
  // Index of o's posting run, or SIZE_MAX when o indexes nothing.
  auto find_run = [&](uint64_t o) -> size_t {
    auto it = std::lower_bound(inv_objects.begin(), inv_objects.end(), o);
    if (it == inv_objects.end() || *it != o) return SIZE_MAX;
    return static_cast<size_t>(it - inv_objects.begin());
  };
  local.index_ms = index_timer.ElapsedMillis();

  WallTimer probe_timer;
  // Per-B visited stamp to deduplicate the candidate set C cheaply.
  static thread_local std::vector<uint32_t> stamp;
  stamp.assign(b_nodes.size(), 0);
  uint32_t round = 0;

  // Probe order of char(n): ascending (frequency, object) — precomputed per
  // node instead of hash lookups inside the sort comparator. The run index
  // rides along so probing needs no second lookup.
  struct ProbeObject {
    uint64_t freq;
    uint64_t object;
    size_t run;
    auto operator<=>(const ProbeObject&) const = default;
  };
  static thread_local std::vector<ProbeObject> objects;
  for (uint32_t ai = 0; ai < a_nodes.size(); ++ai) {
    const std::span<const uint64_t> chars = a_char[ai];
    if (chars.empty()) continue;
    const size_t k = chars.size();

    // Line 11: objects of char(n) ordered by ascending frequency (the rare,
    // discriminating objects first).
    objects.clear();
    for (uint64_t o : chars) {
      const size_t run = find_run(o);
      const uint64_t freq =
          run == SIZE_MAX ? 0 : inv_offsets[run + 1] - inv_offsets[run];
      objects.push_back(ProbeObject{freq, o, run});
    }
    std::sort(objects.begin(), objects.end());

    // Line 12: the prefix that must contain a shared object of any node
    // with overlap >= θ (see header comment).
    const size_t paper_len = static_cast<size_t>(
        std::ceil(static_cast<double>(k) * theta));
    size_t prefix_len = paper_len;
    if (!options.paper_prefix) {
      const size_t theta_k = static_cast<size_t>(
          std::ceil(static_cast<double>(k) * theta));
      const size_t sound_len = k >= theta_k ? k - theta_k + 1 : 1;
      prefix_len = std::max(paper_len, sound_len);
    }
    prefix_len = std::min(prefix_len, k);

    // Lines 12-15: gather candidates sharing a prefix object, screen by
    // overlap.
    ++round;
    for (size_t i = 0; i < prefix_len; ++i) {
      if (objects[i].run == SIZE_MAX) continue;
      const size_t run_begin = inv_offsets[objects[i].run];
      const size_t run_end = inv_offsets[objects[i].run + 1];
      for (size_t r = run_begin; r < run_end; ++r) {
        const uint32_t bi = postings[r].second;
        ++local.candidates_probed;
        if (stamp[bi] == round) continue;
        stamp[bi] = round;
        ++local.overlap_checked;
        if (OverlapMeasure(chars, b_char[bi]) < theta) continue;
        // Lines 16-19: verify with the distance function.
        ++local.sigma_checked;
        double d = sigma(ai, bi);
        if (d < theta) {
          h.edges.push_back(MatchEdge{a_nodes[ai], b_nodes[bi], d});
          ++local.matched;
        }
      }
    }
  }
  local.probe_ms = probe_timer.ElapsedMillis();
  TrimScratch(postings);
  TrimScratch(inv_objects);
  TrimScratch(inv_offsets);
  TrimScratch(stamp);
  if (stats != nullptr) *stats = local;
  return h;
}

BipartiteMatching OverlapMatchBruteForce(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma) {
  BipartiteMatching h;
  for (uint32_t ai = 0; ai < a_nodes.size(); ++ai) {
    if (a_char[ai].empty()) continue;
    for (uint32_t bi = 0; bi < b_nodes.size(); ++bi) {
      if (OverlapMeasure(a_char[ai], b_char[bi]) < theta) continue;
      double d = sigma(ai, bi);
      if (d < theta) {
        h.edges.push_back(MatchEdge{a_nodes[ai], b_nodes[bi], d});
      }
    }
  }
  return h;
}

}  // namespace rdfalign
