#include "core/overlap.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/hash.h"

namespace rdfalign {

double OverlapMeasure(const std::vector<uint64_t>& o1,
                      const std::vector<uint64_t>& o2) {
  if (o1.empty() && o2.empty()) return 1.0;
  size_t inter = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < o1.size() && j < o2.size()) {
    if (o1[i] == o2[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (o1[i] < o2[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t uni = o1.size() + o2.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double DiffMeasure(const std::vector<uint64_t>& o1,
                   const std::vector<uint64_t>& o2) {
  return 1.0 - OverlapMeasure(o1, o2);
}

BipartiteMatching OverlapMatch(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma,
    const OverlapMatchOptions& options, OverlapMatchStats* stats) {
  BipartiteMatching h;
  OverlapMatchStats local;
  if (a_nodes.empty() || b_nodes.empty()) {
    if (stats != nullptr) *stats = local;
    return h;
  }

  // Lines 1-6: inverted index Inv over B's objects; freq[o] = |Inv[o]|.
  std::unordered_map<uint64_t, std::vector<uint32_t>, U64Hash> inv;
  for (uint32_t bi = 0; bi < b_nodes.size(); ++bi) {
    for (uint64_t o : b_char[bi]) {
      inv[o].push_back(bi);
    }
  }
  auto freq = [&](uint64_t o) -> size_t {
    auto it = inv.find(o);
    return it == inv.end() ? 0 : it->second.size();
  };

  // Per-B visited stamp to deduplicate the candidate set C cheaply.
  std::vector<uint32_t> stamp(b_nodes.size(), 0);
  uint32_t round = 0;

  std::vector<uint64_t> objects;
  for (uint32_t ai = 0; ai < a_nodes.size(); ++ai) {
    const std::vector<uint64_t>& chars = a_char[ai];
    if (chars.empty()) continue;
    const size_t k = chars.size();

    // Line 11: objects of char(n) ordered by ascending frequency (the rare,
    // discriminating objects first).
    objects.assign(chars.begin(), chars.end());
    std::sort(objects.begin(), objects.end(),
              [&](uint64_t x, uint64_t y) {
                size_t fx = freq(x);
                size_t fy = freq(y);
                return fx != fy ? fx < fy : x < y;
              });

    // Line 12: the prefix that must contain a shared object of any node
    // with overlap >= θ (see header comment).
    const size_t paper_len = static_cast<size_t>(
        std::ceil(static_cast<double>(k) * theta));
    size_t prefix_len = paper_len;
    if (!options.paper_prefix) {
      const size_t theta_k = static_cast<size_t>(
          std::ceil(static_cast<double>(k) * theta));
      const size_t sound_len = k >= theta_k ? k - theta_k + 1 : 1;
      prefix_len = std::max(paper_len, sound_len);
    }
    prefix_len = std::min(prefix_len, k);

    // Lines 12-15: gather candidates sharing a prefix object, screen by
    // overlap.
    ++round;
    for (size_t i = 0; i < prefix_len; ++i) {
      auto it = inv.find(objects[i]);
      if (it == inv.end()) continue;
      for (uint32_t bi : it->second) {
        ++local.candidates_probed;
        if (stamp[bi] == round) continue;
        stamp[bi] = round;
        ++local.overlap_checked;
        if (OverlapMeasure(chars, b_char[bi]) < theta) continue;
        // Lines 16-19: verify with the distance function.
        ++local.sigma_checked;
        double d = sigma(ai, bi);
        if (d < theta) {
          h.edges.push_back(MatchEdge{a_nodes[ai], b_nodes[bi], d});
          ++local.matched;
        }
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return h;
}

BipartiteMatching OverlapMatchBruteForce(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma) {
  BipartiteMatching h;
  for (uint32_t ai = 0; ai < a_nodes.size(); ++ai) {
    if (a_char[ai].empty()) continue;
    for (uint32_t bi = 0; bi < b_nodes.size(); ++bi) {
      if (OverlapMeasure(a_char[ai], b_char[bi]) < theta) continue;
      double d = sigma(ai, bi);
      if (d < theta) {
        h.edges.push_back(MatchEdge{a_nodes[ai], b_nodes[bi], d});
      }
    }
  }
  return h;
}

}  // namespace rdfalign
