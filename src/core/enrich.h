// Enrichment of a weighted partition with newly discovered close pairs
// (§4.4).
//
// The pairs arrive as a weighted bipartite graph H = (A, B, M, d) between
// unaligned source and target nodes. H is decomposed into connected
// components; each component becomes one new cluster, and every member
// receives the weight
//
//     w(a) = ½ · max_{b ∈ B∩X} d*(a,b)      (and symmetrically for b ∈ B)
//
// where d* is the shortest-path distance in H under ⊕. This guarantees the
// consistency requirement d*(a,b) ≤ w(a) ⊕ w(b) for members of one
// component.

#ifndef RDFALIGN_CORE_ENRICH_H_
#define RDFALIGN_CORE_ENRICH_H_

#include <vector>

#include "core/weighted_partition.h"
#include "rdf/term.h"

namespace rdfalign {

/// One newly discovered close pair: a source node, a target node, and their
/// distance under the discovering similarity measure.
struct MatchEdge {
  NodeId a;        ///< combined-graph id of the source-side node
  NodeId b;        ///< combined-graph id of the target-side node
  double distance; ///< d(a,b) ∈ [0,1)
};

/// The weighted bipartite graph H of Algorithm 1's output. Isolated nodes
/// are impossible by construction (only matched nodes appear in edges).
struct BipartiteMatching {
  std::vector<MatchEdge> edges;

  bool Empty() const { return edges.empty(); }
  size_t NumEdges() const { return edges.size(); }
};

/// Enrich(ξ, H): merges each connected component of H into a fresh cluster
/// with the component-derived weights; all other nodes keep their cluster
/// and weight. Nodes mentioned in H should be unaligned in ξ.
WeightedPartition Enrich(const WeightedPartition& xi,
                         const BipartiteMatching& h);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_ENRICH_H_
