// Partitions of a graph's node set (§2.2).
//
// A partition assigns every node a color; the equivalence classes are the
// sets of nodes with one color. Colors here are dense integers local to a
// Partition instance — the paper's structured colors (derivation trees) are
// realized by hash-consing signatures in the refinement engine, exactly the
// "compact DAG + hashing" representation §3.2 describes.
//
// Every operation on this class is an O(n) array pass over the dense
// ColorIds: because colors_ is always densely renumbered (an invariant
// FromColors establishes), color-keyed lookups use flat arrays indexed by
// ColorId instead of hash maps. The reference hash-map implementations live
// in core/pipeline_legacy.h for the A/B benches and equivalence tests.

#ifndef RDFALIGN_CORE_PARTITION_H_
#define RDFALIGN_CORE_PARTITION_H_

#include <cstdint>
#include <span>
#include <vector>

#include "rdf/graph.h"
#include "rdf/merge.h"

namespace rdfalign {

/// Dense color identifier within one Partition.
using ColorId = uint32_t;

/// Sentinel for "no color assigned yet" in flat remap tables. A partition
/// can never legitimately hold 2^32 - 1 classes (that would need 2^32
/// nodes, beyond the NodeId space).
inline constexpr ColorId kInvalidColor = 0xffffffffu;

/// CSR view of a partition's classes: the members of class c are
/// `members[offsets[c] .. offsets[c+1])`, ascending node ids. Built with
/// one counting pass — two flat arrays, no per-class vectors.
struct PartitionClasses {
  std::vector<uint64_t> offsets;  ///< NumColors() + 1 entries
  std::vector<NodeId> members;    ///< NumNodes() entries

  size_t size() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  std::span<const NodeId> operator[](size_t c) const {
    return {members.data() + offsets[c], offsets[c + 1] - offsets[c]};
  }
};

/// A partition λ : N_G -> C with dense integer colors.
class Partition {
 public:
  Partition() = default;

  /// All nodes in one class (color 0).
  explicit Partition(size_t num_nodes)
      : colors_(num_nodes, 0), num_colors_(num_nodes == 0 ? 0 : 1) {}

  /// Adopts a color vector; renumbers colors densely (first-occurrence
  /// order) and records the class count. Input colors need not be dense or
  /// contiguous.
  static Partition FromColors(std::vector<ColorId> colors);

  size_t NumNodes() const { return colors_.size(); }
  size_t NumColors() const { return num_colors_; }

  ColorId ColorOf(NodeId n) const { return colors_[n]; }
  const std::vector<ColorId>& colors() const { return colors_; }

  /// Two partitions of the same node set are equivalent iff they induce the
  /// same equivalence relation (λ1 ≡ λ2, §2.2).
  static bool Equivalent(const Partition& a, const Partition& b);

  /// True iff `fine` refines `coarse`: every class of `fine` is contained
  /// in a class of `coarse` (R_fine ⊆ R_coarse).
  static bool IsFinerOrEqual(const Partition& fine, const Partition& coarse);

  /// Groups node ids by color as a CSR (members ascending within a class).
  PartitionClasses Classes() const;

 private:
  std::vector<ColorId> colors_;
  size_t num_colors_ = 0;
};

/// The node-labeling partition ℓ_G: nodes grouped by label, all blank nodes
/// in one class (§2.2). This is the initial partition of every bisimulation
/// refinement.
Partition LabelPartition(const TripleGraph& g);

/// The trivial-alignment partition λ_Trivial (§3.1): non-blank nodes grouped
/// by label equality, every blank node a singleton class.
Partition TrivialPartition(const TripleGraph& g);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_PARTITION_H_
