#include "core/partition.h"

#include <unordered_map>

#include "util/hash.h"

namespace rdfalign {

Partition Partition::FromColors(std::vector<ColorId> colors) {
  Partition p;
  p.colors_ = std::move(colors);
  std::unordered_map<ColorId, ColorId> renumber;
  renumber.reserve(p.colors_.size() / 4 + 8);
  for (ColorId& c : p.colors_) {
    auto [it, inserted] =
        renumber.emplace(c, static_cast<ColorId>(renumber.size()));
    c = it->second;
  }
  p.num_colors_ = renumber.size();
  return p;
}

bool Partition::Equivalent(const Partition& a, const Partition& b) {
  if (a.NumNodes() != b.NumNodes()) return false;
  if (a.NumColors() != b.NumColors()) return false;
  // Check that the color-to-color correspondence is a bijection.
  std::unordered_map<ColorId, ColorId> a_to_b;
  std::unordered_map<ColorId, ColorId> b_to_a;
  a_to_b.reserve(a.NumColors());
  b_to_a.reserve(b.NumColors());
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    ColorId ca = a.colors_[i];
    ColorId cb = b.colors_[i];
    auto [it1, ins1] = a_to_b.emplace(ca, cb);
    if (!ins1 && it1->second != cb) return false;
    auto [it2, ins2] = b_to_a.emplace(cb, ca);
    if (!ins2 && it2->second != ca) return false;
  }
  return true;
}

bool Partition::IsFinerOrEqual(const Partition& fine,
                               const Partition& coarse) {
  if (fine.NumNodes() != coarse.NumNodes()) return false;
  // Each fine class must map into exactly one coarse class.
  std::unordered_map<ColorId, ColorId> fine_to_coarse;
  fine_to_coarse.reserve(fine.NumColors());
  for (size_t i = 0; i < fine.NumNodes(); ++i) {
    auto [it, inserted] =
        fine_to_coarse.emplace(fine.colors_[i], coarse.colors_[i]);
    if (!inserted && it->second != coarse.colors_[i]) return false;
  }
  return true;
}

std::vector<std::vector<NodeId>> Partition::Classes() const {
  std::vector<std::vector<NodeId>> out(num_colors_);
  for (NodeId i = 0; i < colors_.size(); ++i) {
    out[colors_[i]].push_back(i);
  }
  return out;
}

Partition LabelPartition(const TripleGraph& g) {
  std::vector<ColorId> colors(g.NumNodes());
  std::unordered_map<uint64_t, ColorId> by_label;
  by_label.reserve(g.NumNodes());
  // All blanks share a reserved key; URIs/literals key on (kind, lex).
  constexpr uint64_t kBlankKey = ~0ULL;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    uint64_t key;
    if (g.IsBlank(i)) {
      key = kBlankKey;
    } else {
      key = (static_cast<uint64_t>(g.KindOf(i)) << 33) | g.LexicalId(i);
    }
    auto [it, inserted] =
        by_label.emplace(key, static_cast<ColorId>(by_label.size()));
    colors[i] = it->second;
  }
  return Partition::FromColors(std::move(colors));
}

Partition TrivialPartition(const TripleGraph& g) {
  std::vector<ColorId> colors(g.NumNodes());
  std::unordered_map<uint64_t, ColorId> by_label;
  by_label.reserve(g.NumNodes());
  ColorId next = 0;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (g.IsBlank(i)) {
      colors[i] = next++;  // singleton class per blank node
      continue;
    }
    uint64_t key = (static_cast<uint64_t>(g.KindOf(i)) << 33) | g.LexicalId(i);
    auto it = by_label.find(key);
    if (it == by_label.end()) {
      it = by_label.emplace(key, next++).first;
    }
    colors[i] = it->second;
  }
  return Partition::FromColors(std::move(colors));
}

}  // namespace rdfalign
