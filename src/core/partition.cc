#include "core/partition.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/scratch.h"

namespace rdfalign {

namespace {

// Flat remap tables are only worth allocating when the incoming color ids
// are not adversarially sparse. Every internal producer (refinement rounds,
// enrichment, blanking) emits ids below 2n, so the fallback is effectively
// test-only.
bool RemapFitsFlatTable(ColorId max_color, size_t n) {
  return static_cast<uint64_t>(max_color) < 2 * static_cast<uint64_t>(n) + 1024;
}

}  // namespace

Partition Partition::FromColors(std::vector<ColorId> colors) {
  Partition p;
  p.colors_ = std::move(colors);
  const size_t n = p.colors_.size();
  if (n == 0) {
    p.num_colors_ = 0;
    return p;
  }
  ColorId max_color = 0;
  for (ColorId c : p.colors_) max_color = std::max(max_color, c);
  if (RemapFitsFlatTable(max_color, n)) {
    // One flat pass; the scratch table persists across calls so the
    // refinement loop's per-round renumbering allocates nothing in steady
    // state.
    static thread_local std::vector<ColorId> remap;
    remap.assign(static_cast<size_t>(max_color) + 1, kInvalidColor);
    ColorId next = 0;
    for (ColorId& c : p.colors_) {
      ColorId& slot = remap[c];
      if (slot == kInvalidColor) slot = next++;
      c = slot;
    }
    p.num_colors_ = next;
    TrimScratch(remap);
  } else {
    // Sparse ids (e.g. hand-crafted adversarial partitions): hash remap.
    std::unordered_map<ColorId, ColorId> renumber;
    renumber.reserve(n / 4 + 8);
    for (ColorId& c : p.colors_) {
      auto [it, inserted] =
          renumber.emplace(c, static_cast<ColorId>(renumber.size()));
      c = it->second;
    }
    p.num_colors_ = renumber.size();
  }
  return p;
}

bool Partition::Equivalent(const Partition& a, const Partition& b) {
  if (a.NumNodes() != b.NumNodes()) return false;
  if (a.NumColors() != b.NumColors()) return false;
  // Check that the color-to-color correspondence is a bijection. Both color
  // vectors are dense, so the two direction maps are flat arrays.
  static thread_local std::vector<ColorId> a_to_b;
  static thread_local std::vector<ColorId> b_to_a;
  a_to_b.assign(a.NumColors(), kInvalidColor);
  b_to_a.assign(b.NumColors(), kInvalidColor);
  for (size_t i = 0; i < a.NumNodes(); ++i) {
    const ColorId ca = a.colors_[i];
    const ColorId cb = b.colors_[i];
    if (a_to_b[ca] == kInvalidColor) a_to_b[ca] = cb;
    else if (a_to_b[ca] != cb) return false;
    if (b_to_a[cb] == kInvalidColor) b_to_a[cb] = ca;
    else if (b_to_a[cb] != ca) return false;
  }
  TrimScratch(a_to_b);
  TrimScratch(b_to_a);
  return true;
}

bool Partition::IsFinerOrEqual(const Partition& fine,
                               const Partition& coarse) {
  if (fine.NumNodes() != coarse.NumNodes()) return false;
  // Each fine class must map into exactly one coarse class.
  static thread_local std::vector<ColorId> fine_to_coarse;
  fine_to_coarse.assign(fine.NumColors(), kInvalidColor);
  for (size_t i = 0; i < fine.NumNodes(); ++i) {
    ColorId& slot = fine_to_coarse[fine.colors_[i]];
    if (slot == kInvalidColor) slot = coarse.colors_[i];
    else if (slot != coarse.colors_[i]) return false;
  }
  return true;
}

PartitionClasses Partition::Classes() const {
  PartitionClasses out;
  out.offsets.assign(num_colors_ + 1, 0);
  for (ColorId c : colors_) ++out.offsets[c + 1];
  for (size_t c = 0; c < num_colors_; ++c) {
    out.offsets[c + 1] += out.offsets[c];
  }
  out.members.resize(colors_.size());
  static thread_local std::vector<uint64_t> cursor;
  cursor.assign(out.offsets.begin(), out.offsets.end() - 1);
  for (NodeId i = 0; i < colors_.size(); ++i) {
    out.members[cursor[colors_[i]]++] = i;
  }
  TrimScratch(cursor);
  return out;
}

namespace {

// The flat (kind, lex) -> color tables below are sized by the dictionary,
// which in shared-dictionary archive workloads holds the terms of *every*
// version — much larger than one pair's node set. Only pay the O(terms)
// table clear when the dictionary is commensurate with the graph.
bool LabelTableFitsFlat(const TripleGraph& g) {
  return g.dict().size() <= 4 * g.NumNodes() + 1024;
}

/// Hash-keyed coloring for the dictionary >> graph case; same
/// first-occurrence color assignment as the flat path.
template <typename KeyFn>
Partition HashLabelColors(const TripleGraph& g, bool blanks_singleton,
                          KeyFn key_of) {
  std::vector<ColorId> colors(g.NumNodes());
  std::unordered_map<uint64_t, ColorId> by_label;
  by_label.reserve(g.NumNodes());
  ColorId next = 0;
  ColorId blank_color = kInvalidColor;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (g.IsBlank(i)) {
      if (blanks_singleton) {
        colors[i] = next++;
      } else {
        if (blank_color == kInvalidColor) blank_color = next++;
        colors[i] = blank_color;
      }
      continue;
    }
    auto [it, inserted] = by_label.emplace(key_of(i), next);
    if (inserted) ++next;
    colors[i] = it->second;
  }
  return Partition::FromColors(std::move(colors));
}

}  // namespace

Partition LabelPartition(const TripleGraph& g) {
  auto key_of = [&](NodeId i) {
    return (static_cast<uint64_t>(g.KindOf(i)) << 33) | g.LexicalId(i);
  };
  if (!LabelTableFitsFlat(g)) {
    return HashLabelColors(g, /*blanks_singleton=*/false, key_of);
  }
  std::vector<ColorId> colors(g.NumNodes());
  // Lexical ids are dense, so the (kind, lex) -> color map is a flat table
  // with one stripe per non-blank term kind. All blanks share one color.
  const size_t terms = g.dict().size();
  static thread_local std::vector<ColorId> by_label;
  by_label.assign(2 * terms, kInvalidColor);
  ColorId next = 0;
  ColorId blank_color = kInvalidColor;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (g.IsBlank(i)) {
      if (blank_color == kInvalidColor) blank_color = next++;
      colors[i] = blank_color;
      continue;
    }
    ColorId& slot =
        by_label[static_cast<size_t>(g.KindOf(i)) * terms + g.LexicalId(i)];
    if (slot == kInvalidColor) slot = next++;
    colors[i] = slot;
  }
  TrimScratch(by_label);
  return Partition::FromColors(std::move(colors));
}

Partition TrivialPartition(const TripleGraph& g) {
  auto key_of = [&](NodeId i) {
    return (static_cast<uint64_t>(g.KindOf(i)) << 33) | g.LexicalId(i);
  };
  if (!LabelTableFitsFlat(g)) {
    return HashLabelColors(g, /*blanks_singleton=*/true, key_of);
  }
  std::vector<ColorId> colors(g.NumNodes());
  const size_t terms = g.dict().size();
  static thread_local std::vector<ColorId> by_label;
  by_label.assign(2 * terms, kInvalidColor);  // URIs and literals only
  ColorId next = 0;
  for (NodeId i = 0; i < g.NumNodes(); ++i) {
    if (g.IsBlank(i)) {
      colors[i] = next++;  // singleton class per blank node
      continue;
    }
    ColorId& slot =
        by_label[static_cast<size_t>(g.KindOf(i)) * terms + g.LexicalId(i)];
    if (slot == kInvalidColor) slot = next++;
    colors[i] = slot;
  }
  TrimScratch(by_label);
  return Partition::FromColors(std::move(colors));
}

}  // namespace rdfalign
