#include "core/context.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "core/alignment.h"
#include "core/worklist_engine.h"
#include "util/hash.h"

namespace rdfalign {

std::vector<NodeId> PredicateOnlyUris(const TripleGraph& g) {
  std::vector<uint8_t> as_subject_or_object(g.NumNodes(), 0);
  std::vector<uint8_t> as_predicate(g.NumNodes(), 0);
  for (const Triple& t : g.triples()) {
    as_subject_or_object[t.s] = 1;
    as_subject_or_object[t.o] = 1;
    as_predicate[t.p] = 1;
  }
  std::vector<NodeId> out;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsUri(n) && as_predicate[n] && !as_subject_or_object[n]) {
      out.push_back(n);
    }
  }
  return out;
}

MediationIndex::MediationIndex(const TripleGraph& g) {
  const size_t n = g.NumNodes();
  offsets_.assign(n + 1, 0);
  for (const Triple& t : g.triples()) {
    ++offsets_[t.p + 1];
  }
  for (size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];
  pairs_.resize(g.NumEdges());
  {
    std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const Triple& t : g.triples()) {
      pairs_[cursor[t.p]++] = PredicateObject{t.s, t.o};
    }
  }
  for (size_t i = 0; i < n; ++i) {
    std::sort(pairs_.begin() + static_cast<ptrdiff_t>(offsets_[i]),
              pairs_.begin() + static_cast<ptrdiff_t>(offsets_[i + 1]));
  }
  // Reverse CSR: the distinct predicates of the triples in which a node
  // occurs as subject or object — the dirtiness relation of the
  // incremental contextual engine. Built like TripleGraph's in-index: one
  // exact counting pass (two slots per triple), one fill pass, then an
  // in-place per-node sort+unique with left compaction.
  rev_offsets_.assign(n + 1, 0);
  for (const Triple& t : g.triples()) {
    ++rev_offsets_[t.s + 1];
    ++rev_offsets_[t.o + 1];
  }
  for (size_t i = 0; i < n; ++i) rev_offsets_[i + 1] += rev_offsets_[i];
  rev_predicates_.resize(rev_offsets_[n]);
  {
    std::vector<uint64_t> cursor(rev_offsets_.begin(), rev_offsets_.end() - 1);
    for (const Triple& t : g.triples()) {
      rev_predicates_[cursor[t.s]++] = t.p;
      rev_predicates_[cursor[t.o]++] = t.p;
    }
  }
  {
    uint64_t write = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t begin = rev_offsets_[i];
      const uint64_t end = rev_offsets_[i + 1];
      auto first = rev_predicates_.begin() + static_cast<ptrdiff_t>(begin);
      auto last = rev_predicates_.begin() + static_cast<ptrdiff_t>(end);
      std::sort(first, last);
      last = std::unique(first, last);
      const uint64_t len = static_cast<uint64_t>(last - first);
      if (write != begin) {
        std::move(first, last,
                  rev_predicates_.begin() + static_cast<ptrdiff_t>(write));
      }
      rev_offsets_[i] = write;
      write += len;
    }
    rev_offsets_[n] = write;
    rev_predicates_.resize(write);
    rev_predicates_.shrink_to_fit();
  }
}

namespace {

constexpr uint32_t kKeepTag = 0;
constexpr uint32_t kRecolorTag = 1;
// The separator is shared with the worklist engine so both engines delimit
// the mediation section identically.
constexpr uint32_t kMediationSeparator = internal::kMediationSeparator;

using SignatureMap =
    std::unordered_map<std::vector<uint32_t>, ColorId, U32VectorHash>;

}  // namespace

Partition ContextualRefineStep(const TripleGraph& g, const Partition& p,
                               const std::vector<NodeId>& x,
                               const MediationIndex& mediation,
                               const std::vector<uint8_t>& predicate_only) {
  const size_t n = g.NumNodes();
  assert(p.NumNodes() == n);
  std::vector<uint8_t> in_x(n, 0);
  for (NodeId node : x) in_x[node] = 1;

  SignatureMap cons;
  cons.reserve(n);
  std::vector<ColorId> next(n);
  std::vector<uint32_t> sig;
  std::vector<uint64_t> packed;

  auto append_pairs = [&](std::span<const PredicateObject> pairs) {
    packed.clear();
    for (const PredicateObject& po : pairs) {
      packed.push_back(PackPair(p.ColorOf(po.p), p.ColorOf(po.o)));
    }
    std::sort(packed.begin(), packed.end());
    packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
    for (uint64_t v : packed) {
      sig.push_back(UnpackHi(v));
      sig.push_back(UnpackLo(v));
    }
  };

  for (NodeId node = 0; node < n; ++node) {
    sig.clear();
    if (!in_x[node]) {
      sig.push_back(kKeepTag);
      sig.push_back(p.ColorOf(node));
    } else {
      sig.push_back(kRecolorTag);
      sig.push_back(p.ColorOf(node));
      append_pairs(g.Out(node));
      if (predicate_only[node]) {
        // The mediation signature: colors of (subject, object) pairs of the
        // triples this node mediates, separated from the out-signature.
        sig.push_back(kMediationSeparator);
        append_pairs(mediation.Mediated(node));
      }
    }
    auto [it, inserted] = cons.try_emplace(std::vector<uint32_t>(sig),
                                           static_cast<ColorId>(cons.size()));
    next[node] = it->second;
  }
  return Partition::FromColors(std::move(next));
}

Partition ContextualRefineFixpoint(const TripleGraph& g, Partition initial,
                                   const std::vector<NodeId>& x,
                                   const MediationIndex& mediation,
                                   const std::vector<uint8_t>& predicate_only,
                                   RefinementStats* stats,
                                   const RefinementOptions& options) {
  RefinementStats local;
  local.initial_classes = initial.NumColors();
  Partition result;
  if (options.incremental) {
    internal::WorklistConfig config;
    config.mediation = &mediation;
    config.predicate_only = &predicate_only;
    config.threads = options.threads;
    config.parallel_min_round = options.parallel_min_round;
    result = internal::RunWorklistFixpoint(g, initial, x, config, &local);
    assert(Partition::IsFinerOrEqual(result, initial));
  } else {
    Partition current = std::move(initial);
    const size_t hard_cap = g.NumNodes() + 2;
    for (size_t iter = 0; iter < hard_cap; ++iter) {
      Partition next =
          ContextualRefineStep(g, current, x, mediation, predicate_only);
      ++local.iterations;
      local.dirty_per_iteration.push_back(x.size());
      if (next.NumColors() == current.NumColors()) {
        current = std::move(next);
        break;
      }
      current = std::move(next);
    }
    result = std::move(current);
  }
  local.final_classes = result.NumColors();
  if (stats != nullptr) *stats = std::move(local);
  return result;
}

ContextualHybridInputs BuildContextualHybridInputs(const CombinedGraph& cg) {
  const TripleGraph& g = cg.graph();
  Partition base = TrivialPartition(g);
  std::vector<NodeId> x = UnalignedNonLiterals(cg, base);
  {
    std::vector<uint8_t> in_x(g.NumNodes(), 0);
    for (NodeId n : x) in_x[n] = 1;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsBlank(n) && !in_x[n]) x.push_back(n);
    }
  }
  std::vector<uint8_t> predicate_only(g.NumNodes(), 0);
  for (NodeId n : PredicateOnlyUris(g)) predicate_only[n] = 1;
  return ContextualHybridInputs{BlankColors(base, x), std::move(x),
                                std::move(predicate_only),
                                MediationIndex(g)};
}

Partition PredicateAwareHybridPartition(const CombinedGraph& cg,
                                        RefinementStats* stats,
                                        const RefinementOptions& options) {
  ContextualHybridInputs in = BuildContextualHybridInputs(cg);
  return ContextualRefineFixpoint(cg.graph(), std::move(in.blanked), in.x,
                                  in.mediation, in.predicate_only, stats,
                                  options);
}

}  // namespace rdfalign
