#include "core/context.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "core/alignment.h"
#include "util/hash.h"

namespace rdfalign {

std::vector<NodeId> PredicateOnlyUris(const TripleGraph& g) {
  std::vector<uint8_t> as_subject_or_object(g.NumNodes(), 0);
  std::vector<uint8_t> as_predicate(g.NumNodes(), 0);
  for (const Triple& t : g.triples()) {
    as_subject_or_object[t.s] = 1;
    as_subject_or_object[t.o] = 1;
    as_predicate[t.p] = 1;
  }
  std::vector<NodeId> out;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsUri(n) && as_predicate[n] && !as_subject_or_object[n]) {
      out.push_back(n);
    }
  }
  return out;
}

MediationIndex::MediationIndex(const TripleGraph& g) {
  const size_t n = g.NumNodes();
  offsets_.assign(n + 1, 0);
  for (const Triple& t : g.triples()) {
    ++offsets_[t.p + 1];
  }
  for (size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];
  pairs_.resize(g.NumEdges());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Triple& t : g.triples()) {
    pairs_[cursor[t.p]++] = PredicateObject{t.s, t.o};
  }
  for (size_t i = 0; i < n; ++i) {
    std::sort(pairs_.begin() + static_cast<ptrdiff_t>(offsets_[i]),
              pairs_.begin() + static_cast<ptrdiff_t>(offsets_[i + 1]));
  }
}

namespace {

constexpr uint32_t kKeepTag = 0;
constexpr uint32_t kRecolorTag = 1;
constexpr uint32_t kMediationSeparator = 0xfffffffe;

using SignatureMap =
    std::unordered_map<std::vector<uint32_t>, ColorId, U32VectorHash>;

}  // namespace

Partition ContextualRefineStep(const TripleGraph& g, const Partition& p,
                               const std::vector<NodeId>& x,
                               const MediationIndex& mediation,
                               const std::vector<uint8_t>& predicate_only) {
  const size_t n = g.NumNodes();
  assert(p.NumNodes() == n);
  std::vector<uint8_t> in_x(n, 0);
  for (NodeId node : x) in_x[node] = 1;

  SignatureMap cons;
  cons.reserve(n);
  std::vector<ColorId> next(n);
  std::vector<uint32_t> sig;
  std::vector<uint64_t> packed;

  auto append_pairs = [&](std::span<const PredicateObject> pairs) {
    packed.clear();
    for (const PredicateObject& po : pairs) {
      packed.push_back(PackPair(p.ColorOf(po.p), p.ColorOf(po.o)));
    }
    std::sort(packed.begin(), packed.end());
    packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
    for (uint64_t v : packed) {
      sig.push_back(UnpackHi(v));
      sig.push_back(UnpackLo(v));
    }
  };

  for (NodeId node = 0; node < n; ++node) {
    sig.clear();
    if (!in_x[node]) {
      sig.push_back(kKeepTag);
      sig.push_back(p.ColorOf(node));
    } else {
      sig.push_back(kRecolorTag);
      sig.push_back(p.ColorOf(node));
      append_pairs(g.Out(node));
      if (predicate_only[node]) {
        // The mediation signature: colors of (subject, object) pairs of the
        // triples this node mediates, separated from the out-signature.
        sig.push_back(kMediationSeparator);
        append_pairs(mediation.Mediated(node));
      }
    }
    auto [it, inserted] = cons.try_emplace(std::vector<uint32_t>(sig),
                                           static_cast<ColorId>(cons.size()));
    next[node] = it->second;
  }
  return Partition::FromColors(std::move(next));
}

Partition ContextualRefineFixpoint(const TripleGraph& g, Partition initial,
                                   const std::vector<NodeId>& x,
                                   const MediationIndex& mediation,
                                   const std::vector<uint8_t>& predicate_only,
                                   RefinementStats* stats) {
  RefinementStats local;
  local.initial_classes = initial.NumColors();
  Partition current = std::move(initial);
  const size_t hard_cap = g.NumNodes() + 2;
  for (size_t iter = 0; iter < hard_cap; ++iter) {
    Partition next =
        ContextualRefineStep(g, current, x, mediation, predicate_only);
    ++local.iterations;
    if (next.NumColors() == current.NumColors()) {
      current = std::move(next);
      break;
    }
    current = std::move(next);
  }
  local.final_classes = current.NumColors();
  if (stats != nullptr) *stats = local;
  return current;
}

Partition PredicateAwareHybridPartition(const CombinedGraph& cg,
                                        RefinementStats* stats) {
  const TripleGraph& g = cg.graph();
  Partition base = TrivialPartition(g);
  std::vector<NodeId> x = UnalignedNonLiterals(cg, base);
  {
    std::vector<uint8_t> in_x(g.NumNodes(), 0);
    for (NodeId n : x) in_x[n] = 1;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsBlank(n) && !in_x[n]) x.push_back(n);
    }
  }
  std::vector<uint8_t> predicate_only(g.NumNodes(), 0);
  for (NodeId n : PredicateOnlyUris(g)) predicate_only[n] = 1;
  MediationIndex mediation(g);
  Partition blanked = BlankColors(base, x);
  return ContextualRefineFixpoint(g, std::move(blanked), x, mediation,
                                  predicate_only, stats);
}

}  // namespace rdfalign
