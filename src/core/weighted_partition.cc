#include "core/weighted_partition.h"

#include <algorithm>
#include <unordered_map>

namespace rdfalign {

WeightedPartition MakeZeroWeighted(Partition p) {
  WeightedPartition xi;
  xi.weight.assign(p.NumNodes(), 0.0);
  xi.partition = std::move(p);
  return xi;
}

std::vector<std::pair<NodeId, NodeId>> EnumerateAlignedPairsWeighted(
    const CombinedGraph& cg, const WeightedPartition& xi, double theta,
    size_t limit) {
  std::unordered_map<ColorId,
                     std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      classes;
  for (NodeId n = 0; n < xi.partition.NumNodes(); ++n) {
    auto& entry = classes[xi.partition.ColorOf(n)];
    (cg.InSource(n) ? entry.first : entry.second).push_back(n);
  }
  std::vector<std::pair<NodeId, NodeId>> out;
  for (auto& [color, nodes] : classes) {
    for (NodeId a : nodes.first) {
      for (NodeId b : nodes.second) {
        if (OPlus(xi.weight[a], xi.weight[b]) < theta) {
          if (out.size() >= limit) return out;
          out.emplace_back(a, b);
        }
      }
    }
  }
  return out;
}

size_t CountAlignedClassesWeighted(const CombinedGraph& cg,
                                   const WeightedPartition& xi,
                                   double theta) {
  // A class is aligned when its lightest source node and lightest target
  // node are within θ (⊕ is monotone, so the minima decide).
  constexpr double kNone = 2.0;
  std::vector<double> min_source(xi.partition.NumColors(), kNone);
  std::vector<double> min_target(xi.partition.NumColors(), kNone);
  for (NodeId n = 0; n < xi.partition.NumNodes(); ++n) {
    ColorId c = xi.partition.ColorOf(n);
    auto& slot = cg.InSource(n) ? min_source[c] : min_target[c];
    slot = std::min(slot, xi.weight[n]);
  }
  size_t count = 0;
  for (size_t c = 0; c < xi.partition.NumColors(); ++c) {
    if (min_source[c] < kNone && min_target[c] < kNone &&
        OPlus(min_source[c], min_target[c]) < theta) {
      ++count;
    }
  }
  return count;
}

}  // namespace rdfalign
