#include "core/hungarian.h"

#include <cassert>
#include <limits>

namespace rdfalign {

AssignmentResult SolveAssignment(const std::vector<double>& cost, size_t n) {
  assert(cost.size() == n * n);
  AssignmentResult result;
  if (n == 0) return result;

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Shortest-augmenting-path formulation with row/column potentials
  // (1-indexed over columns; p[j] is the row matched to column j).
  std::vector<double> u(n + 1, 0.0);
  std::vector<double> v(n + 1, 0.0);
  std::vector<size_t> p(n + 1, 0);
  std::vector<size_t> way(n + 1, 0);

  auto a = [&](size_t i, size_t j) -> double {
    return cost[(i - 1) * n + (j - 1)];  // 1-indexed accessor
  };

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      size_t i0 = p[j0];
      size_t j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        double cur = a(i0, j) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  result.row_of_col.assign(n, 0);
  result.col_of_row.assign(n, 0);
  for (size_t j = 1; j <= n; ++j) {
    result.row_of_col[j - 1] = p[j] - 1;
    result.col_of_row[p[j] - 1] = j - 1;
    result.cost += a(p[j], j);
  }
  return result;
}

AssignmentResult SolveRectangularAssignment(const std::vector<double>& cost,
                                            size_t rows, size_t cols,
                                            double pad_cost) {
  assert(cost.size() == rows * cols);
  const size_t n = rows > cols ? rows : cols;
  std::vector<double> square(n * n, pad_cost);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < cols; ++j) {
      square[i * n + j] = cost[i * cols + j];
    }
  }
  return SolveAssignment(square, n);
}

}  // namespace rdfalign
