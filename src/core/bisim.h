// Maximal bisimulation (§2.3, Proposition 1).
//
// λ_Bisim = BisimRefine*_{N_G}(ℓ_G) captures the maximal bisimulation on G:
// two nodes get one color iff they are bisimilar. Also provides a
// quadratic-time reference implementation (pair-removal greatest fixpoint)
// used by the property tests to validate the refinement engine.

#ifndef RDFALIGN_CORE_BISIM_H_
#define RDFALIGN_CORE_BISIM_H_

#include <utility>
#include <vector>

#include "core/partition.h"
#include "core/refinement.h"
#include "rdf/graph.h"

namespace rdfalign {

/// The bisimulation partition λ_Bisim of G (Proposition 1).
Partition BisimPartition(const TripleGraph& g,
                         RefinementStats* stats = nullptr,
                         const RefinementOptions& options = {});

/// True iff n and m are bisimilar in G (same λ_Bisim color). Prefer
/// computing the partition once when testing many pairs.
bool AreBisimilar(const TripleGraph& g, NodeId n, NodeId m);

/// Reference oracle: computes the maximal bisimulation by iterated removal
/// of violating pairs from the same-label relation. O(V²·E) — tests only.
std::vector<std::pair<NodeId, NodeId>> MaximalBisimulationBruteForce(
    const TripleGraph& g);

/// Checks Definition 2 directly: is `relation` (as a set of pairs) a
/// bisimulation on G? Used to validate both implementations.
bool IsBisimulation(const TripleGraph& g,
                    const std::vector<std::pair<NodeId, NodeId>>& relation);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_BISIM_H_
