// The overlap heuristic (§4.6, Algorithm 1).
//
// Candidate close pairs between two unaligned node sets are found with an
// inverted index over characterizing objects: each node n is represented by
// a set char(n); nodes sharing rare ("discriminating") objects are probed
// first, candidates are screened with the overlap measure
//     overlap(O1,O2) = |O1 ∩ O2| / |O1 ∪ O2|   (>= θ to pass),
// and survivors are verified with the actual distance function (< θ).
//
// Prefix rule: the paper probes the ⌈kθ⌉ least frequent objects of char(n),
// which is complete for θ > 1/2 (the intersection of size ≥ ⌈θk⌉ cannot
// avoid a prefix of length ⌈kθ⌉ when ⌈kθ⌉ + ⌈θk⌉ > k). For smaller θ the
// sound prefix length is k − ⌈θk⌉ + 1; the default takes the max of both so
// the heuristic is complete at every θ, and `paper_prefix` switches to the
// paper's literal rule (ablated in bench/ablation_overlap_index).
//
// Storage: characterizing sets and the inverted index are CSR structures —
// two flat arrays each — not per-node heap vectors or an unordered_map of
// postings vectors. legacy::OverlapMatch (core/pipeline_legacy.h) keeps the
// hash-map implementation as the A/B baseline; both produce byte-identical
// matchings and counters.

#ifndef RDFALIGN_CORE_OVERLAP_H_
#define RDFALIGN_CORE_OVERLAP_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/enrich.h"
#include "rdf/term.h"

namespace rdfalign {

/// Characterizing sets char(n) for a node list: per slot, the sorted
/// deduplicated object ids, stored as one CSR (offsets + items). Sets are
/// appended in order — either wholesale with push_back, or streamed with
/// BeginSet()/Add()/EndSetSortedUnique(), which writes directly into the
/// flat items array and never allocates a per-node vector.
class CharacterizingSets {
 public:
  CharacterizingSets() = default;
  CharacterizingSets(std::initializer_list<std::vector<uint64_t>> sets) {
    for (const auto& s : sets) push_back(s);
  }

  /// Appends a pre-sorted, deduplicated set.
  void push_back(const std::vector<uint64_t>& set) {
    items_.insert(items_.end(), set.begin(), set.end());
    offsets_.push_back(items_.size());
  }

  /// Opens a new set at the end; Add() items, then seal it.
  void BeginSet() {}
  void Add(uint64_t v) { items_.push_back(v); }
  /// Seals the open set: sorts and deduplicates its items in place.
  void EndSetSortedUnique() {
    auto first = items_.begin() + static_cast<ptrdiff_t>(offsets_.back());
    std::sort(first, items_.end());
    items_.erase(std::unique(first, items_.end()), items_.end());
    offsets_.push_back(items_.size());
  }

  void Reserve(size_t sets, size_t items) {
    offsets_.reserve(sets + 1);
    items_.reserve(items);
  }

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }
  size_t TotalItems() const { return items_.size(); }

  std::span<const uint64_t> operator[](size_t i) const {
    return {items_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

 private:
  std::vector<uint64_t> offsets_{0};  // size() + 1 entries
  std::vector<uint64_t> items_;
};

/// overlap(O1, O2) over sorted object-id spans; overlap(∅,∅) = 1.
/// (Vectors convert implicitly; the initializer_list overloads exist for
/// braced call sites, which cannot deduce a span.)
double OverlapMeasure(std::span<const uint64_t> o1,
                      std::span<const uint64_t> o2);
inline double OverlapMeasure(std::initializer_list<uint64_t> o1,
                             std::initializer_list<uint64_t> o2) {
  return OverlapMeasure(std::span<const uint64_t>(o1.begin(), o1.size()),
                        std::span<const uint64_t>(o2.begin(), o2.size()));
}

/// diff(O1, O2) = 1 − overlap(O1, O2); diff(∅,∅) = 0.
double DiffMeasure(std::span<const uint64_t> o1, std::span<const uint64_t> o2);
inline double DiffMeasure(std::initializer_list<uint64_t> o1,
                          std::initializer_list<uint64_t> o2) {
  return DiffMeasure(std::span<const uint64_t>(o1.begin(), o1.size()),
                     std::span<const uint64_t>(o2.begin(), o2.size()));
}

/// Tuning of OverlapMatch.
struct OverlapMatchOptions {
  /// Use the paper's ⌈kθ⌉ prefix instead of the always-sound length.
  bool paper_prefix = false;
};

/// Statistics of one OverlapMatch run (for the ablation benches and the
/// pipeline phase timings). The counters are deterministic and identical
/// between the CSR and legacy implementations; the timings are not part of
/// any equivalence contract.
struct OverlapMatchStats {
  size_t candidates_probed = 0;   ///< inverted-index postings touched
  size_t overlap_checked = 0;     ///< candidate pairs screened by overlap
  size_t sigma_checked = 0;       ///< pairs verified with σ
  size_t matched = 0;             ///< edges emitted
  double index_ms = 0;            ///< postings-CSR build wall time
  double probe_ms = 0;            ///< candidate probing + σ wall time
};

/// Algorithm 1. `a_nodes`/`b_nodes` are combined-graph ids with their
/// characterizing sets in `a_char`/`b_char` (parallel structures); `sigma`
/// is the verifying distance on (a-index, b-index) positions. Returns the
/// weighted bipartite graph H of pairs with σ < θ.
///
/// `threads` > 1 sorts the postings and probes A-side chunks on the shared
/// pool (per-chunk stamp arrays, counters, and edge buffers folded in
/// ascending chunk order); the matching edges, their order, and every
/// counter in `stats` are bit-identical for any thread count. `sigma` must
/// then be safe to call concurrently on distinct pairs (the built-in σ
/// functions only read shared state and use thread_local scratch).
BipartiteMatching OverlapMatch(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta,
    const std::function<double(size_t, size_t)>& sigma,
    const OverlapMatchOptions& options = {},
    OverlapMatchStats* stats = nullptr, size_t threads = 1);

/// Reference oracle for tests: brute-force all pairs with the same
/// screening (overlap >= θ, then σ < θ). O(|A|·|B|).
BipartiteMatching OverlapMatchBruteForce(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_OVERLAP_H_
