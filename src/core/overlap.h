// The overlap heuristic (§4.6, Algorithm 1).
//
// Candidate close pairs between two unaligned node sets are found with an
// inverted index over characterizing objects: each node n is represented by
// a set char(n); nodes sharing rare ("discriminating") objects are probed
// first, candidates are screened with the overlap measure
//     overlap(O1,O2) = |O1 ∩ O2| / |O1 ∪ O2|   (>= θ to pass),
// and survivors are verified with the actual distance function (< θ).
//
// Prefix rule: the paper probes the ⌈kθ⌉ least frequent objects of char(n),
// which is complete for θ > 1/2 (the intersection of size ≥ ⌈θk⌉ cannot
// avoid a prefix of length ⌈kθ⌉ when ⌈kθ⌉ + ⌈θk⌉ > k). For smaller θ the
// sound prefix length is k − ⌈θk⌉ + 1; the default takes the max of both so
// the heuristic is complete at every θ, and `paper_prefix` switches to the
// paper's literal rule (ablated in bench/ablation_overlap_index).

#ifndef RDFALIGN_CORE_OVERLAP_H_
#define RDFALIGN_CORE_OVERLAP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/enrich.h"
#include "rdf/term.h"

namespace rdfalign {

/// Characterizing sets: per node (parallel to the node list), the sorted,
/// deduplicated object ids of char(n).
using CharacterizingSets = std::vector<std::vector<uint64_t>>;

/// overlap(O1, O2) over sorted object-id vectors; overlap(∅,∅) = 1.
double OverlapMeasure(const std::vector<uint64_t>& o1,
                      const std::vector<uint64_t>& o2);

/// diff(O1, O2) = 1 − overlap(O1, O2); diff(∅,∅) = 0.
double DiffMeasure(const std::vector<uint64_t>& o1,
                   const std::vector<uint64_t>& o2);

/// Tuning of OverlapMatch.
struct OverlapMatchOptions {
  /// Use the paper's ⌈kθ⌉ prefix instead of the always-sound length.
  bool paper_prefix = false;
};

/// Statistics of one OverlapMatch run (for the ablation benches).
struct OverlapMatchStats {
  size_t candidates_probed = 0;   ///< inverted-index postings touched
  size_t overlap_checked = 0;     ///< candidate pairs screened by overlap
  size_t sigma_checked = 0;       ///< pairs verified with σ
  size_t matched = 0;             ///< edges emitted
};

/// Algorithm 1. `a_nodes`/`b_nodes` are combined-graph ids with their
/// characterizing sets in `a_char`/`b_char` (parallel vectors); `sigma` is
/// the verifying distance on (a-index, b-index) positions. Returns the
/// weighted bipartite graph H of pairs with σ < θ.
BipartiteMatching OverlapMatch(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta,
    const std::function<double(size_t, size_t)>& sigma,
    const OverlapMatchOptions& options = {},
    OverlapMatchStats* stats = nullptr);

/// Reference oracle for tests: brute-force all pairs with the same
/// screening (overlap >= θ, then σ < θ). O(|A|·|B|).
BipartiteMatching OverlapMatchBruteForce(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const CharacterizingSets& a_char, const CharacterizingSets& b_char,
    double theta, const std::function<double(size_t, size_t)>& sigma);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_OVERLAP_H_
