#include "core/sigma_edit.h"

#include <algorithm>
#include <cmath>

#include "core/alignment.h"
#include "core/edit_distance.h"
#include "core/hungarian.h"
#include "core/weighted_partition.h"

namespace rdfalign {

double SigmaEdit::FixedDistance(NodeId n, NodeId m, bool* is_fixed) const {
  *is_fixed = true;
  const TripleGraph& g = cg_->graph();
  if (hybrid_colors_[n] == hybrid_colors_[m]) return 0.0;
  if (aligned_[n] || aligned_[m]) return 1.0;
  const bool lit_n = g.IsLiteral(n);
  const bool lit_m = g.IsLiteral(m);
  if (lit_n && lit_m) {
    return NormalizedEditDistance(g.Lexical(n), g.Lexical(m));
  }
  if (lit_n != lit_m) return 1.0;
  *is_fixed = false;  // unaligned non-literal pair: propagated value
  return 0.0;
}

Result<SigmaEdit> SigmaEdit::Compute(const CombinedGraph& cg,
                                     const Partition& hybrid,
                                     const SigmaEditOptions& options) {
  SigmaEdit se;
  se.cg_ = &cg;
  se.hybrid_colors_ = hybrid.colors();

  const TripleGraph& g = cg.graph();
  std::vector<ClassSides> sides = ComputeClassSides(cg, hybrid);
  se.aligned_.assign(g.NumNodes(), 0);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    se.aligned_[n] = sides[hybrid.ColorOf(n)] == ClassSides::kBoth ? 1 : 0;
  }

  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (se.aligned_[n] || g.IsLiteral(n)) continue;
    if (cg.InSource(n)) {
      se.index1_.emplace(n, static_cast<uint32_t>(se.u1_.size()));
      se.u1_.push_back(n);
    } else {
      se.index2_.emplace(n, static_cast<uint32_t>(se.u2_.size()));
      se.u2_.push_back(n);
    }
  }

  const size_t rows = se.u1_.size();
  const size_t cols = se.u2_.size();
  if (rows * cols > options.max_matrix_entries) {
    return Status::OutOfRange(
        "sigma-edit matrix would need " + std::to_string(rows * cols) +
        " entries (cap " + std::to_string(options.max_matrix_entries) +
        "); use the overlap alignment for graphs of this size");
  }
  se.matrix_.assign(rows * cols, 0.0);

  // Distance of a (predicate|object) node pair under the current matrix.
  auto lookup = [&](NodeId a, NodeId b) -> double {
    bool fixed;
    double d = se.FixedDistance(a, b, &fixed);
    if (fixed) return d;
    return se.matrix_[se.index1_.at(a) * cols + se.index2_.at(b)];
  };

  std::vector<double> next(rows * cols, 0.0);
  std::vector<double> cost;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (size_t i = 0; i < rows; ++i) {
      const NodeId n = se.u1_[i];
      auto out_n = g.Out(n);
      for (size_t j = 0; j < cols; ++j) {
        const NodeId m = se.u2_[j];
        auto out_m = g.Out(m);
        const size_t f = std::max(out_n.size(), out_m.size());
        double value = 0.0;
        if (f > 0) {
          // Optimal matching of out-neighborhoods; unmatched slots cost 1.
          cost.assign(f * f, 1.0);
          for (size_t r = 0; r < out_n.size(); ++r) {
            for (size_t c = 0; c < out_m.size(); ++c) {
              cost[r * f + c] = OPlus(lookup(out_n[r].p, out_m[c].p),
                                      lookup(out_n[r].o, out_m[c].o));
            }
          }
          AssignmentResult ar = SolveAssignment(cost, f);
          value = std::min(ar.cost / static_cast<double>(f), 1.0);
        }
        next[i * cols + j] = value;
        max_delta =
            std::max(max_delta, std::abs(value - se.matrix_[i * cols + j]));
      }
    }
    se.matrix_.swap(next);
    ++se.iterations_;
    if (max_delta < options.epsilon) break;
  }
  return se;
}

double SigmaEdit::Distance(NodeId n, NodeId m) const {
  bool fixed;
  double d = FixedDistance(n, m, &fixed);
  if (fixed) return d;
  auto it1 = index1_.find(n);
  auto it2 = index2_.find(m);
  if (it1 == index1_.end() || it2 == index2_.end()) {
    // A source/target pair passed in the wrong order, or ids outside the
    // unaligned sets: treat as maximally distant.
    return 1.0;
  }
  return matrix_[it1->second * index2_.size() + it2->second];
}

std::vector<std::pair<NodeId, NodeId>> SigmaEdit::AlignAt(
    double theta) const {
  std::vector<std::pair<NodeId, NodeId>> out;
  const CombinedGraph& cg = *cg_;
  // Hybrid-aligned pairs (distance 0) come from class membership...
  std::unordered_map<ColorId,
                     std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      classes;
  for (NodeId n = 0; n < cg.graph().NumNodes(); ++n) {
    if (!aligned_[n]) continue;
    auto& entry = classes[hybrid_colors_[n]];
    (cg.InSource(n) ? entry.first : entry.second).push_back(n);
  }
  for (auto& [color, nodes] : classes) {
    for (NodeId a : nodes.first) {
      for (NodeId b : nodes.second) out.emplace_back(a, b);
    }
  }
  // ...unaligned literal pairs from the string edit distance...
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> lit1;
  std::vector<NodeId> lit2;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (aligned_[n] || !g.IsLiteral(n)) continue;
    (cg.InSource(n) ? lit1 : lit2).push_back(n);
  }
  for (NodeId a : lit1) {
    for (NodeId b : lit2) {
      if (NormalizedEditDistance(g.Lexical(a), g.Lexical(b)) <= theta) {
        out.emplace_back(a, b);
      }
    }
  }
  // ...and unaligned non-literal pairs from the propagated matrix.
  const size_t cols = u2_.size();
  for (size_t i = 0; i < u1_.size(); ++i) {
    for (size_t j = 0; j < cols; ++j) {
      if (matrix_[i * cols + j] <= theta) {
        out.emplace_back(u1_[i], u2_[j]);
      }
    }
  }
  return out;
}

}  // namespace rdfalign
