// Weighted partitions ξ = (λ, ω) (§4.3).
//
// Every node belongs to exactly one cluster but carries a confidence weight:
// the distance from the cluster's center. The induced distance function is
//
//   σ_ξ(n,m) = ω(n) ⊕ ω(m)   when λ(n) = λ(m),   1 otherwise        (5)
//
// with x ⊕ y = min(x+y, 1) the truncated addition compatible with the
// triangle inequality.

#ifndef RDFALIGN_CORE_WEIGHTED_PARTITION_H_
#define RDFALIGN_CORE_WEIGHTED_PARTITION_H_

#include <utility>
#include <vector>

#include "core/partition.h"
#include "rdf/merge.h"

namespace rdfalign {

/// The truncated addition operator ⊕ : [0,1]² -> [0,1] (§4.1).
inline double OPlus(double x, double y) {
  double s = x + y;
  return s < 1.0 ? s : 1.0;
}

/// A partition with per-node confidence weights in [0,1].
struct WeightedPartition {
  Partition partition;
  std::vector<double> weight;

  /// σ_ξ(n, m) per eq. (5).
  double Distance(NodeId n, NodeId m) const {
    if (partition.ColorOf(n) != partition.ColorOf(m)) return 1.0;
    return OPlus(weight[n], weight[m]);
  }
};

/// Wraps a plain partition with the constant-zero weight function; the
/// starting point ξ0 = (λ_Hybrid, 0) of Algorithm 2.
WeightedPartition MakeZeroWeighted(Partition p);

/// Align_θ(ξ) = {(n,m) | λ(n)=λ(m), ω(n) ⊕ ω(m) < θ}, materialized for
/// tests/small graphs; stops after `limit` pairs.
std::vector<std::pair<NodeId, NodeId>> EnumerateAlignedPairsWeighted(
    const CombinedGraph& cg, const WeightedPartition& xi, double theta,
    size_t limit = SIZE_MAX);

/// Fig. 13-style aligned-class count under the threshold: classes that
/// contain at least one source/target pair within distance θ.
size_t CountAlignedClassesWeighted(const CombinedGraph& cg,
                                   const WeightedPartition& xi, double theta);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_WEIGHTED_PARTITION_H_
