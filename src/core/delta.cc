#include "core/delta.h"

#include <unordered_map>

#include "core/alignment.h"
#include "util/hash.h"

namespace rdfalign {

namespace {

struct TripleKey {
  uint64_t hi;
  uint64_t lo;
  bool operator==(const TripleKey&) const = default;
};

struct TripleKeyHash {
  size_t operator()(const TripleKey& k) const {
    return static_cast<size_t>(HashCombine(Mix64(k.hi), k.lo));
  }
};

TripleKey ColorKey(const Partition& p, const Triple& t) {
  return TripleKey{PackPair(p.ColorOf(t.s), p.ColorOf(t.p)),
                   static_cast<uint64_t>(p.ColorOf(t.o))};
}

}  // namespace

RdfDelta ComputeDelta(const CombinedGraph& cg, const Partition& p) {
  const TripleGraph& g = cg.graph();
  RdfDelta delta;

  // Multiset of target-side edges by color triple.
  std::unordered_map<TripleKey, size_t, TripleKeyHash> target_counts;
  for (const Triple& t : g.triples()) {
    if (cg.InTarget(t.s)) ++target_counts[ColorKey(p, t)];
  }
  // Source edges consume matching target counts; leftovers are deletions.
  std::unordered_map<TripleKey, size_t, TripleKeyHash> consumed;
  for (const Triple& t : g.triples()) {
    if (!cg.InSource(t.s)) continue;
    TripleKey key = ColorKey(p, t);
    auto it = target_counts.find(key);
    size_t& used = consumed[key];
    if (it != target_counts.end() && used < it->second) {
      ++used;
      ++delta.unchanged;
    } else {
      delta.deleted.push_back(t);
    }
  }
  // Target edges beyond the matched multiplicity are additions.
  std::unordered_map<TripleKey, size_t, TripleKeyHash> seen;
  for (const Triple& t : g.triples()) {
    if (!cg.InTarget(t.s)) continue;
    TripleKey key = ColorKey(p, t);
    size_t& cnt = seen[key];
    ++cnt;
    auto it = consumed.find(key);
    size_t matched = it == consumed.end() ? 0 : it->second;
    if (cnt > matched) delta.added.push_back(t);
  }

  // Renames: classes holding URI nodes of both sides with differing labels.
  std::unordered_map<ColorId,
                     std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      uri_classes;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (!g.IsUri(n)) continue;
    auto& entry = uri_classes[p.ColorOf(n)];
    (cg.InSource(n) ? entry.first : entry.second).push_back(n);
  }
  for (auto& [color, nodes] : uri_classes) {
    for (NodeId a : nodes.first) {
      for (NodeId b : nodes.second) {
        if (g.LexicalId(a) != g.LexicalId(b)) {
          delta.renamed_uris.push_back(UriRename{
              a, b, std::string(g.Lexical(a)), std::string(g.Lexical(b))});
        }
      }
    }
  }
  return delta;
}

std::string DeltaSummary(const RdfDelta& delta) {
  return "+" + std::to_string(delta.added.size()) + " -" +
         std::to_string(delta.deleted.size()) + " ~" +
         std::to_string(delta.unchanged) + ", " +
         std::to_string(delta.renamed_uris.size()) + " renames";
}

}  // namespace rdfalign
