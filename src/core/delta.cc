#include "core/delta.h"

#include <algorithm>
#include <unordered_map>

#include "util/hash.h"
#include "util/scratch.h"
#include "util/thread_pool.h"

namespace rdfalign {

namespace {

/// 96-bit color-triple key, ordered so the multiset matching below runs on
/// sorted flat arrays instead of hash maps.
struct TripleKey {
  uint64_t hi;
  uint64_t lo;
  bool operator==(const TripleKey&) const = default;
  auto operator<=>(const TripleKey&) const = default;
};

TripleKey ColorKey(const Partition& p, const Triple& t) {
  return TripleKey{PackPair(p.ColorOf(t.s), p.ColorOf(t.p)),
                   static_cast<uint64_t>(p.ColorOf(t.o))};
}

constexpr size_t kDeltaParallelMin = 1 << 15;
constexpr size_t kDeltaGrain = 1 << 15;

}  // namespace

RdfDelta ComputeDelta(const CombinedGraph& cg, const Partition& p,
                      size_t threads) {
  threads = EffectiveLanes(threads);
  const TripleGraph& g = cg.graph();
  const std::span<const Triple> triples = g.triples();
  const bool parallel = threads > 1 && triples.size() >= kDeltaParallelMin;
  RdfDelta delta;

  // Each side's edges as (color key, triple index) pairs sorted by key then
  // index; equal-key runs are matched by one linear merge. Within a run the
  // indexes ascend, which is exactly the old hash-multiset's greedy
  // first-come matching order, so which edges end up deleted/added is
  // bit-identical.
  struct KeyIdx {
    TripleKey key;
    uint64_t idx;  // triple index; CSR offsets are 64-bit, so follow suit
    auto operator<=>(const KeyIdx&) const = default;
  };
  static thread_local std::vector<KeyIdx> src;
  static thread_local std::vector<KeyIdx> tgt;
  static thread_local std::vector<uint8_t> changed;  // per-triple verdict
  src.clear();
  src.reserve(cg.e1());
  tgt.clear();
  tgt.reserve(cg.e2());
  if (parallel) {
    // Chunked count + exclusive-prefix + scatter keeps the pre-sort
    // element order identical to the serial loop; the sort would erase
    // any order anyway (KeyIdx's ordering is total including idx).
    // Plain references to the caller's scratch: naming the thread_local
    // inside the worker lambdas would resolve to each *worker's* (empty)
    // instance, not this thread's.
    std::vector<KeyIdx>& src_ref = src;
    std::vector<KeyIdx>& tgt_ref = tgt;
    const size_t m = triples.size();
    const size_t chunks = PlanChunks(m, kDeltaGrain);
    std::vector<uint64_t> s_off(chunks + 1, 0);
    std::vector<uint64_t> t_off(chunks + 1, 0);
    ParallelChunks(m, threads, kDeltaGrain,
                   [&](size_t c, size_t begin, size_t end) {
                     uint64_t ns = 0;
                     uint64_t nt = 0;
                     for (size_t i = begin; i < end; ++i) {
                       (cg.InSource(triples[i].s) ? ns : nt) += 1;
                     }
                     s_off[c + 1] = ns;
                     t_off[c + 1] = nt;
                   });
    for (size_t c = 0; c < chunks; ++c) {
      s_off[c + 1] += s_off[c];
      t_off[c + 1] += t_off[c];
    }
    src.resize(s_off[chunks]);
    tgt.resize(t_off[chunks]);
    ParallelChunks(m, threads, kDeltaGrain,
                   [&](size_t c, size_t begin, size_t end) {
                     uint64_t is = s_off[c];
                     uint64_t it = t_off[c];
                     for (size_t i = begin; i < end; ++i) {
                       const KeyIdx entry{ColorKey(p, triples[i]),
                                          static_cast<uint64_t>(i)};
                       (cg.InSource(triples[i].s) ? src_ref[is++]
                                                  : tgt_ref[it++]) = entry;
                     }
                   });
  } else {
    for (size_t i = 0; i < triples.size(); ++i) {
      const TripleKey key = ColorKey(p, triples[i]);
      (cg.InSource(triples[i].s) ? src : tgt)
          .push_back(KeyIdx{key, static_cast<uint64_t>(i)});
    }
  }
  ParallelSort(src, threads);
  ParallelSort(tgt, threads);

  // A source run of cs edges and a target run of ct edges with one key
  // match min(cs, ct) pairs: the first min source edges are unchanged, the
  // rest deleted; the first min target edges are unchanged, the rest added.
  changed.assign(triples.size(), 0);
  size_t i = 0;
  size_t j = 0;
  while (i < src.size() || j < tgt.size()) {
    if (j >= tgt.size() || (i < src.size() && src[i].key < tgt[j].key)) {
      changed[src[i].idx] = 1;  // deletion: no target run for this key
      ++i;
    } else if (i >= src.size() || tgt[j].key < src[i].key) {
      changed[tgt[j].idx] = 1;  // addition: no source run for this key
      ++j;
    } else {
      const TripleKey key = src[i].key;
      size_t i_end = i;
      while (i_end < src.size() && src[i_end].key == key) ++i_end;
      size_t j_end = j;
      while (j_end < tgt.size() && tgt[j_end].key == key) ++j_end;
      const size_t m = std::min(i_end - i, j_end - j);
      delta.unchanged += m;
      for (size_t x = i + m; x < i_end; ++x) changed[src[x].idx] = 1;
      for (size_t x = j + m; x < j_end; ++x) changed[tgt[x].idx] = 1;
      i = i_end;
      j = j_end;
    }
  }
  // Emit in original triple order, like the old per-edge replay did.
  for (size_t t = 0; t < triples.size(); ++t) {
    if (!changed[t]) continue;
    (cg.InSource(triples[t].s) ? delta.deleted : delta.added)
        .push_back(triples[t]);
  }
  TrimScratch(src);
  TrimScratch(tgt);
  TrimScratch(changed);

  // Renames: classes holding URI nodes of both sides with differing labels.
  // Counting-sort CSRs over the dense colors, one per side; classes are
  // visited in ascending color order (deterministic, unlike the old
  // unordered_map walk — rename order within a class is unchanged).
  const size_t num_colors = p.NumColors();
  static thread_local std::vector<uint32_t> src_off;
  static thread_local std::vector<uint32_t> tgt_off;
  src_off.assign(num_colors + 1, 0);
  tgt_off.assign(num_colors + 1, 0);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (!g.IsUri(n)) continue;
    ++(cg.InSource(n) ? src_off : tgt_off)[p.ColorOf(n) + 1];
  }
  for (size_t c = 0; c < num_colors; ++c) {
    src_off[c + 1] += src_off[c];
    tgt_off[c + 1] += tgt_off[c];
  }
  static thread_local std::vector<NodeId> src_uris;
  static thread_local std::vector<NodeId> tgt_uris;
  src_uris.resize(src_off[num_colors]);
  tgt_uris.resize(tgt_off[num_colors]);
  {
    static thread_local std::vector<uint32_t> src_cur;
    static thread_local std::vector<uint32_t> tgt_cur;
    src_cur.assign(src_off.begin(), src_off.end() - 1);
    tgt_cur.assign(tgt_off.begin(), tgt_off.end() - 1);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (!g.IsUri(n)) continue;
      const ColorId c = p.ColorOf(n);
      if (cg.InSource(n)) {
        src_uris[src_cur[c]++] = n;
      } else {
        tgt_uris[tgt_cur[c]++] = n;
      }
    }
  }
  for (size_t c = 0; c < num_colors; ++c) {
    for (uint32_t i = src_off[c]; i < src_off[c + 1]; ++i) {
      for (uint32_t j = tgt_off[c]; j < tgt_off[c + 1]; ++j) {
        const NodeId a = src_uris[i];
        const NodeId b = tgt_uris[j];
        if (g.LexicalId(a) != g.LexicalId(b)) {
          delta.renamed_uris.push_back(UriRename{
              a, b, std::string(g.Lexical(a)), std::string(g.Lexical(b))});
        }
      }
    }
  }
  TrimScratch(src_uris);
  TrimScratch(tgt_uris);
  return delta;
}

size_t VersionNodeMap::MappedCount() const {
  size_t mapped = 0;
  for (NodeId b : next_to_base) {
    if (b != kInvalidNode) ++mapped;
  }
  return mapped;
}

VersionNodeMap NodeMapFromPartition(const CombinedGraph& cg,
                                    const Partition& p) {
  // Per class: the smallest source node and the smallest target node.
  // Scanning combined ids ascending visits all source nodes before any
  // target node, so first-write-wins gives the minimum of each side.
  const size_t num_colors = p.NumColors();
  std::vector<NodeId> first_source(num_colors, kInvalidNode);
  std::vector<NodeId> first_target(num_colors, kInvalidNode);
  const NodeId total = cg.n1() + cg.n2();
  for (NodeId n = 0; n < total; ++n) {
    NodeId& slot =
        cg.InSource(n) ? first_source[p.ColorOf(n)] : first_target[p.ColorOf(n)];
    if (slot == kInvalidNode) slot = n;
  }
  VersionNodeMap map;
  map.next_to_base.assign(cg.n2(), kInvalidNode);
  for (size_t c = 0; c < num_colors; ++c) {
    if (first_source[c] != kInvalidNode && first_target[c] != kInvalidNode) {
      map.next_to_base[cg.ToLocal(first_target[c])] =
          first_source[c];  // source ids are already graph-local
    }
  }
  return map;
}

VersionNodeMap NodeMapFromEntities(const std::vector<uint64_t>& base_entities,
                                   const std::vector<uint64_t>& next_entities) {
  std::unordered_map<uint64_t, NodeId> smallest_base;
  smallest_base.reserve(base_entities.size());
  for (NodeId b = 0; b < base_entities.size(); ++b) {
    smallest_base.emplace(base_entities[b], b);  // first wins = smallest
  }
  VersionNodeMap map;
  map.next_to_base.assign(next_entities.size(), kInvalidNode);
  for (NodeId n = 0; n < next_entities.size(); ++n) {
    auto it = smallest_base.find(next_entities[n]);
    if (it != smallest_base.end()) {
      map.next_to_base[n] = it->second;
      smallest_base.erase(it);  // keep the map injective
    }
  }
  return map;
}

std::string DeltaSummary(const RdfDelta& delta) {
  return "+" + std::to_string(delta.added.size()) + " -" +
         std::to_string(delta.deleted.size()) + " ~" +
         std::to_string(delta.unchanged) + ", " +
         std::to_string(delta.renamed_uris.size()) + " renames";
}

}  // namespace rdfalign
