// σEdit: the edit-distance node similarity (§4.2) — the expensive reference
// measure the overlap alignment approximates.
//
// σEdit refines the hybrid alignment:
//   * pairs aligned by λ_Hybrid ........................ distance 0
//   * pairs with exactly one Hybrid-aligned node ....... distance 1
//   * unaligned literal pairs .......................... normalized string
//     edit distance of the labels
//   * unaligned non-literal pairs ...................... cost of the optimal
//     (Hungarian) matching of the two out-neighborhoods, normalized by
//     f = max(|out(n)|, |out(m)|), with unmatched edges costing 1,
//     iterated from the all-zero start until the values stabilize
//   * literal vs non-literal ........................... distance 1
//
// The paper defers the formal definition to its (unavailable) appendix;
// this reconstruction reproduces every value of Example 5 (1/3, 1/3, 1/6,
// 1/4) — see tests/paper_examples_test.cc.
//
// The matrix over unaligned pairs is materialized, which is the very
// scalability problem (quadratic space, cubic matching) that motivates the
// overlap heuristic; use only on small graphs.

#ifndef RDFALIGN_CORE_SIGMA_EDIT_H_
#define RDFALIGN_CORE_SIGMA_EDIT_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "rdf/merge.h"
#include "util/result.h"

namespace rdfalign {

/// Convergence knobs and the safety cap for σEdit's quadratic matrix.
struct SigmaEditOptions {
  double epsilon = 1e-9;
  size_t max_iterations = 100;
  /// Refuse to materialize more than this many unaligned-pair entries.
  size_t max_matrix_entries = 64ull * 1024 * 1024;
};

/// The computed σEdit distance function.
class SigmaEdit {
 public:
  /// Computes σEdit on the combined graph, refining `hybrid` (pass the
  /// λ_Hybrid partition; any partition-based alignment works).
  static Result<SigmaEdit> Compute(const CombinedGraph& cg,
                                   const Partition& hybrid,
                                   const SigmaEditOptions& options = {});

  /// σEdit(n, m) for a source-side and a target-side combined id.
  double Distance(NodeId n, NodeId m) const;

  /// Align_θ(σEdit) materialized as pairs (source id, target id).
  std::vector<std::pair<NodeId, NodeId>> AlignAt(double theta) const;

  /// Iterations the propagation ran for.
  size_t iterations() const { return iterations_; }

  const std::vector<NodeId>& unaligned_source() const { return u1_; }
  const std::vector<NodeId>& unaligned_target() const { return u2_; }

 private:
  const CombinedGraph* cg_ = nullptr;
  std::vector<ColorId> hybrid_colors_;
  // Unaligned non-literal nodes per side and their dense indexes.
  std::vector<NodeId> u1_;
  std::vector<NodeId> u2_;
  std::unordered_map<NodeId, uint32_t> index1_;
  std::unordered_map<NodeId, uint32_t> index2_;
  // Row-major |u1_| x |u2_| matrix of propagated distances.
  std::vector<double> matrix_;
  // Aligned-by-hybrid mask per node.
  std::vector<uint8_t> aligned_;
  size_t iterations_ = 0;

  double FixedDistance(NodeId n, NodeId m, bool* is_fixed) const;
};

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_SIGMA_EDIT_H_
