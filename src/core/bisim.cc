#include "core/bisim.h"

#include <set>

namespace rdfalign {

namespace {

bool SameLabel(const TripleGraph& g, NodeId n, NodeId m) {
  if (g.KindOf(n) != g.KindOf(m)) return false;
  if (g.IsBlank(n)) return true;  // all blanks share the label ⊥b
  return g.LexicalId(n) == g.LexicalId(m);
}

/// One direction of Definition 2: every out-pair of n can be simulated by
/// some out-pair of m within `rel`.
bool Simulates(const TripleGraph& g,
               const std::set<std::pair<NodeId, NodeId>>& rel, NodeId n,
               NodeId m) {
  for (const PredicateObject& a : g.Out(n)) {
    bool matched = false;
    for (const PredicateObject& b : g.Out(m)) {
      if (rel.count({a.p, b.p}) > 0 && rel.count({a.o, b.o}) > 0) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

}  // namespace

Partition BisimPartition(const TripleGraph& g, RefinementStats* stats,
                         const RefinementOptions& options) {
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  return BisimRefineFixpoint(g, LabelPartition(g), all, stats, options);
}

bool AreBisimilar(const TripleGraph& g, NodeId n, NodeId m) {
  Partition p = BisimPartition(g);
  return p.ColorOf(n) == p.ColorOf(m);
}

std::vector<std::pair<NodeId, NodeId>> MaximalBisimulationBruteForce(
    const TripleGraph& g) {
  const NodeId n = static_cast<NodeId>(g.NumNodes());
  std::set<std::pair<NodeId, NodeId>> rel;
  for (NodeId a = 0; a < n; ++a) {
    for (NodeId b = 0; b < n; ++b) {
      if (SameLabel(g, a, b)) rel.emplace(a, b);
    }
  }
  // Greatest fixpoint: repeatedly delete pairs violating either direction.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = rel.begin(); it != rel.end();) {
      auto [a, b] = *it;
      if (!Simulates(g, rel, a, b) || !Simulates(g, rel, b, a)) {
        it = rel.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  return {rel.begin(), rel.end()};
}

bool IsBisimulation(const TripleGraph& g,
                    const std::vector<std::pair<NodeId, NodeId>>& relation) {
  std::set<std::pair<NodeId, NodeId>> rel(relation.begin(), relation.end());
  for (const auto& [a, b] : rel) {
    if (!SameLabel(g, a, b)) return false;
    if (!Simulates(g, rel, a, b)) return false;
    if (!Simulates(g, rel, b, a)) return false;
  }
  return true;
}

}  // namespace rdfalign
