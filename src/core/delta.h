// Alignment-driven deltas: the change description between two versions.
//
// "Constructing an alignment between two graphs is virtually equivalent to
// constructing their delta" (§1, Related Work). Given a partition-based
// alignment, every edge of either side either has an aligned counterpart on
// the other side (unchanged up to renaming) or is an insertion/deletion.
// URI nodes aligned across different labels are reported as renames — the
// ontology changes the hybrid method is designed to find.

#ifndef RDFALIGN_CORE_DELTA_H_
#define RDFALIGN_CORE_DELTA_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "rdf/merge.h"

namespace rdfalign {

/// A rename discovered by the alignment: one entity, two URIs.
struct UriRename {
  NodeId source;           ///< combined id in G1
  NodeId target;           ///< combined id in G2
  std::string source_uri;
  std::string target_uri;
};

/// The triple-level difference between two aligned versions.
struct RdfDelta {
  /// Triples of G1 without an aligned counterpart in G2 (combined ids).
  std::vector<Triple> deleted;
  /// Triples of G2 without an aligned counterpart in G1 (combined ids).
  std::vector<Triple> added;
  /// Edges matched across versions (counted once per matched pair).
  size_t unchanged = 0;
  /// Aligned URI pairs whose labels differ.
  std::vector<UriRename> renamed_uris;
};

/// Computes the delta induced by a partition-based alignment. Edges are
/// matched by color triple with multiplicity (min of the per-side counts).
/// `threads` > 1 builds and sorts the per-side key arrays on the shared
/// pool; the emitted delta is bit-identical to the serial pass (the greedy
/// first-come matching runs on the same sorted arrays either way).
RdfDelta ComputeDelta(const CombinedGraph& cg, const Partition& p,
                      size_t threads = 1);

/// An injective node correspondence between two versions: for every node of
/// the *next* (target) version, the base (source) node it continues, or
/// kInvalidNode when it has none. No base node is the image of two next
/// nodes. This is the entity-level remap the binary delta store
/// (src/store/delta.h) serializes; an all-invalid map is always valid (the
/// delta then degenerates to a full remove + add).
struct VersionNodeMap {
  std::vector<NodeId> next_to_base;  ///< size = next version's node count

  size_t MappedCount() const;
};

/// Derives a VersionNodeMap from a partition-based alignment of a combined
/// graph: each class containing nodes of both sides pairs its smallest
/// source node with its smallest target node (deterministic; remaining
/// same-class members stay unmapped so the map is injective).
VersionNodeMap NodeMapFromPartition(const CombinedGraph& cg,
                                    const Partition& p);

/// Derives a VersionNodeMap from two per-node entity-id columns (the
/// VersionArchive chaining): the smallest base node of each entity pairs
/// with the smallest next node carrying the same entity id.
VersionNodeMap NodeMapFromEntities(const std::vector<uint64_t>& base_entities,
                                   const std::vector<uint64_t>& next_entities);

/// Renders a human-readable summary ("+N -M ~K, R renames").
std::string DeltaSummary(const RdfDelta& delta);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_DELTA_H_
