// Alignment-driven deltas: the change description between two versions.
//
// "Constructing an alignment between two graphs is virtually equivalent to
// constructing their delta" (§1, Related Work). Given a partition-based
// alignment, every edge of either side either has an aligned counterpart on
// the other side (unchanged up to renaming) or is an insertion/deletion.
// URI nodes aligned across different labels are reported as renames — the
// ontology changes the hybrid method is designed to find.

#ifndef RDFALIGN_CORE_DELTA_H_
#define RDFALIGN_CORE_DELTA_H_

#include <string>
#include <utility>
#include <vector>

#include "core/partition.h"
#include "rdf/merge.h"

namespace rdfalign {

/// A rename discovered by the alignment: one entity, two URIs.
struct UriRename {
  NodeId source;           ///< combined id in G1
  NodeId target;           ///< combined id in G2
  std::string source_uri;
  std::string target_uri;
};

/// The triple-level difference between two aligned versions.
struct RdfDelta {
  /// Triples of G1 without an aligned counterpart in G2 (combined ids).
  std::vector<Triple> deleted;
  /// Triples of G2 without an aligned counterpart in G1 (combined ids).
  std::vector<Triple> added;
  /// Edges matched across versions (counted once per matched pair).
  size_t unchanged = 0;
  /// Aligned URI pairs whose labels differ.
  std::vector<UriRename> renamed_uris;
};

/// Computes the delta induced by a partition-based alignment. Edges are
/// matched by color triple with multiplicity (min of the per-side counts).
RdfDelta ComputeDelta(const CombinedGraph& cg, const Partition& p);

/// Renders a human-readable summary ("+N -M ~K, R renames").
std::string DeltaSummary(const RdfDelta& delta);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_DELTA_H_
