#include "core/hybrid.h"

#include "core/alignment.h"
#include "core/deblank.h"

namespace rdfalign {

Partition HybridPartitionFrom(const CombinedGraph& cg, const Partition& base,
                              RefinementStats* stats,
                              const RefinementOptions& options) {
  // The refinable set is UN(base) plus every blank node. Including the
  // already-aligned blanks re-derives their deblank colors inside this run,
  // which realizes the paper's structured-color semantics: a previously
  // unaligned node whose unfolding coincides with an aligned blank's
  // derivation tree lands in that blank's class (colors are built in one
  // color space). It also makes the choice of base partition irrelevant
  // beyond its aligned/unaligned verdicts, which is why starting from
  // λ_Trivial or λ_Deblank provably yields the same partition (§3.4).
  std::vector<NodeId> x = UnalignedNonLiterals(cg, base);
  {
    std::vector<uint8_t> in_x(cg.graph().NumNodes(), 0);
    for (NodeId n : x) in_x[n] = 1;
    for (NodeId n = 0; n < cg.graph().NumNodes(); ++n) {
      if (cg.graph().IsBlank(n) && !in_x[n]) x.push_back(n);
    }
  }
  Partition blanked = BlankColors(base, x);
  return BisimRefineFixpoint(cg.graph(), std::move(blanked), x, stats,
                             options);
}

Partition HybridPartition(const CombinedGraph& cg, RefinementStats* stats,
                          const RefinementOptions& options) {
  return HybridPartitionFrom(cg, DeblankPartition(cg, nullptr, options),
                             stats, options);
}

}  // namespace rdfalign
