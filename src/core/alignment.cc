#include "core/alignment.h"

#include <algorithm>
#include <atomic>

#include "util/hash.h"
#include "util/scratch.h"
#include "util/thread_pool.h"

namespace rdfalign {

namespace {

// Minimum element count before the chunked kernels engage; below this the
// serial loops win.
constexpr size_t kAlignParallelMin = 1 << 15;
// Elements per chunk of the key-building and accumulation passes.
constexpr size_t kAlignGrain = 1 << 15;

uint8_t SideBit(const CombinedGraph& cg, NodeId n) {
  return cg.InSource(n) ? 1 : 2;
}

/// 96-bit edge key packed into two 64-bit words, ordered lexicographically
/// so membership tests are binary searches over sorted flat arrays instead
/// of hash-set probes.
struct TripleKey {
  uint64_t hi;
  uint64_t lo;
  bool operator==(const TripleKey&) const = default;
  auto operator<=>(const TripleKey&) const = default;
};

TripleKey MakeColorKey(const Partition& p, const Triple& t) {
  return TripleKey{PackPair(p.ColorOf(t.s), p.ColorOf(t.p)),
                   static_cast<uint64_t>(p.ColorOf(t.o))};
}

/// Counts the elements of sorted multiset `b` whose key occurs in sorted
/// multiset `a` — one linear merge, no per-element searches.
size_t CountMembersIn(const std::vector<TripleKey>& b,
                      const std::vector<TripleKey>& a) {
  size_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      const TripleKey key = b[j];
      while (j < b.size() && b[j] == key) {
        ++count;
        ++j;
      }
      while (i < a.size() && a[i] == key) ++i;
    }
  }
  return count;
}

// Routes a key per kept triple into set_a (source side) or set_b in
// triple order: a chunked counting pass sizes each chunk's sub-ranges,
// then the scatter writes every chunk's keys at its exclusive-prefix
// offsets — the element order is exactly the serial loop's for any
// thread count (and the subsequent sort would erase ordering anyway).
template <typename KeyFn, typename KeepFn>
void BuildSideKeysParallel(const CombinedGraph& cg,
                           std::span<const Triple> triples, size_t threads,
                           const KeyFn& key, const KeepFn& keep,
                           std::vector<TripleKey>& set_a,
                           std::vector<TripleKey>& set_b) {
  const size_t m = triples.size();
  const size_t chunks = PlanChunks(m, kAlignGrain);
  std::vector<uint64_t> a_off(chunks + 1, 0);
  std::vector<uint64_t> b_off(chunks + 1, 0);
  ParallelChunks(m, threads, kAlignGrain,
                 [&](size_t c, size_t begin, size_t end) {
                   uint64_t na = 0;
                   uint64_t nb = 0;
                   for (size_t i = begin; i < end; ++i) {
                     if (!keep(triples[i])) continue;
                     (cg.InSource(triples[i].s) ? na : nb) += 1;
                   }
                   a_off[c + 1] = na;
                   b_off[c + 1] = nb;
                 });
  for (size_t c = 0; c < chunks; ++c) {
    a_off[c + 1] += a_off[c];
    b_off[c + 1] += b_off[c];
  }
  set_a.resize(a_off[chunks]);
  set_b.resize(b_off[chunks]);
  ParallelChunks(m, threads, kAlignGrain,
                 [&](size_t c, size_t begin, size_t end) {
                   uint64_t ia = a_off[c];
                   uint64_t ib = b_off[c];
                   for (size_t i = begin; i < end; ++i) {
                     const Triple& t = triples[i];
                     if (!keep(t)) continue;
                     (cg.InSource(t.s) ? set_a[ia++] : set_b[ib++]) = key(t);
                   }
                 });
}

}  // namespace

std::vector<ClassSides> ComputeClassSides(const CombinedGraph& cg,
                                          const Partition& p, size_t threads) {
  threads = EffectiveLanes(threads);
  std::vector<uint8_t> bits(p.NumColors(), 0);
  if (threads > 1 && p.NumNodes() >= kAlignParallelMin) {
    // ORing side bits is order-insensitive, so relaxed atomic ORs give the
    // serial result for any interleaving.
    ParallelChunks(p.NumNodes(), threads, kAlignGrain,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t n = begin; n < end; ++n) {
                       std::atomic_ref<uint8_t>(
                           bits[p.ColorOf(static_cast<NodeId>(n))])
                           .fetch_or(SideBit(cg, static_cast<NodeId>(n)),
                                     std::memory_order_relaxed);
                     }
                   });
    std::vector<ClassSides> out(bits.size());
    ParallelChunks(bits.size(), threads, kAlignGrain,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       out[i] = static_cast<ClassSides>(bits[i]);
                     }
                   });
    return out;
  }
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    bits[p.ColorOf(n)] |= SideBit(cg, n);
  }
  std::vector<ClassSides> out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    out[i] = static_cast<ClassSides>(bits[i]);
  }
  return out;
}

std::vector<NodeId> UnalignedNodes(const CombinedGraph& cg,
                                   const Partition& p) {
  std::vector<ClassSides> sides = ComputeClassSides(cg, p);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    if (sides[p.ColorOf(n)] != ClassSides::kBoth) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> UnalignedNonLiterals(const CombinedGraph& cg,
                                         const Partition& p) {
  std::vector<ClassSides> sides = ComputeClassSides(cg, p);
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> out;
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    if (sides[p.ColorOf(n)] != ClassSides::kBoth && !g.IsLiteral(n)) {
      out.push_back(n);
    }
  }
  return out;
}

EdgeAlignmentStats ComputeEdgeAlignment(const CombinedGraph& cg,
                                        const Partition& p, size_t threads) {
  threads = EffectiveLanes(threads);
  const TripleGraph& g = cg.graph();
  const bool parallel = threads > 1 && g.NumEdges() >= kAlignParallelMin;

  // Scratch key buffers persist across calls: the figure benches and the
  // archive workloads call this once per version pair, and the buffers
  // reach a steady size after the first pair.
  static thread_local std::vector<TripleKey> set_a;
  static thread_local std::vector<TripleKey> set_b;

  // Pass 1: count label-identical non-blank edges present on both sides —
  // these are "edges using precisely the same identifiers" and are counted
  // once. Blank nodes are never persistent identifiers, so edges touching a
  // blank never merge.
  // Lexical ids are shared across kinds (a URI and a literal can intern the
  // same string), so the object's kind is packed into the key; subjects are
  // never literals and predicates are always URIs.
  auto label_key = [&](const Triple& t) -> TripleKey {
    return TripleKey{PackPair(g.LexicalId(t.s), g.LexicalId(t.p)),
                     static_cast<uint64_t>(g.LexicalId(t.o)) |
                         (static_cast<uint64_t>(g.KindOf(t.o)) << 32)};
  };
  auto has_blank = [&](const Triple& t) {
    return g.IsBlank(t.s) || g.IsBlank(t.p) || g.IsBlank(t.o);
  };

  set_a.clear();
  set_a.reserve(cg.e1());
  set_b.clear();
  set_b.reserve(cg.e2());
  if (parallel) {
    BuildSideKeysParallel(cg, g.triples(), threads, label_key,
                          [&](const Triple& t) { return !has_blank(t); },
                          set_a, set_b);
  } else {
    for (const Triple& t : g.triples()) {
      if (!has_blank(t)) {
        (cg.InSource(t.s) ? set_a : set_b).push_back(label_key(t));
      }
    }
  }
  ParallelSort(set_a, threads);
  ParallelSort(set_b, threads);
  const size_t merged = CountMembersIn(set_b, set_a);

  // Pass 2: an edge is aligned when the opposite side has an edge whose
  // color triple matches — sort each side's key multiset, then count cross
  // memberships with two linear merges.
  set_a.clear();
  set_b.clear();
  if (parallel) {
    BuildSideKeysParallel(
        cg, g.triples(), threads,
        [&](const Triple& t) { return MakeColorKey(p, t); },
        [](const Triple&) { return true; }, set_a, set_b);
  } else {
    for (const Triple& t : g.triples()) {
      (cg.InSource(t.s) ? set_a : set_b).push_back(MakeColorKey(p, t));
    }
  }
  ParallelSort(set_a, threads);
  ParallelSort(set_b, threads);
  size_t aligned = CountMembersIn(set_a, set_b) + CountMembersIn(set_b, set_a);
  // Merged edges are aligned on both sides by construction; count them once.
  aligned -= merged;
  TrimScratch(set_a);
  TrimScratch(set_b);

  EdgeAlignmentStats stats;
  stats.total_edges = cg.e1() + cg.e2() - merged;
  stats.aligned_edges = aligned;
  return stats;
}

NodeAlignmentStats ComputeNodeAlignment(const CombinedGraph& cg,
                                        const Partition& p, size_t threads) {
  threads = EffectiveLanes(threads);
  std::vector<ClassSides> sides = ComputeClassSides(cg, p, threads);
  if (threads > 1 && p.NumNodes() >= kAlignParallelMin) {
    // Integer sums merged in chunk order — exact for any chunking.
    NodeAlignmentStats stats = ChunkedReduce<NodeAlignmentStats>(
        p.NumNodes(), threads, kAlignGrain, NodeAlignmentStats{},
        [&](size_t, size_t begin, size_t end) {
          NodeAlignmentStats part;
          for (size_t i = begin; i < end; ++i) {
            const NodeId n = static_cast<NodeId>(i);
            bool aligned = sides[p.ColorOf(n)] == ClassSides::kBoth;
            if (cg.InSource(n)) {
              aligned ? ++part.aligned_source_nodes
                      : ++part.unaligned_source_nodes;
            } else {
              aligned ? ++part.aligned_target_nodes
                      : ++part.unaligned_target_nodes;
            }
          }
          return part;
        },
        [](NodeAlignmentStats& acc, NodeAlignmentStats&& part) {
          acc.aligned_source_nodes += part.aligned_source_nodes;
          acc.aligned_target_nodes += part.aligned_target_nodes;
          acc.unaligned_source_nodes += part.unaligned_source_nodes;
          acc.unaligned_target_nodes += part.unaligned_target_nodes;
        });
    stats.aligned_classes = ChunkedReduce<size_t>(
        sides.size(), threads, kAlignGrain, size_t{0},
        [&](size_t, size_t begin, size_t end) {
          size_t count = 0;
          for (size_t i = begin; i < end; ++i) {
            if (sides[i] == ClassSides::kBoth) ++count;
          }
          return count;
        },
        [](size_t& acc, size_t&& part) { acc += part; });
    return stats;
  }
  NodeAlignmentStats stats;
  for (const ClassSides s : sides) {
    if (s == ClassSides::kBoth) ++stats.aligned_classes;
  }
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    bool aligned = sides[p.ColorOf(n)] == ClassSides::kBoth;
    if (cg.InSource(n)) {
      aligned ? ++stats.aligned_source_nodes : ++stats.unaligned_source_nodes;
    } else {
      aligned ? ++stats.aligned_target_nodes : ++stats.unaligned_target_nodes;
    }
  }
  return stats;
}

std::vector<std::pair<NodeId, NodeId>> EnumerateAlignedPairs(
    const CombinedGraph& cg, const Partition& p, size_t limit) {
  // Group nodes per class and side with two counting-sort CSRs over the
  // dense colors. Classes are emitted in ascending color order, so the
  // output is deterministic (the hash-map version followed bucket order).
  const size_t num_colors = p.NumColors();
  std::vector<uint64_t> src_off(num_colors + 1, 0);
  std::vector<uint64_t> tgt_off(num_colors + 1, 0);
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    ++(cg.InSource(n) ? src_off : tgt_off)[p.ColorOf(n) + 1];
  }
  for (size_t c = 0; c < num_colors; ++c) {
    src_off[c + 1] += src_off[c];
    tgt_off[c + 1] += tgt_off[c];
  }
  std::vector<NodeId> src_members(src_off[num_colors]);
  std::vector<NodeId> tgt_members(tgt_off[num_colors]);
  {
    std::vector<uint64_t> src_cur(src_off.begin(), src_off.end() - 1);
    std::vector<uint64_t> tgt_cur(tgt_off.begin(), tgt_off.end() - 1);
    for (NodeId n = 0; n < p.NumNodes(); ++n) {
      const ColorId c = p.ColorOf(n);
      if (cg.InSource(n)) {
        src_members[src_cur[c]++] = n;
      } else {
        tgt_members[tgt_cur[c]++] = n;
      }
    }
  }
  std::vector<std::pair<NodeId, NodeId>> out;
  for (size_t c = 0; c < num_colors; ++c) {
    for (uint64_t i = src_off[c]; i < src_off[c + 1]; ++i) {
      for (uint64_t j = tgt_off[c]; j < tgt_off[c + 1]; ++j) {
        if (out.size() >= limit) return out;
        out.emplace_back(src_members[i], tgt_members[j]);
      }
    }
  }
  return out;
}

bool HasCrossoverProperty(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  // Sorted packed-u64 views replace the std::set + two std::multimaps: the
  // forward array doubles as the membership set and the by-source index,
  // and the reversed array is the by-target index.
  std::vector<uint64_t> fwd;
  std::vector<uint64_t> rev;
  fwd.reserve(pairs.size());
  rev.reserve(pairs.size());
  for (const auto& [n, m] : pairs) {
    fwd.push_back(PackPair(n, m));
    rev.push_back(PackPair(m, n));
  }
  std::sort(fwd.begin(), fwd.end());
  std::sort(rev.begin(), rev.end());
  auto range_of = [](const std::vector<uint64_t>& sorted, NodeId hi) {
    return std::pair{
        std::lower_bound(sorted.begin(), sorted.end(), PackPair(hi, 0)),
        std::upper_bound(sorted.begin(), sorted.end(),
                         PackPair(hi, kInvalidNode))};
  };
  for (const auto& [n, m] : pairs) {
    auto [ms_begin, ms_end] = range_of(fwd, n);   // all m' with (n, m')
    auto [ns_begin, ns_end] = range_of(rev, m);   // all n' with (n', m)
    for (auto it1 = ns_begin; it1 != ns_end; ++it1) {
      const NodeId n_prime = UnpackLo(*it1);
      for (auto it2 = ms_begin; it2 != ms_end; ++it2) {
        const NodeId m_prime = UnpackLo(*it2);
        if (!std::binary_search(fwd.begin(), fwd.end(),
                                PackPair(n_prime, m_prime))) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace rdfalign
