#include "core/alignment.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace rdfalign {

namespace {

uint8_t SideBit(const CombinedGraph& cg, NodeId n) {
  return cg.InSource(n) ? 1 : 2;
}

/// 96-bit edge key packed into two 64-bit words for hashing.
struct TripleKey {
  uint64_t hi;
  uint64_t lo;
  bool operator==(const TripleKey&) const = default;
};

struct TripleKeyHash {
  size_t operator()(const TripleKey& k) const {
    return static_cast<size_t>(HashCombine(Mix64(k.hi), k.lo));
  }
};

TripleKey MakeColorKey(const Partition& p, const Triple& t) {
  return TripleKey{PackPair(p.ColorOf(t.s), p.ColorOf(t.p)),
                   static_cast<uint64_t>(p.ColorOf(t.o))};
}

}  // namespace

std::vector<ClassSides> ComputeClassSides(const CombinedGraph& cg,
                                          const Partition& p) {
  std::vector<uint8_t> bits(p.NumColors(), 0);
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    bits[p.ColorOf(n)] |= SideBit(cg, n);
  }
  std::vector<ClassSides> out(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    out[i] = static_cast<ClassSides>(bits[i]);
  }
  return out;
}

std::vector<NodeId> UnalignedNodes(const CombinedGraph& cg,
                                   const Partition& p) {
  std::vector<ClassSides> sides = ComputeClassSides(cg, p);
  std::vector<NodeId> out;
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    if (sides[p.ColorOf(n)] != ClassSides::kBoth) out.push_back(n);
  }
  return out;
}

std::vector<NodeId> UnalignedNonLiterals(const CombinedGraph& cg,
                                         const Partition& p) {
  std::vector<ClassSides> sides = ComputeClassSides(cg, p);
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> out;
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    if (sides[p.ColorOf(n)] != ClassSides::kBoth && !g.IsLiteral(n)) {
      out.push_back(n);
    }
  }
  return out;
}

EdgeAlignmentStats ComputeEdgeAlignment(const CombinedGraph& cg,
                                        const Partition& p) {
  const TripleGraph& g = cg.graph();

  // Pass 1: count label-identical non-blank edges present on both sides —
  // these are "edges using precisely the same identifiers" and are counted
  // once. Blank nodes are never persistent identifiers, so edges touching a
  // blank never merge.
  // Lexical ids are shared across kinds (a URI and a literal can intern the
  // same string), so the object's kind is packed into the key; subjects are
  // never literals and predicates are always URIs.
  auto label_key = [&](const Triple& t) -> TripleKey {
    return TripleKey{PackPair(g.LexicalId(t.s), g.LexicalId(t.p)),
                     static_cast<uint64_t>(g.LexicalId(t.o)) |
                         (static_cast<uint64_t>(g.KindOf(t.o)) << 32)};
  };
  auto has_blank = [&](const Triple& t) {
    return g.IsBlank(t.s) || g.IsBlank(t.p) || g.IsBlank(t.o);
  };

  std::unordered_set<TripleKey, TripleKeyHash> source_label_edges;
  source_label_edges.reserve(cg.e1());
  for (const Triple& t : g.triples()) {
    if (cg.InSource(t.s) && !has_blank(t)) {
      source_label_edges.insert(label_key(t));
    }
  }
  size_t merged = 0;
  for (const Triple& t : g.triples()) {
    if (cg.InTarget(t.s) && !has_blank(t) &&
        source_label_edges.count(label_key(t)) > 0) {
      ++merged;
    }
  }

  // Pass 2: an edge is aligned when the opposite side has an edge whose
  // color triple matches.
  std::unordered_set<TripleKey, TripleKeyHash> source_colors;
  std::unordered_set<TripleKey, TripleKeyHash> target_colors;
  source_colors.reserve(cg.e1());
  target_colors.reserve(cg.e2());
  for (const Triple& t : g.triples()) {
    if (cg.InSource(t.s)) {
      source_colors.insert(MakeColorKey(p, t));
    } else {
      target_colors.insert(MakeColorKey(p, t));
    }
  }
  size_t aligned = 0;
  for (const Triple& t : g.triples()) {
    const auto& opposite = cg.InSource(t.s) ? target_colors : source_colors;
    if (opposite.count(MakeColorKey(p, t)) > 0) ++aligned;
  }
  // Merged edges are aligned on both sides by construction; count them once.
  aligned -= merged;

  EdgeAlignmentStats stats;
  stats.total_edges = cg.e1() + cg.e2() - merged;
  stats.aligned_edges = aligned;
  return stats;
}

NodeAlignmentStats ComputeNodeAlignment(const CombinedGraph& cg,
                                        const Partition& p) {
  std::vector<ClassSides> sides = ComputeClassSides(cg, p);
  NodeAlignmentStats stats;
  for (const ClassSides s : sides) {
    if (s == ClassSides::kBoth) ++stats.aligned_classes;
  }
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    bool aligned = sides[p.ColorOf(n)] == ClassSides::kBoth;
    if (cg.InSource(n)) {
      aligned ? ++stats.aligned_source_nodes : ++stats.unaligned_source_nodes;
    } else {
      aligned ? ++stats.aligned_target_nodes : ++stats.unaligned_target_nodes;
    }
  }
  return stats;
}

std::vector<std::pair<NodeId, NodeId>> EnumerateAlignedPairs(
    const CombinedGraph& cg, const Partition& p, size_t limit) {
  // Group nodes per class, split by side.
  std::unordered_map<ColorId, std::pair<std::vector<NodeId>,
                                        std::vector<NodeId>>>
      classes;
  for (NodeId n = 0; n < p.NumNodes(); ++n) {
    auto& entry = classes[p.ColorOf(n)];
    (cg.InSource(n) ? entry.first : entry.second).push_back(n);
  }
  std::vector<std::pair<NodeId, NodeId>> out;
  for (auto& [color, nodes] : classes) {
    for (NodeId a : nodes.first) {
      for (NodeId b : nodes.second) {
        if (out.size() >= limit) return out;
        out.emplace_back(a, b);
      }
    }
  }
  return out;
}

bool HasCrossoverProperty(
    const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  std::set<std::pair<NodeId, NodeId>> set(pairs.begin(), pairs.end());
  std::multimap<NodeId, NodeId> by_source;
  std::multimap<NodeId, NodeId> by_target;
  for (const auto& [n, m] : pairs) {
    by_source.emplace(n, m);
    by_target.emplace(m, n);
  }
  for (const auto& [n, m] : pairs) {
    auto ms = by_source.equal_range(n);   // all m' with (n, m')
    auto ns = by_target.equal_range(m);   // all n' with (n', m)
    for (auto it1 = ns.first; it1 != ns.second; ++it1) {
      for (auto it2 = ms.first; it2 != ms.second; ++it2) {
        if (set.count({it1->second, it2->second}) == 0) return false;
      }
    }
  }
  return true;
}

}  // namespace rdfalign
