// Internal: the incremental dirty-node worklist engine behind every
// refinement fixpoint (plain, keyed, and mediation-aware contextual), and —
// since the streaming subsystem landed — behind the continuous alignment
// maintenance of src/stream/.
//
// The engine generalizes the PR-1 worklist algorithm along three axes:
//
//  * **Signature shape.** A node's signature is [own color, out-pairs...]
//    as before, optionally restricted by a predicate mask (keyed
//    refinement) and optionally extended — for predicate-only URIs — by a
//    mediation section [separator, (λ(s), λ(o)) pairs...] over the triples
//    the node mediates (contextual refinement, §5.1 of the paper).
//    Dirtiness follows the signature shape: a changed node dirties its
//    in-neighbors (Graph::In) and, when mediation is configured, the
//    predicate-only nodes mediating it (MediationIndex::
//    MediatingPredicates).
//
//  * **Parallel signing.** Rounds at least `parallel_min_round` nodes wide
//    are signed by `threads` workers into thread-local arenas; a
//    deterministic sequential merge then conses the prebuilt signatures in
//    worklist order — the exact order the sequential path uses — so the
//    resulting partition is bit-identical for every thread count. Signing
//    only reads shared state (colors, graph, indexes); all writes happen in
//    the merge. See docs/refinement.md.
//
//  * **Graph abstraction + re-entry.** The engine is a template over the
//    graph type: it needs only `NumNodes()`, `Out(n)` (a range of
//    PredicateObject, sorted), and `In(n)` (an iterable of NodeId that is
//    a *superset* of the true in-neighborhood — over-approximate dirtiness
//    is absorbed by the stored-anchor match). The batch entry point
//    RunWorklistFixpoint instantiates it for TripleGraph and produces the
//    historical partitions bit for bit. A StreamAligner instead keeps one
//    engine alive across update batches: between Run calls it may append
//    nodes (AppendNode), allocate fresh colors (AllocateColor), reset the
//    color of affected nodes (OverrideColor), grow or shrink the refinable
//    set (SetInX), seed the worklist (SeedDirty), and resume the fixpoint
//    with RunInPlace — the persistent cons state (stored class anchors,
//    class sizes, monotone color allocation) carries over, so resumed
//    rounds cost only the dirty region. See docs/stream.md for how the
//    reset discipline keeps resumed fixpoints equal to batch recomputation.
//
// This header is shared by core/refinement.cc, core/context.cc, and
// src/stream/; it is not part of the public API surface.

#ifndef RDFALIGN_CORE_WORKLIST_ENGINE_H_
#define RDFALIGN_CORE_WORKLIST_ENGINE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/context.h"
#include "core/partition.h"
#include "core/refinement.h"
#include "rdf/graph.h"
#include "util/hash.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfalign {
namespace internal {

/// Separates the out-pair section of a signature from the mediation-pair
/// section. Colors are dense and monotonically allocated, so they can never
/// reach this value on any realistic graph; the legacy contextual step
/// relies on the same property.
inline constexpr uint32_t kMediationSeparator = 0xfffffffe;

/// What the worklist engine signs and how.
struct WorklistConfig {
  /// Keyed refinement: only out-pairs whose predicate is marked enter the
  /// signature. Null = all pairs.
  const std::vector<uint8_t>* predicate_mask = nullptr;
  /// Contextual refinement: both non-null or both null. Nodes flagged in
  /// `predicate_only` carry a mediation signature drawn from `mediation`,
  /// and dirtiness additionally follows MediatingPredicates().
  const MediationIndex* mediation = nullptr;
  const std::vector<uint8_t>* predicate_only = nullptr;
  /// Resolved signing-worker count (>= 1); see ResolveThreads().
  size_t threads = 1;
  /// Minimum worklist width before the worker pool engages.
  size_t parallel_min_round = 4096;
};

/// Maps RefinementOptions::threads to a concrete worker count: 0 becomes
/// one worker per hardware thread, anything else is used as given (min 1).
size_t ResolveThreads(size_t requested);

// Colors live in a monotonically growing (non-dense) id space; ids are never
// reused, so a color identifies one class for the whole engine lifetime.
// Each round re-signs only the dirty nodes — initially the seeded worklist,
// afterwards the nodes whose signature can mention a color that changed in
// the previous round (out-neighbors via Graph::In, plus mediating
// predicate-only nodes via MediationIndex::MediatingPredicates under
// contextual refinement). Dirty nodes of one class are grouped by signature
// through an allocation-free cons table: the signature is built in a reused
// scratch buffer, keyed by its 64-bit hash, and verified word-for-word
// against the round arena on hash hits.
//
// Split rule for a class c with d dirty members out of s total:
//   * a group whose signature equals the class's stored anchor signature
//     keeps color c (its members did not really change — this absorbs
//     over-approximate dirtiness, e.g. keyed refinement propagating along
//     non-key edges, or a stale In() entry of a mutable stream graph);
//   * otherwise, if d == s, the largest group keeps color c (pure
//     relabeling; smaller groups split off) and re-anchors the stored
//     signature;
//   * every other group receives a fresh color and its members are marked
//     changed, which makes their observers dirty next round.
// Nodes that keep their color are not marked changed, so references to them
// in signatures of clean nodes stay valid. See docs/refinement.md for the
// correctness argument.
template <class Graph>
class WorklistEngine {
 public:
  WorklistEngine(const Graph& g, const Partition& initial,
                 const std::vector<NodeId>& x, const WorklistConfig& cfg)
      : g_(g),
        cfg_(cfg),
        colors_(initial.colors()),
        next_color_(static_cast<ColorId>(initial.NumColors())) {
    assert((cfg.mediation == nullptr) == (cfg.predicate_only == nullptr));
    const size_t n = g.NumNodes();
    class_size_.assign(next_color_, 0);
    for (ColorId c : colors_) ++class_size_[c];
    class_sig_.assign(next_color_, StoredSig{});
    class_head_.assign(next_color_, kNoGroup);
    class_dirty_.assign(next_color_, 0);
    in_x_.assign(n, 0);
    dirty_flag_.assign(n, 0);
    dirty_.reserve(x.size());
    for (NodeId node : x) {
      in_x_[node] = 1;
      if (!dirty_flag_[node]) {
        dirty_flag_[node] = 1;
        dirty_.push_back(node);
      }
    }
  }

  /// Runs to stabilization and *consumes* the color state — the one-shot
  /// batch entry point (RunWorklistFixpoint).
  Partition Run(RefinementStats* stats) {
    RunInPlace(stats);
    return Partition::FromColors(std::move(colors_));
  }

  /// Runs to stabilization, keeping the engine state alive for later
  /// re-entry. Safe to call repeatedly; a call with an empty worklist is a
  /// no-op (counted as one vacuous iteration in `stats`).
  void RunInPlace(RefinementStats* stats) {
    size_t iterations = 0;
    double first_round_ms = 0;
    const size_t hard_cap = g_.NumNodes() + 2;
    while (!dirty_.empty() && iterations < hard_cap) {
      ++iterations;
      if (stats != nullptr) {
        stats->dirty_per_iteration.push_back(dirty_.size());
      }
      WallTimer round_timer;
      SignDirtyNodes();
      AssignColors();
      InstallAndPropagate();
      if (iterations == 1) first_round_ms = round_timer.ElapsedMillis();
    }
    if (stats != nullptr) {
      // An empty worklist still counts as one (vacuous) stabilizing step,
      // matching the legacy engine's accounting.
      stats->iterations = iterations == 0 ? 1 : iterations;
      stats->signature_bytes = signature_bytes_;
      stats->first_round_ms = first_round_ms;
      stats->threads_used = cfg_.threads;
    }
  }

  // ---- re-entry surface (persistent use by src/stream/) ----

  /// Current color of every node (raw engine ids — non-dense; canonicalize
  /// with Partition::FromColors for comparisons).
  const std::vector<ColorId>& colors() const { return colors_; }
  ColorId ColorOf(NodeId n) const { return colors_[n]; }
  ColorId next_color() const { return next_color_; }

  /// Allocates a fresh, never-used color with an empty class and no stored
  /// anchor signature.
  ColorId AllocateColor() {
    const ColorId c = next_color_++;
    class_size_.push_back(0);
    class_sig_.push_back(StoredSig{});
    class_head_.push_back(kNoGroup);
    class_dirty_.push_back(0);
    return c;
  }

  /// Appends one node (the graph must already expose it) carrying color
  /// `color`; `in_x` adds it to the refinable set.
  void AppendNode(ColorId color, bool in_x) {
    assert(color < next_color_);
    colors_.push_back(color);
    ++class_size_[color];
    in_x_.push_back(in_x ? 1 : 0);
    dirty_flag_.push_back(0);
  }

  /// Moves node `n` to (already allocated) color `c` without signing —
  /// the stream reset primitive. Must not be called mid-Run.
  void OverrideColor(NodeId n, ColorId c) {
    assert(c < next_color_);
    --class_size_[colors_[n]];
    ++class_size_[c];
    colors_[n] = c;
  }

  /// Adds or removes `n` from the refinable set X.
  void SetInX(NodeId n, bool in_x) { in_x_[n] = in_x ? 1 : 0; }
  bool InX(NodeId n) const { return in_x_[n] != 0; }

  /// Seeds `n` into the next RunInPlace worklist (idempotent). `n` must be
  /// in X.
  void SeedDirty(NodeId n) {
    assert(in_x_[n]);
    if (!dirty_flag_[n]) {
      dirty_flag_[n] = 1;
      dirty_.push_back(n);
    }
  }

  size_t NumTrackedNodes() const { return colors_.size(); }

 private:
  static constexpr uint32_t kNoGroup = 0xffffffffu;
  static constexpr uint32_t kNoStoredSig = 0xffffffffu;

  // Anchor signature of a class, in the persistent store arena.
  struct StoredSig {
    uint64_t hash = 0;
    size_t offset = 0;
    uint32_t len = kNoStoredSig;  // kNoStoredSig: class predates any consing
  };

  // One distinct signature observed among a class's dirty members this
  // round.
  struct Group {
    uint64_t hash;
    size_t offset;  // into the round arena
    uint32_t len;
    ColorId cls;      // class being split (== first signature word)
    uint32_t count;   // dirty members carrying this signature
    uint32_t next_in_class;
    ColorId new_color;
  };

  // Per-worker output of a parallel signing pass: the signatures of one
  // contiguous worklist chunk, concatenated, plus per-node lengths and
  // hashes. Workers only ever touch their own slab.
  struct WorkerSlab {
    std::vector<uint32_t> words;
    std::vector<uint32_t> lens;
    std::vector<uint64_t> hashes;
    size_t signature_bytes = 0;
    // Scratch reused across the chunk's nodes.
    std::vector<uint64_t> pair_scratch;
    std::vector<uint32_t> sig_scratch;
  };

  // Builds the signature of `node` w.r.t. the current colors into `sig`:
  // [own color, (hi,lo) of each distinct out-pair, ascending], plus — for
  // predicate-only nodes under contextual refinement — a mediation section
  // [separator, (hi,lo) of each distinct (λ(s), λ(o)) mediated pair].
  // Reads only shared immutable round state, so it is safe to run from the
  // signing workers.
  void BuildSignatureInto(NodeId node, std::vector<uint64_t>& pairs,
                          std::vector<uint32_t>& sig) const {
    pairs.clear();
    for (const PredicateObject& po : g_.Out(node)) {
      if (cfg_.predicate_mask != nullptr && !(*cfg_.predicate_mask)[po.p]) {
        continue;
      }
      pairs.push_back(PackPair(colors_[po.p], colors_[po.o]));
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    sig.clear();
    sig.push_back(colors_[node]);
    for (uint64_t pair : pairs) {
      sig.push_back(UnpackHi(pair));
      sig.push_back(UnpackLo(pair));
    }
    if (cfg_.mediation != nullptr && (*cfg_.predicate_only)[node]) {
      sig.push_back(kMediationSeparator);
      pairs.clear();
      // MediationIndex reuses PredicateObject as a (subject, object) pair.
      for (const PredicateObject& so : cfg_.mediation->Mediated(node)) {
        pairs.push_back(PackPair(colors_[so.p], colors_[so.o]));
      }
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      for (uint64_t pair : pairs) {
        sig.push_back(UnpackHi(pair));
        sig.push_back(UnpackLo(pair));
      }
    }
  }

  // Finds or creates the group holding the signature sig[0..len); verifies
  // content against the round arena on hash hits (the collision policy).
  uint32_t ConsGroup(const uint32_t* sig, uint32_t len, uint64_t hash,
                     size_t table_mask) {
    size_t slot = hash & table_mask;
    while (true) {
      uint32_t gi = table_[slot];
      if (gi == kNoGroup) {
        gi = static_cast<uint32_t>(groups_.size());
        Group grp;
        grp.hash = hash;
        grp.offset = round_arena_.size();
        grp.len = len;
        grp.cls = sig[0];
        grp.count = 1;
        grp.new_color = grp.cls;
        if (class_head_[grp.cls] == kNoGroup) touched_.push_back(grp.cls);
        grp.next_in_class = class_head_[grp.cls];
        class_head_[grp.cls] = gi;
        round_arena_.insert(round_arena_.end(), sig, sig + len);
        groups_.push_back(grp);
        table_[slot] = gi;
        return gi;
      }
      Group& grp = groups_[gi];
      if (grp.hash == hash && grp.len == len &&
          std::equal(sig, sig + len, round_arena_.begin() + grp.offset)) {
        ++grp.count;
        return gi;
      }
      slot = (slot + 1) & table_mask;
    }
  }

  void SignDirtyNodes() {
    size_t cap = 16;
    while (cap < dirty_.size() * 2) cap <<= 1;
    table_.assign(cap, kNoGroup);
    groups_.clear();
    round_arena_.clear();
    group_of_.resize(dirty_.size());
    if (cfg_.threads > 1 && dirty_.size() >= cfg_.parallel_min_round) {
      SignDirtyNodesParallel(cap - 1);
      return;
    }
    for (size_t i = 0; i < dirty_.size(); ++i) {
      const NodeId node = dirty_[i];
      BuildSignatureInto(node, pairs_, sig_buf_);
      signature_bytes_ += sig_buf_.size() * sizeof(uint32_t);
      const uint64_t hash = HashU32Span(sig_buf_.data(), sig_buf_.size());
      group_of_[i] =
          ConsGroup(sig_buf_.data(), static_cast<uint32_t>(sig_buf_.size()),
                    hash, cap - 1);
      ++class_dirty_[node_color(i)];
    }
  }

  // Parallel signing: contiguous worklist chunks are signed concurrently
  // into per-worker slabs (pure reads of shared state, private writes),
  // then a single thread conses the prebuilt signatures in ascending
  // worklist order — exactly the sequential consing order, so group ids,
  // fresh-color allocation order, and hence the final partition are
  // bit-identical to a 1-thread run regardless of scheduling.
  void SignDirtyNodesParallel(size_t table_mask) {
    const size_t workers =
        std::min(cfg_.threads, dirty_.size());  // never an empty chunk
    slabs_.resize(workers);
    const size_t per = (dirty_.size() + workers - 1) / workers;
    // One slab per chunk, same contiguous chunking as the old per-call
    // std::thread spawn — only the execution moved to the shared pool, so
    // short incremental rounds stop paying a thread create/join each.
    ThreadPool::Instance().Run(workers, workers, [this, per](size_t w) {
      WorkerSlab& slab = slabs_[w];
      slab.words.clear();
      slab.lens.clear();
      slab.hashes.clear();
      slab.signature_bytes = 0;
      const size_t begin = std::min(dirty_.size(), w * per);
      const size_t end = std::min(dirty_.size(), begin + per);
      for (size_t i = begin; i < end; ++i) {
        BuildSignatureInto(dirty_[i], slab.pair_scratch, slab.sig_scratch);
        slab.signature_bytes += slab.sig_scratch.size() * sizeof(uint32_t);
        slab.hashes.push_back(
            HashU32Span(slab.sig_scratch.data(), slab.sig_scratch.size()));
        slab.lens.push_back(static_cast<uint32_t>(slab.sig_scratch.size()));
        slab.words.insert(slab.words.end(), slab.sig_scratch.begin(),
                          slab.sig_scratch.end());
      }
    });
    size_t i = 0;
    for (size_t w = 0; w < workers; ++w) {
      const WorkerSlab& slab = slabs_[w];
      size_t offset = 0;
      for (size_t k = 0; k < slab.lens.size(); ++k, ++i) {
        group_of_[i] = ConsGroup(slab.words.data() + offset, slab.lens[k],
                                 slab.hashes[k], table_mask);
        offset += slab.lens[k];
        ++class_dirty_[node_color(i)];
      }
      signature_bytes_ += slab.signature_bytes;
    }
    assert(i == dirty_.size());
  }

  ColorId node_color(size_t dirty_index) const {
    return colors_[dirty_[dirty_index]];
  }

  // Copies a group's signature into the persistent store arena, with the
  // own-color word rewritten to `own`: members of a fresh class carry the
  // fresh color from now on, and a later (possibly spurious) re-signing
  // must compare against [current color, pairs], not the split-off source.
  StoredSig Store(const Group& grp, ColorId own) {
    StoredSig s;
    s.hash = 0;  // filled below
    s.offset = store_.size();
    s.len = grp.len;
    store_.push_back(own);
    store_.insert(store_.end(), round_arena_.begin() + grp.offset + 1,
                  round_arena_.begin() + grp.offset + grp.len);
    s.hash = HashU32Span(store_.data() + s.offset, s.len);
    return s;
  }

  bool MatchesStored(const Group& grp, const StoredSig& stored) const {
    return stored.len != kNoStoredSig && grp.hash == stored.hash &&
           grp.len == stored.len &&
           std::equal(round_arena_.begin() + grp.offset,
                      round_arena_.begin() + grp.offset + grp.len,
                      store_.begin() + static_cast<ptrdiff_t>(stored.offset));
  }

  void AssignColors() {
    for (ColorId cls : touched_) {
      const uint32_t dirty_count = class_dirty_[cls];
      const uint32_t size = class_size_[cls];
      uint32_t match_gi = kNoGroup;
      uint32_t largest_gi = kNoGroup;
      for (uint32_t gi = class_head_[cls]; gi != kNoGroup;
           gi = groups_[gi].next_in_class) {
        if (MatchesStored(groups_[gi], class_sig_[cls])) match_gi = gi;
        if (largest_gi == kNoGroup ||
            groups_[gi].count > groups_[largest_gi].count) {
          largest_gi = gi;
        }
      }
      uint32_t keep_gi = match_gi;
      if (keep_gi == kNoGroup && dirty_count == size) keep_gi = largest_gi;
      for (uint32_t gi = class_head_[cls]; gi != kNoGroup;
           gi = groups_[gi].next_in_class) {
        Group& grp = groups_[gi];
        if (gi == keep_gi) {
          grp.new_color = cls;
          if (gi != match_gi) class_sig_[cls] = Store(grp, cls);
        } else {
          grp.new_color = next_color_++;
          class_sig_.push_back(Store(grp, grp.new_color));
          class_size_.push_back(grp.count);
        }
      }
      class_size_[cls] =
          size - dirty_count +
          (keep_gi != kNoGroup ? groups_[keep_gi].count : 0);
      class_head_[cls] = kNoGroup;
      class_dirty_[cls] = 0;
    }
    touched_.clear();
    class_head_.resize(next_color_, kNoGroup);
    class_dirty_.resize(next_color_, 0);
  }

  void InstallAndPropagate() {
    for (NodeId node : dirty_) dirty_flag_[node] = 0;
    next_dirty_.clear();
    changed_.clear();
    for (size_t i = 0; i < dirty_.size(); ++i) {
      const NodeId node = dirty_[i];
      const ColorId next = groups_[group_of_[i]].new_color;
      if (next != colors_[node]) {
        colors_[node] = next;
        changed_.push_back(node);
      }
    }
    for (NodeId moved : changed_) {
      for (NodeId subject : g_.In(moved)) {
        if (in_x_[subject] && !dirty_flag_[subject]) {
          dirty_flag_[subject] = 1;
          next_dirty_.push_back(subject);
        }
      }
      if (cfg_.mediation != nullptr) {
        // A mediation signature mentions the colors of the subjects and
        // objects of the mediated triples; only predicate-only nodes carry
        // one, so the dirtiness is exact after the flag filter.
        for (NodeId pred : cfg_.mediation->MediatingPredicates(moved)) {
          if (in_x_[pred] && (*cfg_.predicate_only)[pred] &&
              !dirty_flag_[pred]) {
            dirty_flag_[pred] = 1;
            next_dirty_.push_back(pred);
          }
        }
      }
    }
    dirty_.swap(next_dirty_);
  }

  const Graph& g_;
  const WorklistConfig cfg_;

  std::vector<ColorId> colors_;
  ColorId next_color_;
  std::vector<uint32_t> class_size_;   // members per color
  std::vector<StoredSig> class_sig_;   // anchor signature per color
  std::vector<uint32_t> store_;        // persistent anchor arena

  std::vector<uint8_t> in_x_;
  std::vector<uint8_t> dirty_flag_;
  std::vector<NodeId> dirty_;
  std::vector<NodeId> next_dirty_;
  std::vector<NodeId> changed_;

  // Per-round consing state (capacity reused across rounds).
  std::vector<uint32_t> table_;        // open addressing: group index
  std::vector<Group> groups_;
  std::vector<uint32_t> round_arena_;
  std::vector<uint32_t> group_of_;     // parallel to dirty_
  std::vector<ColorId> touched_;       // classes with dirty members
  std::vector<uint32_t> class_head_;   // per-color group chain head
  std::vector<uint32_t> class_dirty_;  // per-color dirty member count
  std::vector<WorkerSlab> slabs_;      // per-worker signing output

  // Per-node scratch for the sequential path.
  std::vector<uint64_t> pairs_;
  std::vector<uint32_t> sig_buf_;

  size_t signature_bytes_ = 0;
};

/// Runs the worklist fixpoint to stabilization and returns the refined
/// partition. `x` entries must be valid node ids of `g`.
Partition RunWorklistFixpoint(const TripleGraph& g, const Partition& initial,
                              const std::vector<NodeId>& x,
                              const WorklistConfig& config,
                              RefinementStats* stats);

}  // namespace internal
}  // namespace rdfalign

#endif  // RDFALIGN_CORE_WORKLIST_ENGINE_H_
