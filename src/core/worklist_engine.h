// Internal: the incremental dirty-node worklist engine behind every
// refinement fixpoint (plain, keyed, and mediation-aware contextual).
//
// The engine generalizes the PR-1 worklist algorithm along two axes:
//
//  * **Signature shape.** A node's signature is [own color, out-pairs...]
//    as before, optionally restricted by a predicate mask (keyed
//    refinement) and optionally extended — for predicate-only URIs — by a
//    mediation section [separator, (λ(s), λ(o)) pairs...] over the triples
//    the node mediates (contextual refinement, §5.1 of the paper).
//    Dirtiness follows the signature shape: a changed node dirties its
//    in-neighbors (TripleGraph::In) and, when mediation is configured, the
//    predicate-only nodes mediating it (MediationIndex::
//    MediatingPredicates).
//
//  * **Parallel signing.** Rounds at least `parallel_min_round` nodes wide
//    are signed by `threads` workers into thread-local arenas; a
//    deterministic sequential merge then conses the prebuilt signatures in
//    worklist order — the exact order the sequential path uses — so the
//    resulting partition is bit-identical for every thread count. Signing
//    only reads shared state (colors, graph, indexes); all writes happen in
//    the merge. See docs/refinement.md.
//
// This header is shared by core/refinement.cc and core/context.cc; it is
// not part of the public API surface.

#ifndef RDFALIGN_CORE_WORKLIST_ENGINE_H_
#define RDFALIGN_CORE_WORKLIST_ENGINE_H_

#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "core/refinement.h"
#include "rdf/graph.h"

namespace rdfalign {

class MediationIndex;  // core/context.h

namespace internal {

/// Separates the out-pair section of a signature from the mediation-pair
/// section. Colors are dense and monotonically allocated, so they can never
/// reach this value on any realistic graph; the legacy contextual step
/// relies on the same property.
inline constexpr uint32_t kMediationSeparator = 0xfffffffe;

/// What the worklist engine signs and how.
struct WorklistConfig {
  /// Keyed refinement: only out-pairs whose predicate is marked enter the
  /// signature. Null = all pairs.
  const std::vector<uint8_t>* predicate_mask = nullptr;
  /// Contextual refinement: both non-null or both null. Nodes flagged in
  /// `predicate_only` carry a mediation signature drawn from `mediation`,
  /// and dirtiness additionally follows MediatingPredicates().
  const MediationIndex* mediation = nullptr;
  const std::vector<uint8_t>* predicate_only = nullptr;
  /// Resolved signing-worker count (>= 1); see ResolveThreads().
  size_t threads = 1;
  /// Minimum worklist width before the worker pool engages.
  size_t parallel_min_round = 4096;
};

/// Maps RefinementOptions::threads to a concrete worker count: 0 becomes
/// one worker per hardware thread, anything else is used as given (min 1).
size_t ResolveThreads(size_t requested);

/// Runs the worklist fixpoint to stabilization and returns the refined
/// partition. `x` entries must be valid node ids of `g`.
Partition RunWorklistFixpoint(const TripleGraph& g, const Partition& initial,
                              const std::vector<NodeId>& x,
                              const WorklistConfig& config,
                              RefinementStats* stats);

}  // namespace internal
}  // namespace rdfalign

#endif  // RDFALIGN_CORE_WORKLIST_ENGINE_H_
