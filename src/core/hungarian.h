// Hungarian algorithm (Kuhn–Munkres) for the assignment problem [Kuhn 2005],
// used by the σEdit graph-edit-distance propagation (§4.2): the optimal
// matching among the outgoing edges of two nodes.

#ifndef RDFALIGN_CORE_HUNGARIAN_H_
#define RDFALIGN_CORE_HUNGARIAN_H_

#include <cstddef>
#include <vector>

namespace rdfalign {

/// The solution of an assignment problem.
struct AssignmentResult {
  /// row_of_col[j] = row assigned to column j.
  std::vector<size_t> row_of_col;
  /// col_of_row[i] = column assigned to row i.
  std::vector<size_t> col_of_row;
  /// Total cost of the optimal assignment.
  double cost = 0.0;
};

/// Solves the n×n minimum-cost assignment problem over a dense row-major
/// cost matrix in O(n³). Costs may be any finite doubles.
AssignmentResult SolveAssignment(const std::vector<double>& cost, size_t n);

/// Rectangular convenience: pads a rows×cols matrix to square with
/// `pad_cost` entries (the cost of leaving a row/column unmatched) and
/// solves. Assignments to padded slots appear as indices >= rows/cols.
AssignmentResult SolveRectangularAssignment(const std::vector<double>& cost,
                                            size_t rows, size_t cols,
                                            double pad_cost);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_HUNGARIAN_H_
