#include "core/deblank.h"

namespace rdfalign {

Partition DeblankPartition(const CombinedGraph& cg, RefinementStats* stats,
                           const RefinementOptions& options) {
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> blanks = g.NodesOfKind(TermKind::kBlank);
  return BisimRefineFixpoint(g, LabelPartition(g), blanks, stats, options);
}

}  // namespace rdfalign
