#include "core/deblank.h"

namespace rdfalign {

Partition DeblankPartition(const CombinedGraph& cg, RefinementStats* stats) {
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> blanks = g.NodesOfKind(TermKind::kBlank);
  return BisimRefineFixpoint(g, LabelPartition(g), blanks, stats);
}

}  // namespace rdfalign
