#include "core/refinement.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "core/worklist_engine.h"
#include "util/hash.h"

namespace rdfalign {

namespace {

// Signature tags keep recolored nodes in a different key space from kept
// nodes: recolor_λ(n) is a structured pair and can never equal a plain kept
// color (see §3.2 eq. 1-2).
constexpr uint32_t kKeepTag = 0;
constexpr uint32_t kRecolorTag = 1;

using SignatureMap =
    std::unordered_map<std::vector<uint32_t>, ColorId, U32VectorHash>;

ColorId ConsSignature(SignatureMap& cons, std::vector<uint32_t>&& sig) {
  auto [it, inserted] =
      cons.try_emplace(std::move(sig), static_cast<ColorId>(cons.size()));
  return it->second;
}

// Shared fixpoint driver: `mask == nullptr` selects plain refinement. The
// incremental worklist engine lives in core/worklist_engine.cc (it is
// shared with the contextual refinement of core/context.cc).
Partition RefineFixpointImpl(const TripleGraph& g, Partition initial,
                             const std::vector<NodeId>& x,
                             const std::vector<uint8_t>* mask,
                             const RefinementOptions& options,
                             RefinementStats* stats) {
  RefinementStats local;
  local.initial_classes = initial.NumColors();
  Partition result;
  if (options.incremental) {
    internal::WorklistConfig config;
    config.predicate_mask = mask;
    config.threads = options.threads;
    config.parallel_min_round = options.parallel_min_round;
    result = internal::RunWorklistFixpoint(g, initial, x, config, &local);
    assert(Partition::IsFinerOrEqual(result, initial));
  } else {
    Partition current = std::move(initial);
    // A step only splits classes (the old color is part of the signature),
    // so n steps suffice; the loop stops at the first step that splits
    // nothing.
    const size_t hard_cap = g.NumNodes() + 2;
    for (size_t iter = 0; iter < hard_cap; ++iter) {
      Partition next = mask == nullptr
                           ? BisimRefineStep(g, current, x)
                           : BisimRefineStepKeyed(g, current, x, *mask);
      ++local.iterations;
      local.dirty_per_iteration.push_back(x.size());
      assert(Partition::IsFinerOrEqual(next, current));
      if (next.NumColors() == current.NumColors()) {
        // Equal class counts between a partition and its refinement imply
        // equivalence (Definition 4's stopping rule).
        current = std::move(next);
        break;
      }
      current = std::move(next);
    }
    result = std::move(current);
  }
  local.final_classes = result.NumColors();
  if (stats != nullptr) *stats = std::move(local);
  return result;
}

}  // namespace

Partition BisimRefineStep(const TripleGraph& g, const Partition& p,
                          const std::vector<NodeId>& x) {
  const size_t n = g.NumNodes();
  assert(p.NumNodes() == n);

  std::vector<uint8_t> in_x(n, 0);
  for (NodeId node : x) in_x[node] = 1;

  SignatureMap cons;
  cons.reserve(n);
  std::vector<ColorId> next(n);

  std::vector<uint32_t> sig;
  std::vector<uint64_t> pairs;
  for (NodeId node = 0; node < n; ++node) {
    sig.clear();
    if (!in_x[node]) {
      sig.push_back(kKeepTag);
      sig.push_back(p.ColorOf(node));
    } else {
      // Gather the out-neighborhood color pairs as a *set* (eq. 1).
      pairs.clear();
      for (const PredicateObject& po : g.Out(node)) {
        pairs.push_back(PackPair(p.ColorOf(po.p), p.ColorOf(po.o)));
      }
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      sig.push_back(kRecolorTag);
      sig.push_back(p.ColorOf(node));
      for (uint64_t pair : pairs) {
        sig.push_back(UnpackHi(pair));
        sig.push_back(UnpackLo(pair));
      }
    }
    next[node] = ConsSignature(cons, std::vector<uint32_t>(sig));
  }
  return Partition::FromColors(std::move(next));
}

Partition BisimRefineFixpoint(const TripleGraph& g, Partition initial,
                              const std::vector<NodeId>& x,
                              RefinementStats* stats,
                              const RefinementOptions& options) {
  return RefineFixpointImpl(g, std::move(initial), x, nullptr, options,
                            stats);
}

Partition BlankColors(const Partition& p, const std::vector<NodeId>& x) {
  std::vector<ColorId> colors(p.colors());
  // A color id beyond every existing color acts as the fresh blank color ⊥b.
  const ColorId blank = static_cast<ColorId>(p.NumColors());
  for (NodeId node : x) colors[node] = blank;
  return Partition::FromColors(std::move(colors));
}

std::vector<uint8_t> BuildPredicateMask(
    const TripleGraph& g, const std::vector<std::string>& predicate_uris) {
  std::vector<uint8_t> mask(g.NumNodes(), 0);
  for (const std::string& uri : predicate_uris) {
    // The combined graph can hold one node per side for the same URI; mark
    // every node carrying the label.
    LexId lex = g.dict().Find(uri);
    if (lex == kInvalidLex) continue;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsUri(n) && g.LexicalId(n) == lex) mask[n] = 1;
    }
  }
  return mask;
}

Partition BisimRefineStepKeyed(const TripleGraph& g, const Partition& p,
                               const std::vector<NodeId>& x,
                               const std::vector<uint8_t>& predicate_mask) {
  const size_t n = g.NumNodes();
  assert(p.NumNodes() == n);
  std::vector<uint8_t> in_x(n, 0);
  for (NodeId node : x) in_x[node] = 1;

  SignatureMap cons;
  cons.reserve(n);
  std::vector<ColorId> next(n);
  std::vector<uint32_t> sig;
  std::vector<uint64_t> pairs;
  for (NodeId node = 0; node < n; ++node) {
    sig.clear();
    if (!in_x[node]) {
      sig.push_back(kKeepTag);
      sig.push_back(p.ColorOf(node));
    } else {
      pairs.clear();
      for (const PredicateObject& po : g.Out(node)) {
        if (!predicate_mask[po.p]) continue;  // non-key attribute: ignored
        pairs.push_back(PackPair(p.ColorOf(po.p), p.ColorOf(po.o)));
      }
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      sig.push_back(kRecolorTag);
      sig.push_back(p.ColorOf(node));
      for (uint64_t pair : pairs) {
        sig.push_back(UnpackHi(pair));
        sig.push_back(UnpackLo(pair));
      }
    }
    next[node] = ConsSignature(cons, std::vector<uint32_t>(sig));
  }
  return Partition::FromColors(std::move(next));
}

Partition BisimRefineFixpointKeyed(const TripleGraph& g, Partition initial,
                                   const std::vector<NodeId>& x,
                                   const std::vector<uint8_t>& predicate_mask,
                                   RefinementStats* stats,
                                   const RefinementOptions& options) {
  return RefineFixpointImpl(g, std::move(initial), x, &predicate_mask,
                            options, stats);
}

}  // namespace rdfalign
