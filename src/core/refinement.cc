#include "core/refinement.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/hash.h"

namespace rdfalign {

namespace {

// Signature tags keep recolored nodes in a different key space from kept
// nodes: recolor_λ(n) is a structured pair and can never equal a plain kept
// color (see §3.2 eq. 1-2).
constexpr uint32_t kKeepTag = 0;
constexpr uint32_t kRecolorTag = 1;

using SignatureMap =
    std::unordered_map<std::vector<uint32_t>, ColorId, U32VectorHash>;

ColorId ConsSignature(SignatureMap& cons, std::vector<uint32_t>&& sig) {
  auto [it, inserted] =
      cons.try_emplace(std::move(sig), static_cast<ColorId>(cons.size()));
  return it->second;
}

// ---------------------------------------------------------------------------
// Incremental worklist engine.
//
// Colors live in a monotonically growing (non-dense) id space; ids are never
// reused, so a color identifies one class for the whole run. Each round
// re-signs only the dirty nodes — initially all of X, afterwards the nodes
// with an out-neighbor whose color changed in the previous round (found via
// TripleGraph::In). Dirty nodes of one class are grouped by signature
// through an allocation-free cons table: the signature is built in a reused
// scratch buffer, keyed by its 64-bit hash, and verified word-for-word
// against the round arena on hash hits.
//
// Split rule for a class c with d dirty members out of s total:
//   * a group whose signature equals the class's stored anchor signature
//     keeps color c (its members did not really change — this absorbs
//     over-approximate dirtiness, e.g. keyed refinement propagating along
//     non-key edges);
//   * otherwise, if d == s, the largest group keeps color c (pure
//     relabeling; smaller groups split off) and re-anchors the stored
//     signature;
//   * every other group receives a fresh color and its members are marked
//     changed, which makes their in-neighbors dirty next round.
// Nodes that keep their color are not marked changed, so references to them
// in signatures of clean nodes stay valid. See docs/refinement.md for the
// correctness argument.

constexpr uint32_t kNoGroup = 0xffffffffu;
constexpr uint32_t kNoStoredSig = 0xffffffffu;

// Anchor signature of a class, in the persistent store arena.
struct StoredSig {
  uint64_t hash = 0;
  size_t offset = 0;
  uint32_t len = kNoStoredSig;  // kNoStoredSig: class predates any consing
};

// One distinct signature observed among a class's dirty members this round.
struct Group {
  uint64_t hash;
  size_t offset;  // into the round arena
  uint32_t len;
  ColorId cls;      // class being split (== first signature word)
  uint32_t count;   // dirty members carrying this signature
  uint32_t next_in_class;
  ColorId new_color;
};

class WorklistEngine {
 public:
  WorklistEngine(const TripleGraph& g, const Partition& initial,
                 const std::vector<NodeId>& x,
                 const std::vector<uint8_t>* predicate_mask)
      : g_(g),
        mask_(predicate_mask),
        colors_(initial.colors()),
        next_color_(static_cast<ColorId>(initial.NumColors())) {
    const size_t n = g.NumNodes();
    class_size_.assign(next_color_, 0);
    for (ColorId c : colors_) ++class_size_[c];
    class_sig_.assign(next_color_, StoredSig{});
    class_head_.assign(next_color_, kNoGroup);
    class_dirty_.assign(next_color_, 0);
    in_x_.assign(n, 0);
    dirty_flag_.assign(n, 0);
    dirty_.reserve(x.size());
    for (NodeId node : x) {
      in_x_[node] = 1;
      if (!dirty_flag_[node]) {
        dirty_flag_[node] = 1;
        dirty_.push_back(node);
      }
    }
  }

  Partition Run(RefinementStats* stats) {
    size_t iterations = 0;
    const size_t hard_cap = g_.NumNodes() + 2;
    while (!dirty_.empty() && iterations < hard_cap) {
      ++iterations;
      if (stats != nullptr) {
        stats->dirty_per_iteration.push_back(dirty_.size());
      }
      SignDirtyNodes();
      AssignColors();
      InstallAndPropagate();
    }
    if (stats != nullptr) {
      // An empty X still counts as one (vacuous) stabilizing step, matching
      // the legacy engine's accounting.
      stats->iterations = iterations == 0 ? 1 : iterations;
      stats->signature_bytes = signature_bytes_;
    }
    return Partition::FromColors(std::move(colors_));
  }

 private:
  // Builds the signature of `node` w.r.t. the current colors into sig_buf_:
  // [own color, (hi,lo) of each distinct out-pair, ascending].
  void BuildSignature(NodeId node) {
    pairs_.clear();
    for (const PredicateObject& po : g_.Out(node)) {
      if (mask_ != nullptr && !(*mask_)[po.p]) continue;
      pairs_.push_back(PackPair(colors_[po.p], colors_[po.o]));
    }
    std::sort(pairs_.begin(), pairs_.end());
    pairs_.erase(std::unique(pairs_.begin(), pairs_.end()), pairs_.end());
    sig_buf_.clear();
    sig_buf_.push_back(colors_[node]);
    for (uint64_t pair : pairs_) {
      sig_buf_.push_back(UnpackHi(pair));
      sig_buf_.push_back(UnpackLo(pair));
    }
    signature_bytes_ += sig_buf_.size() * sizeof(uint32_t);
  }

  // Finds or creates the group holding sig_buf_; verifies content against
  // the round arena on hash hits (the collision policy).
  uint32_t ConsGroup(uint64_t hash, size_t table_mask) {
    size_t slot = hash & table_mask;
    while (true) {
      uint32_t gi = table_[slot];
      if (gi == kNoGroup) {
        gi = static_cast<uint32_t>(groups_.size());
        Group grp;
        grp.hash = hash;
        grp.offset = round_arena_.size();
        grp.len = static_cast<uint32_t>(sig_buf_.size());
        grp.cls = sig_buf_[0];
        grp.count = 1;
        grp.new_color = grp.cls;
        if (class_head_[grp.cls] == kNoGroup) touched_.push_back(grp.cls);
        grp.next_in_class = class_head_[grp.cls];
        class_head_[grp.cls] = gi;
        round_arena_.insert(round_arena_.end(), sig_buf_.begin(),
                            sig_buf_.end());
        groups_.push_back(grp);
        table_[slot] = gi;
        return gi;
      }
      Group& grp = groups_[gi];
      if (grp.hash == hash && grp.len == sig_buf_.size() &&
          std::equal(sig_buf_.begin(), sig_buf_.end(),
                     round_arena_.begin() + grp.offset)) {
        ++grp.count;
        return gi;
      }
      slot = (slot + 1) & table_mask;
    }
  }

  void SignDirtyNodes() {
    size_t cap = 16;
    while (cap < dirty_.size() * 2) cap <<= 1;
    table_.assign(cap, kNoGroup);
    groups_.clear();
    round_arena_.clear();
    group_of_.resize(dirty_.size());
    for (size_t i = 0; i < dirty_.size(); ++i) {
      const NodeId node = dirty_[i];
      BuildSignature(node);
      const uint64_t hash = HashU32Span(sig_buf_.data(), sig_buf_.size());
      group_of_[i] = ConsGroup(hash, cap - 1);
      ++class_dirty_[colors_[node]];
    }
  }

  // Copies a group's signature into the persistent store arena, with the
  // own-color word rewritten to `own`: members of a fresh class carry the
  // fresh color from now on, and a later (possibly spurious) re-signing
  // must compare against [current color, pairs], not the split-off source.
  StoredSig Store(const Group& grp, ColorId own) {
    StoredSig s;
    s.hash = 0;  // filled below
    s.offset = store_.size();
    s.len = grp.len;
    store_.push_back(own);
    store_.insert(store_.end(), round_arena_.begin() + grp.offset + 1,
                  round_arena_.begin() + grp.offset + grp.len);
    s.hash = HashU32Span(store_.data() + s.offset, s.len);
    return s;
  }

  bool MatchesStored(const Group& grp, const StoredSig& stored) const {
    return stored.len != kNoStoredSig && grp.hash == stored.hash &&
           grp.len == stored.len &&
           std::equal(round_arena_.begin() + grp.offset,
                      round_arena_.begin() + grp.offset + grp.len,
                      store_.begin() + static_cast<ptrdiff_t>(stored.offset));
  }

  void AssignColors() {
    for (ColorId cls : touched_) {
      const uint32_t dirty_count = class_dirty_[cls];
      const uint32_t size = class_size_[cls];
      uint32_t match_gi = kNoGroup;
      uint32_t largest_gi = kNoGroup;
      for (uint32_t gi = class_head_[cls]; gi != kNoGroup;
           gi = groups_[gi].next_in_class) {
        if (MatchesStored(groups_[gi], class_sig_[cls])) match_gi = gi;
        if (largest_gi == kNoGroup ||
            groups_[gi].count > groups_[largest_gi].count) {
          largest_gi = gi;
        }
      }
      uint32_t keep_gi = match_gi;
      if (keep_gi == kNoGroup && dirty_count == size) keep_gi = largest_gi;
      for (uint32_t gi = class_head_[cls]; gi != kNoGroup;
           gi = groups_[gi].next_in_class) {
        Group& grp = groups_[gi];
        if (gi == keep_gi) {
          grp.new_color = cls;
          if (gi != match_gi) class_sig_[cls] = Store(grp, cls);
        } else {
          grp.new_color = next_color_++;
          class_sig_.push_back(Store(grp, grp.new_color));
          class_size_.push_back(grp.count);
        }
      }
      class_size_[cls] =
          size - dirty_count +
          (keep_gi != kNoGroup ? groups_[keep_gi].count : 0);
      class_head_[cls] = kNoGroup;
      class_dirty_[cls] = 0;
    }
    touched_.clear();
    class_head_.resize(next_color_, kNoGroup);
    class_dirty_.resize(next_color_, 0);
  }

  void InstallAndPropagate() {
    for (NodeId node : dirty_) dirty_flag_[node] = 0;
    next_dirty_.clear();
    changed_.clear();
    for (size_t i = 0; i < dirty_.size(); ++i) {
      const NodeId node = dirty_[i];
      const ColorId next = groups_[group_of_[i]].new_color;
      if (next != colors_[node]) {
        colors_[node] = next;
        changed_.push_back(node);
      }
    }
    for (NodeId moved : changed_) {
      for (NodeId subject : g_.In(moved)) {
        if (in_x_[subject] && !dirty_flag_[subject]) {
          dirty_flag_[subject] = 1;
          next_dirty_.push_back(subject);
        }
      }
    }
    dirty_.swap(next_dirty_);
  }

  const TripleGraph& g_;
  const std::vector<uint8_t>* mask_;

  std::vector<ColorId> colors_;
  ColorId next_color_;
  std::vector<uint32_t> class_size_;   // members per color
  std::vector<StoredSig> class_sig_;   // anchor signature per color
  std::vector<uint32_t> store_;        // persistent anchor arena

  std::vector<uint8_t> in_x_;
  std::vector<uint8_t> dirty_flag_;
  std::vector<NodeId> dirty_;
  std::vector<NodeId> next_dirty_;
  std::vector<NodeId> changed_;

  // Per-round consing state (capacity reused across rounds).
  std::vector<uint32_t> table_;        // open addressing: group index
  std::vector<Group> groups_;
  std::vector<uint32_t> round_arena_;
  std::vector<uint32_t> group_of_;     // parallel to dirty_
  std::vector<ColorId> touched_;       // classes with dirty members
  std::vector<uint32_t> class_head_;   // per-color group chain head
  std::vector<uint32_t> class_dirty_;  // per-color dirty member count

  // Per-node scratch (no allocation in steady state).
  std::vector<uint64_t> pairs_;
  std::vector<uint32_t> sig_buf_;

  size_t signature_bytes_ = 0;
};

// Shared fixpoint driver: `mask == nullptr` selects plain refinement.
Partition RefineFixpointImpl(const TripleGraph& g, Partition initial,
                             const std::vector<NodeId>& x,
                             const std::vector<uint8_t>* mask,
                             const RefinementOptions& options,
                             RefinementStats* stats) {
  RefinementStats local;
  local.initial_classes = initial.NumColors();
  Partition result;
  if (options.incremental) {
    WorklistEngine engine(g, initial, x, mask);
    result = engine.Run(&local);
    assert(Partition::IsFinerOrEqual(result, initial));
  } else {
    Partition current = std::move(initial);
    // A step only splits classes (the old color is part of the signature),
    // so n steps suffice; the loop stops at the first step that splits
    // nothing.
    const size_t hard_cap = g.NumNodes() + 2;
    for (size_t iter = 0; iter < hard_cap; ++iter) {
      Partition next = mask == nullptr
                           ? BisimRefineStep(g, current, x)
                           : BisimRefineStepKeyed(g, current, x, *mask);
      ++local.iterations;
      local.dirty_per_iteration.push_back(x.size());
      assert(Partition::IsFinerOrEqual(next, current));
      if (next.NumColors() == current.NumColors()) {
        // Equal class counts between a partition and its refinement imply
        // equivalence (Definition 4's stopping rule).
        current = std::move(next);
        break;
      }
      current = std::move(next);
    }
    result = std::move(current);
  }
  local.final_classes = result.NumColors();
  if (stats != nullptr) *stats = std::move(local);
  return result;
}

}  // namespace

Partition BisimRefineStep(const TripleGraph& g, const Partition& p,
                          const std::vector<NodeId>& x) {
  const size_t n = g.NumNodes();
  assert(p.NumNodes() == n);

  std::vector<uint8_t> in_x(n, 0);
  for (NodeId node : x) in_x[node] = 1;

  SignatureMap cons;
  cons.reserve(n);
  std::vector<ColorId> next(n);

  std::vector<uint32_t> sig;
  std::vector<uint64_t> pairs;
  for (NodeId node = 0; node < n; ++node) {
    sig.clear();
    if (!in_x[node]) {
      sig.push_back(kKeepTag);
      sig.push_back(p.ColorOf(node));
    } else {
      // Gather the out-neighborhood color pairs as a *set* (eq. 1).
      pairs.clear();
      for (const PredicateObject& po : g.Out(node)) {
        pairs.push_back(PackPair(p.ColorOf(po.p), p.ColorOf(po.o)));
      }
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      sig.push_back(kRecolorTag);
      sig.push_back(p.ColorOf(node));
      for (uint64_t pair : pairs) {
        sig.push_back(UnpackHi(pair));
        sig.push_back(UnpackLo(pair));
      }
    }
    next[node] = ConsSignature(cons, std::vector<uint32_t>(sig));
  }
  return Partition::FromColors(std::move(next));
}

Partition BisimRefineFixpoint(const TripleGraph& g, Partition initial,
                              const std::vector<NodeId>& x,
                              RefinementStats* stats,
                              const RefinementOptions& options) {
  return RefineFixpointImpl(g, std::move(initial), x, nullptr, options,
                            stats);
}

Partition BlankColors(const Partition& p, const std::vector<NodeId>& x) {
  std::vector<ColorId> colors(p.colors());
  // A color id beyond every existing color acts as the fresh blank color ⊥b.
  const ColorId blank = static_cast<ColorId>(p.NumColors());
  for (NodeId node : x) colors[node] = blank;
  return Partition::FromColors(std::move(colors));
}

std::vector<uint8_t> BuildPredicateMask(
    const TripleGraph& g, const std::vector<std::string>& predicate_uris) {
  std::vector<uint8_t> mask(g.NumNodes(), 0);
  for (const std::string& uri : predicate_uris) {
    // The combined graph can hold one node per side for the same URI; mark
    // every node carrying the label.
    LexId lex = g.dict().Find(uri);
    if (lex == kInvalidLex) continue;
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsUri(n) && g.LexicalId(n) == lex) mask[n] = 1;
    }
  }
  return mask;
}

Partition BisimRefineStepKeyed(const TripleGraph& g, const Partition& p,
                               const std::vector<NodeId>& x,
                               const std::vector<uint8_t>& predicate_mask) {
  const size_t n = g.NumNodes();
  assert(p.NumNodes() == n);
  std::vector<uint8_t> in_x(n, 0);
  for (NodeId node : x) in_x[node] = 1;

  SignatureMap cons;
  cons.reserve(n);
  std::vector<ColorId> next(n);
  std::vector<uint32_t> sig;
  std::vector<uint64_t> pairs;
  for (NodeId node = 0; node < n; ++node) {
    sig.clear();
    if (!in_x[node]) {
      sig.push_back(kKeepTag);
      sig.push_back(p.ColorOf(node));
    } else {
      pairs.clear();
      for (const PredicateObject& po : g.Out(node)) {
        if (!predicate_mask[po.p]) continue;  // non-key attribute: ignored
        pairs.push_back(PackPair(p.ColorOf(po.p), p.ColorOf(po.o)));
      }
      std::sort(pairs.begin(), pairs.end());
      pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
      sig.push_back(kRecolorTag);
      sig.push_back(p.ColorOf(node));
      for (uint64_t pair : pairs) {
        sig.push_back(UnpackHi(pair));
        sig.push_back(UnpackLo(pair));
      }
    }
    next[node] = ConsSignature(cons, std::vector<uint32_t>(sig));
  }
  return Partition::FromColors(std::move(next));
}

Partition BisimRefineFixpointKeyed(const TripleGraph& g, Partition initial,
                                   const std::vector<NodeId>& x,
                                   const std::vector<uint8_t>& predicate_mask,
                                   RefinementStats* stats,
                                   const RefinementOptions& options) {
  return RefineFixpointImpl(g, std::move(initial), x, &predicate_mask,
                            options, stats);
}

}  // namespace rdfalign
