#include "core/enrich.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

namespace rdfalign {

namespace {

/// Union-find over the (dense-compressed) nodes of H.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> rank_;
};

}  // namespace

WeightedPartition Enrich(const WeightedPartition& xi,
                         const BipartiteMatching& h) {
  WeightedPartition out = xi;
  if (h.Empty()) return out;

  // Compress the nodes mentioned in H into dense local ids.
  std::unordered_map<NodeId, size_t> local;
  std::vector<NodeId> nodes;
  auto local_id = [&](NodeId n) -> size_t {
    auto [it, inserted] = local.emplace(n, nodes.size());
    if (inserted) nodes.push_back(n);
    return it->second;
  };

  std::vector<std::vector<std::pair<size_t, double>>> adj;
  UnionFind uf(2 * h.edges.size());  // upper bound on distinct nodes
  for (const MatchEdge& e : h.edges) {
    size_t a = local_id(e.a);
    size_t b = local_id(e.b);
    if (adj.size() < nodes.size()) adj.resize(nodes.size());
    adj[a].emplace_back(b, e.distance);
    adj[b].emplace_back(a, e.distance);
    uf.Union(a, b);
  }
  adj.resize(nodes.size());

  // Sides: a node can only appear as `a` (source) or `b` (target) in H.
  const size_t k = nodes.size();
  std::vector<uint8_t> is_source(k, 0);
  for (const MatchEdge& e : h.edges) {
    is_source[local[e.a]] = 1;
  }

  // d*: single-source shortest paths under ⊕ from every node of H, then
  // w(src) = ½ max over *opposite-side* nodes of the same component. ⊕ is
  // monotone and H's components are tiny in practice (near one-to-one
  // matchings), so Dijkstra per node is cheap.
  std::vector<double> half_max(k, 0.0);
  {
    std::vector<double> dist(k);
    using Item = std::pair<double, size_t>;
    for (size_t src = 0; src < k; ++src) {
      std::fill(dist.begin(), dist.end(), 2.0);
      std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
      dist[src] = 0.0;
      pq.emplace(0.0, src);
      while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u]) continue;
        for (const auto& [v, w] : adj[u]) {
          double nd = OPlus(d, w);
          if (nd < dist[v]) {
            dist[v] = nd;
            pq.emplace(nd, v);
          }
        }
      }
      double max_d = 0.0;
      for (size_t v = 0; v < k; ++v) {
        if (dist[v] > 1.0 || v == src) continue;
        if (is_source[v] == is_source[src]) continue;  // same side
        max_d = std::max(max_d, dist[v]);
      }
      half_max[src] = 0.5 * max_d;
    }
  }

  // Fresh color per component; Partition::FromColors renumbers densely.
  std::vector<ColorId> colors(out.partition.colors());
  const ColorId base = static_cast<ColorId>(out.partition.NumColors());
  std::unordered_map<size_t, ColorId> component_color;
  for (size_t v = 0; v < k; ++v) {
    size_t root = uf.Find(v);
    auto [it, inserted] = component_color.emplace(
        root, base + static_cast<ColorId>(component_color.size()));
    colors[nodes[v]] = it->second;
    out.weight[nodes[v]] = half_max[v];
  }
  out.partition = Partition::FromColors(std::move(colors));
  return out;
}

}  // namespace rdfalign
