#include "core/enrich.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

namespace rdfalign {

namespace {

/// Union-find over the (dense-compressed) nodes of H.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> rank_;
};

}  // namespace

WeightedPartition Enrich(const WeightedPartition& xi,
                         const BipartiteMatching& h) {
  WeightedPartition out = xi;
  if (h.Empty()) return out;

  // Pass 1: compress the nodes mentioned in H into dense local ids (first
  // occurrence order: a then b per edge) and union the components.
  std::unordered_map<NodeId, size_t> local;
  local.reserve(2 * h.edges.size());
  std::vector<NodeId> nodes;
  nodes.reserve(2 * h.edges.size());
  auto local_id = [&](NodeId n) -> size_t {
    auto [it, inserted] = local.emplace(n, nodes.size());
    if (inserted) nodes.push_back(n);
    return it->second;
  };
  UnionFind uf(2 * h.edges.size());  // upper bound on distinct nodes
  for (const MatchEdge& e : h.edges) {
    uf.Union(local_id(e.a), local_id(e.b));
  }
  const size_t k = nodes.size();

  // Pass 2: adjacency as a CSR (degree count, prefix sum, fill) — exact
  // allocation, no per-node vectors growing one push_back at a time.
  std::vector<uint32_t> adj_offsets(k + 1, 0);
  for (const MatchEdge& e : h.edges) {
    ++adj_offsets[local[e.a] + 1];
    ++adj_offsets[local[e.b] + 1];
  }
  for (size_t i = 0; i < k; ++i) adj_offsets[i + 1] += adj_offsets[i];
  std::vector<std::pair<uint32_t, double>> adj(2 * h.edges.size());
  {
    std::vector<uint32_t> cursor(adj_offsets.begin(), adj_offsets.end() - 1);
    for (const MatchEdge& e : h.edges) {
      const size_t a = local[e.a];
      const size_t b = local[e.b];
      adj[cursor[a]++] = {static_cast<uint32_t>(b), e.distance};
      adj[cursor[b]++] = {static_cast<uint32_t>(a), e.distance};
    }
  }

  // Sides: a node can only appear as `a` (source) or `b` (target) in H.
  std::vector<uint8_t> is_source(k, 0);
  for (const MatchEdge& e : h.edges) {
    is_source[local[e.a]] = 1;
  }

  // d*: single-source shortest paths under ⊕ from every node of H, then
  // w(src) = ½ max over *opposite-side* nodes of the same component. ⊕ is
  // monotone and H's components are tiny in practice (near one-to-one
  // matchings), so Dijkstra per node is cheap. The dist buffer and the
  // queue's backing store are hoisted out of the source loop.
  std::vector<double> half_max(k, 0.0);
  {
    std::vector<double> dist(k);
    using Item = std::pair<double, size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    for (size_t src = 0; src < k; ++src) {
      std::fill(dist.begin(), dist.end(), 2.0);
      dist[src] = 0.0;
      pq.emplace(0.0, src);
      while (!pq.empty()) {
        auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u]) continue;
        for (uint32_t e = adj_offsets[u]; e < adj_offsets[u + 1]; ++e) {
          const auto& [v, w] = adj[e];
          double nd = OPlus(d, w);
          if (nd < dist[v]) {
            dist[v] = nd;
            pq.emplace(nd, v);
          }
        }
      }
      double max_d = 0.0;
      for (size_t v = 0; v < k; ++v) {
        if (dist[v] > 1.0 || v == src) continue;
        if (is_source[v] == is_source[src]) continue;  // same side
        max_d = std::max(max_d, dist[v]);
      }
      half_max[src] = 0.5 * max_d;
    }
  }

  // Fresh color per component; Partition::FromColors renumbers densely.
  std::vector<ColorId> colors(out.partition.colors());
  const ColorId base = static_cast<ColorId>(out.partition.NumColors());
  std::unordered_map<size_t, ColorId> component_color;
  component_color.reserve(k);
  for (size_t v = 0; v < k; ++v) {
    size_t root = uf.Find(v);
    auto [it, inserted] = component_color.emplace(
        root, base + static_cast<ColorId>(component_color.size()));
    colors[nodes[v]] = it->second;
    out.weight[nodes[v]] = half_max[v];
  }
  out.partition = Partition::FromColors(std::move(colors));
  return out;
}

}  // namespace rdfalign
