// Reference (pre-flat-rewrite) implementations of the alignment pipeline's
// glue: hash-map/tree-based Partition ops, edge/delta statistics, pair
// enumeration, and the unordered-map inverted index of Algorithm 1.
//
// These are the exact algorithms the dense-ID rewrite replaced. They are
// kept — like RefinementOptions{.incremental=false} keeps the full-rescan
// refinement engine — for two purposes:
//   * bench/pipeline_bench.cc A/Bs each phase against them and refuses to
//     emit BENCH_pipeline.json unless the outputs are identical;
//   * tests/pipeline_equivalence_test.cc uses them as oracles on random,
//     non-contiguous, and adversarial inputs.
// They are NOT on any production path; do not "optimize" them — their value
// is being a faithful copy of the old semantics.

#ifndef RDFALIGN_CORE_PIPELINE_LEGACY_H_
#define RDFALIGN_CORE_PIPELINE_LEGACY_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/alignment.h"
#include "core/delta.h"
#include "core/enrich.h"
#include "core/overlap.h"
#include "core/partition.h"
#include "rdf/merge.h"

namespace rdfalign::legacy {

/// Per-node characterizing sets as the pre-rewrite per-node heap vectors.
using VectorCharSets = std::vector<std::vector<uint64_t>>;

/// First-occurrence dense renumbering via std::unordered_map (the old
/// Partition::FromColors). Returns the renumbered vector and class count.
std::pair<std::vector<ColorId>, size_t> RenumberFirstOccurrence(
    std::vector<ColorId> colors);

/// Hash-map bijection check (the old Partition::Equivalent).
bool PartitionEquivalent(const Partition& a, const Partition& b);

/// Hash-map refinement check (the old Partition::IsFinerOrEqual).
bool PartitionIsFinerOrEqual(const Partition& fine, const Partition& coarse);

/// Per-class member vectors (the old Partition::Classes shape).
std::vector<std::vector<NodeId>> PartitionClassesVectors(const Partition& p);

/// The old hash-keyed label partitions.
Partition LabelPartition(const TripleGraph& g);
Partition TrivialPartition(const TripleGraph& g);

/// The old hash-set edge-alignment statistics.
EdgeAlignmentStats ComputeEdgeAlignment(const CombinedGraph& cg,
                                        const Partition& p);

/// The old hash-multiset delta.
RdfDelta ComputeDelta(const CombinedGraph& cg, const Partition& p);

/// The old unordered-map pair enumeration (class iteration order follows
/// the hash map, so pair order is unspecified; contents are what matter).
std::vector<std::pair<NodeId, NodeId>> EnumerateAlignedPairs(
    const CombinedGraph& cg, const Partition& p, size_t limit = SIZE_MAX);

/// The old std::set/std::multimap crossover check.
bool HasCrossoverProperty(const std::vector<std::pair<NodeId, NodeId>>& pairs);

/// Algorithm 1 with the old unordered_map<uint64_t, vector<uint32_t>>
/// inverted index over per-node heap vectors. Deterministic: produces the
/// same edge list and counter values as the CSR rewrite.
BipartiteMatching OverlapMatch(
    const std::vector<NodeId>& a_nodes, const std::vector<NodeId>& b_nodes,
    const VectorCharSets& a_char, const VectorCharSets& b_char, double theta,
    const std::function<double(size_t, size_t)>& sigma,
    const OverlapMatchOptions& options = {},
    OverlapMatchStats* stats = nullptr);

}  // namespace rdfalign::legacy

#endif  // RDFALIGN_CORE_PIPELINE_LEGACY_H_
