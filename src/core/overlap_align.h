// Overlap alignment (§4.7, Algorithm 2): the scalable approximation of the
// σEdit alignment.
//
// Round 0 matches unaligned *literals* with the word-set characterization
// (`split`) verified by normalized string edit distance. Each subsequent
// round enriches the weighted partition with the discovered pairs,
// propagates weights (§4.5), and matches the remaining unaligned
// *non-literal* nodes characterized by the colors of their outgoing edges
// (out-color_ξ) and verified by σNL — the rank-coupled matching that
// realizes the optimal same-color assignment without running the Hungarian
// algorithm. Rounds continue until no new pair is discovered.

#ifndef RDFALIGN_CORE_OVERLAP_ALIGN_H_
#define RDFALIGN_CORE_OVERLAP_ALIGN_H_

#include <vector>

#include "core/overlap.h"
#include "core/partition.h"
#include "core/propagate.h"
#include "core/weighted_partition.h"
#include "rdf/merge.h"

namespace rdfalign {

/// Tuning of the overlap alignment.
struct OverlapAlignOptions {
  /// Similarity threshold θ (Fig. 15 sweeps this; 0.65 maximizes exact
  /// matches in the paper's GtoPdb study).
  double theta = 0.65;
  /// Weight-propagation stabilization.
  PropagateOptions propagate;
  /// Safety cap on enrichment rounds.
  size_t max_rounds = 100;
  /// Candidate-generation variant (see overlap.h).
  OverlapMatchOptions match;
  /// Worker threads for the postings sorts, candidate probing, and class
  /// side scans (Aligner wires RefinementOptions::threads in here). Output
  /// is bit-identical for any value; 1 keeps every phase on this thread.
  size_t threads = 1;
};

/// Outcome of Algorithm 2.
struct OverlapAlignResult {
  WeightedPartition xi;               ///< ξ_Overlap
  size_t rounds = 0;                  ///< enrichment rounds executed
  size_t literal_matches = 0;         ///< |H0|
  size_t nonliteral_matches = 0;      ///< Σ|Hi|, i >= 1
  std::vector<OverlapMatchStats> round_stats;

  // Wall-clock phase breakdown of this run, milliseconds (summed across
  // rounds; feeds AlignmentOutcome::phases — the base λ_Hybrid time is
  // not broken out and lands in the derived refine_ms there).
  double enrich_ms = 0;   ///< Enrich + Propagate
  double index_ms = 0;    ///< characterizing sets + inverted-index builds
  double match_ms = 0;    ///< candidate probing + σ verification
};

/// σNL_ξ(n,m): the §4.7 distance on non-literal nodes — out-edges grouped
/// by color pair, same-color edges coupled by weight rank, uncoupled edges
/// costing 1, normalized by the larger out-degree. Exposed for tests.
double SigmaNonLiteral(const TripleGraph& g, const WeightedPartition& xi,
                       NodeId n, NodeId m);

/// out-color_ξ(n) as sorted unique packed (λ(p), λ(o)) pairs. Exposed for
/// tests.
std::vector<uint64_t> OutColorSet(const TripleGraph& g,
                                  const WeightedPartition& xi, NodeId n);

/// Streams out-color_ξ(n) into `sets` — the CSR equivalent of OutColorSet,
/// used by the alignment rounds and the pipeline bench (which must exercise
/// this exact production build, not a copy).
void AppendOutColorSet(const TripleGraph& g, const WeightedPartition& xi,
                       NodeId n, CharacterizingSets& sets);

/// Runs Algorithm 2 on the combined graph. When `hybrid` is non-null it is
/// used as the ξ0 base partition (callers that already computed λ_Hybrid
/// avoid recomputation); otherwise λ_Hybrid is computed internally.
OverlapAlignResult OverlapAlign(const CombinedGraph& cg,
                                const OverlapAlignOptions& options = {},
                                const Partition* hybrid = nullptr);

}  // namespace rdfalign

#endif  // RDFALIGN_CORE_OVERLAP_ALIGN_H_
