#include "core/similarity_flooding.h"

#include <algorithm>
#include <cmath>

#include "core/edit_distance.h"
#include "util/hash.h"

namespace rdfalign {

namespace {

uint64_t PairKey(NodeId n, NodeId m) { return PackPair(n, m); }

}  // namespace

Result<SimilarityFlooding> SimilarityFlooding::Compute(
    const CombinedGraph& cg, const SimilarityFloodingOptions& options) {
  const TripleGraph& g = cg.graph();
  SimilarityFlooding sf;

  // --- support: the pairwise connectivity graph ---------------------------
  // Candidate pairs are seeded from label-compatible pairs and closed under
  // the flooding edges. To keep the support sparse we start from (a) label-
  // equal pairs and (b) pairs induced by same-predicate-label triples.
  auto intern_pair = [&](NodeId n, NodeId m) -> uint32_t {
    auto [it, inserted] = sf.index_.emplace(
        PairKey(n, m), static_cast<uint32_t>(sf.pairs_.size()));
    if (inserted) sf.pairs_.emplace_back(n, m);
    return it->second;
  };

  // Group triples by predicate *label* on both sides.
  std::unordered_map<uint64_t, std::pair<std::vector<Triple>,
                                         std::vector<Triple>>>
      by_predicate;
  for (const Triple& t : g.triples()) {
    uint64_t key = g.LexicalId(t.p);
    auto& bucket = by_predicate[key];
    (cg.InSource(t.s) ? bucket.first : bucket.second).push_back(t);
  }

  // Edges of the pairwise graph: ((s1,s2) <-> (o1,o2)) per shared-label
  // predicate; also (p1,p2) participates as a pair seeded by equality.
  struct FlowEdge {
    uint32_t from;
    uint32_t to;
  };
  std::vector<FlowEdge> edges;
  for (auto& [key, bucket] : by_predicate) {
    if (bucket.first.empty() || bucket.second.empty()) continue;
    if (bucket.first.size() * bucket.second.size() > options.max_pairs) {
      return Status::OutOfRange(
          "similarity flooding support too large; reduce the input");
    }
    for (const Triple& t1 : bucket.first) {
      for (const Triple& t2 : bucket.second) {
        uint32_t sp = intern_pair(t1.s, t2.s);
        uint32_t op = intern_pair(t1.o, t2.o);
        edges.push_back(FlowEdge{sp, op});
        edges.push_back(FlowEdge{op, sp});
        if (sf.pairs_.size() > options.max_pairs) {
          return Status::OutOfRange(
              "similarity flooding support exceeded max_pairs");
        }
      }
    }
  }

  // --- seed similarities ----------------------------------------------------
  const size_t k = sf.pairs_.size();
  sf.similarity_.assign(k, 0.0);
  for (size_t i = 0; i < k; ++i) {
    auto [n, m] = sf.pairs_[i];
    double seed = options.seed_floor;
    if (g.KindOf(n) != g.KindOf(m)) {
      seed = 0.0;
    } else if (g.IsLiteral(n)) {
      seed = std::max(
          options.seed_floor,
          1.0 - NormalizedEditDistance(g.Lexical(n), g.Lexical(m)));
    } else if (!g.IsBlank(n) && g.LexicalId(n) == g.LexicalId(m)) {
      seed = options.seed_equal;
    }
    sf.similarity_[i] = seed;
  }

  // --- flooding fixpoint ----------------------------------------------------
  // σ_{t+1}(p) = σ_0(p) + Σ_{q -> p} σ_t(q) / outdeg(q), then normalize by
  // the global maximum (the classic "basic" SF iteration).
  std::vector<uint32_t> out_degree(k, 0);
  for (const FlowEdge& e : edges) ++out_degree[e.from];
  std::vector<double> seed(sf.similarity_);
  std::vector<double> next(k);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    next = seed;
    for (const FlowEdge& e : edges) {
      next[e.to] += sf.similarity_[e.from] /
                    static_cast<double>(out_degree[e.from]);
    }
    double max_value = 0.0;
    for (double v : next) max_value = std::max(max_value, v);
    if (max_value > 0) {
      for (double& v : next) v /= max_value;
    }
    double delta = 0.0;
    for (size_t i = 0; i < k; ++i) {
      delta = std::max(delta, std::abs(next[i] - sf.similarity_[i]));
    }
    sf.similarity_.swap(next);
    ++sf.iterations_;
    if (delta < options.epsilon) break;
  }
  return sf;
}

double SimilarityFlooding::Similarity(NodeId n, NodeId m) const {
  auto it = index_.find(PairKey(n, m));
  return it == index_.end() ? 0.0 : similarity_[it->second];
}

std::vector<std::pair<NodeId, NodeId>> SimilarityFlooding::GreedyMatching(
    double min_similarity) const {
  std::vector<uint32_t> order(pairs_.size());
  for (uint32_t i = 0; i < pairs_.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (similarity_[a] != similarity_[b]) {
      return similarity_[a] > similarity_[b];
    }
    return pairs_[a] < pairs_[b];  // deterministic tie-break
  });
  std::unordered_map<NodeId, uint8_t> used_left;
  std::unordered_map<NodeId, uint8_t> used_right;
  std::vector<std::pair<NodeId, NodeId>> matching;
  for (uint32_t i : order) {
    if (similarity_[i] < min_similarity) break;
    auto [n, m] = pairs_[i];
    if (used_left.count(n) > 0 || used_right.count(m) > 0) continue;
    used_left.emplace(n, 1);
    used_right.emplace(m, 1);
    matching.emplace_back(n, m);
  }
  return matching;
}

}  // namespace rdfalign
