// StreamAligner: continuous alignment of a live target graph against a
// frozen source version (docs/stream.md).
//
// The aligner keeps one worklist engine alive across update batches
// (store/update_fragment.h) and maintains the alignment partition
// incrementally:
//
//  * Non-blank nodes are classed by label through a persistent registry —
//    (kind, lexical form) -> engine color — so creating a node whose label
//    the partition has seen (including the frozen source side) joins the
//    existing class with zero refinement work, and a genuinely fresh label
//    allocates a fresh singleton class. Non-blank colors never change:
//    under both supported methods their classes are fixed by label alone.
//  * Blank nodes are re-refined only when the batch can actually affect
//    them: some blank's out-neighborhood changed, or a blank was created.
//    kDeblank's initial partition has *one* blank class, so the minimal
//    sound reset region that is closed under that initial partition is all
//    live blanks — they are moved onto one fresh color, seeded dirty, and
//    the engine resumes (RunInPlace) from its persistent state. Rounds
//    re-sign only dirty blanks, exactly the machinery the batch path uses,
//    and a batch touching no blank skips the engine entirely. The
//    "characterizing set" exact-maintenance alternative (Luo et al.,
//    arXiv:1210.0748) is named future work in docs/stream.md.
//
// Supported methods: kTrivial and kDeblank. kHybrid and above derive their
// refinable set X from a completed deblank pass, which has no incremental
// form here yet.
//
// Batch-equivalence contract: after any update sequence, the live
// partition and the cumulatively applied alignment-pair deltas are
// bit-identical (after dense renumbering) to running the batch aligner on
// the final versions — CheckBatchEquivalence pins it, tests/stream_test.cc
// and bench/stream_bench.cc enforce it.

#ifndef RDFALIGN_STREAM_STREAM_ALIGNER_H_
#define RDFALIGN_STREAM_STREAM_ALIGNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/partition.h"
#include "core/worklist_engine.h"
#include "store/update_fragment.h"
#include "stream/dynamic_graph.h"
#include "util/result.h"

namespace rdfalign::stream {

/// One aligned pair by node label, the stable identity deltas are emitted
/// in (stream node ids are meaningless to consumers).
struct LabeledPair {
  TermKind src_kind;
  TermKind tgt_kind;
  std::string src_lex;
  std::string tgt_lex;

  friend bool operator==(const LabeledPair& a, const LabeledPair& b) {
    return a.src_kind == b.src_kind && a.tgt_kind == b.tgt_kind &&
           a.src_lex == b.src_lex && a.tgt_lex == b.tgt_lex;
  }
  friend bool operator<(const LabeledPair& a, const LabeledPair& b) {
    if (a.src_kind != b.src_kind) return a.src_kind < b.src_kind;
    if (a.src_lex != b.src_lex) return a.src_lex < b.src_lex;
    if (a.tgt_kind != b.tgt_kind) return a.tgt_kind < b.tgt_kind;
    return a.tgt_lex < b.tgt_lex;
  }
};

/// Outcome of applying one update batch.
struct StreamBatchResult {
  uint64_t sequence = 0;
  size_t applied_adds = 0;
  size_t ignored_adds = 0;  ///< already-present triples (set semantics)
  size_t applied_removes = 0;
  size_t ignored_removes = 0;  ///< already-absent triples
  size_t new_nodes = 0;
  size_t removed_nodes = 0;
  /// True when the batch could affect blank classes and the engine ran.
  bool refined = false;
  size_t iterations = 0;
  size_t dirty_total = 0;  ///< node re-signings across the resumed rounds
  /// The alignment delta: pairs that stopped/started holding. Sorted,
  /// disjoint. Applying every delta in sequence to the open-time pair set
  /// reproduces CurrentPairs() exactly.
  std::vector<LabeledPair> removed_pairs;
  std::vector<LabeledPair> added_pairs;
  double apply_ms = 0;
  double refine_ms = 0;
  double delta_ms = 0;
};

struct StreamOptions {
  AlignMethod method = AlignMethod::kDeblank;
  /// Signing workers for resumed refinement rounds (0 = hardware threads).
  size_t threads = 1;
  size_t parallel_min_round = 4096;
};

/// Summary of a batch-equivalence check.
struct StreamCheckResult {
  size_t live_nodes = 0;
  size_t classes = 0;
};

class StreamAligner {
 public:
  /// Opens a stream session: builds the combined overlay graph and runs
  /// the method's initial fixpoint. `source` and `target` must share one
  /// Dictionary.
  static Result<std::unique_ptr<StreamAligner>> Open(
      const TripleGraph& source, const TripleGraph& target,
      const StreamOptions& options);

  /// Applies one update batch and returns the alignment delta. Errors
  /// (unresolvable or duplicate node references, RDF-positional
  /// violations, retiring a still-referenced node) can leave the session
  /// state partially updated: treat any error as fatal to the session.
  Result<StreamBatchResult> Apply(const store::UpdateBatch& batch);

  /// The current alignment as labeled pairs, sorted (see LabeledPair).
  std::vector<LabeledPair> CurrentPairs() const;

  /// Verifies the live partition against a from-scratch batch alignment of
  /// (batch_source, batch_target) — the final versions after every applied
  /// update. The two graphs must share a Dictionary with each other (not
  /// necessarily with this session); nodes are matched by label. Returns
  /// the check summary or an error describing the first divergence.
  Result<StreamCheckResult> CheckBatchEquivalence(
      const TripleGraph& batch_source, const TripleGraph& batch_target) const;

  const DynamicGraph& graph() const { return *graph_; }
  const StreamOptions& options() const { return options_; }
  /// Engine-side class count upper bound (includes emptied classes).
  size_t NumColorsAllocated() const { return engine_->next_color(); }
  /// Statistics of the open-time initial fixpoint.
  const RefinementStats& open_stats() const { return open_stats_; }
  uint64_t batches_applied() const { return batches_applied_; }

 private:
  using Engine = internal::WorklistEngine<DynamicGraph>;

  StreamAligner(const StreamOptions& options) : options_(options) {}

  LabeledPair MakePair(NodeId src, NodeId tgt) const;
  /// All (source blank, target blank) equal-color pairs over live blanks,
  /// sorted by (src id, tgt id).
  std::vector<std::pair<NodeId, NodeId>> BlankPairs() const;
  /// Equal-color source partners of a non-blank node's color.
  void AppendStaticPartners(NodeId tgt, ColorId color,
                            std::vector<LabeledPair>* out) const;

  StreamOptions options_;
  std::unique_ptr<DynamicGraph> graph_;
  std::unique_ptr<Engine> engine_;
  RefinementStats open_stats_;

  /// Persistent non-blank label registry: (kind, LexId) -> engine color.
  std::unordered_map<uint64_t, ColorId> label_color_;
  /// Source-side non-blank members per engine color (source colors are
  /// fixed for the session).
  std::unordered_map<ColorId, std::vector<NodeId>> src_nonblank_by_color_;
  /// Every blank node id ever live (source + target + appended); dead ones
  /// are filtered on use.
  std::vector<NodeId> blank_nodes_;
  uint64_t batches_applied_ = 0;
};

}  // namespace rdfalign::stream

#endif  // RDFALIGN_STREAM_STREAM_ALIGNER_H_
