#include "stream/dynamic_graph.h"

#include <algorithm>
#include <cassert>

namespace rdfalign::stream {

namespace {

bool PairLess(const PredicateObject& a, const PredicateObject& b) {
  if (a.p != b.p) return a.p < b.p;
  return a.o < b.o;
}

}  // namespace

DynamicGraph::DynamicGraph(CombinedGraph base)
    : base_(std::move(base)), base_nodes_(base_.graph().NumNodes()) {
  const TripleGraph& g = base_.graph();
  kinds_.reserve(base_nodes_);
  lex_.reserve(base_nodes_);
  for (NodeId n = 0; n < base_nodes_; ++n) {
    kinds_.push_back(g.KindOf(n));
    lex_.push_back(g.LexicalId(n));
  }
  dead_.assign(base_nodes_, 0);
  out_overlay_idx_.assign(base_nodes_, -1);
  in_extra_idx_.assign(base_nodes_, -1);
  target_by_label_.reserve(base_.n2());
  for (NodeId t = 0; t < base_.n2(); ++t) {
    const NodeId n = base_.FromTarget(t);
    target_by_label_.emplace(LabelKey(kinds_[n], lex_[n]), n);
  }
  target_triples_ = base_.e2();
}

Result<DynamicGraph> DynamicGraph::Build(const TripleGraph& source,
                                         const TripleGraph& target,
                                         size_t threads) {
  RDFALIGN_ASSIGN_OR_RETURN(CombinedGraph cg,
                            CombinedGraph::Build(source, target, threads));
  return DynamicGraph(std::move(cg));
}

NodeId DynamicGraph::FindTarget(TermKind kind, std::string_view lex) const {
  const LexId id = base_.graph().dict().Find(lex);
  if (id == kInvalidLex) return kInvalidNode;
  auto it = target_by_label_.find(LabelKey(kind, id));
  return it == target_by_label_.end() ? kInvalidNode : it->second;
}

NodeId DynamicGraph::AddNode(TermKind kind, std::string_view lex) {
  // Intern through the shared dictionary (Dictionary is append-only, so
  // existing LexIds — and the label keys derived from them — stay valid).
  Dictionary& dict = *base_.graph().dict_ptr();
  const LexId id = dict.Intern(lex);
  const NodeId n = static_cast<NodeId>(kinds_.size());
  kinds_.push_back(kind);
  lex_.push_back(id);
  dead_.push_back(0);
  out_overlay_idx_.push_back(static_cast<int32_t>(out_overlay_.size()));
  out_overlay_.emplace_back();
  in_extra_idx_.push_back(-1);
  const bool inserted = target_by_label_.emplace(LabelKey(kind, id), n).second;
  assert(inserted);
  (void)inserted;
  return n;
}

std::vector<PredicateObject>& DynamicGraph::MutableOut(NodeId n) {
  int32_t ov = out_overlay_idx_[n];
  if (ov < 0) {
    ov = static_cast<int32_t>(out_overlay_.size());
    const auto base = base_.graph().Out(n);
    out_overlay_.emplace_back(base.begin(), base.end());
    out_overlay_idx_[n] = ov;
  }
  return out_overlay_[ov];
}

void DynamicGraph::AddInExtra(NodeId target, NodeId subject) {
  if (target < base_nodes_) {
    const auto base = base_.graph().In(target);
    if (std::binary_search(base.begin(), base.end(), subject)) return;
  }
  int32_t ix = in_extra_idx_[target];
  if (ix < 0) {
    ix = static_cast<int32_t>(in_extras_.size());
    in_extras_.emplace_back();
    in_extra_idx_[target] = ix;
  }
  std::vector<NodeId>& extras = in_extras_[ix];
  const auto pos = std::lower_bound(extras.begin(), extras.end(), subject);
  if (pos != extras.end() && *pos == subject) return;
  extras.insert(pos, subject);
}

bool DynamicGraph::AddTriple(NodeId s, NodeId p, NodeId o) {
  std::vector<PredicateObject>& out = MutableOut(s);
  const PredicateObject po{p, o};
  const auto pos = std::lower_bound(out.begin(), out.end(), po, PairLess);
  if (pos != out.end() && pos->p == p && pos->o == o) return false;
  out.insert(pos, po);
  AddInExtra(p, s);
  if (o != p) AddInExtra(o, s);
  ++target_triples_;
  return true;
}

bool DynamicGraph::RemoveTriple(NodeId s, NodeId p, NodeId o) {
  // A removal on an untouched base node must materialize the overlay; a
  // no-op removal of an absent triple checks first to avoid the copy.
  const PredicateObject po{p, o};
  if (out_overlay_idx_[s] < 0) {
    const auto base = base_.graph().Out(s);
    if (!std::binary_search(base.begin(), base.end(), po, PairLess)) {
      return false;
    }
  }
  std::vector<PredicateObject>& out = MutableOut(s);
  const auto pos = std::lower_bound(out.begin(), out.end(), po, PairLess);
  if (pos == out.end() || pos->p != p || pos->o != o) return false;
  out.erase(pos);
  --target_triples_;
  return true;
}

void DynamicGraph::MarkDead(NodeId n) {
  assert(!InSource(n) && dead_[n] == 0);
  dead_[n] = 1;
  ++num_dead_;
  target_by_label_.erase(LabelKey(kinds_[n], lex_[n]));
}

bool DynamicGraph::ReferencedAsPredicateOrObject(NodeId n) const {
  // In(n) is a superset of the true in-neighborhood; confirm each candidate
  // subject against its exact Out.
  for (NodeId s : In(n)) {
    if (dead_[s]) continue;
    for (const PredicateObject& po : Out(s)) {
      if (po.p == n || po.o == n) return true;
    }
  }
  return false;
}

}  // namespace rdfalign::stream
