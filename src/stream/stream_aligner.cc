#include "stream/stream_aligner.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/deblank.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfalign::stream {

namespace {

uint64_t RegistryKey(TermKind kind, LexId lex) {
  return (static_cast<uint64_t>(kind) << 32) | lex;
}

/// Removes the exact duplicates between two sorted pair lists: a node
/// created and retired within one batch contributes its pairs to both
/// sides with net effect "absent", which dropping from both preserves
/// (the pair was not in the cumulative set before the batch either).
void DropCommonPairs(std::vector<LabeledPair>* removed,
                     std::vector<LabeledPair>* added) {
  std::vector<LabeledPair> common;
  std::set_intersection(removed->begin(), removed->end(), added->begin(),
                        added->end(), std::back_inserter(common));
  if (common.empty()) return;
  auto prune = [&common](std::vector<LabeledPair>* v) {
    std::vector<LabeledPair> kept;
    std::set_difference(v->begin(), v->end(), common.begin(), common.end(),
                        std::back_inserter(kept));
    v->swap(kept);
  };
  prune(removed);
  prune(added);
}

}  // namespace

Result<std::unique_ptr<StreamAligner>> StreamAligner::Open(
    const TripleGraph& source, const TripleGraph& target,
    const StreamOptions& options) {
  if (options.method != AlignMethod::kTrivial &&
      options.method != AlignMethod::kDeblank) {
    return Status::NotSupported(
        "streaming supports methods 'trivial' and 'deblank'; method '" +
        std::string(AlignMethodToString(options.method)) +
        "' derives its refinable set from a completed deblank pass and has "
        "no incremental form yet");
  }
  const size_t threads = ResolveThreads(options.threads);
  std::unique_ptr<StreamAligner> s(new StreamAligner(options));
  s->options_.threads = threads;
  RDFALIGN_ASSIGN_OR_RETURN(DynamicGraph dg,
                            DynamicGraph::Build(source, target, threads));
  s->graph_ = std::make_unique<DynamicGraph>(std::move(dg));
  const DynamicGraph& g = *s->graph_;

  const bool deblank = options.method == AlignMethod::kDeblank;
  const TripleGraph& base = g.combined().graph();
  Partition initial =
      deblank ? LabelPartition(base) : TrivialPartition(base);
  std::vector<NodeId> x;
  if (deblank) x = base.NodesOfKind(TermKind::kBlank);

  internal::WorklistConfig cfg;
  cfg.threads = threads;
  cfg.parallel_min_round = options.parallel_min_round;
  s->engine_ = std::make_unique<Engine>(*s->graph_, initial, x, cfg);
  s->engine_->RunInPlace(&s->open_stats_);
  s->open_stats_.initial_classes = initial.NumColors();

  // Persistent registry + the static source-side structures.
  for (NodeId n = 0; n < base.NumNodes(); ++n) {
    if (base.KindOf(n) == TermKind::kBlank) {
      s->blank_nodes_.push_back(n);
      continue;
    }
    // All nodes with one label share one initial color under both
    // methods' initial partitions, so later occurrences overwrite with
    // the same value.
    s->label_color_[RegistryKey(base.KindOf(n), base.LexicalId(n))] =
        s->engine_->ColorOf(n);
    if (g.InSource(n)) {
      s->src_nonblank_by_color_[s->engine_->ColorOf(n)].push_back(n);
    }
  }
  return s;
}

LabeledPair StreamAligner::MakePair(NodeId src, NodeId tgt) const {
  const DynamicGraph& g = *graph_;
  return LabeledPair{g.KindOf(src), g.KindOf(tgt),
                     std::string(g.Lexical(src)),
                     std::string(g.Lexical(tgt))};
}

std::vector<std::pair<NodeId, NodeId>> StreamAligner::BlankPairs() const {
  const DynamicGraph& g = *graph_;
  // Blank colors never coincide with non-blank colors (the initial
  // partitions separate them and fresh colors are only handed to blank
  // splits or fresh labels), so restricting to blank_nodes_ is exact.
  std::map<ColorId, std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      by_color;
  for (NodeId b : blank_nodes_) {
    if (g.IsDead(b)) continue;
    auto& sides = by_color[engine_->ColorOf(b)];
    (g.InSource(b) ? sides.first : sides.second).push_back(b);
  }
  std::vector<std::pair<NodeId, NodeId>> pairs;
  for (const auto& [color, sides] : by_color) {
    for (NodeId src : sides.first) {
      for (NodeId tgt : sides.second) pairs.emplace_back(src, tgt);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

void StreamAligner::AppendStaticPartners(NodeId tgt, ColorId color,
                                         std::vector<LabeledPair>* out) const {
  auto it = src_nonblank_by_color_.find(color);
  if (it == src_nonblank_by_color_.end()) return;
  for (NodeId src : it->second) out->push_back(MakePair(src, tgt));
}

Result<StreamBatchResult> StreamAligner::Apply(
    const store::UpdateBatch& batch) {
  const bool deblank = options_.method == AlignMethod::kDeblank;
  DynamicGraph& g = *graph_;
  StreamBatchResult res;
  res.sequence = batch.sequence;
  WallTimer apply_timer;

  // Resolve existing references, then create the new nodes (one at a time,
  // so a duplicate new label within the batch is caught by the lookup).
  const size_t refs = batch.nodes.size();
  std::vector<NodeId> node_of(refs, kInvalidNode);
  for (size_t i = batch.num_new; i < refs; ++i) {
    const store::UpdateBatch::NodeRef& r = batch.nodes[i];
    const NodeId n = g.FindTarget(r.kind, r.lex);
    if (n == kInvalidNode) {
      return Status::InvalidArgument(
          "update references a node absent from the live target graph: " +
          r.lex);
    }
    node_of[i] = n;
  }
  bool blank_affected = false;
  for (size_t i = 0; i < batch.num_new; ++i) {
    const store::UpdateBatch::NodeRef& r = batch.nodes[i];
    if (g.FindTarget(r.kind, r.lex) != kInvalidNode) {
      return Status::InvalidArgument(
          "update creates a node that already exists in the live target "
          "graph: " +
          r.lex);
    }
    const NodeId n = g.AddNode(r.kind, r.lex);
    node_of[i] = n;
    if (r.kind == TermKind::kBlank) {
      // A fresh blank joins refinement; until the reset below its color is
      // a fresh singleton (which is already exact under kTrivial).
      engine_->AppendNode(engine_->AllocateColor(), deblank);
      blank_nodes_.push_back(n);
      blank_affected = true;
    } else {
      const uint64_t key = RegistryKey(r.kind, g.LexicalId(n));
      auto it = label_color_.find(key);
      ColorId color;
      if (it != label_color_.end()) {
        color = it->second;  // rejoin the label's class (possibly emptied)
      } else {
        color = engine_->AllocateColor();
        label_color_.emplace(key, color);
      }
      engine_->AppendNode(color, false);
    }
    ++res.new_nodes;
  }

  // Triple removals, then additions (set semantics; order within one batch
  // is immaterial because the lists are disjoint on any coherent producer
  // and no-ops are simply counted).
  for (const Triple& t : batch.removed) {
    const NodeId s = node_of[t.s];
    if (g.RemoveTriple(s, node_of[t.p], node_of[t.o])) {
      ++res.applied_removes;
      if (g.KindOf(s) == TermKind::kBlank) blank_affected = true;
    } else {
      ++res.ignored_removes;
    }
  }
  for (const Triple& t : batch.added) {
    const NodeId s = node_of[t.s];
    const NodeId p = node_of[t.p];
    const NodeId o = node_of[t.o];
    if (g.KindOf(p) != TermKind::kUri) {
      return Status::InvalidArgument(
          "update adds a triple whose predicate is not a URI: " +
          std::string(g.Lexical(p)));
    }
    if (g.KindOf(s) == TermKind::kLiteral) {
      return Status::InvalidArgument(
          "update adds a triple with a literal subject: " +
          std::string(g.Lexical(s)));
    }
    if (g.AddTriple(s, p, o)) {
      ++res.applied_adds;
      if (g.KindOf(s) == TermKind::kBlank) blank_affected = true;
    } else {
      ++res.ignored_adds;
    }
  }

  // Validate retirements against the post-update triple set.
  std::vector<NodeId> dying;
  dying.reserve(batch.removed_nodes.size());
  for (uint32_t r : batch.removed_nodes) {
    const NodeId n = node_of[r];
    if (!g.Out(n).empty()) {
      return Status::InvalidArgument(
          "update retires a node that still has outbound triples: " +
          std::string(g.Lexical(n)));
    }
    if (g.ReferencedAsPredicateOrObject(n)) {
      return Status::InvalidArgument(
          "update retires a node still referenced by live triples: " +
          std::string(g.Lexical(n)));
    }
    dying.push_back(n);
  }
  if (!deblank) blank_affected = false;
  res.apply_ms = apply_timer.ElapsedMillis();

  // Alignment-delta capture, part 1: pairs as of the *old* coloring.
  WallTimer delta_timer;
  std::vector<std::pair<NodeId, NodeId>> before_blanks;
  if (blank_affected) before_blanks = BlankPairs();
  for (NodeId n : dying) {
    if (g.KindOf(n) != TermKind::kBlank) {
      AppendStaticPartners(n, engine_->ColorOf(n), &res.removed_pairs);
    } else if (!blank_affected) {
      // A blank retired without any blank's neighborhood changing (it was
      // already isolated): drop its pairs directly; nothing else moves.
      for (NodeId b : blank_nodes_) {
        if (g.InSource(b) && g.IsLive(b) &&
            engine_->ColorOf(b) == engine_->ColorOf(n)) {
          res.removed_pairs.push_back(MakePair(b, n));
        }
      }
    }
  }
  for (size_t i = 0; i < batch.num_new; ++i) {
    const NodeId n = node_of[i];
    if (g.KindOf(n) != TermKind::kBlank) {
      AppendStaticPartners(n, engine_->ColorOf(n), &res.added_pairs);
    }
  }
  res.delta_ms = delta_timer.ElapsedMillis();

  // Install the deaths, then resume refinement if any blank was affected.
  for (NodeId n : dying) {
    g.MarkDead(n);
    if (deblank && g.KindOf(n) == TermKind::kBlank) {
      engine_->SetInX(n, false);
    }
    ++res.removed_nodes;
  }
  WallTimer refine_timer;
  if (blank_affected) {
    // Reset region: kDeblank's initial partition holds all blanks in one
    // class, so the sound warm-start region closed under it is every live
    // blank — one fresh shared color, all seeded. Rounds then re-sign only
    // dirty nodes; see docs/stream.md for why anything finer can miss
    // class *merges*.
    const ColorId reset = engine_->AllocateColor();
    std::vector<NodeId> live_blanks;
    live_blanks.reserve(blank_nodes_.size());
    for (NodeId b : blank_nodes_) {
      if (g.IsDead(b)) continue;
      live_blanks.push_back(b);
      engine_->OverrideColor(b, reset);
      engine_->SeedDirty(b);
    }
    blank_nodes_.swap(live_blanks);  // compact tombstones while we're here
    RefinementStats rs;
    engine_->RunInPlace(&rs);
    res.refined = true;
    res.iterations = rs.iterations;
    res.dirty_total = rs.TotalDirty();
  }
  res.refine_ms = refine_timer.ElapsedMillis();

  // Alignment-delta capture, part 2: diff the blank pairs across the
  // resumed refinement.
  WallTimer delta2_timer;
  if (blank_affected) {
    const std::vector<std::pair<NodeId, NodeId>> after_blanks = BlankPairs();
    std::vector<std::pair<NodeId, NodeId>> gone, born;
    std::set_difference(before_blanks.begin(), before_blanks.end(),
                        after_blanks.begin(), after_blanks.end(),
                        std::back_inserter(gone));
    std::set_difference(after_blanks.begin(), after_blanks.end(),
                        before_blanks.begin(), before_blanks.end(),
                        std::back_inserter(born));
    for (const auto& [src, tgt] : gone) {
      res.removed_pairs.push_back(MakePair(src, tgt));
    }
    for (const auto& [src, tgt] : born) {
      res.added_pairs.push_back(MakePair(src, tgt));
    }
  }
  std::sort(res.removed_pairs.begin(), res.removed_pairs.end());
  std::sort(res.added_pairs.begin(), res.added_pairs.end());
  DropCommonPairs(&res.removed_pairs, &res.added_pairs);
  res.delta_ms += delta2_timer.ElapsedMillis();

  ++batches_applied_;
  return res;
}

std::vector<LabeledPair> StreamAligner::CurrentPairs() const {
  const DynamicGraph& g = *graph_;
  std::map<ColorId, std::pair<std::vector<NodeId>, std::vector<NodeId>>>
      by_color;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (g.IsDead(n)) continue;
    auto& sides = by_color[engine_->ColorOf(n)];
    (g.InSource(n) ? sides.first : sides.second).push_back(n);
  }
  std::vector<LabeledPair> pairs;
  for (const auto& [color, sides] : by_color) {
    for (NodeId src : sides.first) {
      for (NodeId tgt : sides.second) pairs.push_back(MakePair(src, tgt));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

Result<StreamCheckResult> StreamAligner::CheckBatchEquivalence(
    const TripleGraph& batch_source, const TripleGraph& batch_target) const {
  const DynamicGraph& g = *graph_;
  RDFALIGN_ASSIGN_OR_RETURN(
      CombinedGraph bcg,
      CombinedGraph::Build(batch_source, batch_target, options_.threads));
  Partition batch_partition;
  if (options_.method == AlignMethod::kDeblank) {
    RefinementOptions ropt;
    ropt.threads = options_.threads;
    ropt.parallel_min_round = options_.parallel_min_round;
    batch_partition = DeblankPartition(bcg, nullptr, ropt);
  } else {
    batch_partition = TrivialPartition(bcg.graph());
  }

  const size_t batch_nodes = bcg.graph().NumNodes();
  if (g.NumLiveNodes() != batch_nodes) {
    return Status::InvalidArgument(
        "stream/batch node-count mismatch: stream has " +
        std::to_string(g.NumLiveNodes()) + " live nodes, batch graph has " +
        std::to_string(batch_nodes));
  }
  if (bcg.n1() != g.n1()) {
    return Status::InvalidArgument(
        "batch source does not match the stream's source version");
  }
  // Source side: match by label against the frozen stream source.
  const TripleGraph& sg = g.combined().graph();
  const Dictionary& dict = sg.dict();
  std::unordered_map<uint64_t, NodeId> src_by_label;
  src_by_label.reserve(g.n1());
  for (NodeId n = 0; n < g.n1(); ++n) {
    src_by_label.emplace(
        (static_cast<uint64_t>(sg.KindOf(n)) << 32) | sg.LexicalId(n), n);
  }
  std::vector<ColorId> remapped(batch_nodes);
  for (NodeId i = 0; i < batch_nodes; ++i) {
    const TermKind kind = bcg.graph().KindOf(i);
    const std::string_view lex = bcg.graph().Lexical(i);
    NodeId stream_node = kInvalidNode;
    if (bcg.InSource(i)) {
      const LexId id = dict.Find(lex);
      if (id != kInvalidLex) {
        auto it =
            src_by_label.find((static_cast<uint64_t>(kind) << 32) | id);
        if (it != src_by_label.end()) stream_node = it->second;
      }
    } else {
      stream_node = g.FindTarget(kind, lex);
    }
    if (stream_node == kInvalidNode) {
      return Status::InvalidArgument(
          "batch graph node has no live stream counterpart: " +
          std::string(lex));
    }
    remapped[i] = engine_->ColorOf(stream_node);
  }
  const Partition stream_partition =
      Partition::FromColors(std::move(remapped));
  if (stream_partition.colors() != batch_partition.colors()) {
    return Status::Internal(
        "stream partition diverges from the batch alignment of the final "
        "versions");
  }
  StreamCheckResult out;
  out.live_nodes = batch_nodes;
  out.classes = stream_partition.NumColors();
  return out;
}

}  // namespace rdfalign::stream
