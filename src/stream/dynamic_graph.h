// DynamicGraph: a mutable copy-on-write overlay over a combined
// source ⊎ target graph, the graph model of the streaming aligner
// (docs/stream.md).
//
// The source side ([0, n1)) is immutable — it is the frozen version the
// live target is continuously aligned against. The target side accepts
// set-semantics triple adds/removes, node creation, and node retirement:
//
//  * Out(n) is exact at all times: the first mutation of a base node's
//    out-neighborhood copies the CSR slice into an owned sorted vector
//    (copy-on-write); appended nodes always own one. The refinement
//    signature reads Out, so it must never be stale.
//  * In(n) is a *superset* index: triple additions insert the subject into
//    a sorted per-node extras vector chained after the base CSR slice, but
//    removals never shrink it. Exact removal would cost O(E) for hub
//    nodes; the worklist engine tolerates supersets by design (a
//    spuriously dirtied node re-signs, matches its class anchor, and keeps
//    its color), so the stream trades a little wasted signing for O(log n)
//    maintenance. Dead or stale subjects in In are filtered by the
//    consumers.
//  * Removed nodes are tombstoned (never compacted): ids stay stable for
//    the engine's parallel arrays, the label becomes free for reuse by a
//    later creation, and every consumer (pair enumeration, equivalence
//    checks, the engine's X set) skips dead nodes.
//
// Node identity is by (kind, lexical form) on the live target side, which
// is how update fragments address nodes (store/update_fragment.h).

#ifndef RDFALIGN_STREAM_DYNAMIC_GRAPH_H_
#define RDFALIGN_STREAM_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "rdf/merge.h"
#include "rdf/term.h"
#include "util/result.h"

namespace rdfalign::stream {

/// In(n) as the base CSR slice chained with the extras overlay. May contain
/// stale subjects (whose edge into n was since removed) and, across the two
/// parts, no duplicates by construction.
class ChainedIn {
 public:
  ChainedIn(std::span<const NodeId> base, std::span<const NodeId> extra)
      : base_(base), extra_(extra) {}

  class iterator {
   public:
    iterator(const NodeId* a, const NodeId* a_end, const NodeId* b)
        : a_(a), a_end_(a_end), b_(b) {}
    NodeId operator*() const { return a_ != a_end_ ? *a_ : *b_; }
    iterator& operator++() {
      if (a_ != a_end_) {
        ++a_;
      } else {
        ++b_;
      }
      return *this;
    }
    bool operator!=(const iterator& o) const {
      return a_ != o.a_ || b_ != o.b_;
    }

   private:
    const NodeId* a_;
    const NodeId* a_end_;
    const NodeId* b_;
  };

  iterator begin() const {
    return {base_.data(), base_.data() + base_.size(), extra_.data()};
  }
  iterator end() const {
    return {base_.data() + base_.size(), base_.data() + base_.size(),
            extra_.data() + extra_.size()};
  }
  size_t size() const { return base_.size() + extra_.size(); }

 private:
  std::span<const NodeId> base_;
  std::span<const NodeId> extra_;
};

/// The mutable combined graph. Satisfies the worklist engine's Graph
/// concept (NumNodes / Out / In).
class DynamicGraph {
 public:
  /// Builds the overlay over source ⊎ target (the graphs must share one
  /// Dictionary; see CombinedGraph::Build).
  static Result<DynamicGraph> Build(const TripleGraph& source,
                                    const TripleGraph& target,
                                    size_t threads = 1);

  // --- Graph concept (read side) ---
  size_t NumNodes() const { return kinds_.size(); }
  std::span<const PredicateObject> Out(NodeId n) const {
    const int32_t ov = out_overlay_idx_[n];
    if (ov >= 0) {
      const std::vector<PredicateObject>& v = out_overlay_[ov];
      return {v.data(), v.size()};
    }
    return base_.graph().Out(n);
  }
  ChainedIn In(NodeId n) const {
    std::span<const NodeId> base;
    if (n < base_nodes_) base = base_.graph().In(n);
    std::span<const NodeId> extra;
    const int32_t ix = in_extra_idx_[n];
    if (ix >= 0) {
      extra = {in_extras_[ix].data(), in_extras_[ix].size()};
    }
    return {base, extra};
  }

  // --- provenance / labels ---
  const CombinedGraph& combined() const { return base_; }
  NodeId n1() const { return base_.n1(); }
  bool InSource(NodeId n) const { return n < base_.n1(); }
  size_t base_nodes() const { return base_nodes_; }
  TermKind KindOf(NodeId n) const { return kinds_[n]; }
  std::string_view Lexical(NodeId n) const {
    return base_.graph().dict().Get(lex_[n]);
  }
  LexId LexicalId(NodeId n) const { return lex_[n]; }
  bool IsDead(NodeId n) const { return dead_[n] != 0; }
  bool IsLive(NodeId n) const { return dead_[n] == 0; }
  size_t NumLiveNodes() const { return NumNodes() - num_dead_; }
  /// Live target-side triples (source-side triples are immutable).
  size_t NumTargetTriples() const { return target_triples_; }

  /// Live target-side node with this label, or kInvalidNode. The source
  /// side is intentionally not consulted: fragments address the mutable
  /// target graph only.
  NodeId FindTarget(TermKind kind, std::string_view lex) const;

  // --- mutation (target side only) ---

  /// Appends a live target-side node with this label. The label must not
  /// name a live target node (check with FindTarget first).
  NodeId AddNode(TermKind kind, std::string_view lex);

  /// Adds (s,p,o) to the target side; false when already present. `s` must
  /// be a live target-side node.
  bool AddTriple(NodeId s, NodeId p, NodeId o);

  /// Removes (s,p,o); false when absent (no-op).
  bool RemoveTriple(NodeId s, NodeId p, NodeId o);

  /// Tombstones a live target-side node and frees its label.
  void MarkDead(NodeId n);

  /// True when any *live* triple still uses n as predicate or object. The
  /// subject position is Out(n), which callers check separately.
  bool ReferencedAsPredicateOrObject(NodeId n) const;

 private:
  DynamicGraph(CombinedGraph base);

  std::vector<PredicateObject>& MutableOut(NodeId n);
  void AddInExtra(NodeId target, NodeId subject);
  static uint64_t LabelKey(TermKind kind, LexId lex) {
    return (static_cast<uint64_t>(kind) << 32) | lex;
  }

  CombinedGraph base_;
  size_t base_nodes_;

  // Node columns covering base + appended nodes.
  std::vector<TermKind> kinds_;
  std::vector<LexId> lex_;
  std::vector<uint8_t> dead_;
  std::vector<int32_t> out_overlay_idx_;  ///< -1 = base CSR slice
  std::vector<int32_t> in_extra_idx_;     ///< -1 = no extras
  std::vector<std::vector<PredicateObject>> out_overlay_;
  std::vector<std::vector<NodeId>> in_extras_;

  std::unordered_map<uint64_t, NodeId> target_by_label_;
  size_t num_dead_ = 0;
  size_t target_triples_ = 0;
};

}  // namespace rdfalign::stream

#endif  // RDFALIGN_STREAM_DYNAMIC_GRAPH_H_
