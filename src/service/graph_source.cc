#include "service/graph_source.h"

#include <cstring>
#include <utility>
#include <vector>

#include "parser/ntriples_parser.h"
#include "parser/turtle_parser.h"
#include "store/delta.h"
#include "store/snapshot.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfalign::service {

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

}  // namespace

uint64_t LoadedGraphBytes(const TripleGraph& g) {
  const Dictionary& dict = g.dict();
  uint64_t term_bytes = 0;
  for (LexId id = 0; id < dict.size(); ++id) {
    term_bytes += dict.Get(id).size();
  }
  // Payload arrays are exact; the dictionary index and the label lookup
  // map are estimated at a fixed per-entry overhead so the accounting
  // stays a pure function of the graph's content.
  constexpr uint64_t kPerTermOverhead = 48;   // view + hash index entry
  constexpr uint64_t kPerNodeOverhead = 24;   // label lookup map entry
  return g.labels().size() * sizeof(NodeLabel) +
         g.triples().size() * sizeof(Triple) +
         g.OutOffsets().size() * sizeof(uint64_t) +
         g.OutPairs().size() * sizeof(PredicateObject) +
         g.InOffsets().size() * sizeof(uint64_t) +
         g.InSubjects().size() * sizeof(NodeId) + term_bytes +
         dict.size() * kPerTermOverhead +
         g.NumNodes() * kPerNodeOverhead;
}

Result<LoadedGraphRef> LoadGraphFile(const std::string& path,
                                     const CommonOptions& common,
                                     bool need_fingerprint) {
  const size_t workers = ResolveThreads(common.threads);
  auto loaded = std::make_shared<LoadedGraph>();
  if (store::LooksLikeSnapshot(path)) {
    loaded->kind = common.use_mmap ? "snapshot(mmap)" : "snapshot";
    store::SnapshotLoadOptions options;
    options.use_mmap = common.use_mmap;
    options.verify_checksums = common.verify_checksums;
    RDFALIGN_ASSIGN_OR_RETURN(loaded->graph,
                              store::LoadSnapshot(path, nullptr, options));
  } else if (HasSuffix(path, ".ttl")) {
    loaded->kind = "turtle";
    RDFALIGN_ASSIGN_OR_RETURN(loaded->graph,
                              ParseTurtleFile(path, nullptr, workers));
  } else {
    loaded->kind = "ntriples";
    RDFALIGN_ASSIGN_OR_RETURN(
        loaded->graph, ParseNTriplesFile(path, nullptr, nullptr, workers));
  }
  loaded->resident_bytes = LoadedGraphBytes(loaded->graph);
  if (need_fingerprint) {
    loaded->fingerprint = store::GraphFingerprint(loaded->graph);
    loaded->has_fingerprint = true;
  }
  return LoadedGraphRef(std::move(loaded));
}

Result<AcquiredGraph> DirectGraphSource::Acquire(const std::string& path,
                                                 const CommonOptions& common,
                                                 bool need_fingerprint) {
  WallTimer timer;
  AcquiredGraph out;
  RDFALIGN_ASSIGN_OR_RETURN(out.loaded,
                            LoadGraphFile(path, common, need_fingerprint));
  out.cache_hit = false;
  out.acquire_ms = timer.ElapsedMillis();
  return out;
}

TripleGraph RebindGraph(const LoadedGraphRef& src,
                        const std::shared_ptr<Dictionary>& dict) {
  const TripleGraph& g = src->graph;
  const Dictionary& src_dict = g.dict();
  // `src` is the arena: it owns the graph, which owns its dictionary,
  // which owns (or pins) every term's bytes — one pin covers them all.
  dict->PinArena(src);

  // Intern in ascending source-id order. A freshly loaded graph's
  // dictionary holds exactly its referenced terms in load order, so this
  // reproduces the LexId numbering of loading straight into `dict`.
  std::vector<uint8_t> used(src_dict.size(), 0);
  for (const NodeLabel& l : g.labels()) used[l.lex] = 1;
  std::vector<LexId> remap(src_dict.size(), kInvalidLex);
  for (LexId id = 0; id < src_dict.size(); ++id) {
    if (used[id]) remap[id] = dict->InternPinned(src_dict.Get(id));
  }

  std::vector<NodeLabel> labels(g.NumNodes());
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = NodeLabel{g.labels()[i].kind, remap[g.labels()[i].lex]};
  }

  // Adopt every array as a view pinned by the LoadedGraph: content
  // outlives any cache eviction for as long as the rebound graph does.
  return TripleGraph::FromIndexedParts(
      dict, std::move(labels),
      SharedArray<Triple>(src, g.triples().data(), g.triples().size()),
      SharedArray<uint64_t>(src, g.OutOffsets().data(), g.OutOffsets().size()),
      SharedArray<PredicateObject>(src, g.OutPairs().data(),
                                   g.OutPairs().size()),
      SharedArray<uint64_t>(src, g.InOffsets().data(), g.InOffsets().size()),
      SharedArray<NodeId>(src, g.InSubjects().data(), g.InSubjects().size()));
}

}  // namespace rdfalign::service
