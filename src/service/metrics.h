// Daemon observability: per-verb request/error counters and latency
// samples, aggregated by the server across all worker threads and served
// by the `stats` admin verb (daemon-only — the one-shot CLI has nothing
// to observe).
//
// Latencies are kept as a bounded ring of raw samples per verb (newest
// overwrite oldest beyond kMaxSamples), and percentiles are computed at
// snapshot time with util/stats.h Percentile — the same definition the
// benches print, so `stats` and BENCH_service.json numbers are
// comparable.

#ifndef RDFALIGN_SERVICE_METRICS_H_
#define RDFALIGN_SERVICE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/verbs.h"

namespace rdfalign::service {

/// Transport-level health counters — events that happen before (or
/// instead of) verb dispatch, so the per-verb table cannot see them.
struct TransportCounters {
  uint64_t accept_retries = 0;   ///< transient accept() failures survived
  uint64_t load_shed = 0;        ///< connections rejected over --max-conns
  uint64_t io_timeouts = 0;      ///< frame I/O that hit --io-timeout-ms
  uint64_t protocol_errors = 0;  ///< malformed frames / mid-frame hangups
  uint64_t sessions_parked = 0;  ///< stream sessions kept after hangup
  uint64_t sessions_resumed = 0; ///< parked sessions reclaimed by resume
  uint64_t sessions_expired = 0; ///< parked sessions reaped at linger end
};

class ServerMetrics {
 public:
  /// Per-verb sample ring capacity; beyond it the oldest samples are
  /// overwritten (the counters keep counting).
  static constexpr size_t kMaxSamples = 16384;

  /// Records one finished request. Thread-safe.
  void Record(const std::string& verb, bool error, double latency_ms);

  /// Bumps one transport counter, e.g.
  /// `metrics.Bump(&TransportCounters::load_shed)`. Thread-safe.
  void Bump(uint64_t TransportCounters::*field);

  struct VerbSnapshot {
    std::string verb;
    uint64_t requests = 0;
    uint64_t errors = 0;
    size_t samples = 0;  ///< latencies currently resident in the ring
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double max_ms = 0;  ///< all-time, not ring-bounded
  };

  struct Snapshot {
    uint64_t total_requests = 0;
    uint64_t total_errors = 0;
    TransportCounters transport;
    std::vector<VerbSnapshot> verbs;  ///< sorted by verb name
  };

  Snapshot Take() const;

 private:
  struct VerbStats {
    uint64_t requests = 0;
    uint64_t errors = 0;
    std::vector<double> ring;
    size_t next = 0;  ///< overwrite cursor once the ring is full
    double max_ms = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, VerbStats> verbs_;
  TransportCounters transport_;
};

/// The `stats` admin verb: `stats [--json]`. Handled by the server before
/// verb dispatch (it needs the daemon's metrics, which no GraphSource
/// carries); the one-shot CLI reports it as daemon-only.
VerbResult HandleStatsVerb(const std::vector<std::string>& tokens,
                           const ServerMetrics& metrics);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_METRICS_H_
