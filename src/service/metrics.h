// Daemon observability: per-verb request/error counters and latency
// samples, aggregated by the server across all worker threads and served
// by the `stats` admin verb (daemon-only — the one-shot CLI has nothing
// to observe).
//
// Latencies are kept as a bounded ring of raw samples per verb (newest
// overwrite oldest beyond kMaxSamples), and percentiles are computed at
// snapshot time with util/stats.h Percentile — the same definition the
// benches print, so `stats` and BENCH_service.json numbers are
// comparable.

#ifndef RDFALIGN_SERVICE_METRICS_H_
#define RDFALIGN_SERVICE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "service/verbs.h"

namespace rdfalign::service {

class ServerMetrics {
 public:
  /// Per-verb sample ring capacity; beyond it the oldest samples are
  /// overwritten (the counters keep counting).
  static constexpr size_t kMaxSamples = 16384;

  /// Records one finished request. Thread-safe.
  void Record(const std::string& verb, bool error, double latency_ms);

  struct VerbSnapshot {
    std::string verb;
    uint64_t requests = 0;
    uint64_t errors = 0;
    size_t samples = 0;  ///< latencies currently resident in the ring
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    double max_ms = 0;  ///< all-time, not ring-bounded
  };

  struct Snapshot {
    uint64_t total_requests = 0;
    uint64_t total_errors = 0;
    std::vector<VerbSnapshot> verbs;  ///< sorted by verb name
  };

  Snapshot Take() const;

 private:
  struct VerbStats {
    uint64_t requests = 0;
    uint64_t errors = 0;
    std::vector<double> ring;
    size_t next = 0;  ///< overwrite cursor once the ring is full
    double max_ms = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, VerbStats> verbs_;
};

/// The `stats` admin verb: `stats [--json]`. Handled by the server before
/// verb dispatch (it needs the daemon's metrics, which no GraphSource
/// carries); the one-shot CLI reports it as daemon-only.
VerbResult HandleStatsVerb(const std::vector<std::string>& tokens,
                           const ServerMetrics& metrics);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_METRICS_H_
