#include "service/json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rdfalign::service {

void JsonBuf::Appendf(const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, format, ap);
  va_end(ap);
  if (n > 0) {
    const size_t old = out_.size();
    out_.resize(old + static_cast<size_t>(n) + 1);
    std::vsnprintf(out_.data() + old, static_cast<size_t>(n) + 1, format, ap2);
    out_.resize(old + static_cast<size_t>(n));
  }
  va_end(ap2);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

/// Finds the character position just after `"key": ` or npos.
size_t FindValuePos(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return std::string::npos;
  return at + needle.size();
}

}  // namespace

long long JsonFindInt(const std::string& json, const std::string& key,
                      long long fallback) {
  const size_t pos = FindValuePos(json, key);
  if (pos == std::string::npos || pos >= json.size()) return fallback;
  char* end = nullptr;
  const long long value = std::strtoll(json.c_str() + pos, &end, 10);
  if (end == json.c_str() + pos) return fallback;
  return value;
}

std::string JsonFindString(const std::string& json, const std::string& key,
                           const std::string& fallback) {
  size_t pos = FindValuePos(json, key);
  if (pos == std::string::npos || pos >= json.size() || json[pos] != '"') {
    return fallback;
  }
  ++pos;
  std::string out;
  while (pos < json.size() && json[pos] != '"') {
    char c = json[pos];
    if (c == '\\' && pos + 1 < json.size()) {
      ++pos;
      switch (json[pos]) {
        case 'n':
          c = '\n';
          break;
        case 'r':
          c = '\r';
          break;
        case 't':
          c = '\t';
          break;
        default:
          c = json[pos];
      }
    }
    out += c;
    ++pos;
  }
  return out;
}

bool JsonFindBool(const std::string& json, const std::string& key,
                  bool fallback) {
  const size_t pos = FindValuePos(json, key);
  if (pos == std::string::npos) return fallback;
  if (json.compare(pos, 4, "true") == 0) return true;
  if (json.compare(pos, 5, "false") == 0) return false;
  return fallback;
}

}  // namespace rdfalign::service
