// SnapshotCache: the daemon's LRU of resident graphs.
//
// Entries are keyed by content fingerprint (store::GraphFingerprint), so
// two paths holding byte-different files with the same graph content
// share one resident copy, and a rebuilt/replaced file under the same
// path is never served stale. A path index (path -> fingerprint,
// validated against the file's current size and mtime) makes warm
// lookups stat()-cheap: the graph itself is only read on a miss.
//
// Capacity is bounded in *resident bytes* (LoadedGraphBytes per entry),
// not entry count. Eviction is strict LRU and only detaches an entry
// from the cache — entries are shared_ptrs, and every in-flight request
// holds one (rebound request graphs additionally pin it as their array
// arena), so eviction never frees a graph mid-request; the bytes are
// simply no longer counted as cached.
//
// Thread-safe. Lookups and bookkeeping run under one mutex; file loading
// runs outside it, so concurrent misses on different graphs load in
// parallel. Two concurrent misses on the same content both load; the
// loser adopts the winner's entry and drops its own copy (counted in
// stats().duplicate_loads).

#ifndef RDFALIGN_SERVICE_SNAPSHOT_CACHE_H_
#define RDFALIGN_SERVICE_SNAPSHOT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "service/graph_source.h"

namespace rdfalign::service {

struct SnapshotCacheOptions {
  /// Eviction threshold over the sum of cached entries' resident bytes.
  /// A single graph larger than the capacity is still served (pinned by
  /// the request) but is evicted again immediately.
  uint64_t capacity_bytes = uint64_t{1} << 30;
};

/// Counters; a consistent snapshot is returned by stats().
struct SnapshotCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          ///< loads performed (includes duplicates)
  uint64_t evictions = 0;
  uint64_t duplicate_loads = 0; ///< concurrent same-content miss races
  uint64_t entries = 0;
  uint64_t resident_bytes = 0;
  uint64_t capacity_bytes = 0;
};

/// Per-entry observability (the `cache stats` verb and the tests).
struct SnapshotCacheEntryInfo {
  uint64_t fingerprint = 0;
  uint64_t resident_bytes = 0;
  /// Outstanding references beyond the cache's own (in-flight requests
  /// or rebound graphs still pinning the entry).
  uint64_t external_refs = 0;
  std::string path;  ///< the path that first loaded the entry
  uint64_t nodes = 0;
  uint64_t triples = 0;
};

class SnapshotCache : public GraphSource {
 public:
  explicit SnapshotCache(const SnapshotCacheOptions& options = {});

  /// GraphSource: cache-through load. `need_fingerprint` is ignored —
  /// the fingerprint is the cache key and is always present.
  Result<AcquiredGraph> Acquire(const std::string& path,
                                const CommonOptions& common,
                                bool need_fingerprint) override;

  SnapshotCache* cache() override { return this; }

  SnapshotCacheStats stats() const;

  /// Entries in most-recently-used-first order.
  std::vector<SnapshotCacheEntryInfo> entries() const;

  /// Drops every entry (in-flight references keep their graphs alive).
  void Clear();

 private:
  struct Entry {
    LoadedGraphRef loaded;
    std::string first_path;
    std::list<uint64_t>::iterator lru_it;  // position in lru_
  };
  struct PathKey {
    uint64_t file_size = 0;
    int64_t mtime_ns = 0;
    uint64_t fingerprint = 0;
  };

  /// Evicts LRU entries until resident_bytes_ <= capacity. Lock held.
  void EvictToCapacityLocked();

  const SnapshotCacheOptions options_;

  mutable std::mutex mu_;
  std::list<uint64_t> lru_;  ///< fingerprints, most recent first
  std::unordered_map<uint64_t, Entry> by_fingerprint_;
  std::unordered_map<std::string, PathKey> by_path_;
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t duplicate_loads_ = 0;
};

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_SNAPSHOT_CACHE_H_
