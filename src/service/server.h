// The rdfalignd server: a TCP accept loop plus a fixed worker pool, every
// connection served with the full verb layer against one shared
// SnapshotCache.
//
// Each worker owns one connection at a time and processes its requests
// sequentially; concurrency comes from concurrent connections (bounded by
// `worker_threads`). All workers share the cache, so a snapshot loaded
// for one client is a resident hit for every later request — the reason
// the daemon exists. Requests execute through the same ExecuteVerb as the
// one-shot CLI; the daemon adds only transport and the cache.
//
// Stop() is graceful in two phases. First the listener closes (no new
// connections) and the server DRAINS: every accepted connection —
// including idle ones and open stream sessions — keeps being served
// until its client closes, up to `drain_ms`. Only connections still open
// when the deadline expires are then forced shut at their next frame
// boundary (in-flight requests still complete and deliver their
// responses). This is what SIGTERM triggers in tools/rdfalignd.cc; the
// earlier behavior of shutting idle connections down immediately raced
// clients that had a request half-written.

#ifndef RDFALIGN_SERVICE_SERVER_H_
#define RDFALIGN_SERVICE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/metrics.h"
#include "service/session_registry.h"
#include "service/snapshot_cache.h"
#include "util/result.h"

namespace rdfalign::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0 picks an ephemeral port (see Server::port())
  size_t worker_threads = 4;
  uint64_t cache_bytes = uint64_t{1} << 30;
  /// How long Stop() waits for connected clients to finish and hang up
  /// before forcing the remaining connections shut.
  uint64_t drain_ms = 30000;
  /// Per-frame read/write deadline on every connection. A peer that
  /// cannot complete a frame (trickling bytes, hung, or idle between
  /// requests) within this window is evicted and counted in
  /// transport.io_timeouts. 0 disables deadlines (the default).
  uint64_t io_timeout_ms = 0;
  /// Maximum concurrently open connections. Beyond it, new connections
  /// receive a clean load-shed error response and are closed immediately
  /// (transport.load_shed). 0 means unlimited (the default).
  size_t max_conns = 0;
  /// How long a disconnected stream session stays resumable via
  /// `stream resume <token>` before it is reaped. 0 (the default) keeps
  /// the original behavior: sessions die with their connection.
  uint64_t session_linger_ms = 0;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept + worker threads.
  Status Start();

  /// The bound port (resolves port 0 after Start()).
  int port() const { return port_; }

  /// Graceful shutdown; idempotent, also run by the destructor.
  void Stop();

  SnapshotCache* cache() { return &cache_; }
  const ServerMetrics& metrics() const { return metrics_; }
  StreamSessionRegistry* sessions() { return &sessions_; }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  void ReapExpiredSessions();
  bool ShouldShed(int fd);

  const ServerOptions options_;
  SnapshotCache cache_;
  ServerMetrics metrics_;
  StreamSessionRegistry sessions_;  ///< parked resumable stream sessions

  int listen_fd_ = -1;
  int port_ = 0;
  bool running_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::condition_variable drain_cv_;  ///< signaled as connections close
  std::deque<int> pending_;     ///< accepted fds awaiting a worker
  std::set<int> connections_;   ///< every open connection fd
  bool draining_ = false;       ///< Stop() phase 1: no new connections
};

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_SERVER_H_
