// GraphSource: how a verb obtains a loaded graph for a path.
//
// The verb implementations (service/verbs.h) never open files themselves —
// they Acquire() graphs from a GraphSource, which is either
//
//   * DirectGraphSource — load per call, the one-shot CLI behavior, or
//   * SnapshotCache (service/snapshot_cache.h) — the daemon's LRU of
//     resident graphs keyed by content fingerprint.
//
// Every acquired graph carries its own private Dictionary (a cached graph
// is shared by many concurrent requests and a Dictionary is not
// thread-safe to grow). Verbs that need several graphs in one label space
// — align, diff, archive — rebind each acquired graph into a
// request-local shared dictionary with RebindGraph: the triple list and
// all four CSR arrays are adopted as zero-copy pinned views (the pin
// keeps the cache entry alive even if it is evicted mid-request) and only
// the label column is rewritten. Rebinding interns terms in ascending
// source-id order, which makes the resulting LexId assignment — and hence
// every downstream report — byte-identical to the historical
// load-both-into-one-dictionary CLI path.

#ifndef RDFALIGN_SERVICE_GRAPH_SOURCE_H_
#define RDFALIGN_SERVICE_GRAPH_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "rdf/graph.h"
#include "service/flags.h"
#include "util/result.h"

namespace rdfalign::service {

class SnapshotCache;

/// A loaded, immutable graph plus the metadata the service layer tracks
/// about it. Thread-safe to share by const reference: nothing mutates a
/// LoadedGraph after construction.
struct LoadedGraph {
  TripleGraph graph;
  std::string kind;            ///< "snapshot" | "snapshot(mmap)" | "ntriples" | "turtle"
  uint64_t fingerprint = 0;    ///< store::GraphFingerprint; valid iff has_fingerprint
  bool has_fingerprint = false;
  uint64_t resident_bytes = 0; ///< LoadedGraphBytes estimate
};

using LoadedGraphRef = std::shared_ptr<const LoadedGraph>;

/// One Acquire outcome: the graph plus per-request provenance.
struct AcquiredGraph {
  LoadedGraphRef loaded;
  bool cache_hit = false;
  double acquire_ms = 0;  ///< wall time spent inside Acquire
};

/// Abstract provider of loaded graphs.
class GraphSource {
 public:
  virtual ~GraphSource() = default;

  /// Loads (or fetches) the graph at `path`, sniffing snapshot vs RDF
  /// text by magic / suffix. `common` supplies threads / mmap / checksum
  /// policy for an actual load. When `need_fingerprint` is set the
  /// returned LoadedGraph has its content fingerprint populated (a cache
  /// always has it; a direct load computes it on demand).
  virtual Result<AcquiredGraph> Acquire(const std::string& path,
                                        const CommonOptions& common,
                                        bool need_fingerprint) = 0;

  /// The snapshot cache backing this source, or nullptr (direct loads).
  virtual SnapshotCache* cache() { return nullptr; }
};

/// Loads fresh on every call — the one-shot CLI source.
class DirectGraphSource : public GraphSource {
 public:
  Result<AcquiredGraph> Acquire(const std::string& path,
                                const CommonOptions& common,
                                bool need_fingerprint) override;
};

/// Loads the graph at `path` into a fresh private dictionary, sniffing
/// snapshots (by magic), Turtle (suffix .ttl), and N-Triples (default).
/// Shared by DirectGraphSource and the cache's miss path.
Result<LoadedGraphRef> LoadGraphFile(const std::string& path,
                                     const CommonOptions& common,
                                     bool need_fingerprint);

/// Deterministic resident-memory estimate of a loaded graph (labels,
/// triple list, both CSR indexes, dictionary bytes and index overhead) —
/// the cache's byte-accounting unit, exposed so tests can predict
/// capacity behavior exactly.
uint64_t LoadedGraphBytes(const TripleGraph& g);

/// Rebinds `src`'s graph into `dict`: terms are interned (as pinned
/// views; `src` itself is pinned into `dict` as the arena) in ascending
/// source-LexId order, the label column is rewritten, and the triple /
/// CSR arrays are adopted as zero-copy views kept alive by `src`. The
/// result is content-identical to the source graph and safe to use after
/// the source is evicted from any cache.
TripleGraph RebindGraph(const LoadedGraphRef& src,
                        const std::shared_ptr<Dictionary>& dict);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_GRAPH_SOURCE_H_
