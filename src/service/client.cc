#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <thread>
#include <utility>

#include "service/flags.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/verbs.h"
#include "store/update_fragment.h"
#include "util/fault_injector.h"

namespace rdfalign::service {

namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// One connect attempt, optionally bounded by `timeout_ms` (non-blocking
/// connect + poll). The fd comes back in blocking mode.
Result<int> ConnectOnce(const std::string& resolved, const std::string& host,
                        int port, int timeout_ms) {
  auto fail = [&](const std::string& why) {
    return Status::IOError("cannot connect to " + resolved + ":" +
                           std::to_string(port) + ": " + why);
  };
  const FaultAction fault = FaultInjector::Hit("client.connect");
  if (fault.kind == FaultAction::kError ||
      fault.kind == FaultAction::kEintr) {
    return fail(std::strerror(fault.error_errno));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (timeout_ms > 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && timeout_ms > 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      ::close(fd);
      return fail("socket timeout (connect)");
    }
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (rc < 0 || soerr != 0) {
      const std::string why = std::strerror(soerr != 0 ? soerr : errno);
      ::close(fd);
      return fail(why);
    }
    rc = 0;
  }
  if (rc != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return fail(why);
  }
  if (timeout_ms > 0) ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

bool IsIdempotentVerb(const std::string& verb) {
  return verb == "info" || verb == "align" || verb == "cache" ||
         verb == "stats";
}

int RetryBackoffMs(int base_ms, int attempt) {
  int64_t window = base_ms > 0 ? base_ms : 1;
  window <<= attempt > 10 ? 10 : attempt;
  if (window > 5000) window = 5000;
  static thread_local std::mt19937_64 rng{std::random_device{}()};
  return 1 + static_cast<int>(std::uniform_int_distribution<int64_t>(
                 0, window - 1)(rng));
}

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(const std::string& host, int port,
                               const ClientOptions& options) {
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  Result<int> fd = Status::IOError("unreachable");
  for (int attempt = 0;; ++attempt) {
    fd = ConnectOnce(resolved, host, port, options.timeout_ms);
    if (fd.ok() || fd.status().IsInvalidArgument() ||
        attempt >= options.retries) {
      break;
    }
    SleepMs(RetryBackoffMs(options.retry_backoff_ms, attempt));
  }
  RDFALIGN_RETURN_IF_ERROR(fd.status());
  Client client;
  client.fd_ = *fd;
  client.host_ = resolved;
  client.port_ = port;
  client.options_ = options;
  return client;
}

Status Client::Reconnect() {
  if (host_.empty()) return Status::InvalidArgument("client never connected");
  Close();
  RDFALIGN_ASSIGN_OR_RETURN(int fd,
                            ConnectOnce(host_, host_, port_,
                                        options_.timeout_ms));
  fd_ = fd;
  return Status::OK();
}

Result<ClientResponse> Client::Call(const std::vector<std::string>& tokens) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  RDFALIGN_RETURN_IF_ERROR(
      WriteFrame(fd_, EncodeRequest(tokens), options_.timeout_ms));
  return ReadResponse();
}

Result<ClientResponse> Client::CallWithPayload(
    const std::vector<std::string>& tokens, const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  RDFALIGN_RETURN_IF_ERROR(
      WriteFrame(fd_, EncodeRequest(tokens), options_.timeout_ms));
  RDFALIGN_RETURN_IF_ERROR(WriteFrame(fd_, payload, options_.timeout_ms));
  return ReadResponse();
}

Result<ClientResponse> Client::CallIdempotent(
    const std::vector<std::string>& tokens) {
  Result<ClientResponse> resp = Call(tokens);
  for (int attempt = 0; !resp.ok() && attempt < options_.retries;
       ++attempt) {
    SleepMs(RetryBackoffMs(options_.retry_backoff_ms, attempt));
    Status re = Reconnect();
    if (!re.ok()) {
      resp = re;
      continue;
    }
    resp = Call(tokens);
  }
  return resp;
}

Result<ClientResponse> Client::ReadResponse() {
  std::string envelope;
  RDFALIGN_ASSIGN_OR_RETURN(bool have_envelope,
                            ReadFrame(fd_, &envelope, options_.timeout_ms));
  if (!have_envelope) {
    return Status::IOError("server closed the connection");
  }
  ClientResponse resp;
  resp.exit_code =
      static_cast<int>(JsonFindInt(envelope, "exit_code", 1));
  resp.ok = JsonFindBool(envelope, "ok", resp.exit_code == 0);
  resp.usage_error = JsonFindBool(envelope, "usage_error", false);
  resp.verb = JsonFindString(envelope, "verb", "");
  resp.error = JsonFindString(envelope, "error", "");
  resp.cache_hits =
      static_cast<uint64_t>(JsonFindInt(envelope, "cache_hits", 0));
  resp.cache_misses =
      static_cast<uint64_t>(JsonFindInt(envelope, "cache_misses", 0));

  RDFALIGN_ASSIGN_OR_RETURN(bool have_body,
                            ReadFrame(fd_, &resp.body, options_.timeout_ms));
  if (!have_body) {
    return Status::IOError("server closed the connection mid-response");
  }
  return resp;
}

Status ParseEndpoint(const std::string& spec, std::string* host, int* port) {
  std::string port_text = spec;
  *host = "127.0.0.1";
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    *host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || *end != '\0' || errno == ERANGE || value < 1 ||
      value > 65535) {
    return Status::InvalidArgument("bad endpoint '" + spec +
                                   "' (expected host:port or port)");
  }
  *port = static_cast<int>(value);
  return Status::OK();
}

namespace {

/// Pulls `--timeout-ms=N`, `--retries=N`, `--retry-backoff-ms=N` out of a
/// token list — they configure the local transport and are never
/// forwarded to the daemon. Returns false with a message on a bad value.
bool ExtractClientOptions(std::vector<std::string>* tokens,
                          ClientOptions* opts, std::string* message) {
  auto take = [&](const std::string& token, const char* prefix,
                  int* out) -> bool {
    const size_t n = std::strlen(prefix);
    if (token.rfind(prefix, 0) != 0) return false;
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(token.c_str() + n, &end, 10);
    if (*(token.c_str() + n) == '\0' || *end != '\0' || errno == ERANGE ||
        value < 0) {
      *message = "bad value in '" + token + "' (expected an integer >= 0)";
      *out = -1;
    } else {
      *out = static_cast<int>(value);
    }
    return true;
  };
  std::vector<std::string> kept;
  kept.reserve(tokens->size());
  for (const std::string& token : *tokens) {
    int value = 0;
    if (take(token, "--timeout-ms=", &value)) {
      if (value < 0) return false;
      opts->timeout_ms = value;
    } else if (take(token, "--retries=", &value)) {
      if (value < 0) return false;
      opts->retries = value;
    } else if (take(token, "--retry-backoff-ms=", &value)) {
      if (value < 0) return false;
      opts->retry_backoff_ms = value;
    } else {
      kept.push_back(token);
    }
  }
  *tokens = std::move(kept);
  return true;
}

}  // namespace

int RunClientCommand(const std::vector<std::string>& tokens) {
  // tokens[0] == "client"; tokens[1] == endpoint; the rest is the verb
  // invocation, forwarded verbatim (minus the local transport flags).
  std::vector<std::string> remaining = tokens;
  ClientOptions opts;
  std::string message;
  if (!ExtractClientOptions(&remaining, &opts, &message)) {
    std::fprintf(stderr, "rdfalign client: %s\n", message.c_str());
    return 2;
  }
  if (remaining.size() < 3) {
    std::fprintf(stderr,
                 "rdfalign client: usage: rdfalign client "
                 "<host:port|port> <command> [args] [--timeout-ms=N] "
                 "[--retries=N] [--retry-backoff-ms=N]\n");
    return 2;
  }
  std::string host;
  int port = 0;
  Status st = ParseEndpoint(remaining[1], &host, &port);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign client: %s\n", st.ToString().c_str());
    return 2;
  }
  Result<Client> client = Client::Connect(host, port, opts);
  if (!client.ok()) {
    std::fprintf(stderr, "rdfalign client: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> verb_tokens(remaining.begin() + 2,
                                             remaining.end());
  // Only read-only verbs are auto-retried: re-sending a build/patch after
  // a lost response could apply it twice.
  Result<ClientResponse> resp =
      !verb_tokens.empty() && IsIdempotentVerb(verb_tokens[0])
          ? client->CallIdempotent(verb_tokens)
          : client->Call(verb_tokens);
  if (!resp.ok()) {
    std::fprintf(stderr, "rdfalign client: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  if (!resp->body.empty()) std::fputs(resp->body.c_str(), stdout);
  if (!resp->error.empty()) {
    std::fprintf(stderr, "%s\n", resp->error.c_str());
  }
  if (resp->usage_error) std::fputs(UsageText(), stderr);
  return resp->exit_code;
}

namespace {

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Prints one daemon response like RunClientCommand does and reports
/// whether the session should continue.
int PrintStreamResponse(const Result<ClientResponse>& resp) {
  if (!resp.ok()) {
    std::fprintf(stderr, "rdfalign stream: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  if (!resp->body.empty()) std::fputs(resp->body.c_str(), stdout);
  if (!resp->error.empty()) {
    std::fprintf(stderr, "%s\n", resp->error.c_str());
  }
  return resp->exit_code;
}

int StreamUsage() {
  std::fprintf(stderr,
               "rdfalign stream: usage: rdfalign stream <host:port|port> "
               "<source> <target> --updates=u1[,u2,...] "
               "[--method=trivial|deblank] [--threads=N] [--check=final] "
               "[--json] [--timeout-ms=N] [--retries=N] "
               "[--retry-backoff-ms=N]\n");
  return 2;
}

/// The session token `stream open` reported, parsed out of either the
/// text body ("  session: st-...") or the JSON body ("\"session\": ...").
std::string FindSessionToken(const std::string& body) {
  const size_t key = body.find("session");
  if (key == std::string::npos) return "";
  const size_t pos = body.find("st-", key);
  if (pos == std::string::npos) return "";
  size_t end = pos + 3;
  while (end < body.size() && std::isxdigit(
             static_cast<unsigned char>(body[end]))) {
    ++end;
  }
  return body.substr(pos, end - pos);
}

}  // namespace

int RunStreamCommand(const std::vector<std::string>& tokens) {
  // tokens[0] == "stream"; the rest is endpoint, source, target + flags.
  std::vector<std::string> remaining = tokens;
  ClientOptions opts;
  std::string message;
  if (!ExtractClientOptions(&remaining, &opts, &message)) {
    std::fprintf(stderr, "rdfalign stream: %s\n", message.c_str());
    return 2;
  }
  const Args args(
      std::vector<std::string>(remaining.begin() + 1, remaining.end()));
  if (args.positional().size() != 3 ||
      !args.OnlyKnown({"updates", "method", "threads", "check", "json"},
                      &message)) {
    if (!message.empty()) std::fprintf(stderr, "%s\n", message.c_str());
    return StreamUsage();
  }
  const std::vector<std::string> updates =
      SplitCommas(args.GetString("updates", ""));
  if (updates.empty()) {
    std::fprintf(stderr,
                 "rdfalign stream: --updates expects at least one update "
                 "fragment file\n");
    return 2;
  }

  std::string host;
  int port = 0;
  Status st = ParseEndpoint(args.positional()[0], &host, &port);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign stream: %s\n", st.ToString().c_str());
    return 2;
  }
  Result<Client> client = Client::Connect(host, port, opts);
  if (!client.ok()) {
    std::fprintf(stderr, "rdfalign stream: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  // Set after a successful open; enables transparent reconnect + resume.
  std::string session_token;

  // Runs one session request; on a transport failure, reconnects and
  // resumes the parked session (the daemon must run with
  // --session-linger-ms), then re-sends. A re-sent `stream push` whose
  // fragment already applied is replayed bit-identically from the
  // daemon's per-session response cache, so the printed transcript
  // matches an uninterrupted run.
  auto call_resilient =
      [&](const std::vector<std::string>& t,
          const std::string* payload) -> Result<ClientResponse> {
    Result<ClientResponse> r =
        payload != nullptr ? client->CallWithPayload(t, *payload)
                           : client->Call(t);
    for (int attempt = 0;
         !r.ok() && attempt < opts.retries && !session_token.empty();
         ++attempt) {
      SleepMs(RetryBackoffMs(opts.retry_backoff_ms, attempt));
      Status re = client->Reconnect();
      if (!re.ok()) {
        r = re;
        continue;
      }
      Result<ClientResponse> resumed =
          client->Call({"stream", "resume", session_token});
      if (!resumed.ok()) {
        r = resumed.status();
        continue;
      }
      if (resumed->exit_code != 0) return resumed;  // resume rejected
      r = payload != nullptr ? client->CallWithPayload(t, *payload)
                             : client->Call(t);
    }
    return r;
  };

  std::vector<std::string> open_tokens = {"stream", "open",
                                          args.positional()[1],
                                          args.positional()[2]};
  open_tokens.push_back("--method=" + args.GetString("method", "deblank"));
  if (args.Has("threads")) {
    open_tokens.push_back("--threads=" + args.GetString("threads", "1"));
  }
  if (args.Has("json")) open_tokens.push_back("--json");
  Result<ClientResponse> open = client->Call(open_tokens);
  if (open.ok() && open->exit_code == 0) {
    session_token = FindSessionToken(open->body);
  }
  int code = PrintStreamResponse(open);
  if (code != 0) return code;

  std::vector<std::string> push_tokens = {"stream", "push"};
  if (args.Has("json")) push_tokens.push_back("--json");
  for (const std::string& path : updates) {
    Result<std::string> bytes = store::ReadFileBytes(path);
    if (!bytes.ok()) {
      std::fprintf(stderr, "rdfalign stream: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    code = PrintStreamResponse(call_resilient(push_tokens, &*bytes));
    if (code != 0) return code;
  }

  if (args.Has("check")) {
    std::vector<std::string> check_tokens = {"stream", "check",
                                             args.GetString("check", "")};
    if (args.Has("json")) check_tokens.push_back("--json");
    code = PrintStreamResponse(call_resilient(check_tokens, nullptr));
    if (code != 0) return code;
  }

  std::vector<std::string> close_tokens = {"stream", "close"};
  if (args.Has("json")) close_tokens.push_back("--json");
  return PrintStreamResponse(call_resilient(close_tokens, nullptr));
}

}  // namespace rdfalign::service
