#include "service/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "service/flags.h"
#include "service/json.h"
#include "service/protocol.h"
#include "service/verbs.h"
#include "store/update_fragment.h"

namespace rdfalign::service {

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Client> Client::Connect(const std::string& host, int port) {
  const std::string resolved = host == "localhost" ? "127.0.0.1" : host;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, resolved.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string message = "cannot connect to " + resolved + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno);
    ::close(fd);
    return Status::IOError(message);
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  return client;
}

Result<ClientResponse> Client::Call(const std::vector<std::string>& tokens) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  RDFALIGN_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(tokens)));
  return ReadResponse();
}

Result<ClientResponse> Client::CallWithPayload(
    const std::vector<std::string>& tokens, const std::string& payload) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  RDFALIGN_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(tokens)));
  RDFALIGN_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  return ReadResponse();
}

Result<ClientResponse> Client::ReadResponse() {
  std::string envelope;
  RDFALIGN_ASSIGN_OR_RETURN(bool have_envelope, ReadFrame(fd_, &envelope));
  if (!have_envelope) {
    return Status::IOError("server closed the connection");
  }
  ClientResponse resp;
  resp.exit_code =
      static_cast<int>(JsonFindInt(envelope, "exit_code", 1));
  resp.ok = JsonFindBool(envelope, "ok", resp.exit_code == 0);
  resp.usage_error = JsonFindBool(envelope, "usage_error", false);
  resp.verb = JsonFindString(envelope, "verb", "");
  resp.error = JsonFindString(envelope, "error", "");
  resp.cache_hits =
      static_cast<uint64_t>(JsonFindInt(envelope, "cache_hits", 0));
  resp.cache_misses =
      static_cast<uint64_t>(JsonFindInt(envelope, "cache_misses", 0));

  RDFALIGN_ASSIGN_OR_RETURN(bool have_body, ReadFrame(fd_, &resp.body));
  if (!have_body) {
    return Status::IOError("server closed the connection mid-response");
  }
  return resp;
}

Status ParseEndpoint(const std::string& spec, std::string* host, int* port) {
  std::string port_text = spec;
  *host = "127.0.0.1";
  const size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    *host = spec.substr(0, colon);
    port_text = spec.substr(colon + 1);
  }
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(port_text.c_str(), &end, 10);
  if (port_text.empty() || *end != '\0' || errno == ERANGE || value < 1 ||
      value > 65535) {
    return Status::InvalidArgument("bad endpoint '" + spec +
                                   "' (expected host:port or port)");
  }
  *port = static_cast<int>(value);
  return Status::OK();
}

int RunClientCommand(const std::vector<std::string>& tokens) {
  // tokens[0] == "client"; tokens[1] == endpoint; the rest is the verb
  // invocation, forwarded verbatim.
  if (tokens.size() < 3) {
    std::fprintf(stderr,
                 "rdfalign client: usage: rdfalign client "
                 "<host:port|port> <command> [args]\n");
    return 2;
  }
  std::string host;
  int port = 0;
  Status st = ParseEndpoint(tokens[1], &host, &port);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign client: %s\n", st.ToString().c_str());
    return 2;
  }
  Result<Client> client = Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "rdfalign client: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> verb_tokens(tokens.begin() + 2,
                                             tokens.end());
  Result<ClientResponse> resp = client->Call(verb_tokens);
  if (!resp.ok()) {
    std::fprintf(stderr, "rdfalign client: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  if (!resp->body.empty()) std::fputs(resp->body.c_str(), stdout);
  if (!resp->error.empty()) {
    std::fprintf(stderr, "%s\n", resp->error.c_str());
  }
  if (resp->usage_error) std::fputs(UsageText(), stderr);
  return resp->exit_code;
}

namespace {

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) out.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Prints one daemon response like RunClientCommand does and reports
/// whether the session should continue.
int PrintStreamResponse(const Result<ClientResponse>& resp) {
  if (!resp.ok()) {
    std::fprintf(stderr, "rdfalign stream: %s\n",
                 resp.status().ToString().c_str());
    return 1;
  }
  if (!resp->body.empty()) std::fputs(resp->body.c_str(), stdout);
  if (!resp->error.empty()) {
    std::fprintf(stderr, "%s\n", resp->error.c_str());
  }
  return resp->exit_code;
}

int StreamUsage() {
  std::fprintf(stderr,
               "rdfalign stream: usage: rdfalign stream <host:port|port> "
               "<source> <target> --updates=u1[,u2,...] "
               "[--method=trivial|deblank] [--threads=N] [--check=final] "
               "[--json]\n");
  return 2;
}

}  // namespace

int RunStreamCommand(const std::vector<std::string>& tokens) {
  // tokens[0] == "stream"; the rest is endpoint, source, target + flags.
  const Args args(std::vector<std::string>(tokens.begin() + 1, tokens.end()));
  std::string message;
  if (args.positional().size() != 3 ||
      !args.OnlyKnown({"updates", "method", "threads", "check", "json"},
                      &message)) {
    if (!message.empty()) std::fprintf(stderr, "%s\n", message.c_str());
    return StreamUsage();
  }
  const std::vector<std::string> updates =
      SplitCommas(args.GetString("updates", ""));
  if (updates.empty()) {
    std::fprintf(stderr,
                 "rdfalign stream: --updates expects at least one update "
                 "fragment file\n");
    return 2;
  }

  std::string host;
  int port = 0;
  Status st = ParseEndpoint(args.positional()[0], &host, &port);
  if (!st.ok()) {
    std::fprintf(stderr, "rdfalign stream: %s\n", st.ToString().c_str());
    return 2;
  }
  Result<Client> client = Client::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "rdfalign stream: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  std::vector<std::string> open_tokens = {"stream", "open",
                                          args.positional()[1],
                                          args.positional()[2]};
  open_tokens.push_back("--method=" + args.GetString("method", "deblank"));
  if (args.Has("threads")) {
    open_tokens.push_back("--threads=" + args.GetString("threads", "1"));
  }
  if (args.Has("json")) open_tokens.push_back("--json");
  int code = PrintStreamResponse(client->Call(open_tokens));
  if (code != 0) return code;

  std::vector<std::string> push_tokens = {"stream", "push"};
  if (args.Has("json")) push_tokens.push_back("--json");
  for (const std::string& path : updates) {
    Result<std::string> bytes = store::ReadFileBytes(path);
    if (!bytes.ok()) {
      std::fprintf(stderr, "rdfalign stream: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    code = PrintStreamResponse(client->CallWithPayload(push_tokens, *bytes));
    if (code != 0) return code;
  }

  if (args.Has("check")) {
    std::vector<std::string> check_tokens = {"stream", "check",
                                             args.GetString("check", "")};
    if (args.Has("json")) check_tokens.push_back("--json");
    code = PrintStreamResponse(client->Call(check_tokens));
    if (code != 0) return code;
  }

  std::vector<std::string> close_tokens = {"stream", "close"};
  if (args.Has("json")) close_tokens.push_back("--json");
  return PrintStreamResponse(client->Call(close_tokens));
}

}  // namespace rdfalign::service
