// The daemon's `stream` verb: a per-connection streaming-alignment
// session over the length-prefixed protocol (docs/stream.md).
//
//   stream open <source> <target> [--method=trivial|deblank]
//          [--threads=N] [--mmap] [--json]
//   stream push [--json]          (+ ONE extra binary frame: the RDFUPDT1
//                                  update fragment, store/update_fragment.h)
//   stream resume <token> [--json]
//   stream check <final-target> [--json]
//   stream stats [--json]
//   stream close [--json]
//
// The session lives as long as its connection: ServeConnection owns the
// StreamSession and drops it on disconnect, so an interrupted client can
// never leak a resident aligner. When the daemon runs with
// --session-linger-ms > 0, a disconnect parks the session in the server's
// StreamSessionRegistry instead, and `stream resume <token>` (the token
// is reported by `stream open`) reclaims it on a new connection.
// `stream push` is the one request in the protocol that carries a payload
// frame after the request frame — the server reads it before dispatch,
// the client sends it with Client::CallWithPayload.
//
// Replay after reconnect: the fragment's producer-assigned `sequence` is
// the idempotency key. A push whose sequence was already applied (a
// client re-sending after a lost response) is NOT re-applied; the
// daemon replays the original rendered response bit-identically from a
// bounded per-session cache (the most recent kReplayWindow pushes), or
// fails cleanly if the entry has aged out. Fragments with sequence 0 are
// exempt (no producer numbering — always applied).
//
// Apply errors are fatal to the session (the aligner may be partially
// updated); the session is closed and the error reported, and a new
// `stream open` starts fresh.

#ifndef RDFALIGN_SERVICE_STREAM_VERBS_H_
#define RDFALIGN_SERVICE_STREAM_VERBS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/verbs.h"
#include "stream/stream_aligner.h"

namespace rdfalign::service {

class StreamSessionRegistry;

/// One connection's live streaming session.
struct StreamSession {
  /// Rendered push responses retained for reconnect replay, per session.
  static constexpr size_t kReplayWindow = 64;

  std::string token;  ///< resume handle, minted by `stream open`
  std::string source_path;
  std::string target_path;
  AlignMethod method = AlignMethod::kDeblank;
  CommonOptions common;
  std::unique_ptr<stream::StreamAligner> aligner;
  uint64_t fragments = 0;
  uint64_t pairs_added_total = 0;
  uint64_t pairs_removed_total = 0;
  uint64_t last_seq = 0;  ///< highest producer sequence applied (0 = none)
  /// sequence -> rendered response of the original apply (both the --json
  /// and text renderings are cached under the flag set used at push time).
  std::map<uint64_t, std::string> replay;
};

/// Dispatches one `stream ...` request. `fragment` is the payload frame
/// (non-empty only for `stream push`); `session` is the connection's slot,
/// created by open (or resume) and cleared by close or a fatal apply
/// error. `registry` backs `stream resume` — nullptr disables it.
VerbResult HandleStreamVerb(const std::vector<std::string>& tokens,
                            const std::string& fragment,
                            std::unique_ptr<StreamSession>* session,
                            GraphSource* source,
                            StreamSessionRegistry* registry);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_STREAM_VERBS_H_
