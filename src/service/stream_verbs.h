// The daemon's `stream` verb: a per-connection streaming-alignment
// session over the length-prefixed protocol (docs/stream.md).
//
//   stream open <source> <target> [--method=trivial|deblank]
//          [--threads=N] [--mmap] [--json]
//   stream push [--json]          (+ ONE extra binary frame: the RDFUPDT1
//                                  update fragment, store/update_fragment.h)
//   stream check <final-target> [--json]
//   stream stats [--json]
//   stream close [--json]
//
// The session lives exactly as long as its connection: ServeConnection
// owns the StreamSession and drops it on disconnect, so an interrupted
// client can never leak a resident aligner. `stream push` is the one
// request in the protocol that carries a payload frame after the request
// frame — the server reads it before dispatch, the client sends it with
// Client::CallWithPayload.
//
// Apply errors are fatal to the session (the aligner may be partially
// updated); the session is closed and the error reported, and a new
// `stream open` starts fresh.

#ifndef RDFALIGN_SERVICE_STREAM_VERBS_H_
#define RDFALIGN_SERVICE_STREAM_VERBS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "service/verbs.h"
#include "stream/stream_aligner.h"

namespace rdfalign::service {

/// One connection's live streaming session.
struct StreamSession {
  std::string source_path;
  std::string target_path;
  AlignMethod method = AlignMethod::kDeblank;
  CommonOptions common;
  std::unique_ptr<stream::StreamAligner> aligner;
  uint64_t fragments = 0;
  uint64_t pairs_added_total = 0;
  uint64_t pairs_removed_total = 0;
};

/// Dispatches one `stream ...` request. `fragment` is the payload frame
/// (non-empty only for `stream push`); `session` is the connection's slot,
/// created by open and cleared by close or a fatal apply error.
VerbResult HandleStreamVerb(const std::vector<std::string>& tokens,
                            const std::string& fragment,
                            std::unique_ptr<StreamSession>* session,
                            GraphSource* source);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_STREAM_VERBS_H_
