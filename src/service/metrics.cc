#include "service/metrics.h"

#include "service/json.h"
#include "util/stats.h"

namespace rdfalign::service {

void ServerMetrics::Record(const std::string& verb, bool error,
                           double latency_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  VerbStats& s = verbs_[verb.empty() ? "(empty)" : verb];
  ++s.requests;
  if (error) ++s.errors;
  if (latency_ms > s.max_ms) s.max_ms = latency_ms;
  if (s.ring.size() < kMaxSamples) {
    s.ring.push_back(latency_ms);
  } else {
    s.ring[s.next] = latency_ms;
    s.next = (s.next + 1) % kMaxSamples;
  }
}

void ServerMetrics::Bump(uint64_t TransportCounters::*field) {
  std::lock_guard<std::mutex> lock(mu_);
  ++(transport_.*field);
}

ServerMetrics::Snapshot ServerMetrics::Take() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot out;
  out.transport = transport_;
  for (const auto& [verb, s] : verbs_) {
    VerbSnapshot v;
    v.verb = verb;
    v.requests = s.requests;
    v.errors = s.errors;
    v.samples = s.ring.size();
    v.p50_ms = Percentile(s.ring, 0.50);
    v.p95_ms = Percentile(s.ring, 0.95);
    v.p99_ms = Percentile(s.ring, 0.99);
    v.max_ms = s.max_ms;
    out.total_requests += s.requests;
    out.total_errors += s.errors;
    out.verbs.push_back(std::move(v));
  }
  return out;
}

namespace {

std::string StatsToJson(const ServerMetrics::Snapshot& s) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"total_requests\": %llu,\n",
            (unsigned long long)s.total_requests);
  b.Appendf("  \"total_errors\": %llu,\n",
            (unsigned long long)s.total_errors);
  const TransportCounters& t = s.transport;
  b.Appendf(
      "  \"transport\": {\"accept_retries\": %llu, \"load_shed\": %llu, "
      "\"io_timeouts\": %llu, \"protocol_errors\": %llu, "
      "\"sessions_parked\": %llu, \"sessions_resumed\": %llu, "
      "\"sessions_expired\": %llu},\n",
      (unsigned long long)t.accept_retries, (unsigned long long)t.load_shed,
      (unsigned long long)t.io_timeouts,
      (unsigned long long)t.protocol_errors,
      (unsigned long long)t.sessions_parked,
      (unsigned long long)t.sessions_resumed,
      (unsigned long long)t.sessions_expired);
  b.Appendf("  \"verbs\": [\n");
  for (size_t i = 0; i < s.verbs.size(); ++i) {
    const auto& v = s.verbs[i];
    b.Appendf(
        "    {\"verb\": \"%s\", \"requests\": %llu, \"errors\": %llu, "
        "\"samples\": %zu, \"p50_ms\": %.3f, \"p95_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"max_ms\": %.3f}%s\n",
        JsonEscape(v.verb).c_str(), (unsigned long long)v.requests,
        (unsigned long long)v.errors, v.samples, v.p50_ms, v.p95_ms,
        v.p99_ms, v.max_ms, i + 1 < s.verbs.size() ? "," : "");
  }
  b.Appendf("  ]\n}\n");
  return b.Take();
}

std::string StatsToText(const ServerMetrics::Snapshot& s) {
  JsonBuf b;
  b.Appendf("rdfalignd stats: %llu requests, %llu errors\n",
            (unsigned long long)s.total_requests,
            (unsigned long long)s.total_errors);
  const TransportCounters& t = s.transport;
  b.Appendf(
      "  transport accept_retries=%llu load_shed=%llu io_timeouts=%llu "
      "protocol_errors=%llu parked=%llu resumed=%llu expired=%llu\n",
      (unsigned long long)t.accept_retries, (unsigned long long)t.load_shed,
      (unsigned long long)t.io_timeouts,
      (unsigned long long)t.protocol_errors,
      (unsigned long long)t.sessions_parked,
      (unsigned long long)t.sessions_resumed,
      (unsigned long long)t.sessions_expired);
  for (const auto& v : s.verbs) {
    b.Appendf(
        "  %-8s requests=%-6llu errors=%-4llu p50=%.3fms p95=%.3fms "
        "p99=%.3fms max=%.3fms\n",
        v.verb.c_str(), (unsigned long long)v.requests,
        (unsigned long long)v.errors, v.p50_ms, v.p95_ms, v.p99_ms,
        v.max_ms);
  }
  return b.Take();
}

}  // namespace

VerbResult HandleStatsVerb(const std::vector<std::string>& tokens,
                           const ServerMetrics& metrics) {
  VerbResult result;
  result.verb = "stats";
  const Args args(std::vector<std::string>(tokens.begin() + 1, tokens.end()));
  std::string message;
  if (!args.positional().empty() || !args.OnlyKnown({"json"}, &message)) {
    result.exit_code = 2;
    result.usage_error = true;
    result.error = message;
    return result;
  }
  const ServerMetrics::Snapshot snapshot = metrics.Take();
  result.output =
      args.Has("json") ? StatsToJson(snapshot) : StatsToText(snapshot);
  return result;
}

}  // namespace rdfalign::service
