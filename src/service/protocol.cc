#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rdfalign::service {

namespace {

Status WriteAll(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    // MSG_NOSIGNAL: a peer that hung up mid-write must surface as EPIPE,
    // not kill the process — callers (daemon and client) handle the error.
    const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("socket write: ") +
                             std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. Returns 0 on success, 1 on EOF before the
/// first byte, and an IOError Status via `*error` otherwise.
int ReadAll(int fd, void* data, size_t size, Status* error) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, p + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = Status::IOError(std::string("socket read: ") +
                               std::strerror(errno));
      return 2;
    }
    if (n == 0) {
      if (got == 0) return 1;  // clean EOF at a frame boundary
      *error = Status::IOError("socket closed mid-frame");
      return 2;
    }
    got += static_cast<size_t>(n);
  }
  return 0;
}

}  // namespace

Status WriteFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large");
  }
  const uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  RDFALIGN_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header)));
  return WriteAll(fd, payload.data(), payload.size());
}

Result<bool> ReadFrame(int fd, std::string* payload) {
  unsigned char header[4];
  Status error = Status::OK();
  const int rc = ReadAll(fd, header, sizeof(header), &error);
  if (rc == 1) return false;
  if (rc != 0) return error;
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("oversized frame (" + std::to_string(len) +
                                   " bytes)");
  }
  payload->resize(len);
  if (len > 0) {
    const int body_rc = ReadAll(fd, payload->data(), len, &error);
    if (body_rc == 1) return Status::IOError("socket closed mid-frame");
    if (body_rc != 0) return error;
  }
  return true;
}

std::string EncodeRequest(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += '\n';
    out += tokens[i];
  }
  return out;
}

std::vector<std::string> DecodeRequest(const std::string& payload) {
  std::vector<std::string> tokens;
  if (payload.empty()) return tokens;
  size_t start = 0;
  while (true) {
    const size_t nl = payload.find('\n', start);
    if (nl == std::string::npos) {
      tokens.push_back(payload.substr(start));
      return tokens;
    }
    tokens.push_back(payload.substr(start, nl - start));
    start = nl + 1;
  }
}

}  // namespace rdfalign::service
