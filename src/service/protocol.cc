#include "service/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/fault_injector.h"

namespace rdfalign::service {

namespace {

constexpr char kTimeoutPrefix[] = "socket timeout";

int64_t NowMs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// A whole-frame deadline: 0 means "no deadline" and every wait blocks.
struct Deadline {
  int64_t at_ms = 0;

  static Deadline After(int timeout_ms) {
    Deadline d;
    if (timeout_ms > 0) d.at_ms = NowMs() + timeout_ms;
    return d;
  }

  /// Blocks until `fd` is ready for `events` or the deadline passes.
  /// Returns OK when ready, the timeout status on expiry.
  Status Wait(int fd, short events) const {
    if (at_ms == 0) return Status::OK();
    while (true) {
      const int64_t left = at_ms - NowMs();
      if (left <= 0) {
        return Status::IOError(std::string(kTimeoutPrefix) +
                               (events == POLLIN ? " (read)" : " (write)"));
      }
      pollfd pfd{fd, events, 0};
      const int rc = ::poll(&pfd, 1, static_cast<int>(left));
      if (rc > 0) return Status::OK();
      if (rc < 0 && errno != EINTR) {
        return Status::IOError(std::string("socket poll: ") +
                               std::strerror(errno));
      }
      // rc == 0 (poll timeout) loops back to re-check the deadline.
    }
  }
};

/// Applies an armed `socket.read` / `socket.write` fault to a pending
/// transfer of `size` bytes. Returns -1 with errno set for error/EINTR
/// faults; otherwise clamps `size` (short mode) and returns 0.
int ApplySocketFault(const char* point, size_t* size) {
  const FaultAction a = FaultInjector::Hit(point);
  switch (a.kind) {
    case FaultAction::kNone:
      break;
    case FaultAction::kError:
      errno = a.error_errno;
      return -1;
    case FaultAction::kEintr:
      errno = EINTR;
      return -1;
    case FaultAction::kShort:
      if (*size > 1) *size = 1;
      break;
  }
  return 0;
}

Status WriteAll(int fd, const void* data, size_t size,
                const Deadline& deadline) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    RDFALIGN_RETURN_IF_ERROR(deadline.Wait(fd, POLLOUT));
    size_t chunk = size;
    ssize_t n = ApplySocketFault("socket.write", &chunk);
    if (n == 0) {
      // MSG_NOSIGNAL: a peer that hung up mid-write must surface as
      // EPIPE, not kill the process — callers handle the error.
      n = ::send(fd, p, chunk, MSG_NOSIGNAL);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::IOError(std::string("socket write: ") +
                             std::strerror(errno));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `size` bytes. Returns 0 on success, 1 on EOF before the
/// first byte, and an IOError Status via `*error` otherwise.
int ReadAll(int fd, void* data, size_t size, const Deadline& deadline,
            Status* error) {
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    Status wait = deadline.Wait(fd, POLLIN);
    if (!wait.ok()) {
      *error = std::move(wait);
      return 2;
    }
    size_t chunk = size - got;
    ssize_t n = ApplySocketFault("socket.read", &chunk);
    if (n == 0) {
      n = ::read(fd, p + got, chunk);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      *error = Status::IOError(std::string("socket read: ") +
                               std::strerror(errno));
      return 2;
    }
    if (n == 0) {
      if (got == 0) return 1;  // clean EOF at a frame boundary
      *error = Status::IOError("socket closed mid-frame");
      return 2;
    }
    got += static_cast<size_t>(n);
  }
  return 0;
}

}  // namespace

bool IsTimeout(const Status& status) {
  return status.IsIOError() &&
         status.message().rfind(kTimeoutPrefix, 0) == 0;
}

Status WriteFrame(int fd, const std::string& payload, int timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large");
  }
  const Deadline deadline = Deadline::After(timeout_ms);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  unsigned char header[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  RDFALIGN_RETURN_IF_ERROR(WriteAll(fd, header, sizeof(header), deadline));
  return WriteAll(fd, payload.data(), payload.size(), deadline);
}

Result<bool> ReadFrame(int fd, std::string* payload, int timeout_ms) {
  const Deadline deadline = Deadline::After(timeout_ms);
  unsigned char header[4];
  Status error = Status::OK();
  const int rc = ReadAll(fd, header, sizeof(header), deadline, &error);
  if (rc == 1) return false;
  if (rc != 0) return error;
  const uint32_t len = static_cast<uint32_t>(header[0]) |
                       (static_cast<uint32_t>(header[1]) << 8) |
                       (static_cast<uint32_t>(header[2]) << 16) |
                       (static_cast<uint32_t>(header[3]) << 24);
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("oversized frame (" + std::to_string(len) +
                                   " bytes)");
  }
  payload->resize(len);
  if (len > 0) {
    const int body_rc = ReadAll(fd, payload->data(), len, deadline, &error);
    if (body_rc == 1) return Status::IOError("socket closed mid-frame");
    if (body_rc != 0) return error;
  }
  return true;
}

std::string EncodeRequest(const std::vector<std::string>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += '\n';
    out += tokens[i];
  }
  return out;
}

std::vector<std::string> DecodeRequest(const std::string& payload) {
  std::vector<std::string> tokens;
  if (payload.empty()) return tokens;
  size_t start = 0;
  while (true) {
    const size_t nl = payload.find('\n', start);
    if (nl == std::string::npos) {
      tokens.push_back(payload.substr(start));
      return tokens;
    }
    tokens.push_back(payload.substr(start, nl - start));
    start = nl + 1;
  }
}

}  // namespace rdfalign::service
