#include "service/session_registry.h"

#include <time.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <random>
#include <utility>

namespace rdfalign::service {

int64_t SteadyNowMs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

std::string GenerateSessionToken() {
  // random_device entropy mixed with pid and a counter: tokens must be
  // unguessable (they gate session takeover) and unique within a daemon
  // even if random_device is weak on this platform.
  static std::atomic<uint64_t> counter{0};
  std::random_device rd;
  uint64_t mix = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  mix ^= static_cast<uint64_t>(::getpid()) << 48;
  mix ^= counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "st-%016llx", (unsigned long long)mix);
  return std::string(buf);
}

bool StreamSessionRegistry::Park(std::unique_ptr<StreamSession> session,
                                 int64_t expires_at_ms) {
  if (session == nullptr || session->token.empty()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = parked_.try_emplace(session->token);
  if (!inserted) return false;
  it->second.session = std::move(session);
  it->second.expires_at_ms = expires_at_ms;
  return true;
}

std::unique_ptr<StreamSession> StreamSessionRegistry::Claim(
    const std::string& token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = parked_.find(token);
  if (it == parked_.end()) return nullptr;
  std::unique_ptr<StreamSession> out = std::move(it->second.session);
  parked_.erase(it);
  return out;
}

size_t StreamSessionRegistry::ReapExpired(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t reaped = 0;
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (it->second.expires_at_ms <= now_ms) {
      it = parked_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

size_t StreamSessionRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_.size();
}

}  // namespace rdfalign::service
