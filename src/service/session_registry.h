// StreamSessionRegistry: parked streaming sessions that survive their
// connection.
//
// When the daemon runs with --session-linger-ms > 0 and a connection with
// an open stream session drops (client crash, network cut, io-timeout
// eviction), the server parks the session here instead of destroying it.
// The session stays claimable by `stream resume <token>` until the linger
// deadline, after which it is reaped. Tokens are unguessable random
// identifiers handed out by `stream open`; claiming is destructive (a
// token resumes at most one connection at a time — the session moves back
// to connection ownership).
//
// Reaping is lazy: the server sweeps expired sessions on every accept and
// request, so an idle daemon holds an expired aligner only until the next
// connection arrives. All methods are thread-safe.

#ifndef RDFALIGN_SERVICE_SESSION_REGISTRY_H_
#define RDFALIGN_SERVICE_SESSION_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "service/stream_verbs.h"

namespace rdfalign::service {

/// Monotonic milliseconds for linger deadlines (CLOCK_MONOTONIC — immune
/// to wall-clock steps).
int64_t SteadyNowMs();

/// A fresh unguessable session token ("st-" + 16 hex digits).
std::string GenerateSessionToken();

class StreamSessionRegistry {
 public:
  /// Parks `session` under its token until `expires_at_ms`. Returns false
  /// (and destroys the session) on a token collision — callers treat that
  /// as "not parked".
  bool Park(std::unique_ptr<StreamSession> session, int64_t expires_at_ms);

  /// Removes and returns the parked session for `token`, or nullptr if
  /// unknown (never parked, already claimed, or reaped).
  std::unique_ptr<StreamSession> Claim(const std::string& token);

  /// Destroys every session whose deadline passed. Returns how many.
  size_t ReapExpired(int64_t now_ms);

  size_t size() const;

 private:
  struct Parked {
    std::unique_ptr<StreamSession> session;
    int64_t expires_at_ms = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Parked> parked_;
};

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_SESSION_REGISTRY_H_
